//! End-to-end crash-safety tests of `firmup index`: kill/resume work
//! reuse, writer mutual exclusion, stale-lock recovery, SIGINT
//! semantics, and the `firmup fsck` detect → quarantine → repair flow.

use std::path::{Path, PathBuf};
use std::process::Command;

use firmup::telemetry::json::Json;

fn firmup() -> Command {
    Command::new(env!("CARGO_BIN_EXE_firmup"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("firmup-durability-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Generate a corpus into `dir/corpus`, returning the image paths.
fn gen_corpus(dir: &Path, devices: &str) -> Vec<PathBuf> {
    let corpus = dir.join("corpus");
    let out = firmup()
        .args([
            "gen-corpus",
            "--out",
            corpus.to_str().unwrap(),
            "--devices",
            devices,
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "gen-corpus failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let mut images: Vec<PathBuf> = std::fs::read_dir(&corpus)
        .unwrap()
        .filter_map(|e| {
            let p = e.unwrap().path();
            (p.extension().is_some_and(|x| x == "fwim")).then_some(p)
        })
        .collect();
    images.sort();
    assert!(!images.is_empty());
    images
}

fn index_into(images: &[PathBuf], idx: &Path, extra: &[&str]) -> std::process::Output {
    firmup()
        .arg("index")
        .args(images)
        .args(["--out", idx.to_str().unwrap(), "--threads", "1"])
        .args(extra)
        .output()
        .expect("spawn index")
}

fn findings(stdout: &[u8]) -> Vec<String> {
    String::from_utf8_lossy(stdout)
        .lines()
        .filter(|l| l.contains("suspected at"))
        .map(str::to_string)
        .collect()
}

fn warm_findings(idx: &Path) -> Vec<String> {
    let out = firmup()
        .args(["scan", "--index", idx.to_str().unwrap()])
        .output()
        .expect("spawn scan");
    assert!(
        out.status.success(),
        "warm scan failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    findings(&out.stdout)
}

fn counter(metrics: &Path, name: &str) -> u64 {
    let doc = Json::parse(&std::fs::read_to_string(metrics).expect("metrics file"))
        .expect("metrics JSON");
    doc.get("counters")
        .and_then(|c| c.get(name))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

#[test]
fn resume_after_kill_relifts_only_the_unfinished_images() {
    let dir = temp_dir("resume");
    let images = gen_corpus(&dir, "3");
    let n = images.len() as u64;
    assert!(n >= 3, "need several images to kill between");

    // Reference: an uninterrupted build of the same images.
    let reference = dir.join("reference");
    assert!(index_into(&images, &reference, &[]).status.success());
    let reference_fui = std::fs::read(reference.join("corpus.fui")).unwrap();

    // Kill the build right after the second committed segment.
    let idx = dir.join("idx");
    let killed = firmup()
        .arg("index")
        .args(&images)
        .args(["--out", idx.to_str().unwrap(), "--threads", "1"])
        .env("FIRMUP_CRASH_POINT", "index.between_segments:2")
        .output()
        .expect("spawn");
    assert!(!killed.status.success(), "crash point did not fire");
    assert!(
        !idx.join("corpus.fui").exists(),
        "corpus.fui written before all segments committed"
    );

    // Resume: exactly the two committed segments are reused, the rest
    // re-lifted, and the final index is byte-identical to the
    // uninterrupted build.
    let metrics = dir.join("resume-metrics.json");
    let resumed = index_into(
        &images,
        &idx,
        &["--resume", "--metrics-out", metrics.to_str().unwrap()],
    );
    assert!(
        resumed.status.success(),
        "resume failed: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert_eq!(counter(&metrics, "index.segments_reused"), 2);
    assert_eq!(counter(&metrics, "index.segments_committed"), n - 2);
    assert_eq!(counter(&metrics, "index.resumed"), 1);
    assert_eq!(
        std::fs::read(idx.join("corpus.fui")).unwrap(),
        reference_fui,
        "resumed index differs from the uninterrupted build"
    );
}

#[test]
fn second_concurrent_writer_gets_a_structured_lock_error() {
    let dir = temp_dir("lock");
    let images = gen_corpus(&dir, "2");
    let idx = dir.join("idx");

    let mut first = firmup()
        .arg("index")
        .args(&images)
        .args(["--out", idx.to_str().unwrap()])
        .env("FIRMUP_TEST_SEGMENT_DELAY_MS", "500")
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn first writer");
    // Wait for the first writer to take the lock.
    for _ in 0..500 {
        if idx.join("index.lock").exists() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert!(
        idx.join("index.lock").exists(),
        "writer never took the lock"
    );

    let second = index_into(&images, &idx, &[]);
    assert!(!second.status.success(), "second writer won the lock?!");
    assert_eq!(second.status.code(), Some(1), "panic, not a clean error");
    let stderr = String::from_utf8_lossy(&second.stderr);
    assert!(
        stderr.contains("lock held by pid"),
        "no structured lock diagnosis: {stderr}"
    );
    assert!(!stderr.contains("panicked"), "{stderr}");

    assert!(first.wait().expect("wait").success());
    // The surviving writer's index is whole.
    assert!(!warm_findings(&idx).is_empty());
}

#[test]
fn stale_lock_from_a_dead_process_is_stolen() {
    let dir = temp_dir("stale-lock");
    let images = gen_corpus(&dir, "2");
    let idx = dir.join("idx");
    std::fs::create_dir_all(&idx).unwrap();
    // A pid far above any real pid_max: provably dead.
    std::fs::write(idx.join("index.lock"), "pid 4199999999\n").unwrap();
    let out = index_into(&images, &idx, &[]);
    assert!(
        out.status.success(),
        "dead-pid lock not stolen: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(!warm_findings(&idx).is_empty());
}

#[cfg(unix)]
#[test]
fn sigint_flushes_the_checkpoint_and_exits_130() {
    let dir = temp_dir("sigint");
    let images = gen_corpus(&dir, "3");

    let reference = dir.join("reference");
    assert!(index_into(&images, &reference, &[]).status.success());
    let reference_fui = std::fs::read(reference.join("corpus.fui")).unwrap();

    let idx = dir.join("idx");
    let mut child = firmup()
        .arg("index")
        .args(&images)
        .args(["--out", idx.to_str().unwrap(), "--threads", "1"])
        .env("FIRMUP_TEST_SEGMENT_DELAY_MS", "200")
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn");
    // Interrupt once the first segment is durably journaled.
    for _ in 0..500 {
        if std::fs::read(idx.join("journal.fuj")).is_ok_and(|b| !b.is_empty()) {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    let kill = Command::new("kill")
        .args(["-INT", &child.id().to_string()])
        .status()
        .expect("spawn kill");
    assert!(kill.success());
    let status = child.wait().expect("wait");
    assert_eq!(
        status.code(),
        Some(130),
        "interrupt must exit 130 (got {status:?})"
    );
    assert!(
        !idx.join("corpus.fui").exists(),
        "interrupted build wrote a final index"
    );

    // Everything journaled before the ^C is reused; the result is
    // byte-identical to the uninterrupted build.
    let metrics = dir.join("metrics.json");
    let resumed = index_into(
        &images,
        &idx,
        &["--resume", "--metrics-out", metrics.to_str().unwrap()],
    );
    assert!(
        resumed.status.success(),
        "resume failed: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert!(counter(&metrics, "index.segments_reused") >= 1);
    assert_eq!(
        std::fs::read(idx.join("corpus.fui")).unwrap(),
        reference_fui
    );
}

#[test]
fn fsck_detects_quarantines_and_repairs_segment_damage() {
    let dir = temp_dir("fsck");
    let images = gen_corpus(&dir, "3");
    let idx = dir.join("idx");
    assert!(index_into(&images, &idx, &[]).status.success());
    let baseline = {
        let mut f = warm_findings(&idx);
        f.sort();
        f
    };
    assert!(!baseline.is_empty());

    // A clean index passes.
    let clean = firmup()
        .args(["fsck", idx.to_str().unwrap()])
        .output()
        .expect("spawn");
    assert!(
        clean.status.success(),
        "clean index flagged: {}",
        String::from_utf8_lossy(&clean.stdout)
    );

    // Flip a byte in one checkpoint segment.
    let seg_dir = idx.join("segments");
    let victim = std::fs::read_dir(&seg_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .next()
        .expect("a segment");
    let mut blob = std::fs::read(&victim).unwrap();
    let mid = blob.len() / 2;
    blob[mid] ^= 0x20;
    std::fs::write(&victim, &blob).unwrap();

    // Detect: nonzero exit, the verdict table names the damage, and the
    // damaged segment is quarantined out of the way.
    let detect = firmup()
        .args(["fsck", idx.to_str().unwrap()])
        .output()
        .expect("spawn");
    assert!(!detect.status.success(), "damage not detected");
    assert_eq!(detect.status.code(), Some(1));
    let table = String::from_utf8_lossy(&detect.stdout);
    assert!(table.contains("DAMAGED"), "{table}");
    assert!(!victim.exists(), "damaged segment not quarantined");
    assert!(
        idx.join("quarantine").read_dir().unwrap().next().is_some(),
        "quarantine directory empty"
    );

    // Repair: re-lift the lost segment from the source images, exit 0,
    // and the warm scan matches the pre-damage baseline (repair may
    // reorder executables, so compare the finding *set*).
    let mut repair_cmd = firmup();
    repair_cmd.args(["fsck", idx.to_str().unwrap(), "--repair"]);
    repair_cmd.args(&images);
    let repair = repair_cmd.output().expect("spawn");
    let table = String::from_utf8_lossy(&repair.stdout);
    assert!(
        repair.status.success(),
        "repair failed: {table}\n{}",
        String::from_utf8_lossy(&repair.stderr)
    );
    assert!(table.contains("repaired"), "{table}");
    let mut after = warm_findings(&idx);
    after.sort();
    assert_eq!(after, baseline, "repair changed the scan results");

    // And the repaired index is clean again.
    assert!(firmup()
        .args(["fsck", idx.to_str().unwrap()])
        .output()
        .expect("spawn")
        .status
        .success());
}

#[test]
fn fsck_rebuilds_a_torn_corpus_file_from_segments() {
    let dir = temp_dir("fsck-fui");
    let images = gen_corpus(&dir, "2");
    let idx = dir.join("idx");
    assert!(index_into(&images, &idx, &[]).status.success());
    let mut baseline = warm_findings(&idx);
    baseline.sort();

    // Tear corpus.fui in half — as a crashed non-atomic writer would.
    let fui = idx.join("corpus.fui");
    let pristine = std::fs::read(&fui).unwrap();
    std::fs::write(&fui, &pristine[..pristine.len() / 2]).unwrap();

    assert!(!firmup()
        .args(["fsck", idx.to_str().unwrap()])
        .output()
        .expect("spawn")
        .status
        .success());
    // No source images needed: every segment survived, so --repair can
    // rebuild corpus.fui from the journal alone.
    let repair = firmup()
        .args(["fsck", idx.to_str().unwrap(), "--repair"])
        .output()
        .expect("spawn");
    assert!(
        repair.status.success(),
        "repair failed: {}",
        String::from_utf8_lossy(&repair.stdout)
    );
    let mut after = warm_findings(&idx);
    after.sort();
    assert_eq!(after, baseline);
}
