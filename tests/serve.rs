//! End-to-end tests for `firmup serve`: admission control and load
//! shedding, serving determinism under concurrency, per-request
//! budgets, hot reload, and graceful drain — each against a real daemon
//! child process on an ephemeral port.
//!
//! Unix-only: the drain/reload tests speak SIGTERM/SIGINT/SIGHUP.

#![cfg(unix)]

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use firmup::serve::protocol::{http_request, HttpResponse};
use firmup::telemetry::json::Json;

const TIMEOUT: Duration = Duration::from_secs(30);

fn firmup_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_firmup"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("firmup-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Generate a corpus under `dir/<sub>` and index it into `dir/<idx>`;
/// return the CLI's canonical findings document for that index — the
/// bytes every serve response must reproduce exactly.
fn build_index(dir: &Path, sub: &str, idx: &str, seed: Option<&str>) -> Vec<u8> {
    let mut gen = firmup_bin();
    gen.args(["gen-corpus", "--out", sub, "--devices", "1"])
        .current_dir(dir);
    if let Some(seed) = seed {
        gen.args(["--seed", seed]);
    }
    let out = gen.output().expect("spawn gen-corpus");
    assert!(
        out.status.success(),
        "gen-corpus failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let mut images: Vec<String> = std::fs::read_dir(dir.join(sub))
        .expect("corpus dir")
        .filter_map(|e| {
            let p = e.expect("dir entry").path();
            (p.extension().is_some_and(|x| x == "fwim"))
                .then(|| format!("{sub}/{}", p.file_name().unwrap().to_str().unwrap()))
        })
        .collect();
    images.sort();
    let mut cmd = firmup_bin();
    cmd.arg("index").current_dir(dir);
    for img in &images {
        cmd.arg(img);
    }
    cmd.args(["--out", idx]);
    let out = cmd.output().expect("spawn index");
    assert!(
        out.status.success(),
        "index failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = firmup_bin()
        .args(["scan", "--index", idx, "--format", "json", "--threads", "1"])
        .current_dir(dir)
        .output()
        .expect("spawn scan");
    assert!(
        out.status.success(),
        "baseline scan failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

/// A `firmup serve` child on an ephemeral port, killed on drop if a
/// test failed before draining it.
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn spawn(dir: &Path, idx: &str, tag: &str, extra: &[&str], envs: &[(&str, &str)]) -> Daemon {
        let port_file = dir.join(format!("port-{tag}"));
        let log = std::fs::File::create(dir.join(format!("serve-{tag}.log"))).expect("log file");
        let mut cmd = firmup_bin();
        cmd.args([
            "serve",
            "--index",
            idx,
            "--listen",
            "127.0.0.1:0",
            "--port-file",
        ])
        .arg(&port_file)
        .args(extra)
        .current_dir(dir)
        .stdout(Stdio::null())
        .stderr(Stdio::from(log));
        for (k, v) in envs {
            cmd.env(k, v);
        }
        let child = cmd.spawn().expect("spawn serve");
        let deadline = Instant::now() + TIMEOUT;
        let addr = loop {
            if let Ok(s) = std::fs::read_to_string(&port_file) {
                break s.trim().to_string();
            }
            assert!(
                Instant::now() < deadline,
                "daemon never wrote {tag} port file"
            );
            std::thread::sleep(Duration::from_millis(25));
        };
        Daemon { child, addr }
    }

    fn signal(&self, sig: &str) {
        let status = Command::new("kill")
            .args([sig, &self.child.id().to_string()])
            .status()
            .expect("spawn kill");
        assert!(status.success(), "kill {sig} failed");
    }

    /// Wait for exit (bounded) and return the exit code.
    fn wait_exit(mut self) -> i32 {
        let deadline = Instant::now() + TIMEOUT;
        loop {
            if let Some(status) = self.child.try_wait().expect("try_wait") {
                return status.code().expect("exit code (not a signal death)");
            }
            assert!(Instant::now() < deadline, "daemon did not exit in time");
            std::thread::sleep(Duration::from_millis(25));
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        if self.child.try_wait().map(|s| s.is_none()).unwrap_or(false) {
            let _ = self.child.kill();
            let _ = self.child.wait();
        }
    }
}

fn scan(addr: &str, body: &str) -> HttpResponse {
    http_request(addr, "POST", "/scan", Some(body.as_bytes()), TIMEOUT).expect("scan request")
}

/// One bare newline-JSON-dialect request: a JSON line in, the response
/// document (with trailing newline) out.
fn raw_scan(addr: &str, line: &str) -> Vec<u8> {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(TIMEOUT)).expect("timeout");
    stream.set_write_timeout(Some(TIMEOUT)).expect("timeout");
    let mut w = &stream;
    w.write_all(line.as_bytes()).expect("send");
    w.write_all(b"\n").expect("send newline");
    let mut out = Vec::new();
    (&stream).read_to_end(&mut out).expect("read response");
    out
}

/// The determinism soak: concurrent clients hammering daemons at
/// several `--threads` values, every response byte-identical to the
/// single-threaded CLI's stdout, then a SIGTERM drain to exit 0.
#[test]
fn soak_responses_byte_identical_under_concurrency() {
    let dir = temp_dir("soak");
    let baseline = build_index(&dir, "corpus", "idx", None);
    assert!(!baseline.is_empty());

    for (threads, clients, per_client) in [(1, 8, 6), (2, 8, 50), (3, 8, 6), (4, 8, 6)] {
        let tag = format!("soak-t{threads}");
        let d = Daemon::spawn(&dir, "idx", &tag, &["--threads", &threads.to_string()], &[]);
        std::thread::scope(|s| {
            for c in 0..clients {
                let (addr, baseline) = (&d.addr, &baseline);
                s.spawn(move || {
                    for r in 0..per_client {
                        // One client speaks the bare-JSON dialect; the
                        // rest speak HTTP. Same bytes either way.
                        let body = if c == 0 {
                            raw_scan(addr, "{}")
                        } else {
                            let resp = scan(addr, "{}");
                            assert_eq!(resp.status, 200, "client {c} request {r}");
                            resp.body
                        };
                        assert_eq!(
                            body, *baseline,
                            "threads={threads} client {c} request {r} diverged from the CLI"
                        );
                    }
                });
            }
        });
        d.signal("-TERM");
        assert_eq!(d.wait_exit(), 0, "threads={threads} drain must exit 0");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Admission control: with one slow worker and a one-slot queue, excess
/// requests are shed with a structured 429 (+ Retry-After) while the
/// admitted ones still complete correctly — and nothing hangs, panics,
/// or drops a connection without an answer.
#[test]
fn overload_sheds_structured_429_and_admitted_requests_complete() {
    let dir = temp_dir("shed");
    let baseline = build_index(&dir, "corpus", "idx", None);
    let d = Daemon::spawn(
        &dir,
        "idx",
        "shed",
        &["--workers", "1", "--queue-cap", "1"],
        &[("FIRMUP_TEST_HANDLE_DELAY_MS", "1500")],
    );
    std::thread::scope(|s| {
        let (addr, baseline) = (&d.addr, &baseline);
        // A occupies the lone worker; B fills the one queue slot.
        let a = s.spawn(move || scan(addr, "{}"));
        std::thread::sleep(Duration::from_millis(400));
        let b = s.spawn(move || scan(addr, "{}"));
        std::thread::sleep(Duration::from_millis(300));
        // The queue is full: these must shed immediately, structured.
        for i in 0..3 {
            let resp = scan(addr, "{}");
            assert_eq!(resp.status, 429, "overflow request {i} was not shed");
            assert!(
                resp.headers
                    .iter()
                    .any(|(k, _)| k.eq_ignore_ascii_case("retry-after")),
                "shed response carries no Retry-After hint"
            );
            let doc = Json::parse(std::str::from_utf8(&resp.body).expect("utf8"))
                .expect("shed body parses");
            assert_eq!(
                doc.get("error").and_then(Json::as_str),
                Some("overloaded"),
                "shed body must name the overload"
            );
        }
        for (name, handle) in [("A", a), ("B", b)] {
            let resp = handle.join().expect("client thread");
            assert_eq!(resp.status, 200, "admitted request {name} must complete");
            assert_eq!(resp.body, *baseline, "admitted request {name} diverged");
        }
    });
    d.signal("-TERM");
    assert_eq!(d.wait_exit(), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// SIGHUP hot reload: an in-flight request finishes on the snapshot it
/// pinned at admission; requests after the reload see the new index —
/// no request is ever dropped or answered from a torn mix.
#[test]
fn sighup_reload_swaps_snapshot_without_dropping_inflight() {
    let dir = temp_dir("reload");
    let expected_a = build_index(&dir, "corpus-a", "idx", Some("11"));
    let expected_b = build_index(&dir, "corpus-b", "idx-b", Some("2222"));
    assert_ne!(expected_a, expected_b, "seeds must yield distinct corpora");

    let d = Daemon::spawn(
        &dir,
        "idx",
        "reload",
        &[],
        &[("FIRMUP_TEST_HANDLE_DELAY_MS", "800")],
    );
    std::thread::scope(|s| {
        let addr = &d.addr;
        // r1 pins the old snapshot, then stalls in the handler.
        let r1 = s.spawn(move || scan(addr, "{}"));
        std::thread::sleep(Duration::from_millis(250));

        // Swap the on-disk index to corpus B and ask for a reload.
        std::fs::copy(
            firmup::firmware::index::index_path(&dir.join("idx-b")),
            firmup::firmware::index::index_path(&dir.join("idx")),
        )
        .expect("swap index");
        d.signal("-HUP");
        let deadline = Instant::now() + TIMEOUT;
        loop {
            let resp = http_request(addr, "GET", "/readyz", None, TIMEOUT).expect("readyz");
            let doc =
                Json::parse(std::str::from_utf8(&resp.body).expect("utf8")).expect("readyz parses");
            if doc.get("epoch").and_then(Json::as_u64) == Some(2) {
                break;
            }
            assert!(Instant::now() < deadline, "reload never completed");
            std::thread::sleep(Duration::from_millis(25));
        }

        // Post-reload requests see the new corpus...
        let r2 = scan(addr, "{}");
        assert_eq!(r2.status, 200);
        assert_eq!(r2.body, expected_b, "post-reload request must see corpus B");
        // ...while the in-flight request finished on the old snapshot.
        let r1 = r1.join().expect("r1 thread");
        assert_eq!(r1.status, 200, "reload must not drop the in-flight request");
        assert_eq!(r1.body, expected_a, "in-flight request must see corpus A");
    });
    d.signal("-TERM");
    assert_eq!(d.wait_exit(), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Graceful drain: SIGTERM stops admission but the in-flight request is
/// answered in full before the process exits 0; SIGINT exits 130.
#[test]
fn sigterm_drains_inflight_then_exits_zero_and_sigint_exits_130() {
    let dir = temp_dir("drain");
    let baseline = build_index(&dir, "corpus", "idx", None);

    let d = Daemon::spawn(
        &dir,
        "idx",
        "drain",
        &["--drain-ms", "20000"],
        &[("FIRMUP_TEST_HANDLE_DELAY_MS", "900")],
    );
    std::thread::scope(|s| {
        let (addr, baseline) = (&d.addr, &baseline);
        let r1 = s.spawn(move || scan(addr, "{}"));
        std::thread::sleep(Duration::from_millis(250));
        d.signal("-TERM");
        let resp = r1.join().expect("r1 thread");
        assert_eq!(resp.status, 200, "drain must answer the in-flight request");
        assert_eq!(resp.body, *baseline, "drained request diverged");
    });
    assert_eq!(d.wait_exit(), 0, "SIGTERM drain must exit 0");

    let d = Daemon::spawn(&dir, "idx", "int", &[], &[]);
    let resp = http_request(&d.addr, "GET", "/healthz", None, TIMEOUT).expect("healthz");
    assert_eq!(resp.status, 200);
    d.signal("-INT");
    assert_eq!(d.wait_exit(), 130, "SIGINT must exit 130");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Protocol edges and observability on one daemon: exhausted budgets
/// return partial results (never errors), malformed input gets
/// structured 4xx without hurting later requests, and `/metrics` is a
/// valid Prometheus exposition counting all of it.
#[test]
fn budgets_malformed_input_and_metrics_are_structured() {
    let dir = temp_dir("proto");
    let baseline = build_index(&dir, "corpus", "idx", None);
    let d = Daemon::spawn(&dir, "idx", "proto", &[], &[]);
    let addr = &d.addr;

    // deadline_ms 0: already exhausted on arrival — partial results
    // with over_budget markers, exactly like the CLI's --scan-ms.
    let resp = scan(addr, "{\"deadline_ms\": 0}");
    assert_eq!(resp.status, 200, "budget exhaustion is not an error");
    let doc = Json::parse(std::str::from_utf8(&resp.body).expect("utf8")).expect("parses");
    assert!(
        doc.get("over_budget").and_then(Json::as_u64) > Some(0),
        "exhausted deadline must mark targets over budget: {doc:?}"
    );
    assert_eq!(doc.get("total").and_then(Json::as_u64), Some(0));
    // The bare-JSON dialect answers the same bytes.
    assert_eq!(raw_scan(addr, "{\"deadline_ms\": 0}"), resp.body);

    // Malformed requests: structured rejections, never hangs or panics.
    let garbage = http_request(addr, "POST", "/scan", Some(b"{not json"), TIMEOUT).expect("send");
    assert_eq!(garbage.status, 400);
    let unknown = scan(addr, "{\"bogus\": 1}");
    assert_eq!(unknown.status, 400);
    assert!(String::from_utf8_lossy(&unknown.body).contains("bogus"));
    let method = http_request(addr, "DELETE", "/scan", None, TIMEOUT).expect("send");
    assert_eq!(method.status, 405);
    let path = http_request(addr, "GET", "/nope", None, TIMEOUT).expect("send");
    assert_eq!(path.status, 404);

    // The daemon shrugged all of it off.
    let ok = scan(addr, "{}");
    assert_eq!(ok.status, 200);
    assert_eq!(ok.body, baseline);

    // /metrics: parseable exposition whose counters reflect the above.
    let resp = http_request(addr, "GET", "/metrics", None, TIMEOUT).expect("metrics");
    assert_eq!(resp.status, 200);
    let text = String::from_utf8(resp.body).expect("metrics are UTF-8");
    let samples = firmup::telemetry::export::parse_exposition(&text).expect("exposition parses");
    let value = |name: &str| -> f64 {
        samples
            .iter()
            .find(|s| s.name == name && s.labels.is_empty())
            .unwrap_or_else(|| panic!("missing {name} in:\n{text}"))
            .value
    };
    assert!(value("firmup_serve_requests_total") >= 8.0);
    assert!(value("firmup_serve_admitted_total") >= 8.0);
    assert!(value("firmup_serve_scans_total") >= 4.0);
    assert!(value("firmup_serve_budget_exceeded_total") >= 2.0);
    assert!(value("firmup_serve_bad_requests_total") >= 4.0);
    assert_eq!(value("firmup_serve_poisoned_total"), 0.0);
    assert!(value("firmup_serve_request_us_count") >= 4.0);
    assert!(
        samples.iter().any(|s| s.name == "firmup_serve_queue_depth"),
        "queue depth gauge must be exposed even when idle"
    );

    d.signal("-TERM");
    assert_eq!(d.wait_exit(), 0);
    let _ = std::fs::remove_dir_all(&dir);
}
