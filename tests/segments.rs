//! Property test for the incremental-indexing hard invariant: *any*
//! schedule of `firmup index --add` batches and `firmup compact` calls,
//! over *any* permutation of the image set, must produce scan findings
//! byte-identical to a from-scratch `firmup index` build — at every
//! thread count.
//!
//! The schedule space is driven by a deterministic xorshift stream
//! seeded from the proptest case, so a failing seed reproduces its
//! exact partition / shuffle / compaction history.

use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::OnceLock;

use proptest::prelude::*;

fn firmup() -> Command {
    Command::new(env!("CARGO_BIN_EXE_firmup"))
}

/// Shared fixture: one generated corpus plus the from-scratch baseline
/// scan, built once and reused by every generated schedule.
struct Fixture {
    root: PathBuf,
    images: Vec<PathBuf>,
    baseline: String,
}

static FIXTURE: OnceLock<Fixture> = OnceLock::new();

fn fixture() -> &'static Fixture {
    FIXTURE.get_or_init(|| {
        let root =
            std::env::temp_dir().join(format!("firmup-segments-prop-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).expect("create fixture root");
        let corpus = root.join("corpus");
        let out = firmup()
            .args([
                "gen-corpus",
                "--out",
                corpus.to_str().unwrap(),
                "--devices",
                "3",
            ])
            .output()
            .expect("spawn gen-corpus");
        assert!(
            out.status.success(),
            "gen-corpus failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let mut images: Vec<PathBuf> = std::fs::read_dir(&corpus)
            .unwrap()
            .filter_map(|e| {
                let p = e.unwrap().path();
                (p.extension().is_some_and(|x| x == "fwim")).then_some(p)
            })
            .collect();
        images.sort();
        assert!(images.len() >= 3, "need several images to shuffle");

        // The reference: one monolithic build over the whole image set.
        let full = root.join("full");
        let out = firmup()
            .arg("index")
            .args(&images)
            .args(["--out", full.to_str().unwrap(), "--threads", "1"])
            .output()
            .expect("spawn index");
        assert!(
            out.status.success(),
            "full index failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let baseline = scan_json(&full, 1);
        Fixture {
            root,
            images,
            baseline,
        }
    })
}

fn scan_json(idx: &Path, threads: usize) -> String {
    let out = firmup()
        .args(["scan", "--index", idx.to_str().unwrap()])
        .args(["--format", "json", "--threads", &threads.to_string()])
        .output()
        .expect("spawn scan");
    assert!(
        out.status.success(),
        "scan failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("scan JSON is UTF-8")
}

/// xorshift64* — a tiny deterministic stream derived from the proptest
/// seed; every schedule decision (shuffle swaps, batch sizes, compact
/// interleavings) draws from it, so the whole history replays from the
/// one seed in a failure report.
fn next(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn any_ingestion_schedule_reproduces_the_from_scratch_scan(seed in any::<u64>()) {
        let fx = fixture();
        let mut rng = seed | 1; // xorshift must not start at 0

        // A random permutation of the image set (Fisher–Yates).
        let mut order: Vec<usize> = (0..fx.images.len()).collect();
        for i in (1..order.len()).rev() {
            let j = (next(&mut rng) % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }

        // Ingest it in random batches, randomly compacting in between.
        let idx = fx.root.join(format!("sched-{seed:016x}"));
        let _ = std::fs::remove_dir_all(&idx);
        let mut at = 0;
        while at < order.len() {
            let take = 1 + (next(&mut rng) as usize) % (order.len() - at);
            let mut cmd = firmup();
            cmd.args(["index", "--add"]);
            for &i in &order[at..at + take] {
                cmd.arg(&fx.images[i]);
            }
            at += take;
            cmd.args(["--out", idx.to_str().unwrap(), "--threads", "1"]);
            let out = cmd.output().expect("spawn index --add");
            prop_assert!(
                out.status.success(),
                "index --add failed (seed {seed:#x}): {}",
                String::from_utf8_lossy(&out.stderr)
            );
            if next(&mut rng).is_multiple_of(2) {
                let out = firmup()
                    .arg("compact")
                    .arg(&idx)
                    .output()
                    .expect("spawn compact");
                prop_assert!(
                    out.status.success(),
                    "compact failed (seed {seed:#x}): {}",
                    String::from_utf8_lossy(&out.stderr)
                );
            }
        }

        // The hard invariant: byte-identical findings to the monolithic
        // build, for every thread count.
        for threads in 1..=4 {
            let got = scan_json(&idx, threads);
            prop_assert_eq!(
                &got,
                &fx.baseline,
                "scan diverged from the from-scratch baseline \
                 (seed {:#x}, --threads {})",
                seed,
                threads
            );
        }
        let _ = std::fs::remove_dir_all(&idx);
    }
}
