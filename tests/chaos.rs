//! Fault-injection acceptance tests: every corruption operator, pushed
//! through every pipeline stage, must end in a structured error or a
//! degraded-but-reported result — never a panic.

use std::path::PathBuf;
use std::process::Command;

use firmup::chaos::{run, ChaosConfig};
use firmup::firmware::faultinject::CorruptOp;

/// The pinned CI seed: `firmup chaos --seed c4a05000` replays this run.
const PINNED_SEED: u64 = 0xc4a0_5000;

#[test]
fn chaos_matrix_contains_every_operator_with_zero_panics() {
    let report = run(&ChaosConfig {
        seed: PINNED_SEED,
        devices: 1,
        variants: 2,
    });
    assert!(report.trials() > 0, "matrix ran no trials");
    assert_eq!(
        report.per_op.len(),
        CorruptOp::all().len(),
        "matrix must cover every operator"
    );
    for op in &report.per_op {
        assert!(op.trials > 0, "{}: no trials", op.op.name());
        assert_eq!(op.panics, 0, "{}: a stage panicked", op.op.name());
        // Every trial is accounted for by a structured outcome: a
        // rejected unpack, a degraded (nothing searchable) image, or a
        // completed search.
        assert_eq!(
            op.unpack_errors + op.degraded + op.searched,
            op.trials,
            "{}: unaccounted trial",
            op.op.name()
        );
        // The index-corruption stage pushes each damaged blob through
        // both read paths (eager load and lazy load driven to full
        // decode) and every attempt must be equally accounted for: a
        // structured IndexError or a load the damage happened to leave
        // decodable — never a panic (counted above).
        assert_eq!(
            op.index_errors + op.index_ok,
            2 * op.trials,
            "{}: unaccounted index trial",
            op.op.name()
        );
        assert!(
            op.index_errors > 0,
            "{}: operator never damaged the index detectably",
            op.op.name()
        );
    }
    assert!(report.passed());
}

#[test]
fn typed_record_corruption_is_rejected_on_both_read_paths() {
    let report = run(&ChaosConfig {
        seed: PINNED_SEED,
        devices: 1,
        variants: 1,
    });
    assert!(
        !report.record_trials.is_empty(),
        "no intern/postings2 record trials ran — v2 records missing from the pristine index?"
    );
    for record in ["intern", "postings2"] {
        for mutation in [
            "truncated",
            "bitflip",
            "count-overrun",
            "zero-delta",
            "delta-overflow",
        ] {
            assert!(
                report
                    .record_trials
                    .iter()
                    .any(|t| t.record == record && t.mutation == mutation),
                "missing trial {record}:{mutation}"
            );
        }
    }
    for t in &report.record_trials {
        assert!(
            t.passed(),
            "{}:{} violated the codec trust boundary \
             (eager_rejected={} lazy_rejected={} panics={})",
            t.record,
            t.mutation,
            t.eager_rejected,
            t.lazy_rejected,
            t.panics
        );
    }
    assert!(report.passed());
}

#[test]
fn chaos_is_deterministic_for_a_pinned_seed() {
    let config = ChaosConfig {
        seed: PINNED_SEED,
        devices: 1,
        variants: 1,
    };
    let a = run(&config);
    let b = run(&config);
    for (ra, rb) in a.per_op.iter().zip(&b.per_op) {
        assert_eq!(ra.op, rb.op);
        assert_eq!(ra.trials, rb.trials);
        assert_eq!(ra.unpack_errors, rb.unpack_errors, "{}", ra.op.name());
        assert_eq!(ra.stage_errors, rb.stage_errors, "{}", ra.op.name());
        assert_eq!(ra.degraded, rb.degraded, "{}", ra.op.name());
        assert_eq!(ra.searched, rb.searched, "{}", ra.op.name());
        assert_eq!(ra.index_errors, rb.index_errors, "{}", ra.op.name());
        assert_eq!(ra.index_ok, rb.index_ok, "{}", ra.op.name());
    }
}

fn firmup() -> Command {
    Command::new(env!("CARGO_BIN_EXE_firmup"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("firmup-chaos-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn chaos_subcommand_reports_a_passing_matrix() {
    let out = firmup()
        .args([
            "chaos",
            "--seed",
            "c4a05000",
            "--devices",
            "1",
            "--variants",
            "1",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "chaos failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("chaos matrix"), "{text}");
    assert!(text.contains("PASS"), "{text}");
    for op in CorruptOp::all() {
        assert!(
            text.contains(op.name()),
            "missing operator row: {}",
            op.name()
        );
    }
}

#[test]
fn crash_matrix_passes_for_the_pinned_seed() {
    let out = firmup()
        .args([
            "chaos",
            "--crash-matrix",
            "--seed",
            "c4a05000",
            "--devices",
            "2",
        ])
        .output()
        .expect("spawn");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "crash matrix failed:\n{text}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(text.contains("crash-consistency matrix"), "{text}");
    assert!(text.contains("result: PASS"), "matrix did not pass: {text}");
    // Every deterministic crash point is exercised.
    for point in [
        "durable.after_temp_write",
        "durable.before_rename",
        "journal.mid_append",
        "index.between_segments",
    ] {
        assert!(text.contains(point), "missing crash point row: {point}");
    }
}

#[test]
fn scan_survives_a_poisoned_image_and_reports_the_healthy_ones() {
    let dir = temp_dir("poisoned-scan");
    let out = firmup()
        .args([
            "gen-corpus",
            "--out",
            dir.to_str().unwrap(),
            "--devices",
            "3",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "gen-corpus failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let mut images: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| {
            let p = e.unwrap().path();
            (p.extension().is_some_and(|x| x == "fwim")).then_some(p)
        })
        .collect();
    images.sort();
    assert!(images.len() >= 2, "need at least two images");

    // Poison one image: garbage that is not even a FWIM header.
    std::fs::write(&images[0], b"\xde\xad\xbe\xefgarbage").expect("poison image");

    let mut cmd = firmup();
    cmd.args(["scan", "--cve", "CVE-2011-0762"]);
    for p in &images {
        cmd.arg(p);
    }
    let out = cmd.output().expect("spawn");
    assert!(
        out.status.success(),
        "scan over a corpus with one poisoned image must still succeed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("1 unreadable image(s) skipped"),
        "poisoned image not reported: {text}"
    );
    assert!(text.contains("suspected occurrence(s)"), "{text}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("skipping image"),
        "no skip diagnostic: {stderr}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn scan_budget_flags_degrade_gracefully() {
    let dir = temp_dir("budget-scan");
    let out = firmup()
        .args([
            "gen-corpus",
            "--out",
            dir.to_str().unwrap(),
            "--devices",
            "2",
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let images: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| {
            let p = e.unwrap().path();
            (p.extension().is_some_and(|x| x == "fwim")).then_some(p)
        })
        .collect();
    assert!(!images.is_empty());

    // A zero step budget: the scan must terminate immediately but
    // cleanly, reporting the degradation instead of hanging or dying.
    let mut cmd = firmup();
    cmd.args(["scan", "--max-steps", "0"]);
    for p in &images {
        cmd.arg(p);
    }
    let out = cmd.output().expect("spawn");
    assert!(
        out.status.success(),
        "budgeted scan failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("step budget (--max-steps) exhausted"),
        "no budget diagnostic: {text}"
    );
    assert!(text.contains("suspected occurrence(s)"), "{text}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn check_one_cve_is_unaffected_by_tight_game_budget_flag_parsing() {
    // `--game-ms` with a generous value must parse and not change scan
    // behaviour observably (the game finishes far faster than 10s).
    let dir = temp_dir("game-budget");
    let out = firmup()
        .args([
            "gen-corpus",
            "--out",
            dir.to_str().unwrap(),
            "--devices",
            "1",
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let images: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| {
            let p = e.unwrap().path();
            (p.extension().is_some_and(|x| x == "fwim")).then_some(p)
        })
        .collect();
    let mut cmd = firmup();
    cmd.args(["scan", "--game-ms", "10000", "--cve", "CVE-2011-0762"]);
    for p in &images {
        cmd.arg(p);
    }
    let out = cmd.output().expect("spawn");
    assert!(
        out.status.success(),
        "scan failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("suspected occurrence(s)"), "{text}");

    let _ = std::fs::remove_dir_all(&dir);
}
