//! End-to-end integration tests spanning every crate: source →
//! compile → pack → unpack → lift → strands → game → finding.

use firmup::compiler::{compile_source, CompilerOptions, ToolchainProfile};
use firmup::core::canon::CanonConfig;
use firmup::core::game::{play, GameConfig, GameEnd};
use firmup::core::search::{search_target, SearchConfig};
use firmup::core::sim::{index_elf, GlobalContext};
use firmup::firmware::corpus::{build_query, generate, CorpusConfig};
use firmup::firmware::image::unpack;
use firmup::firmware::packages::source_for;
use firmup::isa::Arch;

/// The complete paper scenario on one target: a stripped,
/// feature-customized, differently-compiled vendor build of a vulnerable
/// package, searched with a symbolized query.
#[test]
fn full_pipeline_finds_vulnerable_procedure() {
    let canon = CanonConfig::default();
    for arch in [Arch::Mips32, Arch::Arm32] {
        // Query: latest vulnerable wget, reference toolchain.
        let qsrc = source_for("wget", "1.15", &[], 0, 0);
        let qelf = compile_source(&qsrc, arch, &CompilerOptions::default()).unwrap();
        let query = index_elf(&qelf, "query", &canon).unwrap();
        let qv = query.find_named("ftp_retrieve_glob").unwrap();

        // Target: customized vendor build, stripped, inside a firmware
        // image that goes through pack → unpack.
        let tsrc = source_for("wget", "1.15", &["opie", "cookies"], 11, 5);
        let mut telf = compile_source(
            &tsrc,
            arch,
            &CompilerOptions {
                profile: ToolchainProfile::vendor_size(),
                ..Default::default()
            },
        )
        .unwrap();
        let expected = telf
            .symbols
            .iter()
            .find(|s| s.name == "ftp_retrieve_glob")
            .unwrap()
            .value;
        telf.strip(false);
        let blob = firmup::firmware::image::pack(
            &firmup::firmware::image::ImageMeta {
                vendor: "NETGEAR".into(),
                device: "R7000".into(),
                version: "1.0".into(),
            },
            &[firmup::firmware::image::Part {
                name: "bin/wget".into(),
                data: telf.write(),
            }],
        );
        let unpacked = unpack(&blob).unwrap();
        let target_elf = firmup::obj::Elf::parse(&unpacked.parts[0].data).unwrap();
        assert!(target_elf.is_stripped());
        let target = index_elf(&target_elf, "target", &canon).unwrap();

        let r = search_target(&query, qv, &target, &SearchConfig::default());
        let m = r
            .matched
            .unwrap_or_else(|| panic!("{arch}: no match ({:?})", r.ended));
        assert_eq!(m.addr, expected, "{arch}: wrong procedure matched");
    }
}

/// The §2.2 feature-customization story must not break the partial
/// matching: a query whose executable has *more* procedures than the
/// target still matches.
#[test]
fn partial_matching_survives_customization() {
    let canon = CanonConfig::default();
    let qsrc = source_for("vsftpd", "2.3.5", &[], 0, 0);
    let qelf = compile_source(&qsrc, Arch::Ppc32, &CompilerOptions::default()).unwrap();
    let query = index_elf(&qelf, "q", &canon).unwrap();
    let qv = query.find_named("vsf_filename_passes_filter").unwrap();

    let tsrc = source_for("vsftpd", "2.3.5", &["ssl"], 3, 0);
    let mut telf = compile_source(
        &tsrc,
        Arch::Ppc32,
        &CompilerOptions {
            profile: ToolchainProfile::vendor_fast(),
            ..Default::default()
        },
    )
    .unwrap();
    let expected = telf
        .symbols
        .iter()
        .find(|s| s.name == "vsf_filename_passes_filter")
        .unwrap()
        .value;
    telf.strip(false);
    let target = index_elf(&telf, "t", &canon).unwrap();
    assert!(
        target.procedures.len() < query.procedures.len(),
        "customization must remove procedures"
    );
    let g = play(&query, qv, &target, &GameConfig::default());
    assert_eq!(g.ended, GameEnd::QueryMatched);
    let (ti, _) = g.query_match.unwrap();
    assert_eq!(target.procedures[ti].addr, expected);
}

/// Corpus-level hunt: the generated corpus must yield findings for the
/// wget CVE with zero wrong-procedure matches among accepted results on
/// executables that contain the procedure.
#[test]
fn corpus_hunt_has_no_wrong_procedure_matches() {
    let corpus = generate(&CorpusConfig {
        devices: 6,
        ..CorpusConfig::default()
    });
    let canon = CanonConfig::default();
    let mut targets = Vec::new();
    let mut truths = Vec::new();
    for img in &corpus.images {
        let unpacked = unpack(&img.blob).unwrap();
        for (pi, part) in unpacked.parts.iter().enumerate() {
            let elf = firmup::obj::Elf::parse(&part.data).unwrap();
            targets.push(index_elf(&elf, &part.name, &canon).unwrap());
            truths.push(img.truth[pi].clone());
        }
    }
    let context = std::sync::Arc::new(GlobalContext::build(&targets));
    let mut found = 0;
    for arch in Arch::all() {
        let (qelf, _) = build_query("wget", arch);
        let query = index_elf(&qelf, "q", &canon).unwrap();
        let Some(qv) = query.find_named("ftp_retrieve_glob") else {
            continue;
        };
        let config = SearchConfig {
            context: Some(context.clone()),
            threads: 1,
            ..SearchConfig::default()
        };
        for (t, truth) in targets.iter().zip(&truths) {
            if t.arch != arch {
                continue;
            }
            let r = search_target(&query, qv, t, &config);
            if let Some(m) = r.matched {
                if let Some(expected) = truth.addr_of("ftp_retrieve_glob") {
                    assert_eq!(
                        m.addr, expected,
                        "accepted a wrong procedure inside {}",
                        truth.part_name
                    );
                    found += 1;
                }
            }
        }
    }
    assert!(
        found > 0,
        "the hunt must find something in a 6-device corpus"
    );
}

/// Cross-architecture consistency: every package compiles and lifts on
/// all four ISAs and the lifted procedure counts agree with the symbol
/// table.
#[test]
fn lifting_agrees_with_symbols_everywhere() {
    for pkg in ["bftpd", "dbus"] {
        for arch in Arch::all() {
            let src = source_for(
                pkg,
                firmup::firmware::packages::package(pkg)
                    .unwrap()
                    .latest()
                    .unwrap()
                    .version,
                &[],
                1,
                2,
            );
            let elf = compile_source(&src, arch, &CompilerOptions::default()).unwrap();
            let lifted = firmup::core::lift::lift_executable(&elf).unwrap();
            assert_eq!(
                lifted.procedure_count(),
                elf.func_symbols().len(),
                "{pkg}/{arch}: lifted procedure count mismatch"
            );
        }
    }
}
