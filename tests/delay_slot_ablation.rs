//! The §3.1 delay-slot claim, measured: naive lifting (delay-slot
//! instructions mis-attributed to the following block) "leads to strand
//! discrepancy" on MIPS binaries with filled delay slots.

use firmup::compiler::{compile_source, CompilerOptions, ToolchainProfile};
use firmup::core::canon::{AddrSpace, CanonConfig};
use firmup::core::lift::{lift_executable, lift_executable_with, LiftOptions};
use firmup::core::sim::{build_rep, sim};
use firmup::firmware::packages::source_for;
use firmup::isa::Arch;

#[test]
fn naive_delay_slot_lifting_costs_strand_matches() {
    let canon = CanonConfig::default();
    // Query build: gcc-like, which *fills* delay slots — the case where
    // naive lifting loses real computations from branch blocks.
    let qsrc = source_for("wget", "1.15", &[], 0, 0);
    let qelf = compile_source(&qsrc, Arch::Mips32, &CompilerOptions::default()).unwrap();
    // Target build: a vendor profile that does not fill delay slots, so
    // its blocks are unaffected by the naive bug. Matching quality then
    // isolates the query-side lifting behaviour.
    let tsrc = source_for("wget", "1.15", &[], 0, 0);
    let telf = compile_source(
        &tsrc,
        Arch::Mips32,
        &CompilerOptions {
            profile: ToolchainProfile::vendor_size(),
            ..Default::default()
        },
    )
    .unwrap();

    let qspace = AddrSpace::from_elf(&qelf);
    let tspace = AddrSpace::from_elf(&telf);
    let correct_q = build_rep(&lift_executable(&qelf).unwrap(), &qspace, &canon, "q");
    let naive_q = build_rep(
        &lift_executable_with(
            &qelf,
            LiftOptions {
                naive_delay_slots: true,
            },
        )
        .unwrap(),
        &qspace,
        &canon,
        "q-naive",
    );
    let target = build_rep(&lift_executable(&telf).unwrap(), &tspace, &canon, "t");

    // 1. Naive lifting changes the query's strand sets at all (the raw
    //    discrepancy the paper describes).
    let differing = correct_q
        .procedures
        .iter()
        .zip(&naive_q.procedures)
        .filter(|(a, b)| a.strands != b.strands)
        .count();
    assert!(
        differing > 0,
        "naive delay-slot handling must perturb some procedure's strands"
    );

    // 2. The discrepancy costs cross-compilation matching: summed over
    //    the named procedures, the correct lift shares at least as many
    //    strands with the vendor build, and strictly more somewhere.
    let mut correct_total = 0usize;
    let mut naive_total = 0usize;
    for (i, cq) in correct_q.procedures.iter().enumerate() {
        let Some(name) = cq.name.as_deref() else {
            continue;
        };
        let Some(ti) = target.find_named(name) else {
            continue;
        };
        let nq = &naive_q.procedures[i];
        correct_total += sim(cq, &target.procedures[ti]);
        naive_total += sim(nq, &target.procedures[ti]);
    }
    assert!(
        correct_total > naive_total,
        "correct delay-slot folding must recover strand matches: {correct_total} vs {naive_total}"
    );
}

#[test]
fn naive_mode_is_noop_on_arches_without_delay_slots() {
    let canon = CanonConfig::default();
    let src = source_for("bftpd", "2.1", &[], 0, 0);
    for arch in [Arch::Arm32, Arch::Ppc32, Arch::X86] {
        let elf = compile_source(&src, arch, &CompilerOptions::default()).unwrap();
        let space = AddrSpace::from_elf(&elf);
        let a = build_rep(&lift_executable(&elf).unwrap(), &space, &canon, "a");
        let b = build_rep(
            &lift_executable_with(
                &elf,
                LiftOptions {
                    naive_delay_slots: true,
                },
            )
            .unwrap(),
            &space,
            &canon,
            "b",
        );
        for (x, y) in a.procedures.iter().zip(&b.procedures) {
            assert_eq!(
                x.strands, y.strands,
                "{arch}: naive mode must not affect {:?}",
                x.name
            );
        }
    }
}
