//! End-to-end tests of the `firmup` command-line binary.

use std::path::PathBuf;
use std::process::Command;

fn firmup() -> Command {
    Command::new(env!("CARGO_BIN_EXE_firmup"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("firmup-cli-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn gen_corpus_info_scan_roundtrip() {
    let dir = temp_dir("roundtrip");

    // gen-corpus writes images plus a manifest.
    let out = firmup()
        .args(["gen-corpus", "--out", dir.to_str().unwrap(), "--devices", "4"])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "gen-corpus failed: {}", String::from_utf8_lossy(&out.stderr));
    let manifest = std::fs::read_to_string(dir.join("MANIFEST.tsv")).expect("manifest");
    assert!(manifest.starts_with("file\tvendor"));
    let images: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| {
            let p = e.unwrap().path();
            (p.extension().is_some_and(|x| x == "fwim")).then_some(p)
        })
        .collect();
    assert!(!images.is_empty());

    // info describes an image.
    let out = firmup().arg("info").arg(&images[0]).output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("firmware image"), "{text}");
    assert!(text.contains("procedure(s)"), "{text}");

    // scan over all images produces a findings report.
    let mut cmd = firmup();
    cmd.arg("scan");
    for p in &images {
        cmd.arg(p);
    }
    let out = cmd.output().expect("spawn");
    assert!(out.status.success(), "scan failed: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("indexed"), "{text}");
    assert!(text.contains("suspected occurrence(s)"), "{text}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cli_error_paths_are_clean() {
    // Unknown command.
    let out = firmup().arg("frobnicate").output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    // Missing file.
    let out = firmup().args(["info", "/nonexistent/path.fwim"]).output().expect("spawn");
    assert!(!out.status.success());

    // Help exits cleanly.
    let out = firmup().arg("--help").output().expect("spawn");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));

    // gen-corpus requires --out.
    let out = firmup().arg("gen-corpus").output().expect("spawn");
    assert!(!out.status.success());
}
