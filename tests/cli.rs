//! End-to-end tests of the `firmup` command-line binary.

use std::path::PathBuf;
use std::process::Command;

fn firmup() -> Command {
    Command::new(env!("CARGO_BIN_EXE_firmup"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("firmup-cli-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn gen_corpus_info_scan_roundtrip() {
    let dir = temp_dir("roundtrip");

    // gen-corpus writes images plus a manifest.
    let out = firmup()
        .args([
            "gen-corpus",
            "--out",
            dir.to_str().unwrap(),
            "--devices",
            "4",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "gen-corpus failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let manifest = std::fs::read_to_string(dir.join("MANIFEST.tsv")).expect("manifest");
    assert!(manifest.starts_with("file\tvendor"));
    let images: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| {
            let p = e.unwrap().path();
            (p.extension().is_some_and(|x| x == "fwim")).then_some(p)
        })
        .collect();
    assert!(!images.is_empty());

    // info describes an image.
    let out = firmup()
        .arg("info")
        .arg(&images[0])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("firmware image"), "{text}");
    assert!(text.contains("procedure(s)"), "{text}");

    // scan over all images produces a findings report.
    let mut cmd = firmup();
    cmd.arg("scan");
    for p in &images {
        cmd.arg(p);
    }
    let out = cmd.output().expect("spawn");
    assert!(
        out.status.success(),
        "scan failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("indexed"), "{text}");
    assert!(text.contains("suspected occurrence(s)"), "{text}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn scan_metrics_out_writes_parseable_profile() {
    use firmup::telemetry::json::Json;

    let dir = temp_dir("metrics");
    let out = firmup()
        .args([
            "gen-corpus",
            "--out",
            dir.to_str().unwrap(),
            "--devices",
            "4",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "gen-corpus failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let images: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| {
            let p = e.unwrap().path();
            (p.extension().is_some_and(|x| x == "fwim")).then_some(p)
        })
        .collect();
    assert!(!images.is_empty());

    let metrics = dir.join("metrics.json");
    let mut cmd = firmup();
    // `--trace` is a boolean flag: it must NOT swallow the image paths
    // that follow it (the regression `positional()` used to have).
    cmd.args([
        "scan",
        "--trace",
        "--metrics-out",
        metrics.to_str().unwrap(),
    ]);
    for p in &images {
        cmd.arg(p);
    }
    let out = cmd.output().expect("spawn");
    assert!(
        out.status.success(),
        "scan failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("stages (by total time):"), "{text}");
    assert!(text.contains("metrics written to"), "{text}");

    // --trace streams JSON-lines events to stderr.
    let stderr = String::from_utf8_lossy(&out.stderr);
    let event_lines: Vec<&str> = stderr.lines().filter(|l| l.starts_with('{')).collect();
    assert!(
        !event_lines.is_empty(),
        "no trace events on stderr: {stderr}"
    );
    for line in &event_lines {
        let doc = Json::parse(line).expect("trace line is valid JSON");
        assert!(doc.get("event").is_some(), "{line}");
    }

    // The metrics file parses and carries the acceptance-criteria
    // content: per-stage span timings and a populated game profile.
    let body = std::fs::read_to_string(&metrics).expect("metrics file");
    let doc = Json::parse(&body).expect("metrics file is valid JSON");
    let stages = doc.get("stages").expect("stages section");
    for stage in ["lift", "canonicalize", "index", "game", "search"] {
        let s = stages
            .get(stage)
            .unwrap_or_else(|| panic!("missing stage {stage}"));
        assert!(
            s.get("count").and_then(Json::as_u64).unwrap_or(0) > 0,
            "stage {stage} never fired"
        );
    }
    let steps = doc
        .get("histograms")
        .and_then(|h| h.get("game.steps"))
        .expect("game.steps histogram");
    assert!(steps.get("count").and_then(Json::as_u64).unwrap_or(0) > 0);
    assert!(
        !steps
            .get("buckets")
            .and_then(Json::as_arr)
            .expect("buckets")
            .is_empty(),
        "game.steps histogram has no buckets"
    );
    let games = doc
        .get("counters")
        .and_then(|c| c.get("game.played"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    let ended: u64 = [
        "query_matched",
        "fixed_point",
        "limit_exceeded",
        "deadline_exceeded",
    ]
    .iter()
    .filter_map(|e| {
        doc.get("counters")
            .and_then(|c| c.get(&format!("game.ended.{e}")))
            .and_then(Json::as_u64)
    })
    .sum();
    assert!(games > 0, "no games recorded");
    assert_eq!(
        games, ended,
        "every game records exactly one ending counter"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// Golden end-to-end conformance: `firmup scan --format json` over the
/// default-seed 3-device corpus must reproduce
/// `tests/fixtures/golden_findings.json` byte for byte — cold (from
/// images), warm (from a saved index), and with `--threads 4`. The
/// determinism invariant makes all four runs byte-identical.
///
/// Bless path: after an intentional behavior change, regenerate the
/// fixture with
///
/// ```text
/// FIRMUP_BLESS=1 cargo test --test cli golden_scan_output
/// ```
///
/// and commit the diff.
#[test]
fn golden_scan_output_matches_fixture_cold_warm_and_threaded() {
    let dir = temp_dir("golden");
    let out = firmup()
        .args(["gen-corpus", "--out", ".", "--devices", "3"])
        .current_dir(&dir)
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "gen-corpus failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    // Bare file names (the scan runs inside `dir`) so target ids in the
    // JSON are path-independent and identical between cold and warm.
    let mut images: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| {
            let p = e.unwrap().path();
            (p.extension().is_some_and(|x| x == "fwim"))
                .then(|| p.file_name().unwrap().to_str().unwrap().to_string())
        })
        .collect();
    images.sort();
    assert!(!images.is_empty());

    let scan = |extra: &[&str], tag: &str| -> String {
        let mut cmd = firmup();
        cmd.arg("scan").current_dir(&dir);
        if !extra.contains(&"--index") {
            for p in &images {
                cmd.arg(p);
            }
        }
        cmd.args(["--format", "json"]).args(extra);
        let out = cmd.output().expect("spawn");
        assert!(
            out.status.success(),
            "{tag} scan failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).expect("json stdout is UTF-8")
    };

    let cold = scan(&[], "cold");
    // JSON mode keeps stdout to exactly one machine-readable document.
    assert_eq!(cold.lines().count(), 1, "stdout must be one JSON line");
    firmup::telemetry::json::Json::parse(cold.trim()).expect("stdout parses as JSON");

    let mut cmd = firmup();
    cmd.arg("index").current_dir(&dir);
    for p in &images {
        cmd.arg(p);
    }
    cmd.args(["--out", "idx"]);
    let out = cmd.output().expect("spawn");
    assert!(
        out.status.success(),
        "index failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let warm = scan(&["--index", "idx"], "warm");
    let threaded = scan(&["--threads", "4"], "cold --threads 4");
    let warm_threaded = scan(&["--index", "idx", "--threads", "4"], "warm --threads 4");
    assert_eq!(cold, warm, "warm scan diverged from cold scan");
    assert_eq!(cold, threaded, "--threads 4 diverged from serial scan");
    assert_eq!(cold, warm_threaded, "warm --threads 4 diverged");

    let fixture =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden_findings.json");
    if std::env::var("FIRMUP_BLESS").is_ok() {
        std::fs::write(&fixture, &cold).expect("bless fixture");
    } else {
        let golden = std::fs::read_to_string(&fixture)
            .expect("tests/fixtures/golden_findings.json (bless with FIRMUP_BLESS=1)");
        assert_eq!(
            cold, golden,
            "scan output diverged from the golden fixture; if intentional, \
             rebless with FIRMUP_BLESS=1 cargo test --test cli golden_scan_output"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cli_error_paths_are_clean() {
    // Unknown command.
    let out = firmup().arg("frobnicate").output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    // Missing file.
    let out = firmup()
        .args(["info", "/nonexistent/path.fwim"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());

    // Help exits cleanly.
    let out = firmup().arg("--help").output().expect("spawn");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));

    // gen-corpus requires --out.
    let out = firmup().arg("gen-corpus").output().expect("spawn");
    assert!(!out.status.success());
}
