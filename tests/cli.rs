//! End-to-end tests of the `firmup` command-line binary.

use std::path::PathBuf;
use std::process::Command;

fn firmup() -> Command {
    Command::new(env!("CARGO_BIN_EXE_firmup"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("firmup-cli-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn gen_corpus_info_scan_roundtrip() {
    let dir = temp_dir("roundtrip");

    // gen-corpus writes images plus a manifest.
    let out = firmup()
        .args([
            "gen-corpus",
            "--out",
            dir.to_str().unwrap(),
            "--devices",
            "4",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "gen-corpus failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let manifest = std::fs::read_to_string(dir.join("MANIFEST.tsv")).expect("manifest");
    assert!(manifest.starts_with("file\tvendor"));
    let images: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| {
            let p = e.unwrap().path();
            (p.extension().is_some_and(|x| x == "fwim")).then_some(p)
        })
        .collect();
    assert!(!images.is_empty());

    // info describes an image.
    let out = firmup()
        .arg("info")
        .arg(&images[0])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("firmware image"), "{text}");
    assert!(text.contains("procedure(s)"), "{text}");

    // scan over all images produces a findings report.
    let mut cmd = firmup();
    cmd.arg("scan");
    for p in &images {
        cmd.arg(p);
    }
    let out = cmd.output().expect("spawn");
    assert!(
        out.status.success(),
        "scan failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("indexed"), "{text}");
    assert!(text.contains("suspected occurrence(s)"), "{text}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn scan_metrics_out_writes_parseable_profile() {
    use firmup::telemetry::json::Json;

    let dir = temp_dir("metrics");
    let out = firmup()
        .args([
            "gen-corpus",
            "--out",
            dir.to_str().unwrap(),
            "--devices",
            "4",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "gen-corpus failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let images: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| {
            let p = e.unwrap().path();
            (p.extension().is_some_and(|x| x == "fwim")).then_some(p)
        })
        .collect();
    assert!(!images.is_empty());

    let metrics = dir.join("metrics.json");
    let mut cmd = firmup();
    // `--trace` is a boolean flag: it must NOT swallow the image paths
    // that follow it (the regression `positional()` used to have).
    cmd.args([
        "scan",
        "--trace",
        "--metrics-out",
        metrics.to_str().unwrap(),
    ]);
    for p in &images {
        cmd.arg(p);
    }
    let out = cmd.output().expect("spawn");
    assert!(
        out.status.success(),
        "scan failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("stages (by total time):"), "{text}");
    assert!(text.contains("metrics written to"), "{text}");

    // --trace streams JSON-lines events to stderr.
    let stderr = String::from_utf8_lossy(&out.stderr);
    let event_lines: Vec<&str> = stderr.lines().filter(|l| l.starts_with('{')).collect();
    assert!(
        !event_lines.is_empty(),
        "no trace events on stderr: {stderr}"
    );
    for line in &event_lines {
        let doc = Json::parse(line).expect("trace line is valid JSON");
        assert!(doc.get("event").is_some(), "{line}");
    }

    // The metrics file parses and carries the acceptance-criteria
    // content: per-stage span timings and a populated game profile.
    let body = std::fs::read_to_string(&metrics).expect("metrics file");
    let doc = Json::parse(&body).expect("metrics file is valid JSON");
    let stages = doc.get("stages").expect("stages section");
    for stage in ["lift", "canonicalize", "index", "game", "search"] {
        let s = stages
            .get(stage)
            .unwrap_or_else(|| panic!("missing stage {stage}"));
        assert!(
            s.get("count").and_then(Json::as_u64).unwrap_or(0) > 0,
            "stage {stage} never fired"
        );
    }
    let steps = doc
        .get("histograms")
        .and_then(|h| h.get("game.steps"))
        .expect("game.steps histogram");
    assert!(steps.get("count").and_then(Json::as_u64).unwrap_or(0) > 0);
    assert!(
        !steps
            .get("buckets")
            .and_then(Json::as_arr)
            .expect("buckets")
            .is_empty(),
        "game.steps histogram has no buckets"
    );
    let games = doc
        .get("counters")
        .and_then(|c| c.get("game.played"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    let ended: u64 = [
        "query_matched",
        "fixed_point",
        "limit_exceeded",
        "deadline_exceeded",
    ]
    .iter()
    .filter_map(|e| {
        doc.get("counters")
            .and_then(|c| c.get(&format!("game.ended.{e}")))
            .and_then(Json::as_u64)
    })
    .sum();
    assert!(games > 0, "no games recorded");
    assert_eq!(
        games, ended,
        "every game records exactly one ending counter"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// Golden end-to-end conformance: `firmup scan --format json` over the
/// default-seed 3-device corpus must reproduce
/// `tests/fixtures/golden_findings.json` byte for byte — cold (from
/// images), warm (from a saved index), and with `--threads 4`. The
/// determinism invariant makes all four runs byte-identical.
///
/// Bless path: after an intentional behavior change, regenerate the
/// fixture with
///
/// ```text
/// FIRMUP_BLESS=1 cargo test --test cli golden_scan_output
/// ```
///
/// and commit the diff.
#[test]
fn golden_scan_output_matches_fixture_cold_warm_and_threaded() {
    let dir = temp_dir("golden");
    let out = firmup()
        .args(["gen-corpus", "--out", ".", "--devices", "3"])
        .current_dir(&dir)
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "gen-corpus failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    // Bare file names (the scan runs inside `dir`) so target ids in the
    // JSON are path-independent and identical between cold and warm.
    let mut images: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| {
            let p = e.unwrap().path();
            (p.extension().is_some_and(|x| x == "fwim"))
                .then(|| p.file_name().unwrap().to_str().unwrap().to_string())
        })
        .collect();
    images.sort();
    assert!(!images.is_empty());

    let scan = |extra: &[&str], tag: &str| -> String {
        let mut cmd = firmup();
        cmd.arg("scan").current_dir(&dir);
        if !extra.contains(&"--index") {
            for p in &images {
                cmd.arg(p);
            }
        }
        cmd.args(["--format", "json"]).args(extra);
        let out = cmd.output().expect("spawn");
        assert!(
            out.status.success(),
            "{tag} scan failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).expect("json stdout is UTF-8")
    };

    let cold = scan(&[], "cold");
    // JSON mode keeps stdout to exactly one machine-readable document.
    assert_eq!(cold.lines().count(), 1, "stdout must be one JSON line");
    firmup::telemetry::json::Json::parse(cold.trim()).expect("stdout parses as JSON");

    let mut cmd = firmup();
    cmd.arg("index").current_dir(&dir);
    for p in &images {
        cmd.arg(p);
    }
    cmd.args(["--out", "idx"]);
    let out = cmd.output().expect("spawn");
    assert!(
        out.status.success(),
        "index failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let warm = scan(&["--index", "idx"], "warm");
    let threaded = scan(&["--threads", "4"], "cold --threads 4");
    let warm_threaded = scan(&["--index", "idx", "--threads", "4"], "warm --threads 4");
    assert_eq!(cold, warm, "warm scan diverged from cold scan");
    assert_eq!(cold, threaded, "--threads 4 diverged from serial scan");
    assert_eq!(cold, warm_threaded, "warm --threads 4 diverged");

    let fixture =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden_findings.json");
    if std::env::var("FIRMUP_BLESS").is_ok() {
        std::fs::write(&fixture, &cold).expect("bless fixture");
    } else {
        let golden = std::fs::read_to_string(&fixture)
            .expect("tests/fixtures/golden_findings.json (bless with FIRMUP_BLESS=1)");
        assert_eq!(
            cold, golden,
            "scan output diverged from the golden fixture; if intentional, \
             rebless with FIRMUP_BLESS=1 cargo test --test cli golden_scan_output"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// `--format json` keeps stdout machine-pure even with every
/// observability flag raised at once: progress, metrics, and trace
/// confirmations all belong to stderr, and stdout is exactly one
/// parseable JSON document.
#[test]
fn scan_json_stdout_stays_pure_with_observability_flags() {
    use firmup::telemetry::json::Json;

    let dir = temp_dir("json-pure");
    let out = firmup()
        .args(["gen-corpus", "--out", ".", "--devices", "3"])
        .current_dir(&dir)
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let images: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| {
            let p = e.unwrap().path();
            (p.extension().is_some_and(|x| x == "fwim")).then_some(p)
        })
        .collect();

    let mut cmd = firmup();
    cmd.args([
        "scan",
        "--format",
        "json",
        "--explain",
        "--trace",
        "--threads",
        "2",
        "--metrics-out",
        dir.join("m.json").to_str().unwrap(),
        "--trace-out",
        dir.join("t.json").to_str().unwrap(),
    ]);
    for p in &images {
        cmd.arg(p);
    }
    let out = cmd.output().expect("spawn");
    assert!(
        out.status.success(),
        "scan failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("UTF-8 stdout");
    assert_eq!(
        stdout.lines().count(),
        1,
        "stdout must be exactly one JSON line, got:\n{stdout}"
    );
    let doc = Json::parse(stdout.trim()).expect("stdout parses as JSON");
    assert!(doc.get("findings").is_some(), "{stdout}");
    // The informational lines really moved to stderr, not into the void.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("metrics written to"), "{stderr}");
    assert!(stderr.contains("trace written to"), "{stderr}");

    let _ = std::fs::remove_dir_all(&dir);
}

/// Golden provenance conformance: `scan --explain --format json` over
/// the default-seed 3-device corpus must reproduce
/// `tests/fixtures/golden_explain.json` byte for byte — cold, warm
/// (saved index), and with `--threads 4`. Explain records (prefilter
/// rank/score, strand overlap, game rounds) are part of the determinism
/// contract. Rebless with `FIRMUP_BLESS=1 cargo test --test cli
/// golden_explain`.
#[test]
fn golden_explain_output_matches_fixture_cold_warm_and_threaded() {
    use firmup::telemetry::json::Json;

    let dir = temp_dir("golden-explain");
    let out = firmup()
        .args(["gen-corpus", "--out", ".", "--devices", "3"])
        .current_dir(&dir)
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let mut images: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| {
            let p = e.unwrap().path();
            (p.extension().is_some_and(|x| x == "fwim"))
                .then(|| p.file_name().unwrap().to_str().unwrap().to_string())
        })
        .collect();
    images.sort();
    assert!(!images.is_empty());

    let scan = |extra: &[&str], tag: &str| -> String {
        let mut cmd = firmup();
        cmd.arg("scan").current_dir(&dir);
        if !extra.contains(&"--index") {
            for p in &images {
                cmd.arg(p);
            }
        }
        cmd.args(["--format", "json", "--explain"]).args(extra);
        let out = cmd.output().expect("spawn");
        assert!(
            out.status.success(),
            "{tag} scan failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).expect("json stdout is UTF-8")
    };

    let cold = scan(&[], "cold");
    // Every finding carries its provenance record.
    let doc = Json::parse(cold.trim()).expect("stdout parses as JSON");
    let findings = doc
        .get("findings")
        .and_then(Json::as_arr)
        .expect("findings array");
    assert!(!findings.is_empty(), "corpus plants at least one CVE");
    for f in findings {
        let ex = f.get("explain").expect("finding has explain record");
        assert!(ex.get("query_strands").and_then(Json::as_u64).unwrap_or(0) > 0);
        assert!(ex.get("shared_strands").is_some());
        assert!(ex.get("game_steps").is_some());
        assert!(ex.get("game_ended").and_then(Json::as_str).is_some());
    }

    let mut cmd = firmup();
    cmd.arg("index").current_dir(&dir);
    for p in &images {
        cmd.arg(p);
    }
    cmd.args(["--out", "idx"]);
    assert!(cmd.output().expect("spawn").status.success());

    let warm = scan(&["--index", "idx"], "warm");
    let threaded = scan(&["--threads", "4"], "cold --threads 4");
    assert_eq!(cold, warm, "explain output diverged warm vs cold");
    assert_eq!(cold, threaded, "explain output diverged across threads");

    let fixture =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden_explain.json");
    if std::env::var("FIRMUP_BLESS").is_ok() {
        std::fs::write(&fixture, &cold).expect("bless fixture");
    } else {
        let golden = std::fs::read_to_string(&fixture)
            .expect("tests/fixtures/golden_explain.json (bless with FIRMUP_BLESS=1)");
        assert_eq!(
            cold, golden,
            "explain output diverged from the golden fixture; if intentional, \
             rebless with FIRMUP_BLESS=1 cargo test --test cli golden_explain"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// `--trace-out` writes a Perfetto-loadable Chrome trace whose span
/// tree — the (span, parent, path) relation carried in event args — is
/// fully linked (no dangling parents) and byte-identical between
/// `--threads 1` and `--threads 4`. `firmup profile` folds the same
/// spans into non-empty collapsed stacks.
#[test]
fn trace_out_is_thread_invariant_and_profile_folds_stacks() {
    use firmup::telemetry::json::Json;

    let dir = temp_dir("trace-out");
    let out = firmup()
        .args(["gen-corpus", "--out", ".", "--devices", "3"])
        .current_dir(&dir)
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let images: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| {
            let p = e.unwrap().path();
            (p.extension().is_some_and(|x| x == "fwim")).then_some(p)
        })
        .collect();

    // One traced scan per thread count; return the sorted span relation.
    let tree = |threads: &str, path: &str| -> Vec<String> {
        let mut cmd = firmup();
        cmd.args(["scan", "--threads", threads, "--trace-out", path])
            .current_dir(&dir);
        for p in &images {
            cmd.arg(p);
        }
        let out = cmd.output().expect("spawn");
        assert!(
            out.status.success(),
            "traced scan failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let body = std::fs::read_to_string(dir.join(path)).expect("trace file");
        let doc = Json::parse(&body).expect("trace file is valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");
        let spans: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .collect();
        assert!(!spans.is_empty(), "trace has no spans");
        // Every parent link resolves: either the no-parent sentinel or
        // another recorded span.
        let ids: std::collections::HashSet<&str> = spans
            .iter()
            .filter_map(|s| {
                s.get("args")
                    .and_then(|a| a.get("span"))
                    .and_then(Json::as_str)
            })
            .collect();
        let mut rel: Vec<String> = spans
            .iter()
            .map(|s| {
                let args = s.get("args").expect("span args");
                let span = args.get("span").and_then(Json::as_str).expect("span id");
                let parent = args
                    .get("parent")
                    .and_then(Json::as_str)
                    .expect("parent id");
                let path = args.get("path").and_then(Json::as_str).expect("span path");
                assert!(
                    parent == "0000000000000000" || ids.contains(parent),
                    "span {span} ({path}) has dangling parent {parent}"
                );
                format!("{span}|{parent}|{path}")
            })
            .collect();
        rel.sort();
        rel
    };

    let serial = tree("1", "t1.json");
    let threaded = tree("4", "t4.json");
    assert_eq!(
        serial, threaded,
        "span tree diverged between --threads 1 and --threads 4"
    );

    // `firmup profile` writes non-empty collapsed stacks rooted at scan.
    let folded = dir.join("p.folded");
    let mut cmd = firmup();
    cmd.args(["profile", "--out", folded.to_str().unwrap()])
        .current_dir(&dir);
    for p in &images {
        cmd.arg(p);
    }
    let out = cmd.output().expect("spawn");
    assert!(
        out.status.success(),
        "profile failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(out.stdout.is_empty(), "profile keeps stdout clean");
    let body = std::fs::read_to_string(&folded).expect("folded file");
    assert!(!body.trim().is_empty(), "folded output is empty");
    for line in body.lines() {
        let (stack, count) = line.rsplit_once(' ').expect("folded line shape");
        assert!(!stack.is_empty());
        count
            .parse::<u64>()
            .expect("folded self-time is an integer");
    }
    assert!(body.lines().any(|l| l.starts_with("scan")), "{body}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cli_error_paths_are_clean() {
    // Unknown command.
    let out = firmup().arg("frobnicate").output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    // Missing file.
    let out = firmup()
        .args(["info", "/nonexistent/path.fwim"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());

    // Help exits cleanly.
    let out = firmup().arg("--help").output().expect("spawn");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));

    // gen-corpus requires --out.
    let out = firmup().arg("gen-corpus").output().expect("spawn");
    assert!(!out.status.success());

    // gen-corpus rejects unknown scale presets with a structured error.
    let out = firmup()
        .args(["gen-corpus", "--out", "/tmp/x", "--scale", "bogus"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--scale"));
}

/// `firmup fsck` exit-code taxonomy, pinned end to end: a clean index
/// exits 0 ("fsck: clean"), a successful `--repair` exits 0 and says
/// "repaired (clean after repair)", and unrepaired damage exits 1
/// ("fsck: NOT clean"). Scripts branch on these codes, so they are a
/// compatibility contract, not cosmetics.
#[test]
fn fsck_exit_codes_distinguish_clean_repaired_and_unrepairable() {
    let dir = temp_dir("fsck-taxonomy");
    let corpus = dir.join("corpus");
    let out = firmup()
        .args([
            "gen-corpus",
            "--out",
            corpus.to_str().unwrap(),
            "--devices",
            "2",
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let mut images: Vec<PathBuf> = std::fs::read_dir(&corpus)
        .unwrap()
        .filter_map(|e| {
            let p = e.unwrap().path();
            (p.extension().is_some_and(|x| x == "fwim")).then_some(p)
        })
        .collect();
    images.sort();
    assert!(images.len() >= 2);

    // Build a multi-segment layout: two `--add` publishes leave live
    // segments behind a manifest that can be damaged.
    let idx = dir.join("idx");
    for img in &images[..2] {
        let out = firmup()
            .args(["index", "--add"])
            .arg(img)
            .args(["--out", idx.to_str().unwrap(), "--threads", "1"])
            .output()
            .expect("spawn");
        assert!(
            out.status.success(),
            "index --add failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }

    let fsck = |extra: &[&str]| -> (Option<i32>, String) {
        let out = firmup()
            .arg("fsck")
            .arg(&idx)
            .args(extra)
            .output()
            .expect("spawn fsck");
        (
            out.status.code(),
            String::from_utf8_lossy(&out.stdout).into_owned(),
        )
    };

    // Clean: exit 0.
    let (code, table) = fsck(&[]);
    assert_eq!(code, Some(0), "{table}");
    assert!(table.contains("fsck: clean"), "{table}");

    // Tear the manifest tail: unrepaired damage is exit 1.
    let manifest = idx.join("segments.fum");
    let bytes = std::fs::read(&manifest).expect("manifest");
    std::fs::write(&manifest, &bytes[..bytes.len() - 3]).expect("tear");
    let (code, table) = fsck(&[]);
    assert_eq!(code, Some(1), "{table}");
    assert!(table.contains("fsck: NOT clean"), "{table}");

    // Repair: exit 0 with the repaired footer...
    let (code, table) = fsck(&["--repair"]);
    assert_eq!(code, Some(0), "{table}");
    assert!(
        table.contains("fsck: repaired (clean after repair)"),
        "{table}"
    );

    // ...and the index is plainly clean afterwards.
    let (code, table) = fsck(&[]);
    assert_eq!(code, Some(0), "{table}");
    assert!(table.contains("fsck: clean"), "{table}");

    let _ = std::fs::remove_dir_all(&dir);
}

/// Read the `*.fwim` image bytes and MANIFEST.tsv of a generated corpus
/// directory, keyed by file name.
fn corpus_bytes(dir: &std::path::Path) -> Vec<(String, Vec<u8>)> {
    let mut out: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .expect("read corpus dir")
        .filter_map(|e| {
            let p = e.unwrap().path();
            let name = p.file_name().unwrap().to_string_lossy().into_owned();
            (name.ends_with(".fwim") || name == "MANIFEST.tsv")
                .then(|| (name, std::fs::read(&p).expect("read corpus file")))
        })
        .collect();
    out.sort();
    out
}

#[test]
fn gen_corpus_is_thread_invariant_and_resumes_after_a_crash() {
    let base = temp_dir("gen-resume");
    let gen_args = |out: &std::path::Path, threads: &str| {
        vec![
            "gen-corpus".to_string(),
            "--out".to_string(),
            out.to_string_lossy().into_owned(),
            "--scale".to_string(),
            "smoke".to_string(),
            "--devices".to_string(),
            "4".to_string(),
            "--threads".to_string(),
            threads.to_string(),
        ]
    };

    // Reference: a clean single-threaded run.
    let clean = base.join("clean");
    let out = firmup()
        .args(gen_args(&clean, "1"))
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "gen-corpus failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let reference = corpus_bytes(&clean);
    assert!(reference.iter().any(|(n, _)| n == "MANIFEST.tsv"));

    // Generation is planned before any building, so worker count must
    // not change a single output byte.
    let threaded = base.join("threaded");
    let out = firmup()
        .args(gen_args(&threaded, "3"))
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "threaded gen-corpus failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(reference, corpus_bytes(&threaded), "threads changed bytes");

    // Kill the generator after its second committed device, then
    // resume: the journal must carry the committed work across the
    // crash and the final corpus must be byte-identical to a clean run.
    let crashed = base.join("crashed");
    let out = firmup()
        .args(gen_args(&crashed, "1"))
        .env("FIRMUP_CRASH_POINT", "index.between_segments:2")
        .output()
        .expect("spawn");
    assert!(!out.status.success(), "injected crash did not fire");
    assert!(
        crashed.join("gen.fuj").is_file(),
        "no generation journal survived the crash"
    );
    let metrics = base.join("gen_metrics.json");
    let mut resume_args = gen_args(&crashed, "1");
    resume_args.push("--resume".into());
    resume_args.push("--metrics-out".into());
    resume_args.push(metrics.to_string_lossy().into_owned());
    let out = firmup().args(&resume_args).output().expect("spawn");
    assert!(
        out.status.success(),
        "gen-corpus --resume failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(reference, corpus_bytes(&crashed), "resume changed bytes");
    // The resume actually reused the pre-crash devices rather than
    // silently rebuilding the world.
    let doc = firmup::telemetry::json::Json::parse(&std::fs::read_to_string(&metrics).unwrap())
        .expect("metrics JSON");
    let counters = doc.get("counters").expect("counters");
    let reused = counters
        .get("gen.devices_reused")
        .and_then(firmup::telemetry::json::Json::as_u64)
        .unwrap_or(0);
    assert!(reused >= 2, "expected >= 2 reused devices, got {reused}");
}

/// Regression: `--scan-ms` is the caller's deadline for the whole
/// command, so on the warm path the clock must start *before* the index
/// load, not after it. (It used to start after, letting a slow load
/// consume unbounded time the budget was supposed to cap.) With a
/// load artificially slower than the whole allowance, every target must
/// come back over-budget — and the command still exits cleanly with the
/// structured degradation messages.
#[test]
fn scan_ms_clock_starts_before_warm_index_load() {
    let dir = temp_dir("scanms-clock");
    let out = firmup()
        .args(["gen-corpus", "--out", ".", "--devices", "1"])
        .current_dir(&dir)
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let image = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| {
            let p = e.unwrap().path();
            (p.extension().is_some_and(|x| x == "fwim"))
                .then(|| p.file_name().unwrap().to_str().unwrap().to_string())
        })
        .next()
        .expect("one image");
    let out = firmup()
        .args(["index", &image, "--out", "idx"])
        .current_dir(&dir)
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "index failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Load delay (400ms) > whole-scan allowance (150ms): if the clock
    // started after the load, the scan would complete normally; with
    // the fix it must report every target over budget and find nothing.
    let out = firmup()
        .args(["scan", "--index", "idx", "--scan-ms", "150"])
        .env("FIRMUP_TEST_INDEX_LOAD_DELAY_MS", "400")
        .current_dir(&dir)
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "budget exhaustion must degrade, not fail: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stdout.contains("scan budget (--scan-ms) exhausted"),
        "missing the deadline degradation notice:\n{stdout}"
    );
    assert!(
        stdout.contains("0 suspected occurrence(s)"),
        "an exhausted-at-load scan must find nothing:\n{stdout}"
    );
    assert!(
        stderr.contains("over budget (scan deadline)"),
        "per-target diagnostics must name the scan deadline:\n{stderr}"
    );

    // Control: the same scan without the injected delay completes and
    // actually finds things within the same allowance.
    let out = firmup()
        .args(["scan", "--index", "idx", "--scan-ms", "10000"])
        .current_dir(&dir)
        .output()
        .expect("spawn");
    assert!(out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("suspected at"),
        "control scan should find occurrences"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
