//! End-to-end tests of the `firmup` command-line binary.

use std::path::PathBuf;
use std::process::Command;

fn firmup() -> Command {
    Command::new(env!("CARGO_BIN_EXE_firmup"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("firmup-cli-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn gen_corpus_info_scan_roundtrip() {
    let dir = temp_dir("roundtrip");

    // gen-corpus writes images plus a manifest.
    let out = firmup()
        .args([
            "gen-corpus",
            "--out",
            dir.to_str().unwrap(),
            "--devices",
            "4",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "gen-corpus failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let manifest = std::fs::read_to_string(dir.join("MANIFEST.tsv")).expect("manifest");
    assert!(manifest.starts_with("file\tvendor"));
    let images: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| {
            let p = e.unwrap().path();
            (p.extension().is_some_and(|x| x == "fwim")).then_some(p)
        })
        .collect();
    assert!(!images.is_empty());

    // info describes an image.
    let out = firmup()
        .arg("info")
        .arg(&images[0])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("firmware image"), "{text}");
    assert!(text.contains("procedure(s)"), "{text}");

    // scan over all images produces a findings report.
    let mut cmd = firmup();
    cmd.arg("scan");
    for p in &images {
        cmd.arg(p);
    }
    let out = cmd.output().expect("spawn");
    assert!(
        out.status.success(),
        "scan failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("indexed"), "{text}");
    assert!(text.contains("suspected occurrence(s)"), "{text}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn scan_metrics_out_writes_parseable_profile() {
    use firmup::telemetry::json::Json;

    let dir = temp_dir("metrics");
    let out = firmup()
        .args([
            "gen-corpus",
            "--out",
            dir.to_str().unwrap(),
            "--devices",
            "4",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "gen-corpus failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let images: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| {
            let p = e.unwrap().path();
            (p.extension().is_some_and(|x| x == "fwim")).then_some(p)
        })
        .collect();
    assert!(!images.is_empty());

    let metrics = dir.join("metrics.json");
    let mut cmd = firmup();
    // `--trace` is a boolean flag: it must NOT swallow the image paths
    // that follow it (the regression `positional()` used to have).
    cmd.args([
        "scan",
        "--trace",
        "--metrics-out",
        metrics.to_str().unwrap(),
    ]);
    for p in &images {
        cmd.arg(p);
    }
    let out = cmd.output().expect("spawn");
    assert!(
        out.status.success(),
        "scan failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("stages (by total time):"), "{text}");
    assert!(text.contains("metrics written to"), "{text}");

    // --trace streams JSON-lines events to stderr.
    let stderr = String::from_utf8_lossy(&out.stderr);
    let event_lines: Vec<&str> = stderr.lines().filter(|l| l.starts_with('{')).collect();
    assert!(
        !event_lines.is_empty(),
        "no trace events on stderr: {stderr}"
    );
    for line in &event_lines {
        let doc = Json::parse(line).expect("trace line is valid JSON");
        assert!(doc.get("event").is_some(), "{line}");
    }

    // The metrics file parses and carries the acceptance-criteria
    // content: per-stage span timings and a populated game profile.
    let body = std::fs::read_to_string(&metrics).expect("metrics file");
    let doc = Json::parse(&body).expect("metrics file is valid JSON");
    let stages = doc.get("stages").expect("stages section");
    for stage in ["lift", "canonicalize", "index", "game", "search"] {
        let s = stages
            .get(stage)
            .unwrap_or_else(|| panic!("missing stage {stage}"));
        assert!(
            s.get("count").and_then(Json::as_u64).unwrap_or(0) > 0,
            "stage {stage} never fired"
        );
    }
    let steps = doc
        .get("histograms")
        .and_then(|h| h.get("game.steps"))
        .expect("game.steps histogram");
    assert!(steps.get("count").and_then(Json::as_u64).unwrap_or(0) > 0);
    assert!(
        !steps
            .get("buckets")
            .and_then(Json::as_arr)
            .expect("buckets")
            .is_empty(),
        "game.steps histogram has no buckets"
    );
    let games = doc
        .get("counters")
        .and_then(|c| c.get("game.played"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    let ended: u64 = [
        "query_matched",
        "fixed_point",
        "limit_exceeded",
        "deadline_exceeded",
    ]
    .iter()
    .filter_map(|e| {
        doc.get("counters")
            .and_then(|c| c.get(&format!("game.ended.{e}")))
            .and_then(Json::as_u64)
    })
    .sum();
    assert!(games > 0, "no games recorded");
    assert_eq!(
        games, ended,
        "every game records exactly one ending counter"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cli_error_paths_are_clean() {
    // Unknown command.
    let out = firmup().arg("frobnicate").output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    // Missing file.
    let out = firmup()
        .args(["info", "/nonexistent/path.fwim"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());

    // Help exits cleanly.
    let out = firmup().arg("--help").output().expect("spawn");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));

    // gen-corpus requires --out.
    let out = firmup().arg("gen-corpus").output().expect("spawn");
    assert!(!out.status.success());
}
