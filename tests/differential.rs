//! Differential testing of the whole toolchain substrate: random MinC
//! programs must compute identical results on every architecture under
//! every toolchain profile when executed through the lifter-backed
//! emulator. Any divergence pinpoints a bug in an encoder, decoder,
//! lifter, optimizer or register allocator.

use firmup::compiler::{compile_source, CompilerOptions, ToolchainProfile};
use firmup::core::emu::call_function;
use firmup::isa::Arch;
use proptest::prelude::*;

/// A generated expression, rendered to MinC source. Only `depth` and the
/// variable count influence the shape; all programs are valid by
/// construction.
fn expr(depth: u32, nvars: usize) -> BoxedStrategy<String> {
    let leaf = prop_oneof![
        (-100i32..100).prop_map(|c| c.to_string()),
        (0..nvars).prop_map(|v| format!("x{v}")),
    ];
    leaf.prop_recursive(depth, 24, 3, move |inner| {
        prop_oneof![
            // Arithmetic / bitwise.
            (inner.clone(), inner.clone(), 0..7usize).prop_map(|(a, b, op)| {
                let op = ["+", "-", "*", "&", "|", "^", "<"][op];
                format!("({a} {op} {b})")
            }),
            // Constant-amount shifts (the back ends require constant
            // shift amounts on ARM/x86).
            (inner.clone(), 0u32..6, any::<bool>()).prop_map(|(a, sh, left)| {
                format!("({a} {} {sh})", if left { "<<" } else { ">>" })
            }),
            // Comparisons and logic.
            (inner.clone(), inner.clone(), 0..4usize).prop_map(|(a, b, op)| {
                let op = ["==", "!=", "<=", ">"][op];
                format!("({a} {op} {b})")
            }),
            (inner.clone()).prop_map(|a| format!("(-{a})")),
            (inner.clone()).prop_map(|a| format!("(~{a})")),
            (inner).prop_map(|a| format!("(!{a})")),
        ]
    })
    .boxed()
}

/// A generated statement list over variables `x0..x{nvars}` (all
/// pre-declared). Loops are always bounded counters, so every program
/// terminates.
fn stmts(nvars: usize) -> impl Strategy<Value = String> {
    let assign = (0..nvars, expr(2, nvars)).prop_map(|(v, e)| format!("x{v} = {e};"));
    let store = (0..8u32, expr(2, nvars)).prop_map(|(i, e)| format!("cells[{i}] = {e};"));
    let load = (0..nvars, 0..8u32).prop_map(|(v, i)| format!("x{v} = x{v} + cells[{i}];"));
    let ite = (expr(2, nvars), 0..nvars, expr(1, nvars), expr(1, nvars))
        .prop_map(|(c, v, a, b)| format!("if ({c}) {{ x{v} = {a}; }} else {{ x{v} = {b}; }}"));
    let single = prop_oneof![assign, store, load, ite];
    let looped = (1u32..5, 0..nvars, proptest::collection::vec(single.clone(), 1..3)).prop_map(
        move |(n, v, body)| {
            format!(
                "var i{v} = 0;\nwhile (i{v} < {n}) {{\n{}\nx{v} = x{v} ^ i{v};\ni{v} = i{v} + 1;\n}}",
                body.join("\n")
            )
        },
    );
    proptest::collection::vec(prop_oneof![3 => single, 1 => looped], 2..7)
        .prop_map(|v| v.join("\n"))
}

fn program() -> impl Strategy<Value = String> {
    let nvars = 3usize;
    (stmts(nvars), expr(2, nvars)).prop_map(move |(body, ret)| {
        let decls: String = (0..nvars)
            .map(|v| format!("var x{v} = a {} {};\n", ["+", "*", "^"][v % 3], v + 1))
            .collect();
        format!(
            "global cells: [int; 8];\npub fn f(a: int) -> int {{\n{decls}{body}\nreturn {ret};\n}}\nfn main() -> int {{ return f(3); }}"
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline substrate invariant: 4 architectures × 4 toolchain
    /// profiles all compute the same function.
    #[test]
    fn random_programs_agree_everywhere(src in program(), arg in -50i32..50) {
        let mut reference: Option<u32> = None;
        for arch in Arch::all() {
            for profile in ToolchainProfile::all() {
                let options = CompilerOptions {
                    profile: profile.clone(),
                    layout: Default::default(),
                };
                let elf = compile_source(&src, arch, &options)
                    .unwrap_or_else(|e| panic!("{arch}/{}: {e}\n{src}", profile.name));
                let r = call_function(&elf, "f", &[arg as u32])
                    .unwrap_or_else(|e| panic!("{arch}/{}: {e}\n{src}", profile.name));
                match reference {
                    None => reference = Some(r),
                    Some(expected) => prop_assert_eq!(
                        r,
                        expected,
                        "{}/{} diverged\n{}",
                        arch,
                        profile.name,
                        src
                    ),
                }
            }
        }
    }

    /// Stripping is transparent to lifting for every procedure the
    /// stripped binary can still discover: same addresses, same block
    /// structure. (Procedures that became dead code through inlining are
    /// legitimately undiscoverable without symbols.)
    #[test]
    fn stripping_is_transparent_to_lifting(src in program()) {
        let elf = compile_source(&src, Arch::Mips32, &CompilerOptions::default()).unwrap();
        let with = firmup::core::lift::lift_executable(&elf).unwrap();
        let mut stripped = firmup::obj::Elf::parse(&elf.write()).unwrap();
        stripped.strip(false);
        let without = firmup::core::lift::lift_executable(&stripped).unwrap();
        prop_assert!(without.procedure_count() <= with.procedure_count());
        prop_assert!(without.procedure_count() >= 1);
        for b in &without.program.procedures {
            let a = with
                .program
                .procedure_at(b.addr)
                .expect("stripped-discovered procedure must exist in the symbolized lift");
            prop_assert_eq!(a.blocks.len(), b.blocks.len(), "blocks differ at {:#x}", b.addr);
        }
    }

    /// Canonical strands are invariant under the compiler's scheduling
    /// knob (instruction order must not matter after canonicalization of
    /// *matching* computations): the two builds share most strands.
    #[test]
    fn scheduling_preserves_most_strands(src in program()) {
        use firmup::core::canon::CanonConfig;
        use firmup::core::sim::{index_elf, sim};
        let base = ToolchainProfile::gcc_like();
        let mut sched = base.clone();
        sched.schedule = true;
        sched.name = "gcc-sched".into();
        let a = compile_source(&src, Arch::Arm32, &CompilerOptions { profile: base, layout: Default::default() }).unwrap();
        let b = compile_source(&src, Arch::Arm32, &CompilerOptions { profile: sched, layout: Default::default() }).unwrap();
        let ra = index_elf(&a, "a", &CanonConfig::default()).unwrap();
        let rb = index_elf(&b, "b", &CanonConfig::default()).unwrap();
        let pa = &ra.procedures[ra.find_named("f").unwrap()];
        let pb = &rb.procedures[rb.find_named("f").unwrap()];
        let shared = sim(pa, pb);
        let smaller = pa.strand_count().min(pb.strand_count());
        prop_assert!(
            shared * 2 >= smaller,
            "scheduling destroyed strand sharing: {shared} of {smaller}\n{src}"
        );
    }
}
