//! End-to-end tests of the persisted corpus index: `firmup index` →
//! `firmup scan --index` equivalence, corruption handling, prefiltering,
//! and the borrowed-context allocation regression.

use std::path::{Path, PathBuf};
use std::process::Command;

use firmup::telemetry::json::Json;

fn firmup() -> Command {
    Command::new(env!("CARGO_BIN_EXE_firmup"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("firmup-index-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Generate a corpus into `dir/corpus`, returning the image paths.
fn gen_corpus(dir: &Path, devices: &str) -> Vec<PathBuf> {
    let corpus = dir.join("corpus");
    let out = firmup()
        .args([
            "gen-corpus",
            "--out",
            corpus.to_str().unwrap(),
            "--devices",
            devices,
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "gen-corpus failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let mut images: Vec<PathBuf> = std::fs::read_dir(&corpus)
        .unwrap()
        .filter_map(|e| {
            let p = e.unwrap().path();
            (p.extension().is_some_and(|x| x == "fwim")).then_some(p)
        })
        .collect();
    images.sort();
    assert!(!images.is_empty());
    images
}

/// Findings lines of a scan (the CVE hits), in order.
fn findings(stdout: &str) -> Vec<String> {
    stdout
        .lines()
        .filter(|l| l.contains("suspected at"))
        .map(str::to_string)
        .collect()
}

#[test]
fn warm_scan_reproduces_cold_scan_findings() {
    let dir = temp_dir("equivalence");
    let images = gen_corpus(&dir, "4");
    let idx = dir.join("idx");

    // Build the persisted index.
    let out = firmup()
        .arg("index")
        .args(&images)
        .args(["--out", idx.to_str().unwrap()])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "index failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("indexed"), "{text}");
    assert!(idx.join("corpus.fui").is_file(), "no corpus.fui written");

    // Cold scan (from images) and warm scan (from the index) must agree
    // on every finding.
    let cold = firmup().arg("scan").args(&images).output().expect("spawn");
    assert!(cold.status.success());
    let warm = firmup()
        .args(["scan", "--index", idx.to_str().unwrap()])
        .output()
        .expect("spawn");
    assert!(
        warm.status.success(),
        "warm scan failed: {}",
        String::from_utf8_lossy(&warm.stderr)
    );
    let warm_text = String::from_utf8_lossy(&warm.stdout);
    assert!(
        warm_text.contains("loaded") && warm_text.contains("from index"),
        "{warm_text}"
    );
    let cold_findings = findings(&String::from_utf8_lossy(&cold.stdout));
    let warm_findings = findings(&warm_text);
    assert!(!cold_findings.is_empty(), "cold scan found nothing");
    assert_eq!(cold_findings, warm_findings);
}

#[test]
fn prefiltered_scan_still_finds_the_planted_cves() {
    let dir = temp_dir("prefilter");
    let images = gen_corpus(&dir, "3");
    let idx = dir.join("idx");
    assert!(firmup()
        .arg("index")
        .args(&images)
        .args(["--out", idx.to_str().unwrap()])
        .output()
        .expect("spawn")
        .status
        .success());

    let full = firmup()
        .args(["scan", "--index", idx.to_str().unwrap()])
        .output()
        .expect("spawn");
    let metrics = dir.join("metrics.json");
    let pref = firmup()
        .args([
            "scan",
            "--index",
            idx.to_str().unwrap(),
            "--top-k",
            "3",
            "--metrics-out",
            metrics.to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert!(pref.status.success());
    // Prefiltering keeps the true positives: with the planted ground
    // truth, the vulnerable executable shares far more weighted strands
    // with the query than any rival, so top-3 never drops a finding.
    let full_findings = findings(&String::from_utf8_lossy(&full.stdout));
    let pref_findings = findings(&String::from_utf8_lossy(&pref.stdout));
    assert!(!full_findings.is_empty());
    for f in &full_findings {
        assert!(
            pref_findings.contains(f),
            "prefilter dropped a finding: {f}"
        );
    }
    // And the prefilter actually ran (counter is in the metrics file).
    let doc = Json::parse(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
    let counters = doc.get("counters").expect("counters");
    assert!(
        counters
            .get("prefilter.candidates")
            .and_then(Json::as_u64)
            .unwrap_or(0)
            > 0,
        "prefilter.candidates never incremented"
    );
    assert!(
        counters
            .get("index.cache_hit")
            .and_then(Json::as_u64)
            .unwrap_or(0)
            > 0,
        "index.cache_hit never incremented"
    );
}

#[test]
fn lazy_warm_scan_reports_decode_counters_and_maps_the_whole_blob() {
    let dir = temp_dir("lazy-metrics");
    let images = gen_corpus(&dir, "3");
    let idx = dir.join("idx");
    assert!(firmup()
        .arg("index")
        .args(&images)
        .args(["--out", idx.to_str().unwrap()])
        .output()
        .expect("spawn")
        .status
        .success());

    let metrics = dir.join("lazy_metrics.json");
    let out = firmup()
        .args([
            "scan",
            "--index",
            idx.to_str().unwrap(),
            "--top-k",
            "2",
            "--metrics-out",
            metrics.to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "warm scan failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = Json::parse(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
    let counters = doc.get("counters").expect("counters");
    let counter = |name: &str| counters.get(name).and_then(Json::as_u64).unwrap_or(0);
    // The lazy loader decoded at least the prefiltered candidates…
    assert!(counter("index.reps_decoded") > 0, "no lazy decodes counted");
    // …and `bytes_mapped` accounts for exactly the on-disk index blob.
    let fui_len = std::fs::metadata(idx.join("corpus.fui"))
        .expect("corpus.fui")
        .len();
    assert_eq!(
        counter("index.bytes_mapped"),
        fui_len,
        "bytes_mapped must equal the corpus.fui size"
    );
}

#[test]
fn v1_index_scans_byte_identically_to_v2() {
    let dir = temp_dir("v1-compat");
    let images = gen_corpus(&dir, "3");
    let idx_v2 = dir.join("idx-v2");
    assert!(firmup()
        .arg("index")
        .args(&images)
        .args(["--out", idx_v2.to_str().unwrap()])
        .output()
        .expect("spawn")
        .status
        .success());

    // Rewrite the same corpus in the historical v1 container (no
    // offset table, no exemeta sidecar) — the eager-only format every
    // pre-v2 build wrote.
    let idx_v1 = dir.join("idx-v1");
    std::fs::create_dir_all(&idx_v1).unwrap();
    let corpus = firmup::core::persist::CorpusIndex::load(&idx_v2).expect("load v2");
    corpus.save_v1(&idx_v1).expect("save v1");

    let scan = |idx: &Path| {
        let out = firmup()
            .args(["scan", "--index", idx.to_str().unwrap(), "--top-k", "2"])
            .output()
            .expect("spawn");
        assert!(
            out.status.success(),
            "scan failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        findings(&String::from_utf8_lossy(&out.stdout))
    };
    let v2_findings = scan(&idx_v2);
    let v1_findings = scan(&idx_v1);
    assert!(!v2_findings.is_empty(), "v2 scan found nothing");
    assert_eq!(
        v2_findings, v1_findings,
        "v1 eager and v2 lazy scans must agree byte for byte"
    );
}

#[test]
fn corrupted_index_is_a_structured_error_not_a_panic() {
    let dir = temp_dir("corrupt");
    let images = gen_corpus(&dir, "2");
    let idx = dir.join("idx");
    assert!(firmup()
        .arg("index")
        .args(&images)
        .args(["--out", idx.to_str().unwrap()])
        .output()
        .expect("spawn")
        .status
        .success());
    let fui = idx.join("corpus.fui");
    let pristine = std::fs::read(&fui).unwrap();

    // Damage the file several ways; every scan must exit with the
    // normal failure code (1) and a structured diagnosis — no panic
    // (which would exit 101 and print a backtrace marker).
    let mut damaged: Vec<(&str, Vec<u8>)> = vec![
        ("bad magic", {
            let mut b = pristine.clone();
            b[0] = b'X';
            b
        }),
        ("future version", {
            let mut b = pristine.clone();
            b[4..8].copy_from_slice(&0xfeed_beefu32.to_le_bytes());
            b
        }),
        ("payload bit flip", {
            let mut b = pristine.clone();
            let n = b.len();
            b[n - 3] ^= 0x40;
            b
        }),
        ("empty file", Vec::new()),
    ];
    for cut in [5usize, 9, 21, pristine.len() / 2, pristine.len() - 1] {
        damaged.push(("truncation", pristine[..cut].to_vec()));
    }
    for (what, blob) in damaged {
        std::fs::write(&fui, &blob).unwrap();
        let out = firmup()
            .args(["scan", "--index", idx.to_str().unwrap()])
            .output()
            .expect("spawn");
        assert!(!out.status.success(), "{what}: scan succeeded?!");
        assert_eq!(
            out.status.code(),
            Some(1),
            "{what}: wrong exit code (panic?)"
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("firmup:"), "{what}: {stderr}");
        assert!(
            !stderr.contains("panicked"),
            "{what}: panic escaped: {stderr}"
        );
        // The diagnosis names the index file.
        assert!(stderr.contains("corpus.fui"), "{what}: {stderr}");
    }
}

#[test]
fn reader_during_rebuild_sees_a_complete_snapshot_never_a_torn_one() {
    let dir = temp_dir("concurrent-reader");
    let images = gen_corpus(&dir, "3");
    let idx = dir.join("idx");

    // First build: the snapshot concurrent readers are allowed to see.
    assert!(firmup()
        .arg("index")
        .args(&images)
        .args(["--out", idx.to_str().unwrap()])
        .output()
        .expect("spawn")
        .status
        .success());
    let baseline = {
        let out = firmup()
            .args(["scan", "--index", idx.to_str().unwrap()])
            .output()
            .expect("spawn");
        assert!(out.status.success());
        findings(&String::from_utf8_lossy(&out.stdout))
    };
    assert!(!baseline.is_empty());

    // Rebuild the same directory slowly (test hook delays each segment).
    // corpus.fui is only ever replaced atomically, so every reader that
    // races the writer must see the complete previous snapshot — never
    // a torn file, never a panic.
    let mut writer = firmup()
        .arg("index")
        .args(&images)
        .args(["--out", idx.to_str().unwrap()])
        .env("FIRMUP_TEST_SEGMENT_DELAY_MS", "400")
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn writer");
    let mut reads_during = 0usize;
    for _ in 0..50 {
        let writer_live = writer.try_wait().expect("try_wait").is_none();
        let out = firmup()
            .args(["scan", "--index", idx.to_str().unwrap()])
            .output()
            .expect("spawn reader");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(!stderr.contains("panicked"), "reader panicked: {stderr}");
        assert!(out.status.success(), "reader failed mid-rebuild: {stderr}");
        assert_eq!(
            findings(&String::from_utf8_lossy(&out.stdout)),
            baseline,
            "reader saw a torn/partial snapshot"
        );
        if !writer_live {
            break;
        }
        reads_during += 1;
    }
    assert!(
        reads_during > 0,
        "writer finished before any concurrent read; raise the delay"
    );
    assert!(writer.wait().expect("wait").success());
}

#[test]
fn scan_peak_rep_clones_stay_flat_as_the_corpus_grows() {
    // The regression this pins: scan used to clone every ExecutableRep
    // to build the GlobalContext, doubling peak allocations. Contexts
    // are now built from borrowed reps, so the `rep.clones` telemetry
    // counter must not scale with corpus size.
    let clones_for = |tag: &str, devices: &str| -> (u64, u64) {
        let dir = temp_dir(tag);
        let images = gen_corpus(&dir, devices);
        let metrics = dir.join("metrics.json");
        let out = firmup()
            .arg("scan")
            .args(&images)
            .args(["--metrics-out", metrics.to_str().unwrap()])
            .output()
            .expect("spawn");
        assert!(out.status.success());
        let doc = Json::parse(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
        let counters = doc.get("counters").expect("counters");
        let clones = counters
            .get("rep.clones")
            .and_then(Json::as_u64)
            .expect("rep.clones counter registered");
        let indexed = counters
            .get("index.executables")
            .and_then(Json::as_u64)
            .unwrap_or(0);
        let _ = std::fs::remove_dir_all(&dir);
        (clones, indexed)
    };
    let (small_clones, small_reps) = clones_for("clones-small", "2");
    let (big_clones, big_reps) = clones_for("clones-big", "6");
    assert!(
        big_reps > small_reps,
        "corpus did not grow ({small_reps} -> {big_reps})"
    );
    // Scan-path code must not clone per-target: whatever constant
    // cloning remains (none today) may not track corpus size.
    assert_eq!(
        small_clones, big_clones,
        "rep.clones scales with corpus size ({small_reps} reps -> {small_clones} clones, \
         {big_reps} reps -> {big_clones} clones)"
    );
    assert_eq!(big_clones, 0, "scan path clones ExecutableRep");
}
