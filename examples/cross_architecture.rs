//! Cross-architecture strand sharing: the same source compiled for all
//! four ISAs, with the pairwise shared-strand matrix for one procedure —
//! the phenomenon behind the paper's Fig. 1.
//!
//! ```sh
//! cargo run --example cross_architecture
//! ```

use firmup::compiler::{compile_source, CompilerOptions};
use firmup::core::canon::CanonConfig;
use firmup::core::sim::{index_elf, sim, ExecutableRep};
use firmup::isa::Arch;

const SRC: &str = r#"
    global buf: [byte; 64];

    fn scan_until(p: int, stop: int) -> int {
        var i = 0;
        var c = peek8(p);
        while (c != 0 && c != stop) {
            i = i + 1;
            c = peek8(p + i);
        }
        return i;
    }

    fn classify(c: int) -> int {
        if (c >= 48 && c <= 57) { return 1; }
        if (c == 0x1F) { return 2; }
        return 0;
    }

    fn main(a: int) -> int {
        buf[0] = a;
        return scan_until(&buf, 47) + classify(a);
    }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let canon = CanonConfig::default();
    let mut reps: Vec<(Arch, ExecutableRep)> = Vec::new();
    for arch in Arch::all() {
        let elf = compile_source(SRC, arch, &CompilerOptions::default())?;
        reps.push((arch, index_elf(&elf, arch.name(), &canon)?));
    }

    println!("shared canonical strands for scan_until(), across architectures:\n");
    print!("{:>8}", "");
    for (arch, _) in &reps {
        print!("{:>8}", arch.name());
    }
    println!();
    for (a, ra) in &reps {
        print!("{:>8}", a.name());
        let pa = &ra.procedures[ra.find_named("scan_until").expect("symbols")];
        for (_, rb) in &reps {
            let pb = &rb.procedures[rb.find_named("scan_until").expect("symbols")];
            print!("{:>8}", sim(pa, pb));
        }
        println!("   (of {} total)", pa.strand_count());
    }

    println!("\nthe diagonal is self-similarity; off-diagonal entries are the");
    println!("cross-architecture matches that survive lifting + canonicalization.");
    Ok(())
}
