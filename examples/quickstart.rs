//! Quickstart: find a procedure from a symbolized "query" build inside a
//! stripped vendor build.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use firmup::compiler::{compile_source, CompilerOptions, ToolchainProfile};
use firmup::core::canon::CanonConfig;
use firmup::core::search::{search_target, SearchConfig};
use firmup::core::sim::index_elf;
use firmup::isa::Arch;

const SRC: &str = r#"
    global table: [int; 64];

    fn checksum(p: int, n: int) -> int {
        var acc = 0;
        var i = 0;
        while (i < n) {
            acc = (acc << 3) ^ peek8(p + i);
            i = i + 1;
        }
        return acc;
    }

    fn insert(key: int, value: int) -> int {
        var slot = (key * 31) & 63;
        table[slot] = value;
        return slot;
    }

    fn main(a: int) -> int {
        var s = insert(a, a * 2);
        return checksum(&table, 64) + s;
    }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The "query": our own build, with symbols (like compiling the
    //    latest vulnerable package version with gcc).
    let query_elf = compile_source(SRC, Arch::Mips32, &CompilerOptions::default())?;

    // 2. The "target": a vendor build under a different toolchain,
    //    stripped — what you would pull out of a firmware image.
    let mut target_elf = compile_source(
        SRC,
        Arch::Mips32,
        &CompilerOptions {
            profile: ToolchainProfile::vendor_size(),
            ..Default::default()
        },
    )?;
    target_elf.strip(false);
    assert!(target_elf.is_stripped());

    // 3. Index both: lift → strands → canonicalize → hash.
    let canon = CanonConfig::default();
    let query = index_elf(&query_elf, "query", &canon)?;
    let target = index_elf(&target_elf, "vendor-firmware", &canon)?;
    println!(
        "query: {} procedures, {} strands; target (stripped): {} procedures",
        query.procedures.len(),
        query.strand_total(),
        target.procedures.len()
    );

    // 4. Search for `checksum` via the back-and-forth game.
    let qv = query.find_named("checksum").expect("query has symbols");
    let result = search_target(&query, qv, &target, &SearchConfig::default());
    match &result.matched {
        Some(m) => println!(
            "checksum() found at {:#x} in the stripped binary (Sim = {} shared strands, {} game step(s))",
            m.addr, m.sim, result.steps
        ),
        None => println!("no match ({:?})", result.ended),
    }
    Ok(())
}
