//! Firmware forensics: pack a vendor image, damage it, and watch the
//! unpacker recover — checksum diagnostics, binwalk-style carving, and
//! tolerant ELF parsing (the §3.1 wild-binary caveats).
//!
//! ```sh
//! cargo run --example firmware_unpack
//! ```

use firmup::compiler::{compile_source, CompilerOptions};
use firmup::firmware::image::{pack, unpack, ImageMeta, Part};
use firmup::firmware::packages::source_for;
use firmup::isa::Arch;
use firmup::obj::Elf;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Build a small two-part image.
    let wget = compile_source(
        &source_for("wget", "1.15", &[], 1, 2),
        Arch::Arm32,
        &CompilerOptions::default(),
    )?;
    let bftpd = compile_source(
        &source_for("bftpd", "2.1", &[], 2, 2),
        Arch::Arm32,
        &CompilerOptions::default(),
    )?;
    let meta = ImageMeta {
        vendor: "NETGEAR".into(),
        device: "R7000".into(),
        version: "1.0.4".into(),
    };
    let parts = vec![
        Part {
            name: "bin/wget".into(),
            data: wget.write(),
        },
        Part {
            name: "bin/bftpd".into(),
            data: bftpd.write(),
        },
    ];
    let blob = pack(&meta, &parts);
    println!(
        "packed {} ({} bytes, {} parts)",
        meta,
        blob.len(),
        parts.len()
    );

    // 1. Clean unpack.
    let u = unpack(&blob)?;
    println!(
        "clean unpack: {} parts, {} issue(s)",
        u.parts.len(),
        u.issues.len()
    );

    // 2. Flip a payload byte: checksum diagnostics, parts still usable.
    let mut damaged = blob.clone();
    let n = damaged.len();
    damaged[n - 100] ^= 0xff;
    let u = unpack(&damaged)?;
    println!("payload-corrupted unpack: issues = {:?}", u.issues);

    // 3. Destroy the header entirely: carving recovers the ELFs by magic.
    let mut headerless = vec![0xa5u8; 64];
    headerless.extend_from_slice(&parts[0].data);
    headerless.extend_from_slice(&parts[1].data);
    let u = unpack(&headerless)?;
    println!(
        "carved unpack: {} part(s), issues = {:?}",
        u.parts.len(),
        u.issues
    );

    // 4. The §3.1 ELF caveat: wrong EI_CLASS on 32-bit content.
    let mut bad_elf = parts[0].data.clone();
    bad_elf[4] = 2; // claim ELFCLASS64
    let parsed = Elf::parse(&bad_elf)?;
    println!(
        "wrong-ELFCLASS parse recovered with warnings: {:?}",
        parsed.warnings
    );
    println!(
        "  …and still lifted {} procedures",
        firmup::core::lift::lift_executable(&parsed)?.procedure_count()
    );
    Ok(())
}
