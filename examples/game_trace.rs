//! Watch the back-and-forth game play out (the paper's Table 1): the
//! vsftpd query against a stripped, feature-customized vendor build in
//! which a lookalike procedure contests the first pick.
//!
//! ```sh
//! cargo run --release --example game_trace
//! ```

use firmup::compiler::{compile_source, CompilerOptions, ToolchainProfile};
use firmup::core::canon::CanonConfig;
use firmup::core::game::{play, GameConfig, Side};
use firmup::core::sim::index_elf;
use firmup::firmware::packages::source_for;
use firmup::isa::Arch;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let canon = CanonConfig::default();
    // Query: vsftpd 2.3.5 with default features, reference toolchain.
    let qsrc = source_for("vsftpd", "2.3.5", &[], 0, 0);
    let qelf = compile_source(&qsrc, Arch::Mips32, &CompilerOptions::default())?;
    let query = index_elf(&qelf, "vsftpd-2.3.5-query", &canon)?;

    // Target: the vendor disabled a feature group (the §2.2
    // customization story), used another toolchain, added
    // device-specific service code, and stripped.
    let tsrc = source_for("vsftpd", "2.3.2", &["ssl"], 5, 4);
    let mut telf = compile_source(
        &tsrc,
        Arch::Mips32,
        &CompilerOptions {
            profile: ToolchainProfile::vendor_size(),
            ..Default::default()
        },
    )?;
    let names: Vec<(String, u32)> = telf
        .func_symbols()
        .iter()
        .map(|s| (s.name.clone(), s.value))
        .collect();
    telf.strip(false);
    let target = index_elf(&telf, "netgear-firmware", &canon)?;
    let resolve = |addr: u32| {
        names
            .iter()
            .find(|&&(_, a)| a == addr)
            .map_or_else(|| format!("sub_{addr:x}"), |(n, _)| format!("{n}()"))
    };

    let qv = query
        .find_named("vsf_filename_passes_filter")
        .expect("query symbols");
    let g = play(&query, qv, &target, &GameConfig::default());

    println!("game course for vsf_filename_passes_filter():\n");
    for (i, s) in g.trace.iter().enumerate() {
        let (who, what) = match (s.m.side, s.accepted) {
            (Side::Query, true) => ("player", "matches"),
            (Side::Query, false) => ("rival ", "contests"),
            (Side::Target, true) => ("player", "matches (reverse)"),
            (Side::Target, false) => ("rival ", "contests (reverse)"),
        };
        let m_name = match s.m.side {
            Side::Query => query.procedures[s.m.index].display_name() + "()",
            Side::Target => resolve(target.procedures[s.m.index].addr),
        };
        let f_name = match s.m.side {
            Side::Query => resolve(target.procedures[s.forward].addr),
            Side::Target => query.procedures[s.forward].display_name() + "()",
        };
        println!(
            "  step {:>2} [{who}] {what} {m_name} ↔ {f_name} (Sim = {})",
            i + 1,
            s.sim_forward
        );
    }
    match g.query_match {
        Some((ti, s)) => println!(
            "\ngame over after {} step(s): vsf_filename_passes_filter() ↔ {} with Sim = {s}",
            g.steps,
            resolve(target.procedures[ti].addr)
        ),
        None => println!("\ngame over without a match: {:?}", g.ended),
    }
    println!(
        "partial matching covers {} procedure pair(s)",
        g.matches.len()
    );
    Ok(())
}
