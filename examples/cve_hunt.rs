//! CVE hunt: generate a small firmware corpus, then search every image
//! for wget's CVE-2014-4877 (`ftp_retrieve_glob`) — a miniature of the
//! paper's Table 2 experiment.
//!
//! ```sh
//! cargo run --release --example cve_hunt
//! ```

use firmup::core::canon::CanonConfig;
use firmup::core::search::{search_corpus, SearchConfig};
use firmup::core::sim::{index_elf, ExecutableRep, GlobalContext};
use firmup::firmware::corpus::{build_query, generate, CorpusConfig};
use firmup::firmware::image::unpack;
use firmup::isa::Arch;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small crawled-and-unpacked "wild" corpus.
    let corpus = generate(&CorpusConfig {
        devices: 12,
        ..CorpusConfig::default()
    });
    println!(
        "corpus: {} firmware images, {} executables, {} procedures",
        corpus.images.len(),
        corpus.executable_count(),
        corpus.procedure_count()
    );

    // Unpack and index every executable (targets are stripped).
    let canon = CanonConfig::default();
    let mut targets: Vec<(usize, ExecutableRep)> = Vec::new();
    for (ii, img) in corpus.images.iter().enumerate() {
        for part in unpack(&img.blob)?.parts {
            let elf = firmup::obj::Elf::parse(&part.data)?;
            let rep = index_elf(&elf, &format!("{} {}", img.meta, part.name), &canon)?;
            targets.push((ii, rep));
        }
    }
    let reps: Vec<ExecutableRep> = targets.iter().map(|(_, r)| r.clone()).collect();
    let context = std::sync::Arc::new(GlobalContext::build(&reps));

    // Hunt the CVE per architecture.
    println!("\nhunting CVE-2014-4877 (wget ftp_retrieve_glob)…");
    let mut findings = 0;
    for arch in Arch::all() {
        let (query_elf, version) = build_query("wget", arch);
        let query = index_elf(&query_elf, "query", &canon)?;
        let Some(qv) = query.find_named("ftp_retrieve_glob") else {
            continue;
        };
        let arch_targets: Vec<ExecutableRep> =
            reps.iter().filter(|r| r.arch == arch).cloned().collect();
        let config = SearchConfig {
            context: Some(context.clone()),
            ..SearchConfig::default()
        };
        let results = search_corpus(&query, qv, &arch_targets, &config);
        for r in results.iter().filter(|r| r.found()) {
            let m = r.matched.as_ref().expect("found");
            println!(
                "  [{arch}] {}: procedure at {:#x} matches wget {version} query (Sim = {})",
                r.target_id, m.addr, m.sim
            );
            findings += 1;
        }
    }
    println!("\n{findings} suspected occurrence(s) across the corpus");
    Ok(())
}
