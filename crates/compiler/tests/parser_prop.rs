//! Property tests for the MinC front end: the lexer/parser never panic,
//! and structurally valid programs always make it through the whole
//! front end.

use firmup_compiler::parser::parse;
use firmup_compiler::sema;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary text never panics the front end.
    #[test]
    fn parser_never_panics(src in "\\PC{0,200}") {
        let _ = parse(&src);
    }

    /// Arbitrary *token-shaped* soup never panics either (denser in
    /// valid tokens than raw unicode, so it reaches deeper).
    #[test]
    fn token_soup_never_panics(tokens in proptest::collection::vec(prop_oneof![
        Just("fn"), Just("pub"), Just("var"), Just("global"), Just("if"),
        Just("else"), Just("while"), Just("return"), Just("break"),
        Just("continue"), Just("int"), Just("byte"), Just("("), Just(")"),
        Just("{"), Just("}"), Just("["), Just("]"), Just(","), Just(";"),
        Just(":"), Just("->"), Just("="), Just("+"), Just("-"), Just("*"),
        Just("&"), Just("|"), Just("^"), Just("<<"), Just(">>"), Just("<"),
        Just("<="), Just(">"), Just(">="), Just("=="), Just("!="),
        Just("&&"), Just("||"), Just("!"), Just("~"), Just("x"), Just("y"),
        Just("peek8"), Just("poke8"), Just("0"), Just("42"), Just("0x1F"),
        Just("\"s\""),
    ], 0..64)) {
        let src = tokens.join(" ");
        let _ = parse(&src);
    }

    /// Generated-valid programs parse and pass sema (and re-parse
    /// identically — the front end is deterministic).
    #[test]
    fn valid_programs_accepted(
        n_fns in 1usize..4,
        consts in proptest::collection::vec(-1000i32..1000, 4),
    ) {
        let mut src = String::from("global g: [int; 8];\n");
        for i in 0..n_fns {
            src.push_str(&format!(
                "fn f{i}(a: int, b: int) -> int {{\n\
                 var x = a {} {};\n\
                 if (x < b) {{ g[1] = x; return x; }}\n\
                 while (x > {}) {{ x = x - {}; }}\n\
                 return x + g[1];\n}}\n",
                ["+", "*", "^"][i % 3],
                consts[0],
                consts[1].abs(),
                consts[2].abs().max(1),
            ));
        }
        let p1 = parse(&src).expect("valid program must parse");
        sema::check(&p1).expect("valid program must check");
        let p2 = parse(&src).expect("reparse");
        prop_assert_eq!(p1, p2);
    }
}
