//! Lexer for MinC.

use std::fmt;

/// A token with its source line (for error messages).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Kind and payload.
    pub kind: TokKind,
    /// 1-based source line.
    pub line: u32,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum TokKind {
    // Literals and identifiers.
    Num(i32),
    Str(String),
    Ident(String),
    // Keywords.
    Fn,
    Pub,
    Var,
    Global,
    If,
    Else,
    While,
    Return,
    Break,
    Continue,
    Int,
    Byte,
    // Punctuation.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Colon,
    Arrow,
    Assign,
    // Operators.
    Plus,
    Minus,
    Star,
    Amp,
    Pipe,
    Caret,
    Shl,
    Shr,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    Ne,
    AndAnd,
    OrOr,
    Bang,
    Tilde,
    Eof,
}

impl fmt::Display for TokKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokKind::Num(n) => write!(f, "number {n}"),
            TokKind::Str(_) => write!(f, "string literal"),
            TokKind::Ident(s) => write!(f, "identifier `{s}`"),
            other => write!(f, "{other:?}"),
        }
    }
}

/// Lexing failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Problem description.
    pub message: String,
    /// 1-based source line.
    pub line: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize MinC source.
///
/// # Errors
///
/// Returns [`LexError`] on unterminated strings, malformed numbers, or
/// unexpected characters.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line: u32 = 1;
    let err = |message: String, line: u32| LexError { message, line };
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '0'..='9' => {
                let start = i;
                let mut radix = 10;
                if c == '0' && matches!(bytes.get(i + 1), Some(b'x') | Some(b'X')) {
                    radix = 16;
                    i += 2;
                }
                let digits_start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_hexdigit() {
                    if radix == 10 && !(bytes[i] as char).is_ascii_digit() {
                        break;
                    }
                    i += 1;
                }
                let text = if radix == 16 {
                    &src[digits_start..i]
                } else {
                    &src[start..i]
                };
                let value = i64::from_str_radix(text, radix)
                    .map_err(|e| err(format!("bad number `{text}`: {e}"), line))?;
                if value > u32::MAX as i64 {
                    return Err(err(format!("number `{text}` out of range"), line));
                }
                out.push(Token {
                    kind: TokKind::Num(value as u32 as i32),
                    line,
                });
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len()
                    && matches!(bytes[i] as char, 'a'..='z' | 'A'..='Z' | '0'..='9' | '_')
                {
                    i += 1;
                }
                let word = &src[start..i];
                let kind = match word {
                    "fn" => TokKind::Fn,
                    "pub" => TokKind::Pub,
                    "var" => TokKind::Var,
                    "global" => TokKind::Global,
                    "if" => TokKind::If,
                    "else" => TokKind::Else,
                    "while" => TokKind::While,
                    "return" => TokKind::Return,
                    "break" => TokKind::Break,
                    "continue" => TokKind::Continue,
                    "int" => TokKind::Int,
                    "byte" => TokKind::Byte,
                    _ => TokKind::Ident(word.to_string()),
                };
                out.push(Token { kind, line });
            }
            '"' => {
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => return Err(err("unterminated string".into(), line)),
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(b'\\') => {
                            let esc = bytes
                                .get(i + 1)
                                .ok_or_else(|| err("unterminated escape".into(), line))?;
                            s.push(match esc {
                                b'n' => '\n',
                                b't' => '\t',
                                b'0' => '\0',
                                b'\\' => '\\',
                                b'"' => '"',
                                other => {
                                    return Err(err(
                                        format!("unknown escape `\\{}`", *other as char),
                                        line,
                                    ))
                                }
                            });
                            i += 2;
                        }
                        Some(&b) => {
                            if b == b'\n' {
                                line += 1;
                            }
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                out.push(Token {
                    kind: TokKind::Str(s),
                    line,
                });
            }
            _ => {
                let two = |a: char, b: char| {
                    bytes.get(i) == Some(&(a as u8)) && bytes.get(i + 1) == Some(&(b as u8))
                };
                let (kind, n) = if two('-', '>') {
                    (TokKind::Arrow, 2)
                } else if two('<', '<') {
                    (TokKind::Shl, 2)
                } else if two('>', '>') {
                    (TokKind::Shr, 2)
                } else if two('<', '=') {
                    (TokKind::Le, 2)
                } else if two('>', '=') {
                    (TokKind::Ge, 2)
                } else if two('=', '=') {
                    (TokKind::EqEq, 2)
                } else if two('!', '=') {
                    (TokKind::Ne, 2)
                } else if two('&', '&') {
                    (TokKind::AndAnd, 2)
                } else if two('|', '|') {
                    (TokKind::OrOr, 2)
                } else {
                    let k = match c {
                        '(' => TokKind::LParen,
                        ')' => TokKind::RParen,
                        '{' => TokKind::LBrace,
                        '}' => TokKind::RBrace,
                        '[' => TokKind::LBracket,
                        ']' => TokKind::RBracket,
                        ',' => TokKind::Comma,
                        ';' => TokKind::Semi,
                        ':' => TokKind::Colon,
                        '=' => TokKind::Assign,
                        '+' => TokKind::Plus,
                        '-' => TokKind::Minus,
                        '*' => TokKind::Star,
                        '&' => TokKind::Amp,
                        '|' => TokKind::Pipe,
                        '^' => TokKind::Caret,
                        '<' => TokKind::Lt,
                        '>' => TokKind::Gt,
                        '!' => TokKind::Bang,
                        '~' => TokKind::Tilde,
                        other => return Err(err(format!("unexpected character `{other}`"), line)),
                    };
                    (k, 1)
                };
                out.push(Token { kind, line });
                i += n;
            }
        }
    }
    out.push(Token {
        kind: TokKind::Eof,
        line,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            kinds("fn foo while whilex"),
            vec![
                TokKind::Fn,
                TokKind::Ident("foo".into()),
                TokKind::While,
                TokKind::Ident("whilex".into()),
                TokKind::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("0 42 0x1F 0xffffffff"),
            vec![
                TokKind::Num(0),
                TokKind::Num(42),
                TokKind::Num(0x1f),
                TokKind::Num(-1),
                TokKind::Eof
            ]
        );
    }

    #[test]
    fn multichar_operators() {
        assert_eq!(
            kinds("-> << >> <= >= == != && || < >"),
            vec![
                TokKind::Arrow,
                TokKind::Shl,
                TokKind::Shr,
                TokKind::Le,
                TokKind::Ge,
                TokKind::EqEq,
                TokKind::Ne,
                TokKind::AndAnd,
                TokKind::OrOr,
                TokKind::Lt,
                TokKind::Gt,
                TokKind::Eof
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            kinds(r#""a\nb\0""#),
            vec![TokKind::Str("a\nb\0".into()), TokKind::Eof]
        );
        assert!(lex("\"unterminated").is_err());
        assert!(lex(r#""bad \q""#).is_err());
    }

    #[test]
    fn comments_skipped_and_lines_tracked() {
        let toks = lex("// comment\nfn").unwrap();
        assert_eq!(toks[0].kind, TokKind::Fn);
        assert_eq!(toks[0].line, 2);
    }

    #[test]
    fn unexpected_character() {
        let e = lex("fn @").unwrap_err();
        assert!(e.message.contains('@'));
    }
}
