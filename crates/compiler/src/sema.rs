//! Semantic analysis for MinC: name resolution and shape checks.

use std::collections::HashSet;
use std::fmt;

use crate::ast::{Expr, Function, Program, Stmt};

/// Semantic error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SemaError {
    /// Function in which the problem occurred (if any).
    pub function: Option<String>,
    /// Problem description.
    pub message: String,
}

impl fmt::Display for SemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.function {
            Some(func) => write!(f, "in `{func}`: {}", self.message),
            None => f.write_str(&self.message),
        }
    }
}

impl std::error::Error for SemaError {}

/// Check a program for semantic validity.
///
/// # Errors
///
/// Returns the first [`SemaError`] found: duplicate definitions,
/// undefined variables/globals/functions, arity mismatches, value use of
/// a `void` call, `break`/`continue` outside loops, or a value-returning
/// function whose body can finish without `return`.
pub fn check(program: &Program) -> Result<(), SemaError> {
    let mut fn_names = HashSet::new();
    for f in &program.functions {
        if !fn_names.insert(f.name.as_str()) {
            return Err(SemaError {
                function: None,
                message: format!("duplicate function `{}`", f.name),
            });
        }
    }
    let mut glob_names = HashSet::new();
    for g in &program.globals {
        if !glob_names.insert(g.name.as_str()) {
            return Err(SemaError {
                function: None,
                message: format!("duplicate global `{}`", g.name),
            });
        }
    }
    for f in &program.functions {
        FnChecker {
            program,
            function: f,
            locals: f.params.iter().cloned().collect(),
            loop_depth: 0,
        }
        .check()?;
    }
    Ok(())
}

struct FnChecker<'a> {
    program: &'a Program,
    function: &'a Function,
    locals: HashSet<String>,
    loop_depth: u32,
}

impl<'a> FnChecker<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, SemaError> {
        Err(SemaError {
            function: Some(self.function.name.clone()),
            message: message.into(),
        })
    }

    fn check(mut self) -> Result<(), SemaError> {
        let body = &self.function.body;
        self.stmts(body)?;
        if self.function.returns_value && !Self::always_returns(body) {
            return self.err("function returns int but some path falls off the end");
        }
        Ok(())
    }

    /// Conservative: a statement list definitely returns if it contains a
    /// `return`, or an `if` whose both branches definitely return.
    fn always_returns(stmts: &[Stmt]) -> bool {
        stmts.iter().any(|s| match s {
            Stmt::Return(_) => true,
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                !else_body.is_empty()
                    && Self::always_returns(then_body)
                    && Self::always_returns(else_body)
            }
            _ => false,
        })
    }

    fn stmts(&mut self, stmts: &[Stmt]) -> Result<(), SemaError> {
        for s in stmts {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), SemaError> {
        match s {
            Stmt::VarDecl { name, init } => {
                self.expr(init, true)?;
                self.locals.insert(name.clone());
                Ok(())
            }
            Stmt::Assign { name, value } => {
                if !self.locals.contains(name) {
                    return self.err(format!("assignment to undeclared variable `{name}`"));
                }
                self.expr(value, true)
            }
            Stmt::DerefAssign { addr, value, .. } => {
                self.expr(addr, true)?;
                self.expr(value, true)
            }
            Stmt::IndexAssign {
                global,
                index,
                value,
            } => {
                if self.program.global(global).is_none() {
                    return self.err(format!("store to unknown global `{global}`"));
                }
                self.expr(index, true)?;
                self.expr(value, true)
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                self.expr(cond, true)?;
                self.stmts(then_body)?;
                self.stmts(else_body)
            }
            Stmt::While { cond, body } => {
                self.expr(cond, true)?;
                self.loop_depth += 1;
                let r = self.stmts(body);
                self.loop_depth -= 1;
                r
            }
            Stmt::Return(e) => match (self.function.returns_value, e) {
                (true, None) => self.err("missing return value"),
                (false, Some(_)) => self.err("returning a value from a void function"),
                (_, Some(e)) => self.expr(e, true),
                _ => Ok(()),
            },
            Stmt::Break | Stmt::Continue => {
                if self.loop_depth == 0 {
                    self.err("break/continue outside a loop")
                } else {
                    Ok(())
                }
            }
            Stmt::ExprStmt(e) => self.expr(e, false),
        }
    }

    fn expr(&self, e: &Expr, value_needed: bool) -> Result<(), SemaError> {
        match e {
            Expr::Num(_) | Expr::Str(_) => Ok(()),
            Expr::Var(name) => {
                if self.locals.contains(name) {
                    Ok(())
                } else {
                    self.err(format!("undefined variable `{name}`"))
                }
            }
            Expr::Index { global, index } => {
                if self.program.global(global).is_none() {
                    return self.err(format!("unknown global `{global}`"));
                }
                self.expr(index, true)
            }
            Expr::AddrOf(global) => {
                if self.program.global(global).is_none() {
                    self.err(format!("address of unknown global `{global}`"))
                } else {
                    Ok(())
                }
            }
            Expr::Call { callee, args } => {
                let f = self.program.function(callee).ok_or_else(|| SemaError {
                    function: Some(self.function.name.clone()),
                    message: format!("call to unknown function `{callee}`"),
                })?;
                if f.params.len() != args.len() {
                    return self.err(format!(
                        "`{callee}` expects {} arguments, got {}",
                        f.params.len(),
                        args.len()
                    ));
                }
                if value_needed && !f.returns_value {
                    return self.err(format!("void call to `{callee}` used as a value"));
                }
                for a in args {
                    self.expr(a, true)?;
                }
                Ok(())
            }
            Expr::Deref { addr, .. } => self.expr(addr, true),
            Expr::Bin { lhs, rhs, .. } => {
                self.expr(lhs, true)?;
                self.expr(rhs, true)
            }
            Expr::Un { arg, .. } => self.expr(arg, true),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn ok(src: &str) {
        check(&parse(src).unwrap()).unwrap();
    }

    fn fails(src: &str, needle: &str) {
        let e = check(&parse(src).unwrap()).unwrap_err();
        assert!(
            e.message.contains(needle),
            "expected error containing {needle:?}, got: {}",
            e.message
        );
    }

    #[test]
    fn accepts_valid_program() {
        ok("global b: [byte; 4]; fn g(x: int) -> int { return x; } fn f() -> int { var a = g(1); b[0] = a; return b[0]; }");
    }

    #[test]
    fn rejects_undefined_variable() {
        fails("fn f() -> int { return x; }", "undefined variable");
    }

    #[test]
    fn rejects_undeclared_assignment() {
        fails("fn f() { x = 1; }", "undeclared variable");
    }

    #[test]
    fn rejects_unknown_function() {
        fails("fn f() { g(); }", "unknown function");
    }

    #[test]
    fn rejects_arity_mismatch() {
        fails("fn g(a: int) {} fn f() { g(); }", "expects 1 arguments");
    }

    #[test]
    fn rejects_void_as_value() {
        fails("fn g() {} fn f() -> int { return g(); }", "used as a value");
    }

    #[test]
    fn rejects_break_outside_loop() {
        fails("fn f() { break; }", "outside a loop");
    }

    #[test]
    fn rejects_missing_return_path() {
        fails(
            "fn f(a: int) -> int { if (a) { return 1; } }",
            "falls off the end",
        );
        // But a complete if/else is fine.
        ok("fn f(a: int) -> int { if (a) { return 1; } else { return 2; } }");
    }

    #[test]
    fn rejects_duplicates() {
        fails("fn f() {} fn f() {}", "duplicate function");
        fails(
            "global g: [int; 1]; global g: [int; 1];",
            "duplicate global",
        );
    }

    #[test]
    fn rejects_unknown_global() {
        fails("fn f() -> int { return q[0]; }", "unknown global");
        fails("fn f() { q[0] = 1; }", "unknown global");
        fails("fn f() -> int { return &q; }", "unknown global");
    }
}
