//! TAC optimization passes.
//!
//! These are the knobs that make two compilations of the same source
//! diverge syntactically — the variance FirmUp's canonicalizer has to see
//! through. Passes are deliberately deterministic so corpora are
//! reproducible.

use std::collections::{HashMap, HashSet};

use crate::tac::{FuncId, Instr, Label, Operand, TBin, TacFunction, TacProgram, VReg};

/// Which passes to run (derived from the toolchain profile's
/// optimization level).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptFlags {
    /// Constant folding + algebraic simplification.
    pub fold: bool,
    /// Block-local constant/copy propagation.
    pub propagate: bool,
    /// Dead code elimination.
    pub dce: bool,
    /// Block-local common subexpression elimination.
    pub cse: bool,
    /// Inline small leaf functions.
    pub inline_threshold: Option<usize>,
    /// Rotate `while` loops into guarded do-while form (gcc-style `-O2`
    /// loop rotation) — a major source of cross-compiler CFG variance.
    pub rotate_loops: bool,
    /// Invert every compare-and-branch (negate + swap targets), changing
    /// branch polarity and block layout the way different compilers'
    /// layout heuristics do.
    pub invert_branches: bool,
}

impl OptFlags {
    /// No optimization (O0).
    pub fn none() -> OptFlags {
        OptFlags {
            fold: false,
            propagate: false,
            dce: false,
            cse: false,
            inline_threshold: None,
            rotate_loops: false,
            invert_branches: false,
        }
    }

    /// Basic cleanup (O1).
    pub fn basic() -> OptFlags {
        OptFlags {
            fold: true,
            propagate: true,
            dce: true,
            cse: false,
            inline_threshold: None,
            rotate_loops: false,
            invert_branches: false,
        }
    }

    /// Aggressive (O2): adds CSE and inlining.
    pub fn aggressive() -> OptFlags {
        OptFlags {
            fold: true,
            propagate: true,
            dce: true,
            cse: true,
            inline_threshold: Some(14),
            rotate_loops: true,
            invert_branches: false,
        }
    }
}

/// Optimize a whole program in place according to `flags`.
pub fn optimize(prog: &mut TacProgram, flags: OptFlags) {
    if let Some(threshold) = flags.inline_threshold {
        inline_small_leaves(prog, threshold);
    }
    for f in &mut prog.functions {
        if flags.rotate_loops {
            rotate_loops(f);
        }
        if flags.invert_branches {
            invert_branches(f);
        }
        optimize_function(f, flags);
    }
}

/// Rotate `while` loops into guarded do-while form: the canonical back
/// edge `jmp head` is replaced by a clone of the condition block
/// branching straight back to the body. Reproduces gcc's `-O2` loop
/// rotation, whose CFG-shape consequences are one of the variances the
/// paper's graph-based baseline trips over.
pub fn rotate_loops(f: &mut TacFunction) {
    // Identify candidates: Label(head); S…; T(BrCmp/BrNz, taken=body
    // label immediately after T, fall=end); …; Jmp(head); Label(end).
    let mut rewrites: Vec<(usize, Vec<Instr>)> = Vec::new();
    for hi in 0..f.instrs.len() {
        let Instr::Label(head) = f.instrs[hi] else {
            continue;
        };
        // Collect the condition segment.
        let mut ti = hi + 1;
        while ti < f.instrs.len()
            && !f.instrs[ti].is_terminator()
            && !matches!(f.instrs[ti], Instr::Label(_))
        {
            ti += 1;
        }
        if ti >= f.instrs.len() {
            continue;
        }
        let (taken, fall) = match &f.instrs[ti] {
            Instr::BrCmp { taken, fall, .. } | Instr::BrNz { taken, fall, .. } => (*taken, *fall),
            _ => continue,
        };
        // The body must start right after the test.
        if !matches!(f.instrs.get(ti + 1), Some(Instr::Label(l)) if *l == taken) {
            continue;
        }
        // Find the canonical back edge: Jmp(head) immediately followed
        // by Label(fall).
        let Some(bi) = f
            .instrs
            .iter()
            .enumerate()
            .skip(ti + 1)
            .position(|(i, ins)| {
                matches!(ins, Instr::Jmp(l) if *l == head)
                    && matches!(f.instrs.get(i + 1), Some(Instr::Label(l2)) if *l2 == fall)
            })
        else {
            continue;
        };
        let bi = bi + ti + 1;
        // Clone condition segment + test as the bottom test. The cloned
        // vregs are block-local temporaries that are redefined before
        // every use, so reusing them is safe.
        let clone: Vec<Instr> = f.instrs[hi + 1..=ti].to_vec();
        rewrites.push((bi, clone));
    }
    // Apply back-to-front so indices stay valid.
    rewrites.sort_by_key(|&(bi, _)| std::cmp::Reverse(bi));
    for (bi, clone) in rewrites {
        f.instrs.splice(bi..=bi, clone);
    }
}

/// Negate every compare-and-branch and swap its targets. Semantics are
/// unchanged; branch polarity and the layout the back ends emit are not.
pub fn invert_branches(f: &mut TacFunction) {
    for i in &mut f.instrs {
        if let Instr::BrCmp {
            rel, taken, fall, ..
        } = i
        {
            *rel = rel.negate();
            std::mem::swap(taken, fall);
        }
    }
}

/// Optimize a single function in place.
pub fn optimize_function(f: &mut TacFunction, flags: OptFlags) {
    for _ in 0..4 {
        let mut changed = false;
        if flags.fold {
            changed |= fold_constants(f);
            changed |= fold_branches(f);
            changed |= remove_unreachable(f);
        }
        if flags.propagate {
            changed |= propagate_local(f);
        }
        if flags.cse {
            changed |= cse_local(f);
        }
        if flags.dce {
            changed |= eliminate_dead(f);
        }
        if !changed {
            break;
        }
    }
}

fn imm(o: Operand) -> Option<i32> {
    match o {
        Operand::Imm(i) => Some(i),
        Operand::V(_) => None,
    }
}

/// Constant folding and algebraic identities. Returns true on change.
pub fn fold_constants(f: &mut TacFunction) -> bool {
    let mut changed = false;
    for i in &mut f.instrs {
        let replacement = match i {
            Instr::Bin { op, dst, a, b } => match (imm(*a), imm(*b)) {
                (Some(x), Some(y)) => Some(Instr::Copy {
                    dst: *dst,
                    src: Operand::Imm(op.eval(x, y)),
                }),
                _ => algebraic(*op, *dst, *a, *b),
            },
            Instr::Un { op, dst, a } => imm(*a).map(|x| Instr::Copy {
                dst: *dst,
                src: Operand::Imm(op.eval(x)),
            }),
            _ => None,
        };
        if let Some(r) = replacement {
            *i = r;
            changed = true;
        }
    }
    changed
}

fn algebraic(op: TBin, dst: VReg, a: Operand, b: Operand) -> Option<Instr> {
    let copy = |src: Operand| Some(Instr::Copy { dst, src });
    match (op, imm(a), imm(b)) {
        (TBin::Add, Some(0), _) => copy(b),
        (TBin::Add, _, Some(0)) | (TBin::Sub, _, Some(0)) => copy(a),
        (TBin::Mul, _, Some(1)) => copy(a),
        (TBin::Mul, Some(1), _) => copy(b),
        (TBin::Mul, _, Some(0))
        | (TBin::Mul, Some(0), _)
        | (TBin::And, _, Some(0))
        | (TBin::And, Some(0), _) => copy(Operand::Imm(0)),
        (TBin::Or, _, Some(0))
        | (TBin::Xor, _, Some(0))
        | (TBin::Shl, _, Some(0))
        | (TBin::Sar, _, Some(0)) => copy(a),
        (TBin::Or, Some(0), _) | (TBin::Xor, Some(0), _) => copy(b),
        (TBin::Sub, _, _) | (TBin::Xor, _, _) if a == b && a.vreg().is_some() => {
            copy(Operand::Imm(0))
        }
        _ => None,
    }
}

/// Fold branches with constant conditions into unconditional jumps.
pub fn fold_branches(f: &mut TacFunction) -> bool {
    let mut changed = false;
    for i in &mut f.instrs {
        let replacement = match i {
            Instr::BrCmp {
                rel,
                a,
                b,
                taken,
                fall,
            } => match (imm(*a), imm(*b)) {
                (Some(x), Some(y)) => Some(Instr::Jmp(if rel.eval(x, y) { *taken } else { *fall })),
                _ => None,
            },
            Instr::BrNz { cond, taken, fall } => {
                imm(*cond).map(|c| Instr::Jmp(if c != 0 { *taken } else { *fall }))
            }
            _ => None,
        };
        if let Some(r) = replacement {
            *i = r;
            changed = true;
        }
    }
    changed
}

/// Drop instructions between an unconditional terminator and the next
/// label, plus labels nothing references.
pub fn remove_unreachable(f: &mut TacFunction) -> bool {
    let before = f.instrs.len();
    // Pass 1: dead code after terminators.
    let mut out = Vec::with_capacity(before);
    let mut dead = false;
    for i in f.instrs.drain(..) {
        match &i {
            Instr::Label(_) => {
                dead = false;
                out.push(i);
            }
            _ if dead => {}
            Instr::Jmp(_) | Instr::Ret { .. } => {
                out.push(i);
                dead = true;
            }
            _ => out.push(i),
        }
    }
    // Pass 2: drop labels that are never branch targets.
    let mut referenced: HashSet<Label> = HashSet::new();
    for i in &out {
        match i {
            Instr::Jmp(l) => {
                referenced.insert(*l);
            }
            Instr::BrCmp { taken, fall, .. } | Instr::BrNz { taken, fall, .. } => {
                referenced.insert(*taken);
                referenced.insert(*fall);
            }
            _ => {}
        }
    }
    out.retain(|i| match i {
        Instr::Label(l) => referenced.contains(l),
        _ => true,
    });
    // Pass 3: `jmp L; L:` → fallthrough.
    let mut out2: Vec<Instr> = Vec::with_capacity(out.len());
    let mut idx = 0;
    while idx < out.len() {
        if let (Instr::Jmp(l), Some(Instr::Label(l2))) = (&out[idx], out.get(idx + 1)) {
            if l == l2 {
                idx += 1; // drop the jmp, keep the label
                continue;
            }
        }
        out2.push(out[idx].clone());
        idx += 1;
    }
    f.instrs = out2;
    f.instrs.len() != before
}

/// Block-local constant and copy propagation.
pub fn propagate_local(f: &mut TacFunction) -> bool {
    let mut changed = false;
    let mut map: HashMap<VReg, Operand> = HashMap::new();
    let resolve = |map: &HashMap<VReg, Operand>, o: Operand| -> Operand {
        match o {
            Operand::V(v) => map.get(&v).copied().unwrap_or(o),
            imm => imm,
        }
    };
    let instrs = std::mem::take(&mut f.instrs);
    let mut out = Vec::with_capacity(instrs.len());
    for mut i in instrs {
        if matches!(i, Instr::Label(_)) || i.is_terminator() {
            // Block boundary: forget everything. (Terminators still get
            // their uses rewritten below before the reset.)
        }
        // Rewrite uses.
        let rewrite = |o: &mut Operand, map: &HashMap<VReg, Operand>, changed: &mut bool| {
            let n = resolve(map, *o);
            if n != *o {
                *o = n;
                *changed = true;
            }
        };
        match &mut i {
            Instr::Bin { a, b, .. } => {
                rewrite(a, &map, &mut changed);
                rewrite(b, &map, &mut changed);
            }
            Instr::Un { a, .. } => rewrite(a, &map, &mut changed),
            Instr::Copy { src, .. } => rewrite(src, &map, &mut changed),
            Instr::Load { index, .. } => rewrite(index, &map, &mut changed),
            Instr::LoadPtr { addr, .. } => rewrite(addr, &map, &mut changed),
            Instr::Store { index, value, .. } => {
                rewrite(index, &map, &mut changed);
                rewrite(value, &map, &mut changed);
            }
            Instr::StorePtr { addr, value, .. } => {
                rewrite(addr, &map, &mut changed);
                rewrite(value, &map, &mut changed);
            }
            Instr::Call { args, .. } => {
                for a in args {
                    rewrite(a, &map, &mut changed);
                }
            }
            Instr::Ret { value: Some(v) } => rewrite(v, &map, &mut changed),
            Instr::BrCmp { a, b, .. } => {
                rewrite(a, &map, &mut changed);
                rewrite(b, &map, &mut changed);
            }
            Instr::BrNz { cond, .. } => rewrite(cond, &map, &mut changed),
            _ => {}
        }
        // Kill mappings invalidated by this instruction's def.
        if let Some(d) = i.def() {
            map.remove(&d);
            map.retain(|_, v| *v != Operand::V(d));
        }
        // Record new copy facts.
        if let Instr::Copy { dst, src } = &i {
            if Operand::V(*dst) != *src {
                map.insert(*dst, *src);
            }
        }
        if matches!(i, Instr::Label(_)) || i.is_terminator() {
            map.clear();
        }
        out.push(i);
    }
    f.instrs = out;
    changed
}

/// Block-local common subexpression elimination over pure ops.
pub fn cse_local(f: &mut TacFunction) -> bool {
    #[derive(PartialEq, Eq, Hash)]
    enum Key {
        Bin(TBin, Operand, Operand),
        Un(crate::tac::TUn, Operand),
        Addr(usize),
    }
    let mut changed = false;
    let mut avail: HashMap<Key, VReg> = HashMap::new();
    let instrs = std::mem::take(&mut f.instrs);
    let mut out = Vec::with_capacity(instrs.len());
    for i in instrs {
        if matches!(i, Instr::Label(_)) || i.is_terminator() {
            avail.clear();
            out.push(i);
            continue;
        }
        let key = match &i {
            Instr::Bin { op, a, b, .. } => {
                // Canonical operand order for commutative ops.
                let (a, b) = if op.commutative() {
                    let fmt_a = format!("{a:?}");
                    let fmt_b = format!("{b:?}");
                    if fmt_a <= fmt_b {
                        (*a, *b)
                    } else {
                        (*b, *a)
                    }
                } else {
                    (*a, *b)
                };
                Some(Key::Bin(*op, a, b))
            }
            Instr::Un { op, a, .. } => Some(Key::Un(*op, *a)),
            Instr::AddrOf { global, .. } => Some(Key::Addr(*global)),
            _ => None,
        };
        match (key, i.def()) {
            (Some(k), Some(dst)) => {
                // A redefinition invalidates expressions mentioning dst
                // (do this before recording or reusing any fact).
                avail.retain(|k2, v| {
                    *v != dst
                        && match k2 {
                            Key::Bin(_, a, b) => *a != Operand::V(dst) && *b != Operand::V(dst),
                            Key::Un(_, a) => *a != Operand::V(dst),
                            Key::Addr(_) => true,
                        }
                });
                let self_referential = match &k {
                    Key::Bin(_, a, b) => *a == Operand::V(dst) || *b == Operand::V(dst),
                    Key::Un(_, a) => *a == Operand::V(dst),
                    Key::Addr(_) => false,
                };
                let prev = avail.get(&k).copied();
                match prev {
                    Some(prev) if prev != dst => {
                        out.push(Instr::Copy {
                            dst,
                            src: Operand::V(prev),
                        });
                        changed = true;
                    }
                    _ => {
                        if !self_referential {
                            avail.insert(k, dst);
                        }
                        out.push(i.clone());
                    }
                }
            }
            _ => {
                if let Some(dst) = i.def() {
                    avail.retain(|k2, v| {
                        *v != dst
                            && match k2 {
                                Key::Bin(_, a, b) => *a != Operand::V(dst) && *b != Operand::V(dst),
                                Key::Un(_, a) => *a != Operand::V(dst),
                                Key::Addr(_) => true,
                            }
                    });
                }
                out.push(i);
            }
        }
    }
    f.instrs = out;
    changed
}

/// Remove pure instructions whose destination is never read.
pub fn eliminate_dead(f: &mut TacFunction) -> bool {
    let mut changed = false;
    loop {
        let mut used: HashSet<VReg> = HashSet::new();
        for i in &f.instrs {
            used.extend(i.uses());
        }
        // Parameters are observable (ABI) even if unused.
        let before = f.instrs.len();
        f.instrs.retain(|i| match (i.is_pure(), i.def()) {
            (true, Some(d)) => used.contains(&d),
            _ => true,
        });
        if f.instrs.len() == before {
            break;
        }
        changed = true;
    }
    changed
}

/// Inline calls to small functions that make no calls themselves.
///
/// A single pass: call sites created by inlining are not revisited, which
/// bounds code growth.
pub fn inline_small_leaves(prog: &mut TacProgram, threshold: usize) {
    let inlinable: Vec<Option<TacFunction>> = prog
        .functions
        .iter()
        .map(|f| {
            let has_call = f.instrs.iter().any(|i| matches!(i, Instr::Call { .. }));
            let small = f.instrs.len() <= threshold;
            (!has_call && small).then(|| f.clone())
        })
        .collect();
    for fi in 0..prog.functions.len() {
        let mut out: Vec<Instr> = Vec::new();
        let instrs = std::mem::take(&mut prog.functions[fi].instrs);
        for i in instrs {
            let (dst, callee, args) = match &i {
                Instr::Call { dst, callee, args }
                    if *callee != fi && inlinable[*callee].is_some() =>
                {
                    (*dst, *callee, args.clone())
                }
                _ => {
                    out.push(i);
                    continue;
                }
            };
            let body = inlinable[callee].as_ref().expect("checked above");
            splice_body(&mut prog.functions[fi], &mut out, body, dst, &args, callee);
        }
        prog.functions[fi].instrs = out;
    }
}

fn splice_body(
    caller: &mut TacFunction,
    out: &mut Vec<Instr>,
    body: &TacFunction,
    dst: Option<VReg>,
    args: &[Operand],
    _callee: FuncId,
) {
    let voff = caller.vreg_count;
    let loff = caller.label_count;
    caller.vreg_count += body.vreg_count;
    caller.label_count += body.label_count + 1;
    let end = Label(loff + body.label_count);
    let mv = |v: VReg| VReg(v.0 + voff);
    let mo = |o: Operand| match o {
        Operand::V(v) => Operand::V(mv(v)),
        imm => imm,
    };
    let ml = |l: Label| Label(l.0 + loff);
    // Bind parameters.
    for (p, a) in body.params.iter().zip(args) {
        out.push(Instr::Copy {
            dst: mv(*p),
            src: *a,
        });
    }
    for i in &body.instrs {
        let renamed = match i {
            Instr::Bin { op, dst, a, b } => Instr::Bin {
                op: *op,
                dst: mv(*dst),
                a: mo(*a),
                b: mo(*b),
            },
            Instr::Un { op, dst, a } => Instr::Un {
                op: *op,
                dst: mv(*dst),
                a: mo(*a),
            },
            Instr::Copy { dst, src } => Instr::Copy {
                dst: mv(*dst),
                src: mo(*src),
            },
            Instr::Load {
                dst,
                global,
                index,
                elem,
            } => Instr::Load {
                dst: mv(*dst),
                global: *global,
                index: mo(*index),
                elem: *elem,
            },
            Instr::Store {
                global,
                index,
                value,
                elem,
            } => Instr::Store {
                global: *global,
                index: mo(*index),
                value: mo(*value),
                elem: *elem,
            },
            Instr::LoadPtr { dst, addr, elem } => Instr::LoadPtr {
                dst: mv(*dst),
                addr: mo(*addr),
                elem: *elem,
            },
            Instr::StorePtr { addr, value, elem } => Instr::StorePtr {
                addr: mo(*addr),
                value: mo(*value),
                elem: *elem,
            },
            Instr::AddrOf { dst, global } => Instr::AddrOf {
                dst: mv(*dst),
                global: *global,
            },
            Instr::Call { .. } => unreachable!("leaf functions make no calls"),
            Instr::Ret { value } => {
                if let (Some(d), Some(v)) = (dst, value) {
                    out.push(Instr::Copy {
                        dst: d,
                        src: mo(*v),
                    });
                }
                out.push(Instr::Jmp(end));
                continue;
            }
            Instr::Jmp(l) => Instr::Jmp(ml(*l)),
            Instr::BrCmp {
                rel,
                a,
                b,
                taken,
                fall,
            } => Instr::BrCmp {
                rel: *rel,
                a: mo(*a),
                b: mo(*b),
                taken: ml(*taken),
                fall: ml(*fall),
            },
            Instr::BrNz { cond, taken, fall } => Instr::BrNz {
                cond: mo(*cond),
                taken: ml(*taken),
                fall: ml(*fall),
            },
            Instr::Label(l) => Instr::Label(ml(*l)),
        };
        out.push(renamed);
    }
    out.push(Instr::Label(end));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::sema::check;
    use crate::tac::lower;

    fn tac(src: &str) -> TacProgram {
        let p = parse(src).unwrap();
        check(&p).unwrap();
        lower(&p)
    }

    #[test]
    fn folds_constants() {
        let mut t = tac("fn f() -> int { return 2 + 3 * 4; }");
        optimize_function(&mut t.functions[0], OptFlags::basic());
        assert!(matches!(
            t.functions[0].instrs.last(),
            Some(Instr::Ret {
                value: Some(Operand::Imm(14))
            })
        ));
        // Everything else should be dead.
        assert_eq!(t.functions[0].instrs.len(), 1);
    }

    #[test]
    fn algebraic_identities() {
        let mut t = tac("fn f(a: int) -> int { return (a + 0) * 1 + (a - a); }");
        optimize_function(&mut t.functions[0], OptFlags::basic());
        let f = &t.functions[0];
        assert!(
            !f.instrs
                .iter()
                .any(|i| matches!(i, Instr::Bin { op: TBin::Mul, .. })),
            "multiply by 1 folded: {f}"
        );
    }

    #[test]
    fn folds_constant_branches() {
        let mut t = tac("fn f() -> int { if (1 < 2) { return 1; } return 0; }");
        optimize_function(&mut t.functions[0], OptFlags::basic());
        let f = &t.functions[0];
        assert!(!f.instrs.iter().any(|i| matches!(i, Instr::BrCmp { .. })));
        // Only the taken path's return survives.
        assert!(f.instrs.iter().any(|i| matches!(
            i,
            Instr::Ret {
                value: Some(Operand::Imm(1))
            }
        )));
        assert!(!f.instrs.iter().any(|i| matches!(
            i,
            Instr::Ret {
                value: Some(Operand::Imm(0))
            }
        )));
    }

    #[test]
    fn propagates_copies() {
        let mut t = tac("fn f(a: int) -> int { var b = a; var c = b; return c + c; }");
        optimize_function(&mut t.functions[0], OptFlags::basic());
        let f = &t.functions[0];
        // After propagation + DCE only the add and ret remain.
        assert!(f.instrs.len() <= 2, "{f}");
    }

    #[test]
    fn cse_merges_duplicate_expressions() {
        let mut t = tac("fn f(a: int, b: int) -> int { return (a + b) * (a + b); }");
        let adds_before = t.functions[0]
            .instrs
            .iter()
            .filter(|i| matches!(i, Instr::Bin { op: TBin::Add, .. }))
            .count();
        assert_eq!(adds_before, 2);
        optimize_function(&mut t.functions[0], OptFlags::aggressive());
        let adds_after = t.functions[0]
            .instrs
            .iter()
            .filter(|i| matches!(i, Instr::Bin { op: TBin::Add, .. }))
            .count();
        assert_eq!(adds_after, 1, "{}", t.functions[0]);
    }

    #[test]
    fn dce_keeps_effects() {
        let mut t = tac("global g: [int; 1]; fn f(a: int) { var unused = a + 1; g[0] = a; }");
        optimize_function(&mut t.functions[0], OptFlags::basic());
        let f = &t.functions[0];
        assert!(f.instrs.iter().any(|i| matches!(i, Instr::Store { .. })));
        assert!(
            !f.instrs.iter().any(|i| matches!(i, Instr::Bin { .. })),
            "{f}"
        );
    }

    #[test]
    fn inlines_small_leaves() {
        let mut t = tac("fn sq(x: int) -> int { return x * x; } fn f(a: int) -> int { return sq(a) + sq(a + 1); }");
        inline_small_leaves(&mut t, 14);
        let f = &t.functions[1];
        assert!(
            !f.instrs.iter().any(|i| matches!(i, Instr::Call { .. })),
            "calls inlined: {f}"
        );
        // The square body appears twice.
        let muls = f
            .instrs
            .iter()
            .filter(|i| matches!(i, Instr::Bin { op: TBin::Mul, .. }))
            .count();
        assert_eq!(muls, 2);
    }

    #[test]
    fn does_not_inline_non_leaves_or_self() {
        let mut t = tac(
            "fn a() -> int { return b(); } fn b() -> int { return 1; } fn f() -> int { return a(); }",
        );
        inline_small_leaves(&mut t, 14);
        // `a` calls `b`, so `f`'s call to `a` stays; `a`'s call to `b` is
        // inlined (b is a leaf).
        assert!(t.functions[2]
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::Call { callee: 0, .. })));
        assert!(!t.functions[0]
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::Call { .. })));
    }

    #[test]
    fn optimize_is_idempotent_at_fixpoint() {
        let mut t =
            tac("fn f(a: int) -> int { var b = a + 0; if (b == b) { return b * 1; } return 0; }");
        optimize_function(&mut t.functions[0], OptFlags::aggressive());
        let snapshot = format!("{}", t.functions[0]);
        optimize_function(&mut t.functions[0], OptFlags::aggressive());
        assert_eq!(snapshot, format!("{}", t.functions[0]));
    }
}
