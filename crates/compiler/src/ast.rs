//! Abstract syntax tree for MinC.
//!
//! MinC is a deliberately small C-like language: 32-bit signed integers,
//! global `int`/`byte` arrays, string literals (lowered to `.rodata`),
//! direct calls, structured control flow. It is rich enough to express
//! the string/buffer-handling procedures our synthetic packages model
//! (globbing, filters, logging, escaping), and small enough that four
//! complete native back ends stay tractable.

use std::fmt;

/// Binary operators (all operate on `int`; comparisons yield 0/1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    /// Short-circuit logical and.
    AndAnd,
    /// Short-circuit logical or.
    OrOr,
}

impl BinOp {
    /// Whether this is a comparison yielding 0/1.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not (`!x` is 1 when x == 0).
    Not,
    /// Bitwise complement.
    BitNot,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Num(i32),
    /// String literal (its value is the address of the interned bytes,
    /// NUL-terminated, in `.rodata`).
    Str(String),
    /// Local variable or parameter.
    Var(String),
    /// Global array element load: `g[idx]`.
    Index {
        /// Global name.
        global: String,
        /// Element index expression.
        index: Box<Expr>,
    },
    /// Address of a global: `&g`.
    AddrOf(String),
    /// Load through a computed address: `peek(e)` / `peek8(e)`.
    Deref {
        /// Address expression.
        addr: Box<Expr>,
        /// Access width.
        elem: ElemType,
    },
    /// Direct call.
    Call {
        /// Callee name.
        callee: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// Binary operation.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary operation.
    Un {
        /// Operator.
        op: UnOp,
        /// Operand.
        arg: Box<Expr>,
    },
}

impl Expr {
    /// Convenience constructor.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Bin {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }
}

/// Statements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `var x = e;` — declare and initialize a local.
    VarDecl {
        /// Variable name.
        name: String,
        /// Initializer.
        init: Expr,
    },
    /// `x = e;`
    Assign {
        /// Target local.
        name: String,
        /// Value.
        value: Expr,
    },
    /// `poke(a, v);` / `poke8(a, v);` — store through a computed address.
    DerefAssign {
        /// Address expression.
        addr: Expr,
        /// Stored value.
        value: Expr,
        /// Access width.
        elem: ElemType,
    },
    /// `g[i] = e;` — global array element store.
    IndexAssign {
        /// Global name.
        global: String,
        /// Element index.
        index: Expr,
        /// Value.
        value: Expr,
    },
    /// `if (c) { .. } else { .. }`
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_body: Vec<Stmt>,
        /// Else branch (possibly empty).
        else_body: Vec<Stmt>,
    },
    /// `while (c) { .. }`
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `return e;` / `return;`
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// Expression statement (typically a call).
    ExprStmt(Expr),
}

/// Element type of a global array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElemType {
    /// 32-bit signed integer (4 bytes per element).
    Int,
    /// Byte (1 byte per element, zero-extended on load).
    Byte,
}

impl ElemType {
    /// Element size in bytes.
    pub fn size(self) -> u32 {
        match self {
            ElemType::Int => 4,
            ElemType::Byte => 1,
        }
    }
}

impl fmt::Display for ElemType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElemType::Int => f.write_str("int"),
            ElemType::Byte => f.write_str("byte"),
        }
    }
}

/// A global declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Global {
    /// Name.
    pub name: String,
    /// Element type.
    pub elem: ElemType,
    /// Element count.
    pub len: u32,
    /// Optional initializer bytes (from a string global).
    pub init: Option<Vec<u8>>,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Name.
    pub name: String,
    /// Parameter names (all `int`).
    pub params: Vec<String>,
    /// Whether the function returns a value.
    pub returns_value: bool,
    /// Body.
    pub body: Vec<Stmt>,
    /// Whether the symbol is exported (`pub fn`). Exported functions keep
    /// their names under partial stripping.
    pub exported: bool,
}

/// A whole translation unit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    /// Global arrays/strings.
    pub globals: Vec<Global>,
    /// Functions, in declaration order.
    pub functions: Vec<Function>,
}

impl Program {
    /// Find a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Find a global by name.
    pub fn global(&self, name: &str) -> Option<&Global> {
        self.globals.iter().find(|g| g.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elem_sizes() {
        assert_eq!(ElemType::Int.size(), 4);
        assert_eq!(ElemType::Byte.size(), 1);
    }

    #[test]
    fn comparison_classification() {
        assert!(BinOp::Lt.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(!BinOp::AndAnd.is_comparison());
    }

    #[test]
    fn program_lookup() {
        let p = Program {
            globals: vec![Global {
                name: "buf".into(),
                elem: ElemType::Byte,
                len: 64,
                init: None,
            }],
            functions: vec![Function {
                name: "main".into(),
                params: vec![],
                returns_value: true,
                body: vec![Stmt::Return(Some(Expr::Num(0)))],
                exported: false,
            }],
        };
        assert!(p.function("main").is_some());
        assert!(p.global("buf").is_some());
        assert!(p.function("nope").is_none());
    }
}
