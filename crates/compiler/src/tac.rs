//! Three-address code (TAC) and AST lowering.
//!
//! TAC is the compiler's architecture-independent middle end: virtual
//! registers, explicit labels and branches, direct calls. Optimization
//! passes ([`crate::opt`]) and register allocation
//! ([`crate::regalloc`]) work on this form; the four instruction
//! selectors consume it.

use std::collections::HashMap;
use std::fmt;

use crate::ast::{self, ElemType, Program};

/// A virtual register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VReg(pub u32);

/// A branch target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label(pub u32);

/// Index of a global in [`TacProgram::globals`].
pub type GlobalId = usize;

/// Index of a function in [`TacProgram::functions`].
pub type FuncId = usize;

/// An operand: virtual register or immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Virtual register.
    V(VReg),
    /// Constant.
    Imm(i32),
}

impl Operand {
    /// The register, if this is one.
    pub fn vreg(self) -> Option<VReg> {
        match self {
            Operand::V(v) => Some(v),
            Operand::Imm(_) => None,
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::V(v) => write!(f, "v{}", v.0),
            Operand::Imm(i) => write!(f, "{i}"),
        }
    }
}

/// Signed comparison relations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Rel {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

impl Rel {
    /// The relation with operands swapped (`a R b` ⇔ `b R.swap() a`).
    pub fn swap(self) -> Rel {
        match self {
            Rel::Lt => Rel::Gt,
            Rel::Le => Rel::Ge,
            Rel::Gt => Rel::Lt,
            Rel::Ge => Rel::Le,
            Rel::Eq => Rel::Eq,
            Rel::Ne => Rel::Ne,
        }
    }

    /// The negated relation (`!(a R b)` ⇔ `a R.negate() b`).
    pub fn negate(self) -> Rel {
        match self {
            Rel::Lt => Rel::Ge,
            Rel::Le => Rel::Gt,
            Rel::Gt => Rel::Le,
            Rel::Ge => Rel::Lt,
            Rel::Eq => Rel::Ne,
            Rel::Ne => Rel::Eq,
        }
    }

    /// Evaluate on concrete signed values.
    pub fn eval(self, a: i32, b: i32) -> bool {
        match self {
            Rel::Lt => a < b,
            Rel::Le => a <= b,
            Rel::Gt => a > b,
            Rel::Ge => a >= b,
            Rel::Eq => a == b,
            Rel::Ne => a != b,
        }
    }

    /// Mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Rel::Lt => "lt",
            Rel::Le => "le",
            Rel::Gt => "gt",
            Rel::Ge => "ge",
            Rel::Eq => "eq",
            Rel::Ne => "ne",
        }
    }
}

/// Pure binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum TBin {
    Add,
    Sub,
    Mul,
    And,
    Or,
    Xor,
    Shl,
    /// Arithmetic shift right (MinC `>>` on `int`).
    Sar,
    /// Comparison producing 0/1.
    Cmp(Rel),
}

impl TBin {
    /// Evaluate on concrete values.
    pub fn eval(self, a: i32, b: i32) -> i32 {
        match self {
            TBin::Add => a.wrapping_add(b),
            TBin::Sub => a.wrapping_sub(b),
            TBin::Mul => a.wrapping_mul(b),
            TBin::And => a & b,
            TBin::Or => a | b,
            TBin::Xor => a ^ b,
            TBin::Shl => a.wrapping_shl(b as u32 & 31),
            TBin::Sar => a.wrapping_shr(b as u32 & 31),
            TBin::Cmp(r) => r.eval(a, b) as i32,
        }
    }

    /// Whether operands can be swapped freely.
    pub fn commutative(self) -> bool {
        matches!(
            self,
            TBin::Add | TBin::Mul | TBin::And | TBin::Or | TBin::Xor
        ) || matches!(self, TBin::Cmp(Rel::Eq) | TBin::Cmp(Rel::Ne))
    }
}

/// Pure unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum TUn {
    Neg,
    /// Logical not: 1 when zero.
    Not,
    BitNot,
}

impl TUn {
    /// Evaluate on a concrete value.
    pub fn eval(self, a: i32) -> i32 {
        match self {
            TUn::Neg => a.wrapping_neg(),
            TUn::Not => (a == 0) as i32,
            TUn::BitNot => !a,
        }
    }
}

/// A TAC instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Instr {
    /// `dst = a op b`.
    Bin {
        /// Operator.
        op: TBin,
        /// Destination.
        dst: VReg,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `dst = op a`.
    Un {
        /// Operator.
        op: TUn,
        /// Destination.
        dst: VReg,
        /// Operand.
        a: Operand,
    },
    /// `dst = src`.
    Copy {
        /// Destination.
        dst: VReg,
        /// Source.
        src: Operand,
    },
    /// `dst = global[index]` (index in elements; width from `elem`).
    Load {
        /// Destination.
        dst: VReg,
        /// Global being read.
        global: GlobalId,
        /// Element index.
        index: Operand,
        /// Element type.
        elem: ElemType,
    },
    /// `global[index] = value`.
    Store {
        /// Global being written.
        global: GlobalId,
        /// Element index.
        index: Operand,
        /// Value to store.
        value: Operand,
        /// Element type.
        elem: ElemType,
    },
    /// `dst = *addr` (through a computed address).
    LoadPtr {
        /// Destination.
        dst: VReg,
        /// Address operand.
        addr: Operand,
        /// Access width.
        elem: ElemType,
    },
    /// `*addr = value`.
    StorePtr {
        /// Address operand.
        addr: Operand,
        /// Stored value.
        value: Operand,
        /// Access width.
        elem: ElemType,
    },
    /// `dst = &global`.
    AddrOf {
        /// Destination.
        dst: VReg,
        /// Global whose address is taken.
        global: GlobalId,
    },
    /// Direct call.
    Call {
        /// Destination for the return value (if used).
        dst: Option<VReg>,
        /// Callee.
        callee: FuncId,
        /// Arguments.
        args: Vec<Operand>,
    },
    /// Return.
    Ret {
        /// Returned value, if the function returns one.
        value: Option<Operand>,
    },
    /// Unconditional jump.
    Jmp(Label),
    /// Compare-and-branch: to `taken` when `a rel b`, else `fall`.
    BrCmp {
        /// Relation.
        rel: Rel,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
        /// Target when the relation holds.
        taken: Label,
        /// Target otherwise.
        fall: Label,
    },
    /// Branch to `taken` when `cond != 0`, else `fall`.
    BrNz {
        /// Condition.
        cond: Operand,
        /// Target when non-zero.
        taken: Label,
        /// Target otherwise.
        fall: Label,
    },
    /// A branch target.
    Label(Label),
}

impl Instr {
    /// The register this instruction defines, if any.
    pub fn def(&self) -> Option<VReg> {
        match self {
            Instr::Bin { dst, .. }
            | Instr::Un { dst, .. }
            | Instr::Copy { dst, .. }
            | Instr::Load { dst, .. }
            | Instr::LoadPtr { dst, .. }
            | Instr::AddrOf { dst, .. } => Some(*dst),
            Instr::Call { dst, .. } => *dst,
            _ => None,
        }
    }

    /// Registers this instruction reads.
    pub fn uses(&self) -> Vec<VReg> {
        let mut out = Vec::new();
        let mut push = |o: &Operand| {
            if let Operand::V(v) = o {
                out.push(*v);
            }
        };
        match self {
            Instr::Bin { a, b, .. } => {
                push(a);
                push(b);
            }
            Instr::Un { a, .. } => push(a),
            Instr::Copy { src, .. } => push(src),
            Instr::Load { index, .. } => push(index),
            Instr::LoadPtr { addr, .. } => push(addr),
            Instr::Store { index, value, .. } => {
                push(index);
                push(value);
            }
            Instr::StorePtr { addr, value, .. } => {
                push(addr);
                push(value);
            }
            Instr::AddrOf { .. } => {}
            Instr::Call { args, .. } => {
                for a in args {
                    push(a);
                }
            }
            Instr::Ret { value } => {
                if let Some(v) = value {
                    push(v);
                }
            }
            Instr::BrCmp { a, b, .. } => {
                push(a);
                push(b);
            }
            Instr::BrNz { cond, .. } => push(cond),
            Instr::Jmp(_) | Instr::Label(_) => {}
        }
        out
    }

    /// Whether this instruction ends a basic block.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            Instr::Ret { .. } | Instr::Jmp(_) | Instr::BrCmp { .. } | Instr::BrNz { .. }
        )
    }

    /// Whether removing this instruction (when its def is dead) is safe.
    pub fn is_pure(&self) -> bool {
        matches!(
            self,
            Instr::Bin { .. }
                | Instr::Un { .. }
                | Instr::Copy { .. }
                | Instr::Load { .. }
                | Instr::LoadPtr { .. }
                | Instr::AddrOf { .. }
        )
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Bin { op, dst, a, b } => write!(f, "v{} = {op:?} {a}, {b}", dst.0),
            Instr::Un { op, dst, a } => write!(f, "v{} = {op:?} {a}", dst.0),
            Instr::Copy { dst, src } => write!(f, "v{} = {src}", dst.0),
            Instr::Load {
                dst,
                global,
                index,
                elem,
            } => {
                write!(f, "v{} = load.{elem} g{global}[{index}]", dst.0)
            }
            Instr::Store {
                global,
                index,
                value,
                elem,
            } => {
                write!(f, "store.{elem} g{global}[{index}] = {value}")
            }
            Instr::LoadPtr { dst, addr, elem } => write!(f, "v{} = load.{elem} *{addr}", dst.0),
            Instr::StorePtr { addr, value, elem } => write!(f, "store.{elem} *{addr} = {value}"),
            Instr::AddrOf { dst, global } => write!(f, "v{} = &g{global}", dst.0),
            Instr::Call { dst, callee, args } => {
                if let Some(d) = dst {
                    write!(f, "v{} = call f{callee}(", d.0)?;
                } else {
                    write!(f, "call f{callee}(")?;
                }
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Instr::Ret { value: Some(v) } => write!(f, "ret {v}"),
            Instr::Ret { value: None } => write!(f, "ret"),
            Instr::Jmp(l) => write!(f, "jmp L{}", l.0),
            Instr::BrCmp {
                rel,
                a,
                b,
                taken,
                fall,
            } => {
                write!(
                    f,
                    "br.{} {a}, {b} -> L{}, L{}",
                    rel.mnemonic(),
                    taken.0,
                    fall.0
                )
            }
            Instr::BrNz { cond, taken, fall } => {
                write!(f, "brnz {cond} -> L{}, L{}", taken.0, fall.0)
            }
            Instr::Label(l) => write!(f, "L{}:", l.0),
        }
    }
}

/// A function in TAC form.
#[derive(Debug, Clone)]
pub struct TacFunction {
    /// Name.
    pub name: String,
    /// Parameter registers (in order).
    pub params: Vec<VReg>,
    /// Number of virtual registers used.
    pub vreg_count: u32,
    /// Number of labels used.
    pub label_count: u32,
    /// Instructions.
    pub instrs: Vec<Instr>,
    /// Whether the function returns a value.
    pub returns_value: bool,
    /// Whether the symbol is exported.
    pub exported: bool,
}

impl fmt::Display for TacFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "fn {}({} params):", self.name, self.params.len())?;
        for i in &self.instrs {
            writeln!(f, "  {i}")?;
        }
        Ok(())
    }
}

/// A whole program in TAC form.
#[derive(Debug, Clone)]
pub struct TacProgram {
    /// Functions (indices are [`FuncId`]s).
    pub functions: Vec<TacFunction>,
    /// Globals, including interned string literals (indices are
    /// [`GlobalId`]s).
    pub globals: Vec<ast::Global>,
}

impl TacProgram {
    /// Find a function id by name.
    pub fn func_id(&self, name: &str) -> Option<FuncId> {
        self.functions.iter().position(|f| f.name == name)
    }
}

/// Lower a checked AST program to TAC.
///
/// String literals are interned into fresh globals. Function calls are
/// resolved to indices; [`crate::sema::check`] must have succeeded
/// beforehand.
///
/// # Panics
///
/// Panics on unresolved names, which `check` rules out.
pub fn lower(program: &Program) -> TacProgram {
    let mut globals = program.globals.clone();
    let fn_ids: HashMap<&str, FuncId> = program
        .functions
        .iter()
        .enumerate()
        .map(|(i, f)| (f.name.as_str(), i))
        .collect();
    let mut strings: HashMap<String, GlobalId> = HashMap::new();
    let mut functions = Vec::new();
    for f in &program.functions {
        let mut lw = Lowerer {
            program,
            fn_ids: &fn_ids,
            globals: &mut globals,
            strings: &mut strings,
            locals: HashMap::new(),
            instrs: Vec::new(),
            next_vreg: 0,
            next_label: 0,
            loop_stack: Vec::new(),
        };
        let params: Vec<VReg> = f.params.iter().map(|p| lw.declare_local(p)).collect();
        for s in &f.body {
            lw.stmt(s, f);
        }
        // Implicit return for void functions falling off the end.
        if !matches!(lw.instrs.last(), Some(Instr::Ret { .. })) {
            lw.instrs.push(Instr::Ret { value: None });
        }
        functions.push(TacFunction {
            name: f.name.clone(),
            params,
            vreg_count: lw.next_vreg,
            label_count: lw.next_label,
            instrs: lw.instrs,
            returns_value: f.returns_value,
            exported: f.exported,
        });
    }
    TacProgram { functions, globals }
}

struct Lowerer<'a> {
    program: &'a Program,
    fn_ids: &'a HashMap<&'a str, FuncId>,
    globals: &'a mut Vec<ast::Global>,
    strings: &'a mut HashMap<String, GlobalId>,
    locals: HashMap<String, VReg>,
    instrs: Vec<Instr>,
    next_vreg: u32,
    next_label: u32,
    /// (continue target, break target) per enclosing loop.
    loop_stack: Vec<(Label, Label)>,
}

impl<'a> Lowerer<'a> {
    fn vreg(&mut self) -> VReg {
        let v = VReg(self.next_vreg);
        self.next_vreg += 1;
        v
    }

    fn label(&mut self) -> Label {
        let l = Label(self.next_label);
        self.next_label += 1;
        l
    }

    fn declare_local(&mut self, name: &str) -> VReg {
        let v = self.vreg();
        self.locals.insert(name.to_string(), v);
        v
    }

    fn global_id(&mut self, name: &str) -> GlobalId {
        self.globals
            .iter()
            .position(|g| g.name == name)
            .unwrap_or_else(|| panic!("unresolved global `{name}` (sema should have caught this)"))
    }

    fn intern_string(&mut self, s: &str) -> GlobalId {
        if let Some(&id) = self.strings.get(s) {
            return id;
        }
        let mut bytes = s.as_bytes().to_vec();
        bytes.push(0);
        let id = self.globals.len();
        self.globals.push(ast::Global {
            name: format!("__str_{}", self.strings.len()),
            elem: ElemType::Byte,
            len: bytes.len() as u32,
            init: Some(bytes),
        });
        self.strings.insert(s.to_string(), id);
        id
    }

    fn emit(&mut self, i: Instr) {
        self.instrs.push(i);
    }

    #[allow(clippy::only_used_in_recursion)]
    fn stmt(&mut self, s: &ast::Stmt, f: &ast::Function) {
        match s {
            ast::Stmt::VarDecl { name, init } => {
                let value = self.expr(init);
                let v = self.declare_local(name);
                self.emit(Instr::Copy { dst: v, src: value });
            }
            ast::Stmt::Assign { name, value } => {
                let value = self.expr(value);
                let v = self.locals[name.as_str()];
                self.emit(Instr::Copy { dst: v, src: value });
            }
            ast::Stmt::DerefAssign { addr, value, elem } => {
                let a = self.expr(addr);
                let v = self.expr(value);
                self.emit(Instr::StorePtr {
                    addr: a,
                    value: v,
                    elem: *elem,
                });
            }
            ast::Stmt::IndexAssign {
                global,
                index,
                value,
            } => {
                let gid = self.global_id(global);
                let elem = self.globals[gid].elem;
                let idx = self.expr(index);
                let val = self.expr(value);
                self.emit(Instr::Store {
                    global: gid,
                    index: idx,
                    value: val,
                    elem,
                });
            }
            ast::Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let lt = self.label();
                let lf = self.label();
                let lend = if else_body.is_empty() {
                    lf
                } else {
                    self.label()
                };
                self.cond(cond, lt, lf);
                self.emit(Instr::Label(lt));
                for s in then_body {
                    self.stmt(s, f);
                }
                if !else_body.is_empty() {
                    self.emit(Instr::Jmp(lend));
                    self.emit(Instr::Label(lf));
                    for s in else_body {
                        self.stmt(s, f);
                    }
                }
                self.emit(Instr::Label(lend));
            }
            ast::Stmt::While { cond, body } => {
                let head = self.label();
                let lbody = self.label();
                let end = self.label();
                self.emit(Instr::Label(head));
                self.cond(cond, lbody, end);
                self.emit(Instr::Label(lbody));
                self.loop_stack.push((head, end));
                for s in body {
                    self.stmt(s, f);
                }
                self.loop_stack.pop();
                self.emit(Instr::Jmp(head));
                self.emit(Instr::Label(end));
            }
            ast::Stmt::Return(e) => {
                let value = e.as_ref().map(|e| self.expr(e));
                self.emit(Instr::Ret { value });
            }
            ast::Stmt::Break => {
                let (_, end) = *self.loop_stack.last().expect("break outside loop");
                self.emit(Instr::Jmp(end));
            }
            ast::Stmt::Continue => {
                let (head, _) = *self.loop_stack.last().expect("continue outside loop");
                self.emit(Instr::Jmp(head));
            }
            ast::Stmt::ExprStmt(e) => {
                // Calls for effect; anything else is evaluated and dropped.
                if let ast::Expr::Call { callee, args } = e {
                    let callee_id = self.fn_ids[callee.as_str()];
                    let returns = self.program.functions[callee_id].returns_value;
                    let args: Vec<Operand> = args.iter().map(|a| self.expr(a)).collect();
                    let dst = if returns { Some(self.vreg()) } else { None };
                    self.emit(Instr::Call {
                        dst,
                        callee: callee_id,
                        args,
                    });
                } else {
                    let _ = self.expr(e);
                }
            }
        }
    }

    /// Lower a boolean context: branch to `lt` when true, `lf` when
    /// false. Handles short-circuiting and comparison fusion.
    #[allow(clippy::only_used_in_recursion)]
    fn cond(&mut self, e: &ast::Expr, lt: Label, lf: Label) {
        match e {
            ast::Expr::Bin {
                op: ast::BinOp::AndAnd,
                lhs,
                rhs,
            } => {
                let mid = self.label();
                self.cond(lhs, mid, lf);
                self.emit(Instr::Label(mid));
                self.cond(rhs, lt, lf);
            }
            ast::Expr::Bin {
                op: ast::BinOp::OrOr,
                lhs,
                rhs,
            } => {
                let mid = self.label();
                self.cond(lhs, lt, mid);
                self.emit(Instr::Label(mid));
                self.cond(rhs, lt, lf);
            }
            ast::Expr::Un {
                op: ast::UnOp::Not,
                arg,
            } => self.cond(arg, lf, lt),
            ast::Expr::Bin { op, lhs, rhs } if op.is_comparison() => {
                let rel = match op {
                    ast::BinOp::Lt => Rel::Lt,
                    ast::BinOp::Le => Rel::Le,
                    ast::BinOp::Gt => Rel::Gt,
                    ast::BinOp::Ge => Rel::Ge,
                    ast::BinOp::Eq => Rel::Eq,
                    ast::BinOp::Ne => Rel::Ne,
                    _ => unreachable!(),
                };
                let a = self.expr(lhs);
                let b = self.expr(rhs);
                self.emit(Instr::BrCmp {
                    rel,
                    a,
                    b,
                    taken: lt,
                    fall: lf,
                });
            }
            other => {
                let c = self.expr(other);
                self.emit(Instr::BrNz {
                    cond: c,
                    taken: lt,
                    fall: lf,
                });
            }
        }
    }

    fn expr(&mut self, e: &ast::Expr) -> Operand {
        match e {
            ast::Expr::Num(n) => Operand::Imm(*n),
            ast::Expr::Str(s) => {
                let gid = self.intern_string(s);
                let dst = self.vreg();
                self.emit(Instr::AddrOf { dst, global: gid });
                Operand::V(dst)
            }
            ast::Expr::Var(name) => Operand::V(self.locals[name.as_str()]),
            ast::Expr::AddrOf(name) => {
                let gid = self.global_id(name);
                let dst = self.vreg();
                self.emit(Instr::AddrOf { dst, global: gid });
                Operand::V(dst)
            }
            ast::Expr::Deref { addr, elem } => {
                let a = self.expr(addr);
                let dst = self.vreg();
                self.emit(Instr::LoadPtr {
                    dst,
                    addr: a,
                    elem: *elem,
                });
                Operand::V(dst)
            }
            ast::Expr::Index { global, index } => {
                let gid = self.global_id(global);
                let elem = self.globals[gid].elem;
                let idx = self.expr(index);
                let dst = self.vreg();
                self.emit(Instr::Load {
                    dst,
                    global: gid,
                    index: idx,
                    elem,
                });
                Operand::V(dst)
            }
            ast::Expr::Call { callee, args } => {
                let callee_id = self.fn_ids[callee.as_str()];
                let args: Vec<Operand> = args.iter().map(|a| self.expr(a)).collect();
                let dst = self.vreg();
                self.emit(Instr::Call {
                    dst: Some(dst),
                    callee: callee_id,
                    args,
                });
                Operand::V(dst)
            }
            ast::Expr::Bin { op, lhs, rhs } => match op {
                ast::BinOp::AndAnd | ast::BinOp::OrOr => {
                    // Value context for short-circuit ops: materialize 0/1.
                    let lt = self.label();
                    let lf = self.label();
                    let end = self.label();
                    let dst = self.vreg();
                    self.cond(e, lt, lf);
                    self.emit(Instr::Label(lt));
                    self.emit(Instr::Copy {
                        dst,
                        src: Operand::Imm(1),
                    });
                    self.emit(Instr::Jmp(end));
                    self.emit(Instr::Label(lf));
                    self.emit(Instr::Copy {
                        dst,
                        src: Operand::Imm(0),
                    });
                    self.emit(Instr::Label(end));
                    Operand::V(dst)
                }
                _ => {
                    let top = match op {
                        ast::BinOp::Add => TBin::Add,
                        ast::BinOp::Sub => TBin::Sub,
                        ast::BinOp::Mul => TBin::Mul,
                        ast::BinOp::And => TBin::And,
                        ast::BinOp::Or => TBin::Or,
                        ast::BinOp::Xor => TBin::Xor,
                        ast::BinOp::Shl => TBin::Shl,
                        ast::BinOp::Shr => TBin::Sar,
                        ast::BinOp::Lt => TBin::Cmp(Rel::Lt),
                        ast::BinOp::Le => TBin::Cmp(Rel::Le),
                        ast::BinOp::Gt => TBin::Cmp(Rel::Gt),
                        ast::BinOp::Ge => TBin::Cmp(Rel::Ge),
                        ast::BinOp::Eq => TBin::Cmp(Rel::Eq),
                        ast::BinOp::Ne => TBin::Cmp(Rel::Ne),
                        ast::BinOp::AndAnd | ast::BinOp::OrOr => unreachable!(),
                    };
                    let a = self.expr(lhs);
                    let b = self.expr(rhs);
                    let dst = self.vreg();
                    self.emit(Instr::Bin { op: top, dst, a, b });
                    Operand::V(dst)
                }
            },
            ast::Expr::Un { op, arg } => {
                let top = match op {
                    ast::UnOp::Neg => TUn::Neg,
                    ast::UnOp::Not => TUn::Not,
                    ast::UnOp::BitNot => TUn::BitNot,
                };
                let a = self.expr(arg);
                let dst = self.vreg();
                self.emit(Instr::Un { op: top, dst, a });
                Operand::V(dst)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::sema::check;

    fn lower_src(src: &str) -> TacProgram {
        let p = parse(src).unwrap();
        check(&p).unwrap();
        lower(&p)
    }

    #[test]
    fn lowers_arithmetic() {
        let t = lower_src("fn f(a: int, b: int) -> int { return a + b * 2; }");
        let f = &t.functions[0];
        assert!(f
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::Bin { op: TBin::Mul, .. })));
        assert!(f
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::Bin { op: TBin::Add, .. })));
        assert!(matches!(
            f.instrs.last(),
            Some(Instr::Ret { value: Some(_) })
        ));
    }

    #[test]
    fn comparison_in_if_becomes_brcmp() {
        let t = lower_src("fn f(a: int) -> int { if (a < 3) { return 1; } return 0; }");
        assert!(t.functions[0]
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::BrCmp { rel: Rel::Lt, .. })));
    }

    #[test]
    fn short_circuit_produces_branches() {
        let t = lower_src("fn g(x: int) -> int { return x; } fn f(a: int, b: int) -> int { if (a && g(b)) { return 1; } return 0; }");
        let f = &t.functions[1];
        // The right operand's call must be guarded by a branch on `a`.
        let first_br = f
            .instrs
            .iter()
            .position(|i| matches!(i, Instr::BrNz { .. }))
            .unwrap();
        let call = f
            .instrs
            .iter()
            .position(|i| matches!(i, Instr::Call { .. }))
            .unwrap();
        assert!(
            first_br < call,
            "short-circuit: call must come after branch"
        );
    }

    #[test]
    fn strings_are_interned_once() {
        let t = lower_src(
            r#"fn f() -> int { var a = "dup"; var b = "dup"; var c = "other"; return a + b + c; }"#,
        );
        let strs: Vec<_> = t
            .globals
            .iter()
            .filter(|g| g.name.starts_with("__str_"))
            .collect();
        assert_eq!(strs.len(), 2);
        assert_eq!(strs[0].init.as_deref(), Some(&b"dup\0"[..]));
    }

    #[test]
    fn void_fall_through_gets_ret() {
        let t = lower_src("fn f() { var a = 1; }");
        assert!(matches!(
            t.functions[0].instrs.last(),
            Some(Instr::Ret { value: None })
        ));
    }

    #[test]
    fn break_and_continue_target_loop_labels() {
        let t = lower_src("fn f() { while (1) { break; } }");
        let f = &t.functions[0];
        // A jmp to the end label must exist before the loop back-edge.
        let jmps: Vec<_> = f
            .instrs
            .iter()
            .filter_map(|i| match i {
                Instr::Jmp(l) => Some(*l),
                _ => None,
            })
            .collect();
        assert_eq!(jmps.len(), 2, "break + back edge");
    }

    #[test]
    fn global_loads_scale_by_elem() {
        let t = lower_src(
            "global b: [byte; 8]; global w: [int; 8]; fn f(i: int) -> int { return b[i] + w[i]; }",
        );
        let f = &t.functions[0];
        let elems: Vec<ElemType> = f
            .instrs
            .iter()
            .filter_map(|i| match i {
                Instr::Load { elem, .. } => Some(*elem),
                _ => None,
            })
            .collect();
        assert_eq!(elems, vec![ElemType::Byte, ElemType::Int]);
    }

    #[test]
    fn def_use_sets() {
        let i = Instr::Bin {
            op: TBin::Add,
            dst: VReg(2),
            a: Operand::V(VReg(0)),
            b: Operand::Imm(3),
        };
        assert_eq!(i.def(), Some(VReg(2)));
        assert_eq!(i.uses(), vec![VReg(0)]);
        assert!(i.is_pure());
        assert!(!i.is_terminator());
        let r = Instr::Ret {
            value: Some(Operand::V(VReg(1))),
        };
        assert!(r.is_terminator());
        assert_eq!(r.uses(), vec![VReg(1)]);
    }

    #[test]
    fn rel_algebra() {
        for r in [Rel::Lt, Rel::Le, Rel::Gt, Rel::Ge, Rel::Eq, Rel::Ne] {
            for (a, b) in [(1, 2), (2, 1), (3, 3), (-1, 1)] {
                assert_eq!(r.eval(a, b), r.swap().eval(b, a), "{r:?} swap");
                assert_eq!(r.eval(a, b), !r.negate().eval(a, b), "{r:?} negate");
            }
        }
    }
}
