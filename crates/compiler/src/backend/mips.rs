//! MIPS32 back end.

use std::collections::HashMap;

use firmup_isa::mips::{Gpr, Instr as MI, RA, SP, V0};

use crate::emit::{link, CompileError, FnOut, LinkedBinary, MemLayout, Reloc, RelocTarget};
use crate::profile::ToolchainProfile;
use crate::regalloc::{allocate, Allocation, Loc, RegPools};
use crate::tac::{Instr, Label, Operand, Rel, TBin, TUn, TacFunction, TacProgram, VReg};

const ZERO: Gpr = Gpr(0);
/// `$at`, reserved as the first scratch register (as real assemblers do).
const S1: Gpr = Gpr(1);
/// `$v1`, second scratch.
const S2: Gpr = Gpr(3);
const ARGS: [Gpr; 4] = [Gpr(4), Gpr(5), Gpr(6), Gpr(7)];

fn pools(profile: &ToolchainProfile) -> RegPools {
    let mut caller: Vec<u16> = (8..=15).chain([24, 25]).collect(); // t0-t7, t8, t9
    let mut callee: Vec<u16> = (16..=23).collect(); // s0-s7
    profile.reg_order.apply(&mut caller);
    profile.reg_order.apply(&mut callee);
    if profile.opt == crate::profile::OptLevel::O0 {
        // -O0 keeps every value in memory.
        return RegPools {
            caller_saved: vec![],
            callee_saved: vec![],
        };
    }
    RegPools {
        caller_saved: caller,
        callee_saved: callee,
    }
}

struct Frame {
    size: u32,
    spill_base: u32,
    save_base: u32,
    ra_off: Option<u32>,
}

fn frame_layout(alloc: &Allocation, is_leaf: bool, profile: &ToolchainProfile) -> Frame {
    let spill_bytes = alloc.spill_slots * 4;
    let save_bytes = alloc.used_callee_saved.len() as u32 * 4;
    let ra_bytes = if is_leaf { 0 } else { 4 };
    let mut size = spill_bytes + save_bytes + ra_bytes + profile.frame_padding;
    size = (size + 7) & !7;
    Frame {
        size,
        spill_base: 0,
        save_base: spill_bytes,
        ra_off: (!is_leaf).then_some(spill_bytes + save_bytes),
    }
}

struct Emitter<'a> {
    out: Vec<MI>,
    relocs: Vec<Reloc>,
    label_at: HashMap<Label, usize>,
    fixups: Vec<(usize, Label)>,
    alloc: &'a Allocation,
    frame: &'a Frame,
}

impl<'a> Emitter<'a> {
    fn e(&mut self, i: MI) {
        self.out.push(i);
    }

    fn nop(&mut self) {
        self.e(MI::Sll {
            rd: ZERO,
            rt: ZERO,
            sh: 0,
        });
    }

    fn spill_off(&self, slot: u32) -> i16 {
        (self.frame.spill_base + slot * 4) as i16
    }

    fn li(&mut self, dst: Gpr, v: i32) {
        if v == 0 {
            self.e(MI::Addu {
                rd: dst,
                rs: ZERO,
                rt: ZERO,
            });
        } else if (-32768..=32767).contains(&v) {
            self.e(MI::Addiu {
                rt: dst,
                rs: ZERO,
                imm: v as i16,
            });
        } else {
            let u = v as u32;
            self.e(MI::Lui {
                rt: dst,
                imm: (u >> 16) as u16,
            });
            if u & 0xffff != 0 {
                self.e(MI::Ori {
                    rt: dst,
                    rs: dst,
                    imm: (u & 0xffff) as u16,
                });
            }
        }
    }

    /// Bring an operand into a register (using `scratch` if needed).
    fn read(&mut self, op: Operand, scratch: Gpr) -> Gpr {
        match op {
            Operand::Imm(0) => ZERO,
            Operand::Imm(v) => {
                self.li(scratch, v);
                scratch
            }
            Operand::V(v) => match self.alloc.of(v) {
                Loc::Reg(r) => Gpr(r as u8),
                Loc::Spill(s) => {
                    let off = self.spill_off(s);
                    self.e(MI::Lw {
                        rt: scratch,
                        base: SP,
                        off,
                    });
                    scratch
                }
            },
        }
    }

    /// The register to compute a result into.
    fn target(&self, dst: VReg, scratch: Gpr) -> Gpr {
        match self.alloc.of(dst) {
            Loc::Reg(r) => Gpr(r as u8),
            Loc::Spill(_) => scratch,
        }
    }

    /// Store a computed value to its home if spilled.
    fn writeback(&mut self, dst: VReg, from: Gpr) {
        if let Loc::Spill(s) = self.alloc.of(dst) {
            let off = self.spill_off(s);
            self.e(MI::Sw {
                rt: from,
                base: SP,
                off,
            });
        }
    }

    /// Move between registers (no-op when identical).
    fn mv(&mut self, dst: Gpr, src: Gpr) {
        if dst != src {
            self.e(MI::Addu {
                rd: dst,
                rs: src,
                rt: ZERO,
            });
        }
    }

    /// Materialize a global's address into `dst` (relocated later).
    fn global_addr(&mut self, dst: Gpr, gid: usize) {
        self.relocs.push(Reloc {
            at: self.out.len(),
            target: RelocTarget::Global(gid),
        });
        self.e(MI::Lui { rt: dst, imm: 0 });
        self.e(MI::Ori {
            rt: dst,
            rs: dst,
            imm: 0,
        });
    }

    /// Emit a branch with a pending label target.
    fn branch(&mut self, i: MI, l: Label) {
        self.fixups.push((self.out.len(), l));
        self.e(i);
        self.nop(); // delay slot
    }
}

/// Compile a TAC program to a linked MIPS binary.
pub(crate) fn compile(
    tac: &TacProgram,
    profile: &ToolchainProfile,
    layout: MemLayout,
) -> Result<LinkedBinary, CompileError> {
    let pools = pools(profile);
    let mut fns = Vec::with_capacity(tac.functions.len());
    for f in &tac.functions {
        fns.push(compile_fn(f, tac, &pools, profile)?);
    }
    Ok(link(
        fns,
        &tac.globals,
        layout,
        |_| 4,
        patch,
        firmup_isa::mips::encode,
    ))
}

fn patch(instrs: &mut [MI], at: usize, _instr_addr: u32, target: u32) {
    match &mut instrs[at] {
        MI::Jal { target: t } | MI::J { target: t } => *t = target,
        MI::Lui { imm, .. } => {
            *imm = (target >> 16) as u16;
            if let MI::Ori { imm, .. } = &mut instrs[at + 1] {
                *imm = (target & 0xffff) as u16;
            } else {
                unreachable!("global materialization must be lui+ori");
            }
        }
        other => unreachable!("unexpected reloc site {other:?}"),
    }
}

fn set_branch_target(i: &mut MI, off: i16) {
    match i {
        MI::Beq { off: o, .. }
        | MI::Bne { off: o, .. }
        | MI::Blez { off: o, .. }
        | MI::Bgtz { off: o, .. }
        | MI::Bltz { off: o, .. }
        | MI::Bgez { off: o, .. } => *o = off,
        other => unreachable!("not a branch: {other:?}"),
    }
}

fn branch_reads(i: &MI) -> Vec<Gpr> {
    match *i {
        MI::Beq { rs, rt, .. } | MI::Bne { rs, rt, .. } => vec![rs, rt],
        MI::Blez { rs, .. } | MI::Bgtz { rs, .. } | MI::Bltz { rs, .. } | MI::Bgez { rs, .. } => {
            vec![rs]
        }
        _ => vec![],
    }
}

fn writes(i: &MI) -> Option<Gpr> {
    match *i {
        MI::Sll { rd, .. }
        | MI::Srl { rd, .. }
        | MI::Sra { rd, .. }
        | MI::Sllv { rd, .. }
        | MI::Srlv { rd, .. }
        | MI::Srav { rd, .. }
        | MI::Addu { rd, .. }
        | MI::Subu { rd, .. }
        | MI::And { rd, .. }
        | MI::Or { rd, .. }
        | MI::Xor { rd, .. }
        | MI::Nor { rd, .. }
        | MI::Slt { rd, .. }
        | MI::Sltu { rd, .. }
        | MI::Mul { rd, .. } => Some(rd),
        MI::Addiu { rt, .. }
        | MI::Slti { rt, .. }
        | MI::Sltiu { rt, .. }
        | MI::Andi { rt, .. }
        | MI::Ori { rt, .. }
        | MI::Xori { rt, .. }
        | MI::Lui { rt, .. }
        | MI::Lw { rt, .. }
        | MI::Lb { rt, .. }
        | MI::Lbu { rt, .. } => Some(rt),
        _ => None,
    }
}

fn is_simple_fill_candidate(i: &MI) -> bool {
    matches!(
        i,
        MI::Addu { .. }
            | MI::Subu { .. }
            | MI::And { .. }
            | MI::Or { .. }
            | MI::Xor { .. }
            | MI::Addiu { .. }
            | MI::Andi { .. }
            | MI::Ori { .. }
            | MI::Xori { .. }
            | MI::Sll { .. }
            | MI::Srl { .. }
            | MI::Sra { .. }
            | MI::Lw { .. }
            | MI::Sw { .. }
    ) && writes(i) != Some(ZERO)
        || matches!(i, MI::Sw { .. })
}

#[allow(clippy::too_many_lines)]
fn compile_fn(
    f: &TacFunction,
    tac: &TacProgram,
    pools: &RegPools,
    profile: &ToolchainProfile,
) -> Result<FnOut<MI>, CompileError> {
    if f.params.len() > ARGS.len() {
        return Err(crate::backend::too_many_params(&f.name, f.params.len()));
    }
    let alloc = allocate(f, pools);
    let is_leaf = !f.instrs.iter().any(|i| matches!(i, Instr::Call { .. }));
    let frame = frame_layout(&alloc, is_leaf, profile);
    let mut em = Emitter {
        out: Vec::new(),
        relocs: Vec::new(),
        label_at: HashMap::new(),
        fixups: Vec::new(),
        alloc: &alloc,
        frame: &frame,
    };

    // Prologue.
    if frame.size > 0 {
        em.e(MI::Addiu {
            rt: SP,
            rs: SP,
            imm: -(frame.size as i32) as i16,
        });
    }
    if let Some(off) = frame.ra_off {
        em.e(MI::Sw {
            rt: RA,
            base: SP,
            off: off as i16,
        });
    }
    for (k, &r) in alloc.used_callee_saved.iter().enumerate() {
        em.e(MI::Sw {
            rt: Gpr(r as u8),
            base: SP,
            off: (frame.save_base + 4 * k as u32) as i16,
        });
    }
    // Home the parameters.
    for (i, &p) in f.params.iter().enumerate() {
        match alloc.of(p) {
            Loc::Reg(r) => em.mv(Gpr(r as u8), ARGS[i]),
            Loc::Spill(s) => {
                let off = em.spill_off(s);
                em.e(MI::Sw {
                    rt: ARGS[i],
                    base: SP,
                    off,
                });
            }
        }
    }

    let epilogue = |em: &mut Emitter| {
        for (k, &r) in em.alloc.used_callee_saved.iter().enumerate() {
            em.e(MI::Lw {
                rt: Gpr(r as u8),
                base: SP,
                off: (em.frame.save_base + 4 * k as u32) as i16,
            });
        }
        if let Some(off) = em.frame.ra_off {
            em.e(MI::Lw {
                rt: RA,
                base: SP,
                off: off as i16,
            });
        }
        if em.frame.size > 0 {
            em.e(MI::Addiu {
                rt: SP,
                rs: SP,
                imm: em.frame.size as i16,
            });
        }
        em.e(MI::Jr { rs: RA });
        em.nop();
    };

    for (ti, instr) in f.instrs.iter().enumerate() {
        match instr {
            Instr::Label(l) => {
                em.label_at.insert(*l, em.out.len());
            }
            Instr::Copy { dst, src } => {
                let d = em.target(*dst, S1);
                match src {
                    Operand::Imm(v) => em.li(d, *v),
                    Operand::V(_) => {
                        let s = em.read(*src, S1);
                        em.mv(d, s);
                    }
                }
                em.writeback(*dst, d);
            }
            Instr::Bin { op, dst, a, b } => {
                let ra_ = em.read(*a, S1);
                let d = em.target(*dst, S1);
                match (op, b) {
                    // Immediate forms when the constant fits.
                    (TBin::Add, Operand::Imm(v)) if (-32768..=32767).contains(v) => {
                        em.e(MI::Addiu {
                            rt: d,
                            rs: ra_,
                            imm: *v as i16,
                        });
                    }
                    (TBin::And, Operand::Imm(v)) if (0..=0xffff).contains(v) => {
                        em.e(MI::Andi {
                            rt: d,
                            rs: ra_,
                            imm: *v as u16,
                        });
                    }
                    (TBin::Or, Operand::Imm(v)) if (0..=0xffff).contains(v) => {
                        em.e(MI::Ori {
                            rt: d,
                            rs: ra_,
                            imm: *v as u16,
                        });
                    }
                    (TBin::Xor, Operand::Imm(v)) if (0..=0xffff).contains(v) => {
                        em.e(MI::Xori {
                            rt: d,
                            rs: ra_,
                            imm: *v as u16,
                        });
                    }
                    (TBin::Shl, Operand::Imm(v)) => em.e(MI::Sll {
                        rd: d,
                        rt: ra_,
                        sh: (*v & 31) as u8,
                    }),
                    (TBin::Sar, Operand::Imm(v)) => em.e(MI::Sra {
                        rd: d,
                        rt: ra_,
                        sh: (*v & 31) as u8,
                    }),
                    (TBin::Cmp(Rel::Lt), Operand::Imm(v)) if (-32768..=32767).contains(v) => {
                        em.e(MI::Slti {
                            rt: d,
                            rs: ra_,
                            imm: *v as i16,
                        });
                    }
                    _ => {
                        let rb = em.read(*b, S2);
                        match op {
                            TBin::Add => em.e(MI::Addu {
                                rd: d,
                                rs: ra_,
                                rt: rb,
                            }),
                            TBin::Sub => em.e(MI::Subu {
                                rd: d,
                                rs: ra_,
                                rt: rb,
                            }),
                            TBin::Mul => em.e(MI::Mul {
                                rd: d,
                                rs: ra_,
                                rt: rb,
                            }),
                            TBin::And => em.e(MI::And {
                                rd: d,
                                rs: ra_,
                                rt: rb,
                            }),
                            TBin::Or => em.e(MI::Or {
                                rd: d,
                                rs: ra_,
                                rt: rb,
                            }),
                            TBin::Xor => em.e(MI::Xor {
                                rd: d,
                                rs: ra_,
                                rt: rb,
                            }),
                            TBin::Shl => em.e(MI::Sllv {
                                rd: d,
                                rt: ra_,
                                rs: rb,
                            }),
                            TBin::Sar => em.e(MI::Srav {
                                rd: d,
                                rt: ra_,
                                rs: rb,
                            }),
                            TBin::Cmp(rel) => emit_cmp_value(&mut em, *rel, d, ra_, rb),
                        }
                    }
                }
                em.writeback(*dst, d);
            }
            Instr::Un { op, dst, a } => {
                let ra_ = em.read(*a, S1);
                let d = em.target(*dst, S1);
                match op {
                    TUn::Neg => em.e(MI::Subu {
                        rd: d,
                        rs: ZERO,
                        rt: ra_,
                    }),
                    TUn::Not => em.e(MI::Sltiu {
                        rt: d,
                        rs: ra_,
                        imm: 1,
                    }),
                    TUn::BitNot => em.e(MI::Nor {
                        rd: d,
                        rs: ra_,
                        rt: ZERO,
                    }),
                }
                em.writeback(*dst, d);
            }
            Instr::AddrOf { dst, global } => {
                let d = em.target(*dst, S1);
                em.global_addr(d, *global);
                em.writeback(*dst, d);
            }
            Instr::Load {
                dst,
                global,
                index,
                elem,
            } => {
                em.global_addr(S1, *global);
                let d = em.target(*dst, S2);
                match index {
                    Operand::Imm(i) => {
                        let off = i * elem.size() as i32;
                        let (base, off) = if (-32768..=32767).contains(&off) {
                            (S1, off as i16)
                        } else {
                            em.li(S2, off);
                            em.e(MI::Addu {
                                rd: S1,
                                rs: S1,
                                rt: S2,
                            });
                            (S1, 0)
                        };
                        emit_load(&mut em, *elem, d, base, off);
                    }
                    Operand::V(_) => {
                        let idx = em.read(*index, S2);
                        if elem.size() == 4 {
                            em.e(MI::Sll {
                                rd: S2,
                                rt: idx,
                                sh: 2,
                            });
                            em.e(MI::Addu {
                                rd: S1,
                                rs: S1,
                                rt: S2,
                            });
                        } else {
                            em.e(MI::Addu {
                                rd: S1,
                                rs: S1,
                                rt: idx,
                            });
                        }
                        emit_load(&mut em, *elem, d, S1, 0);
                    }
                }
                em.writeback(*dst, d);
            }
            Instr::Store {
                global,
                index,
                value,
                elem,
            } => {
                em.global_addr(S1, *global);
                match index {
                    Operand::Imm(i) => {
                        let off = i * elem.size() as i32;
                        if !(-32768..=32767).contains(&off) {
                            em.li(S2, off);
                            em.e(MI::Addu {
                                rd: S1,
                                rs: S1,
                                rt: S2,
                            });
                        }
                        let v = em.read(*value, S2);
                        let off16 = if (-32768..=32767).contains(&off) {
                            off as i16
                        } else {
                            0
                        };
                        emit_store(&mut em, *elem, v, S1, off16);
                    }
                    Operand::V(_) => {
                        let idx = em.read(*index, S2);
                        if elem.size() == 4 {
                            em.e(MI::Sll {
                                rd: S2,
                                rt: idx,
                                sh: 2,
                            });
                            em.e(MI::Addu {
                                rd: S1,
                                rs: S1,
                                rt: S2,
                            });
                        } else {
                            em.e(MI::Addu {
                                rd: S1,
                                rs: S1,
                                rt: idx,
                            });
                        }
                        let v = em.read(*value, S2);
                        emit_store(&mut em, *elem, v, S1, 0);
                    }
                }
            }
            Instr::LoadPtr { dst, addr, elem } => {
                let a = em.read(*addr, S1);
                let d = em.target(*dst, S2);
                emit_load(&mut em, *elem, d, a, 0);
                em.writeback(*dst, d);
            }
            Instr::StorePtr { addr, value, elem } => {
                let a = em.read(*addr, S1);
                let v = em.read(*value, S2);
                emit_store(&mut em, *elem, v, a, 0);
            }
            Instr::Call { dst, callee, args } => {
                for (i, a) in args.iter().enumerate() {
                    match a {
                        Operand::Imm(v) => em.li(ARGS[i], *v),
                        Operand::V(_) => {
                            let r = em.read(*a, ARGS[i]);
                            em.mv(ARGS[i], r);
                        }
                    }
                }
                em.relocs.push(Reloc {
                    at: em.out.len(),
                    target: RelocTarget::Func(*callee),
                });
                em.e(MI::Jal { target: 0 });
                em.nop(); // delay slot
                let _ = tac;
                if let Some(d) = dst {
                    let t = em.target(*d, S1);
                    em.mv(t, V0);
                    em.writeback(*d, t);
                }
            }
            Instr::Ret { value } => {
                if let Some(v) = value {
                    match v {
                        Operand::Imm(c) => em.li(V0, *c),
                        Operand::V(_) => {
                            let r = em.read(*v, V0);
                            em.mv(V0, r);
                        }
                    }
                }
                epilogue(&mut em);
            }
            Instr::Jmp(l) => {
                // `b label` == beq $zero, $zero (PC-relative, unlike J).
                em.branch(
                    MI::Beq {
                        rs: ZERO,
                        rt: ZERO,
                        off: 0,
                    },
                    *l,
                );
            }
            Instr::BrCmp {
                rel,
                a,
                b,
                taken,
                fall,
            } => {
                emit_brcmp(&mut em, *rel, *a, *b, *taken);
                emit_fall(&mut em, f, ti, *fall);
            }
            Instr::BrNz { cond, taken, fall } => {
                let c = em.read(*cond, S1);
                em.branch(
                    MI::Bne {
                        rs: c,
                        rt: ZERO,
                        off: 0,
                    },
                    *taken,
                );
                emit_fall(&mut em, f, ti, *fall);
            }
        }
    }
    // Emit a trailing epilogue unless the function already cannot fall
    // off the end (Ret emitted one; Jmp/branches never fall through —
    // e.g. an optimized infinite loop ends in a bare Jmp).
    if !matches!(
        f.instrs.last(),
        Some(Instr::Ret { .. })
            | Some(Instr::Jmp(_))
            | Some(Instr::BrCmp { .. })
            | Some(Instr::BrNz { .. })
    ) {
        epilogue(&mut em);
    }

    if profile.fill_delay_slots {
        fill_delay_slots(&mut em);
    }

    // Resolve intra-function branch offsets.
    let label_at = em.label_at.clone();
    for (idx, l) in em.fixups.clone() {
        let target = label_at[&l] as i32;
        let off = target - (idx as i32 + 1);
        set_branch_target(&mut em.out[idx], off as i16);
    }

    Ok(FnOut {
        name: f.name.clone(),
        exported: f.exported,
        instrs: em.out,
        relocs: em.relocs,
    })
}

fn emit_load(em: &mut Emitter, elem: crate::ast::ElemType, d: Gpr, base: Gpr, off: i16) {
    match elem {
        crate::ast::ElemType::Int => em.e(MI::Lw { rt: d, base, off }),
        crate::ast::ElemType::Byte => em.e(MI::Lbu { rt: d, base, off }),
    }
}

fn emit_store(em: &mut Emitter, elem: crate::ast::ElemType, v: Gpr, base: Gpr, off: i16) {
    match elem {
        crate::ast::ElemType::Int => em.e(MI::Sw { rt: v, base, off }),
        crate::ast::ElemType::Byte => em.e(MI::Sb { rt: v, base, off }),
    }
}

/// Comparison as a 0/1 value.
fn emit_cmp_value(em: &mut Emitter, rel: Rel, d: Gpr, a: Gpr, b: Gpr) {
    match rel {
        Rel::Lt => em.e(MI::Slt {
            rd: d,
            rs: a,
            rt: b,
        }),
        Rel::Gt => em.e(MI::Slt {
            rd: d,
            rs: b,
            rt: a,
        }),
        Rel::Le => {
            em.e(MI::Slt {
                rd: d,
                rs: b,
                rt: a,
            });
            em.e(MI::Xori {
                rt: d,
                rs: d,
                imm: 1,
            });
        }
        Rel::Ge => {
            em.e(MI::Slt {
                rd: d,
                rs: a,
                rt: b,
            });
            em.e(MI::Xori {
                rt: d,
                rs: d,
                imm: 1,
            });
        }
        Rel::Eq => {
            em.e(MI::Xor {
                rd: d,
                rs: a,
                rt: b,
            });
            em.e(MI::Sltiu {
                rt: d,
                rs: d,
                imm: 1,
            });
        }
        Rel::Ne => {
            em.e(MI::Xor {
                rd: d,
                rs: a,
                rt: b,
            });
            em.e(MI::Sltu {
                rd: d,
                rs: ZERO,
                rt: d,
            });
        }
    }
}

fn emit_brcmp(em: &mut Emitter, rel: Rel, a: Operand, b: Operand, taken: Label) {
    // Compare-to-zero forms use the dedicated MIPS branches.
    if b == Operand::Imm(0) {
        let ra_ = em.read(a, S1);
        let i = match rel {
            Rel::Eq => MI::Beq {
                rs: ra_,
                rt: ZERO,
                off: 0,
            },
            Rel::Ne => MI::Bne {
                rs: ra_,
                rt: ZERO,
                off: 0,
            },
            Rel::Lt => MI::Bltz { rs: ra_, off: 0 },
            Rel::Ge => MI::Bgez { rs: ra_, off: 0 },
            Rel::Le => MI::Blez { rs: ra_, off: 0 },
            Rel::Gt => MI::Bgtz { rs: ra_, off: 0 },
        };
        em.branch(i, taken);
        return;
    }
    let ra_ = em.read(a, S1);
    let rb = em.read(b, S2);
    match rel {
        Rel::Eq => em.branch(
            MI::Beq {
                rs: ra_,
                rt: rb,
                off: 0,
            },
            taken,
        ),
        Rel::Ne => em.branch(
            MI::Bne {
                rs: ra_,
                rt: rb,
                off: 0,
            },
            taken,
        ),
        Rel::Lt => {
            em.e(MI::Slt {
                rd: S1,
                rs: ra_,
                rt: rb,
            });
            em.branch(
                MI::Bne {
                    rs: S1,
                    rt: ZERO,
                    off: 0,
                },
                taken,
            );
        }
        Rel::Ge => {
            em.e(MI::Slt {
                rd: S1,
                rs: ra_,
                rt: rb,
            });
            em.branch(
                MI::Beq {
                    rs: S1,
                    rt: ZERO,
                    off: 0,
                },
                taken,
            );
        }
        Rel::Gt => {
            em.e(MI::Slt {
                rd: S1,
                rs: rb,
                rt: ra_,
            });
            em.branch(
                MI::Bne {
                    rs: S1,
                    rt: ZERO,
                    off: 0,
                },
                taken,
            );
        }
        Rel::Le => {
            em.e(MI::Slt {
                rd: S1,
                rs: rb,
                rt: ra_,
            });
            em.branch(
                MI::Beq {
                    rs: S1,
                    rt: ZERO,
                    off: 0,
                },
                taken,
            );
        }
    }
}

/// Emit the fall-through edge unless the next TAC instruction is exactly
/// the fall label.
fn emit_fall(em: &mut Emitter, f: &TacFunction, ti: usize, fall: Label) {
    if matches!(f.instrs.get(ti + 1), Some(Instr::Label(l)) if *l == fall) {
        return;
    }
    em.branch(
        MI::Beq {
            rs: ZERO,
            rt: ZERO,
            off: 0,
        },
        fall,
    );
}

/// Move a safe preceding instruction into each branch's delay slot,
/// replacing the NOP. Operates before offsets are resolved, updating
/// label positions, fixups and relocations accordingly.
fn fill_delay_slots(em: &mut Emitter) {
    let mut i = 1;
    while i + 1 < em.out.len() {
        let is_branch = em.fixups.iter().any(|&(b, _)| b == i)
            || matches!(em.out[i], MI::Jal { .. } | MI::Jr { .. });
        let nop_after = em.out[i + 1]
            == MI::Sll {
                rd: ZERO,
                rt: ZERO,
                sh: 0,
            };
        if !(is_branch && nop_after) {
            i += 1;
            continue;
        }
        let cand_idx = i - 1;
        let cand = em.out[cand_idx];
        let cand_writes = writes(&cand);
        let br_reads = branch_reads(&em.out[i]);
        let labels_block = em
            .label_at
            .values()
            .any(|&p| p == cand_idx || p == i || p == i + 1);
        let reloc_block = em
            .relocs
            .iter()
            .any(|r| r.at == cand_idx || r.at + 1 == cand_idx || r.at == i);
        let fixup_block = em.fixups.iter().any(|&(b, _)| b == cand_idx);
        // The candidate must not itself sit in the delay slot of an
        // earlier branch.
        let in_prev_slot = cand_idx > 0
            && (em.fixups.iter().any(|&(b, _)| b == cand_idx - 1)
                || matches!(em.out[cand_idx - 1], MI::Jal { .. } | MI::Jr { .. }));
        let safe = !in_prev_slot
            && is_simple_fill_candidate(&cand)
            && !labels_block
            && !reloc_block
            && !fixup_block
            && cand_writes.is_none_or(|w| !br_reads.contains(&w));
        if !safe {
            i += 1;
            continue;
        }
        // [cand, br, nop] → [br, cand]; indices ≥ i+1 shift down by one,
        // and the branch moves from i to i-1.
        em.out.remove(i + 1); // drop nop
        em.out.swap(cand_idx, i);
        for (b, _) in &mut em.fixups {
            if *b == i {
                *b = cand_idx;
            } else if *b > i + 1 {
                *b -= 1;
            }
        }
        for r in &mut em.relocs {
            if r.at == i {
                r.at = cand_idx; // jal moved up
            } else if r.at > i + 1 {
                r.at -= 1;
            }
        }
        for p in em.label_at.values_mut() {
            if *p > i + 1 {
                *p -= 1;
            }
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::sema::check;
    use crate::tac::lower;

    fn build(src: &str, profile: &ToolchainProfile) -> LinkedBinary {
        let p = parse(src).unwrap();
        check(&p).unwrap();
        let mut t = lower(&p);
        crate::opt::optimize(&mut t, profile.opt_flags());
        compile(&t, profile, MemLayout::default()).unwrap()
    }

    #[test]
    fn trivial_function_encodes_and_decodes() {
        let lb = build(
            "fn main() -> int { return 42; }",
            &ToolchainProfile::gcc_like(),
        );
        assert!(!lb.text.is_empty());
        // Every word decodes.
        let mut off = 0;
        while off < lb.text.len() {
            firmup_isa::mips::decode(&lb.text, off, lb.text_base + off as u32)
                .unwrap_or_else(|e| panic!("undecodable at {off}: {e}"));
            off += 4;
        }
    }

    #[test]
    fn call_reloc_points_at_callee() {
        let lb = build(
            "fn leaf() -> int { return 3; } fn helper() -> int { return leaf() + 7; } fn main() -> int { return helper(); }",
            &ToolchainProfile::gcc_like(),
        );
        let helper_addr = lb.symbols.iter().find(|s| s.0 == "helper").unwrap().1;
        // Find the jal in main and check its target.
        let main = lb.symbols.iter().find(|s| s.0 == "main").unwrap();
        let lo = (main.1 - lb.text_base) as usize;
        let hi = lo + main.2 as usize;
        let mut off = lo;
        let mut found = false;
        while off < hi {
            let (i, _) =
                firmup_isa::mips::decode(&lb.text, off, lb.text_base + off as u32).unwrap();
            if let MI::Jal { target } = i {
                assert_eq!(target, helper_addr);
                found = true;
            }
            off += 4;
        }
        assert!(found, "no jal found in main");
    }

    #[test]
    fn o0_spills_everything() {
        let src = "fn main(a: int, b: int) -> int { var c = a + b; return c; }";
        let o0 = build(src, &ToolchainProfile::vendor_debug());
        let o2 = build(src, &ToolchainProfile::gcc_like());
        assert!(
            o0.text.len() > o2.text.len(),
            "O0 ({}) should be bigger than O2 ({})",
            o0.text.len(),
            o2.text.len()
        );
    }

    #[test]
    fn delay_slot_filling_removes_nops() {
        let src =
            "fn main(a: int, b: int) -> int { var c = a + 1; if (c < b) { return c; } return b; }";
        let filled = build(src, &ToolchainProfile::gcc_like());
        let mut unfilled_profile = ToolchainProfile::gcc_like();
        unfilled_profile.fill_delay_slots = false;
        let unfilled = build(src, &unfilled_profile);
        let count_nops = |lb: &LinkedBinary| {
            let mut n = 0;
            let mut off = 0;
            while off < lb.text.len() {
                if lb.text[off..off + 4] == [0, 0, 0, 0] {
                    n += 1;
                }
                off += 4;
            }
            n
        };
        assert!(count_nops(&filled) <= count_nops(&unfilled));
    }

    #[test]
    fn global_access_compiles() {
        let lb = build(
            "global buf: [byte; 16]; global tbl: [int; 4]; fn main(i: int) -> int { buf[i] = 65; tbl[2] = i; return buf[i] + tbl[2]; }",
            &ToolchainProfile::gcc_like(),
        );
        // lui for the data segment must appear.
        let mut found_lui = false;
        let mut off = 0;
        while off < lb.text.len() {
            let (i, _) =
                firmup_isa::mips::decode(&lb.text, off, lb.text_base + off as u32).unwrap();
            if let MI::Lui { imm, .. } = i {
                if imm == (lb.data_base >> 16) as u16 {
                    found_lui = true;
                }
            }
            off += 4;
        }
        assert!(found_lui);
    }

    #[test]
    fn rejects_too_many_params() {
        let src = "fn f(a: int, b: int, c: int, d: int, e: int) -> int { return a; } fn main() -> int { return f(1,2,3,4,5); }";
        let p = parse(src).unwrap();
        check(&p).unwrap();
        let t = lower(&p);
        assert!(compile(&t, &ToolchainProfile::gcc_like(), MemLayout::default()).is_err());
    }
}
