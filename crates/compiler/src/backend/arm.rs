//! ARM32 back end.

use std::collections::HashMap;

use firmup_isa::arm::{Cond, DpOp, Instr as MI, Operand2, Shift, LR, SP};

use crate::emit::{link, CompileError, FnOut, LinkedBinary, MemLayout, Reloc, RelocTarget};
use crate::profile::ToolchainProfile;
use crate::regalloc::{allocate, Allocation, Loc, RegPools};
use crate::tac::{Instr, Label, Operand, Rel, TBin, TUn, TacFunction, TacProgram, VReg};

/// First scratch register (`r11`, the vendor-agnostic choice).
const S1: u8 = 11;
/// Second scratch (`r12`/ip, the ABI's intra-procedure scratch).
const S2: u8 = 12;
const ARGS: [u8; 4] = [0, 1, 2, 3];
const RET: u8 = 0;

fn pools(profile: &ToolchainProfile) -> RegPools {
    if profile.opt == crate::profile::OptLevel::O0 {
        return RegPools {
            caller_saved: vec![],
            callee_saved: vec![],
        };
    }
    let mut callee: Vec<u16> = (4..=10).collect(); // r4-r10
    profile.reg_order.apply(&mut callee);
    RegPools {
        caller_saved: vec![], // r0-r3 are argument registers; keep them free
        callee_saved: callee,
    }
}

struct Frame {
    size: u32,
    save_base: u32,
    lr_off: Option<u32>,
}

fn frame_layout(alloc: &Allocation, is_leaf: bool, profile: &ToolchainProfile) -> Frame {
    let spill_bytes = alloc.spill_slots * 4;
    let save_bytes = alloc.used_callee_saved.len() as u32 * 4;
    let lr_bytes = if is_leaf { 0 } else { 4 };
    let mut size = spill_bytes + save_bytes + lr_bytes + profile.frame_padding;
    size = (size + 7) & !7;
    Frame {
        size,
        save_base: spill_bytes,
        lr_off: (!is_leaf).then_some(spill_bytes + save_bytes),
    }
}

struct Emitter<'a> {
    out: Vec<MI>,
    relocs: Vec<Reloc>,
    label_at: HashMap<Label, usize>,
    fixups: Vec<(usize, Label)>,
    alloc: &'a Allocation,
    frame: &'a Frame,
}

fn dp(op: DpOp, rd: u8, rn: u8, op2: Operand2) -> MI {
    MI::Dp {
        cond: Cond::Al,
        op,
        s: false,
        rn,
        rd,
        op2,
    }
}

impl<'a> Emitter<'a> {
    fn e(&mut self, i: MI) {
        self.out.push(i);
    }

    fn li(&mut self, dst: u8, v: i32) {
        let u = v as u32;
        if let Some(op2) = Operand2::try_imm(u) {
            self.e(dp(DpOp::Mov, dst, 0, op2));
        } else if let Some(op2) = Operand2::try_imm(!u) {
            self.e(dp(DpOp::Mvn, dst, 0, op2));
        } else {
            self.e(MI::Movw {
                cond: Cond::Al,
                rd: dst,
                imm: (u & 0xffff) as u16,
            });
            self.e(MI::Movt {
                cond: Cond::Al,
                rd: dst,
                imm: (u >> 16) as u16,
            });
        }
    }

    fn read(&mut self, op: Operand, scratch: u8) -> u8 {
        match op {
            Operand::Imm(v) => {
                self.li(scratch, v);
                scratch
            }
            Operand::V(v) => match self.alloc.of(v) {
                Loc::Reg(r) => r as u8,
                Loc::Spill(s) => {
                    self.e(MI::Ldr {
                        cond: Cond::Al,
                        byte: false,
                        rd: scratch,
                        rn: SP,
                        up: true,
                        off: (s * 4) as u16,
                    });
                    scratch
                }
            },
        }
    }

    /// Operand2 for the right-hand side: immediate when encodable.
    fn op2(&mut self, op: Operand, scratch: u8) -> Operand2 {
        if let Operand::Imm(v) = op {
            if let Some(o) = Operand2::try_imm(v as u32) {
                return o;
            }
        }
        Operand2::reg(self.read(op, scratch))
    }

    fn target(&self, dst: VReg, scratch: u8) -> u8 {
        match self.alloc.of(dst) {
            Loc::Reg(r) => r as u8,
            Loc::Spill(_) => scratch,
        }
    }

    fn writeback(&mut self, dst: VReg, from: u8) {
        if let Loc::Spill(s) = self.alloc.of(dst) {
            self.e(MI::Str {
                cond: Cond::Al,
                byte: false,
                rd: from,
                rn: SP,
                up: true,
                off: (s * 4) as u16,
            });
        }
    }

    fn mv(&mut self, dst: u8, src: u8) {
        if dst != src {
            self.e(dp(DpOp::Mov, dst, 0, Operand2::reg(src)));
        }
    }

    fn global_addr(&mut self, dst: u8, gid: usize) {
        self.relocs.push(Reloc {
            at: self.out.len(),
            target: RelocTarget::Global(gid),
        });
        self.e(MI::Movw {
            cond: Cond::Al,
            rd: dst,
            imm: 0,
        });
        self.e(MI::Movt {
            cond: Cond::Al,
            rd: dst,
            imm: 0,
        });
    }

    fn branch(&mut self, cond: Cond, l: Label) {
        self.fixups.push((self.out.len(), l));
        self.e(MI::B { cond, off: 0 });
    }
}

/// Compile a TAC program to a linked ARM binary.
pub(crate) fn compile(
    tac: &TacProgram,
    profile: &ToolchainProfile,
    layout: MemLayout,
) -> Result<LinkedBinary, CompileError> {
    let pools = pools(profile);
    let mut fns = Vec::with_capacity(tac.functions.len());
    for f in &tac.functions {
        fns.push(compile_fn(f, &pools, profile)?);
    }
    Ok(link(
        fns,
        &tac.globals,
        layout,
        |_| 4,
        patch,
        |i, out| {
            firmup_isa::arm::encode(i, out);
        },
    ))
}

fn patch(instrs: &mut [MI], at: usize, instr_addr: u32, target: u32) {
    match &mut instrs[at] {
        MI::Movw { imm, .. } => {
            *imm = (target & 0xffff) as u16;
            if let MI::Movt { imm, .. } = &mut instrs[at + 1] {
                *imm = (target >> 16) as u16;
            } else {
                unreachable!("global materialization must be movw+movt");
            }
        }
        MI::Bl { off, .. } => {
            *off = ((target.wrapping_sub(instr_addr.wrapping_add(8))) as i32) >> 2;
        }
        other => unreachable!("unexpected reloc site {other:?}"),
    }
}

fn rel_cond(rel: Rel) -> Cond {
    match rel {
        Rel::Lt => Cond::Lt,
        Rel::Le => Cond::Le,
        Rel::Gt => Cond::Gt,
        Rel::Ge => Cond::Ge,
        Rel::Eq => Cond::Eq,
        Rel::Ne => Cond::Ne,
    }
}

#[allow(clippy::too_many_lines)]
fn compile_fn(
    f: &TacFunction,
    pools: &RegPools,
    profile: &ToolchainProfile,
) -> Result<FnOut<MI>, CompileError> {
    if f.params.len() > ARGS.len() {
        return Err(crate::backend::too_many_params(&f.name, f.params.len()));
    }
    let alloc = allocate(f, pools);
    let is_leaf = !f.instrs.iter().any(|i| matches!(i, Instr::Call { .. }));
    let frame = frame_layout(&alloc, is_leaf, profile);
    let mut em = Emitter {
        out: Vec::new(),
        relocs: Vec::new(),
        label_at: HashMap::new(),
        fixups: Vec::new(),
        alloc: &alloc,
        frame: &frame,
    };

    // Prologue.
    if frame.size > 0 {
        let op2 = Operand2::try_imm(frame.size).expect("frame size is Operand2-encodable");
        em.e(dp(DpOp::Sub, SP, SP, op2));
    }
    if let Some(off) = frame.lr_off {
        em.e(MI::Str {
            cond: Cond::Al,
            byte: false,
            rd: LR,
            rn: SP,
            up: true,
            off: off as u16,
        });
    }
    for (k, &r) in alloc.used_callee_saved.iter().enumerate() {
        em.e(MI::Str {
            cond: Cond::Al,
            byte: false,
            rd: r as u8,
            rn: SP,
            up: true,
            off: (frame.save_base + 4 * k as u32) as u16,
        });
    }
    for (i, &p) in f.params.iter().enumerate() {
        match alloc.of(p) {
            Loc::Reg(r) => em.mv(r as u8, ARGS[i]),
            Loc::Spill(s) => em.e(MI::Str {
                cond: Cond::Al,
                byte: false,
                rd: ARGS[i],
                rn: SP,
                up: true,
                off: (s * 4) as u16,
            }),
        }
    }

    let epilogue = |em: &mut Emitter| {
        for (k, &r) in em.alloc.used_callee_saved.iter().enumerate() {
            em.e(MI::Ldr {
                cond: Cond::Al,
                byte: false,
                rd: r as u8,
                rn: SP,
                up: true,
                off: (em.frame.save_base + 4 * k as u32) as u16,
            });
        }
        if let Some(off) = em.frame.lr_off {
            em.e(MI::Ldr {
                cond: Cond::Al,
                byte: false,
                rd: LR,
                rn: SP,
                up: true,
                off: off as u16,
            });
        }
        if em.frame.size > 0 {
            let op2 = Operand2::try_imm(em.frame.size).expect("frame size encodable");
            em.e(dp(DpOp::Add, SP, SP, op2));
        }
        em.e(MI::Bx {
            cond: Cond::Al,
            rm: LR,
        });
    };

    for (ti, instr) in f.instrs.iter().enumerate() {
        match instr {
            Instr::Label(l) => {
                em.label_at.insert(*l, em.out.len());
            }
            Instr::Copy { dst, src } => {
                let d = em.target(*dst, S1);
                match src {
                    Operand::Imm(v) => em.li(d, *v),
                    Operand::V(_) => {
                        let s = em.read(*src, S1);
                        em.mv(d, s);
                    }
                }
                em.writeback(*dst, d);
            }
            Instr::Bin { op, dst, a, b } => {
                let ra_ = em.read(*a, S1);
                let d = em.target(*dst, S1);
                match op {
                    TBin::Add | TBin::Sub | TBin::And | TBin::Or | TBin::Xor => {
                        let op2 = em.op2(*b, S2);
                        let dop = match op {
                            TBin::Add => DpOp::Add,
                            TBin::Sub => DpOp::Sub,
                            TBin::And => DpOp::And,
                            TBin::Or => DpOp::Orr,
                            TBin::Xor => DpOp::Eor,
                            _ => unreachable!(),
                        };
                        em.e(dp(dop, d, ra_, op2));
                    }
                    TBin::Shl | TBin::Sar => {
                        let shift = if *op == TBin::Shl {
                            Shift::Lsl
                        } else {
                            Shift::Asr
                        };
                        match b {
                            Operand::Imm(v) => em.e(dp(
                                DpOp::Mov,
                                d,
                                0,
                                Operand2::Reg {
                                    rm: ra_,
                                    shift,
                                    amount: (*v & 31) as u8,
                                },
                            )),
                            Operand::V(_) => {
                                // Register-shift-by-register is outside our
                                // ARM subset; shift amounts are masked and
                                // materialized through repeated code. MinC
                                // programs use constant shifts in practice;
                                // fall back to a short loop-free sequence
                                // via scratch: not expressible — use mov +
                                // manual shift by masking to a constant is
                                // impossible, so clamp: emit shift by 0.
                                // In practice the packages never shift by a
                                // runtime amount on ARM targets.
                                let rb = em.read(*b, S2);
                                let _ = rb;
                                return Err(CompileError {
                                    message: format!(
                                        "function `{}`: ARM back end requires constant shift amounts",
                                        f.name
                                    ),
                                });
                            }
                        }
                    }
                    TBin::Mul => {
                        let rb = em.read(*b, S2);
                        // MUL rd, rm, rs requires rd != rm on ARMv5; route
                        // through S2 when they collide (rd == rs is fine).
                        if d == ra_ {
                            em.e(MI::Mul {
                                cond: Cond::Al,
                                rd: S2,
                                rm: ra_,
                                rs: rb,
                            });
                            em.mv(d, S2);
                        } else {
                            em.e(MI::Mul {
                                cond: Cond::Al,
                                rd: d,
                                rm: ra_,
                                rs: rb,
                            });
                        }
                    }
                    TBin::Cmp(rel) => {
                        let op2 = em.op2(*b, S2);
                        em.e(MI::Dp {
                            cond: Cond::Al,
                            op: DpOp::Cmp,
                            s: true,
                            rn: ra_,
                            rd: 0,
                            op2,
                        });
                        em.e(dp(DpOp::Mov, d, 0, Operand2::Imm { rot: 0, imm: 0 }));
                        em.e(MI::Dp {
                            cond: rel_cond(*rel),
                            op: DpOp::Mov,
                            s: false,
                            rn: 0,
                            rd: d,
                            op2: Operand2::Imm { rot: 0, imm: 1 },
                        });
                    }
                }
                em.writeback(*dst, d);
            }
            Instr::Un { op, dst, a } => {
                let ra_ = em.read(*a, S1);
                let d = em.target(*dst, S1);
                match op {
                    TUn::Neg => em.e(dp(DpOp::Rsb, d, ra_, Operand2::Imm { rot: 0, imm: 0 })),
                    TUn::BitNot => em.e(dp(DpOp::Mvn, d, 0, Operand2::reg(ra_))),
                    TUn::Not => {
                        em.e(MI::Dp {
                            cond: Cond::Al,
                            op: DpOp::Cmp,
                            s: true,
                            rn: ra_,
                            rd: 0,
                            op2: Operand2::Imm { rot: 0, imm: 0 },
                        });
                        em.e(dp(DpOp::Mov, d, 0, Operand2::Imm { rot: 0, imm: 0 }));
                        em.e(MI::Dp {
                            cond: Cond::Eq,
                            op: DpOp::Mov,
                            s: false,
                            rn: 0,
                            rd: d,
                            op2: Operand2::Imm { rot: 0, imm: 1 },
                        });
                    }
                }
                em.writeback(*dst, d);
            }
            Instr::AddrOf { dst, global } => {
                let d = em.target(*dst, S1);
                em.global_addr(d, *global);
                em.writeback(*dst, d);
            }
            Instr::Load {
                dst,
                global,
                index,
                elem,
            } => {
                em.global_addr(S1, *global);
                let d = em.target(*dst, S2);
                let byte = *elem == crate::ast::ElemType::Byte;
                match index {
                    Operand::Imm(i) => {
                        let off = i * elem.size() as i32;
                        if (0..4096).contains(&off) {
                            em.e(MI::Ldr {
                                cond: Cond::Al,
                                byte,
                                rd: d,
                                rn: S1,
                                up: true,
                                off: off as u16,
                            });
                        } else {
                            em.li(S2, off);
                            em.e(dp(DpOp::Add, S1, S1, Operand2::reg(S2)));
                            em.e(MI::Ldr {
                                cond: Cond::Al,
                                byte,
                                rd: d,
                                rn: S1,
                                up: true,
                                off: 0,
                            });
                        }
                    }
                    Operand::V(_) => {
                        let idx = em.read(*index, S2);
                        let op2 = if byte {
                            Operand2::reg(idx)
                        } else {
                            Operand2::Reg {
                                rm: idx,
                                shift: Shift::Lsl,
                                amount: 2,
                            }
                        };
                        em.e(dp(DpOp::Add, S1, S1, op2));
                        em.e(MI::Ldr {
                            cond: Cond::Al,
                            byte,
                            rd: d,
                            rn: S1,
                            up: true,
                            off: 0,
                        });
                    }
                }
                em.writeback(*dst, d);
            }
            Instr::Store {
                global,
                index,
                value,
                elem,
            } => {
                em.global_addr(S1, *global);
                let byte = *elem == crate::ast::ElemType::Byte;
                let mut off = 0u16;
                match index {
                    Operand::Imm(i) => {
                        let o = i * elem.size() as i32;
                        if (0..4096).contains(&o) {
                            off = o as u16;
                        } else {
                            em.li(S2, o);
                            em.e(dp(DpOp::Add, S1, S1, Operand2::reg(S2)));
                        }
                    }
                    Operand::V(_) => {
                        let idx = em.read(*index, S2);
                        let op2 = if byte {
                            Operand2::reg(idx)
                        } else {
                            Operand2::Reg {
                                rm: idx,
                                shift: Shift::Lsl,
                                amount: 2,
                            }
                        };
                        em.e(dp(DpOp::Add, S1, S1, op2));
                    }
                }
                let v = em.read(*value, S2);
                em.e(MI::Str {
                    cond: Cond::Al,
                    byte,
                    rd: v,
                    rn: S1,
                    up: true,
                    off,
                });
            }
            Instr::LoadPtr { dst, addr, elem } => {
                let a = em.read(*addr, S1);
                let d = em.target(*dst, S2);
                em.e(MI::Ldr {
                    cond: Cond::Al,
                    byte: *elem == crate::ast::ElemType::Byte,
                    rd: d,
                    rn: a,
                    up: true,
                    off: 0,
                });
                em.writeback(*dst, d);
            }
            Instr::StorePtr { addr, value, elem } => {
                let a = em.read(*addr, S1);
                let v = em.read(*value, S2);
                em.e(MI::Str {
                    cond: Cond::Al,
                    byte: *elem == crate::ast::ElemType::Byte,
                    rd: v,
                    rn: a,
                    up: true,
                    off: 0,
                });
            }
            Instr::Call { dst, callee, args } => {
                for (i, a) in args.iter().enumerate() {
                    match a {
                        Operand::Imm(v) => em.li(ARGS[i], *v),
                        Operand::V(_) => {
                            let r = em.read(*a, ARGS[i]);
                            em.mv(ARGS[i], r);
                        }
                    }
                }
                em.relocs.push(Reloc {
                    at: em.out.len(),
                    target: RelocTarget::Func(*callee),
                });
                em.e(MI::Bl {
                    cond: Cond::Al,
                    off: 0,
                });
                if let Some(d) = dst {
                    let t = em.target(*d, S1);
                    em.mv(t, RET);
                    em.writeback(*d, t);
                }
            }
            Instr::Ret { value } => {
                if let Some(v) = value {
                    match v {
                        Operand::Imm(c) => em.li(RET, *c),
                        Operand::V(_) => {
                            let r = em.read(*v, RET);
                            em.mv(RET, r);
                        }
                    }
                }
                epilogue(&mut em);
            }
            Instr::Jmp(l) => em.branch(Cond::Al, *l),
            Instr::BrCmp {
                rel,
                a,
                b,
                taken,
                fall,
            } => {
                let ra_ = em.read(*a, S1);
                let op2 = em.op2(*b, S2);
                em.e(MI::Dp {
                    cond: Cond::Al,
                    op: DpOp::Cmp,
                    s: true,
                    rn: ra_,
                    rd: 0,
                    op2,
                });
                em.branch(rel_cond(*rel), *taken);
                emit_fall(&mut em, f, ti, *fall);
            }
            Instr::BrNz { cond, taken, fall } => {
                let c = em.read(*cond, S1);
                em.e(MI::Dp {
                    cond: Cond::Al,
                    op: DpOp::Cmp,
                    s: true,
                    rn: c,
                    rd: 0,
                    op2: Operand2::Imm { rot: 0, imm: 0 },
                });
                em.branch(Cond::Ne, *taken);
                emit_fall(&mut em, f, ti, *fall);
            }
        }
    }
    if !matches!(
        f.instrs.last(),
        Some(Instr::Ret { .. })
            | Some(Instr::Jmp(_))
            | Some(Instr::BrCmp { .. })
            | Some(Instr::BrNz { .. })
    ) {
        epilogue(&mut em);
    }

    // Resolve branches: rel24 measured from PC = idx + 2 words.
    for (idx, l) in em.fixups.clone() {
        let target = em.label_at[&l] as i32;
        let off = target - (idx as i32 + 2);
        if let MI::B { off: o, .. } = &mut em.out[idx] {
            *o = off;
        } else {
            unreachable!("fixup at non-branch");
        }
    }

    Ok(FnOut {
        name: f.name.clone(),
        exported: f.exported,
        instrs: em.out,
        relocs: em.relocs,
    })
}

fn emit_fall(em: &mut Emitter, f: &TacFunction, ti: usize, fall: Label) {
    if matches!(f.instrs.get(ti + 1), Some(Instr::Label(l)) if *l == fall) {
        return;
    }
    em.branch(Cond::Al, fall);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::sema::check;
    use crate::tac::lower;

    fn build(src: &str, profile: &ToolchainProfile) -> LinkedBinary {
        let p = parse(src).unwrap();
        check(&p).unwrap();
        let mut t = lower(&p);
        crate::opt::optimize(&mut t, profile.opt_flags());
        compile(&t, profile, MemLayout::default()).unwrap()
    }

    fn decode_all(lb: &LinkedBinary) -> Vec<MI> {
        let mut out = Vec::new();
        let mut off = 0;
        while off < lb.text.len() {
            let (i, _) = firmup_isa::arm::decode(&lb.text, off, lb.text_base + off as u32)
                .unwrap_or_else(|e| panic!("undecodable at {off}: {e}"));
            out.push(i);
            off += 4;
        }
        out
    }

    #[test]
    fn whole_binary_decodes() {
        let lb = build(
            "global b: [byte; 8]; fn helper(x: int) -> int { return x * 3; } fn main(a: int) -> int { b[a] = 1; if (a < 10 && a != 5) { return helper(a); } return b[a]; }",
            &ToolchainProfile::gcc_like(),
        );
        let instrs = decode_all(&lb);
        assert!(instrs.len() > 10);
    }

    #[test]
    fn bl_reloc_resolves() {
        let lb = build(
            "fn leaf() -> int { return 3; } fn callee() -> int { return leaf() + 1; } fn main() -> int { return callee(); }",
            &ToolchainProfile::gcc_like(),
        );
        let callee = lb.symbols.iter().find(|s| s.0 == "callee").unwrap().1;
        let main = lb.symbols.iter().find(|s| s.0 == "main").unwrap();
        let lo = (main.1 - lb.text_base) as usize;
        let mut off = lo;
        let mut ok = false;
        while off < lo + main.2 as usize {
            let addr = lb.text_base + off as u32;
            let (i, _) = firmup_isa::arm::decode(&lb.text, off, addr).unwrap();
            if let MI::Bl { off: rel, .. } = i {
                assert_eq!(addr.wrapping_add(8).wrapping_add((rel << 2) as u32), callee);
                ok = true;
            }
            off += 4;
        }
        assert!(ok, "no bl in main");
    }

    #[test]
    fn conditional_mov_used_for_comparisons() {
        let lb = build(
            "fn main(a: int, b: int) -> int { var c = a < b; return c; }",
            &ToolchainProfile::gcc_like(),
        );
        let has_cond_mov = decode_all(&lb).iter().any(|i| {
            matches!(
                i,
                MI::Dp {
                    cond: Cond::Lt,
                    op: DpOp::Mov,
                    ..
                }
            )
        });
        assert!(has_cond_mov, "comparison value should use movlt");
    }

    #[test]
    fn o0_vs_o2_size_difference() {
        let src = "fn main(a: int, b: int) -> int { var c = a + b; var d = c * 2; return d; }";
        let o0 = build(src, &ToolchainProfile::vendor_debug());
        let o2 = build(src, &ToolchainProfile::gcc_like());
        assert!(o0.text.len() > o2.text.len());
    }
}
