//! Per-architecture instruction selection and code generation.
//!
//! Each back end consumes optimized TAC plus a register
//! [`Allocation`](crate::regalloc::Allocation)
//! and produces machine instructions with pending relocations, which
//! [`crate::emit::link`] resolves. The back ends intentionally differ in
//! idiom — constant materialization, compare-and-branch shapes, frame
//! conventions — because that per-toolchain/per-architecture variance is
//! the phenomenon the FirmUp pipeline exists to see through.

pub(crate) mod arm;
pub(crate) mod mips;
pub(crate) mod ppc;
pub(crate) mod x86;

use firmup_isa::Arch;

use crate::emit::{CompileError, LinkedBinary, MemLayout};
use crate::profile::ToolchainProfile;
use crate::tac::TacProgram;

/// Compile an (already optimized) TAC program for `arch`.
///
/// # Errors
///
/// Returns [`CompileError`] for programs a back end cannot express (e.g.
/// more than four parameters on a RISC target).
pub fn compile_tac(
    tac: &TacProgram,
    arch: Arch,
    profile: &ToolchainProfile,
    layout: MemLayout,
) -> Result<LinkedBinary, CompileError> {
    match arch {
        Arch::Mips32 => mips::compile(tac, profile, layout),
        Arch::Arm32 => arm::compile(tac, profile, layout),
        Arch::Ppc32 => ppc::compile(tac, profile, layout),
        Arch::X86 => x86::compile(tac, profile, layout),
    }
}

/// The maximum number of register-passed parameters on the RISC targets.
pub const MAX_REG_PARAMS: usize = 4;

pub(crate) fn too_many_params(name: &str, n: usize) -> CompileError {
    CompileError {
        message: format!("function `{name}` has {n} parameters; the RISC back ends support at most {MAX_REG_PARAMS}"),
    }
}
