//! Intel x86 (32-bit) back end: stack-based calling convention,
//! two-operand instructions, EBP frames.

use std::collections::HashMap;

use firmup_isa::x86::{AluOp, Cc, Instr as MI, Mem, ShiftKind, EAX, EBP, ECX, ESP};

use crate::emit::{link, CompileError, FnOut, LinkedBinary, MemLayout, Reloc, RelocTarget};
use crate::profile::ToolchainProfile;
use crate::regalloc::{allocate, Allocation, Loc, RegPools};
use crate::tac::{Instr, Label, Operand, Rel, TBin, TUn, TacFunction, TacProgram, VReg};

/// First scratch register.
const S1: u8 = EAX;
/// Second scratch register.
const S2: u8 = ECX;

fn pools(profile: &ToolchainProfile) -> RegPools {
    if profile.opt == crate::profile::OptLevel::O0 {
        return RegPools {
            caller_saved: vec![],
            callee_saved: vec![],
        };
    }
    let mut caller: Vec<u16> = vec![u16::from(firmup_isa::x86::EDX)];
    let mut callee: Vec<u16> = vec![
        u16::from(firmup_isa::x86::EBX),
        u16::from(firmup_isa::x86::ESI),
        u16::from(firmup_isa::x86::EDI),
    ];
    profile.reg_order.apply(&mut caller);
    profile.reg_order.apply(&mut callee);
    RegPools {
        caller_saved: caller,
        callee_saved: callee,
    }
}

struct Frame {
    /// Bytes subtracted from ESP after the EBP push.
    locals: u32,
    /// `[ebp - save_off - 4k]` holds callee-saved register k.
    save_off: u32,
    /// `[ebp - spill_off - 4s]` holds spill slot s.
    spill_off: u32,
}

fn frame_layout(alloc: &Allocation, profile: &ToolchainProfile) -> Frame {
    let save_bytes = alloc.used_callee_saved.len() as u32 * 4;
    let spill_bytes = alloc.spill_slots * 4;
    let locals = (save_bytes + spill_bytes + profile.frame_padding + 3) & !3;
    Frame {
        locals,
        save_off: 4,
        spill_off: 4 + save_bytes,
    }
}

struct Emitter<'a> {
    out: Vec<MI>,
    relocs: Vec<Reloc>,
    label_at: HashMap<Label, usize>,
    fixups: Vec<(usize, Label)>,
    alloc: &'a Allocation,
    frame: &'a Frame,
}

impl<'a> Emitter<'a> {
    fn e(&mut self, i: MI) {
        self.out.push(i);
    }

    fn spill_mem(&self, s: u32) -> Mem {
        Mem::base_disp(EBP, -((self.frame.spill_off + 4 * s) as i32))
    }

    fn read(&mut self, op: Operand, scratch: u8) -> u8 {
        match op {
            Operand::Imm(v) => {
                self.e(MI::MovRI {
                    dst: scratch,
                    imm: v as u32,
                });
                scratch
            }
            Operand::V(v) => match self.alloc.of(v) {
                Loc::Reg(r) => r as u8,
                Loc::Spill(s) => {
                    let mem = self.spill_mem(s);
                    self.e(MI::Load { dst: scratch, mem });
                    scratch
                }
            },
        }
    }

    fn target(&self, dst: VReg, scratch: u8) -> u8 {
        match self.alloc.of(dst) {
            Loc::Reg(r) => r as u8,
            Loc::Spill(_) => scratch,
        }
    }

    fn writeback(&mut self, dst: VReg, from: u8) {
        if let Loc::Spill(s) = self.alloc.of(dst) {
            let mem = self.spill_mem(s);
            self.e(MI::Store { mem, src: from });
        }
    }

    fn mv(&mut self, dst: u8, src: u8) {
        if dst != src {
            self.e(MI::MovRR { dst, src });
        }
    }

    /// `mov dst, <global address>` (relocated; the placeholder immediate
    /// is an addend).
    fn global_addr(&mut self, dst: u8, gid: usize, addend: u32) {
        self.relocs.push(Reloc {
            at: self.out.len(),
            target: RelocTarget::Global(gid),
        });
        self.e(MI::MovRI { dst, imm: addend });
    }

    fn branch(&mut self, cc: Option<Cc>, l: Label) {
        self.fixups.push((self.out.len(), l));
        match cc {
            Some(cc) => self.e(MI::Jcc { cc, rel: 0 }),
            None => self.e(MI::JmpRel { rel: 0 }),
        }
    }
}

fn rel_cc(rel: Rel) -> Cc {
    match rel {
        Rel::Lt => Cc::L,
        Rel::Le => Cc::Le,
        Rel::Gt => Cc::G,
        Rel::Ge => Cc::Ge,
        Rel::Eq => Cc::E,
        Rel::Ne => Cc::Ne,
    }
}

/// Compile a TAC program to a linked x86 binary.
pub(crate) fn compile(
    tac: &TacProgram,
    profile: &ToolchainProfile,
    layout: MemLayout,
) -> Result<LinkedBinary, CompileError> {
    let pools = pools(profile);
    let mut fns = Vec::with_capacity(tac.functions.len());
    for f in &tac.functions {
        fns.push(compile_fn(f, &pools, profile)?);
    }
    Ok(link(
        fns,
        &tac.globals,
        layout,
        firmup_isa::x86::encoded_len,
        patch,
        |i, out| {
            firmup_isa::x86::encode(i, out);
        },
    ))
}

fn patch(instrs: &mut [MI], at: usize, instr_addr: u32, target: u32) {
    match &mut instrs[at] {
        // Address materialization: the placeholder immediate is an addend.
        MI::MovRI { imm, .. } => *imm = imm.wrapping_add(target),
        // Absolute memory operands: placeholder disp is an addend.
        MI::Load { mem, .. }
        | MI::Store { mem, .. }
        | MI::Load8Z { mem, .. }
        | MI::Load8S { mem, .. }
        | MI::Store8 { mem, .. }
        | MI::Lea { mem, .. } => {
            debug_assert!(mem.base.is_none(), "global reloc on a based operand");
            mem.disp = mem.disp.wrapping_add(target as i32);
        }
        MI::CallRel { rel } => {
            // CallRel is always 5 bytes.
            *rel = target.wrapping_sub(instr_addr.wrapping_add(5)) as i32;
        }
        other => unreachable!("unexpected reloc site {other:?}"),
    }
}

/// `d = a op b` honouring x86's two-operand form.
fn emit_alu(em: &mut Emitter, op: AluOp, d: u8, ra_: u8, b: Operand) {
    // Destination aliases the right operand: compute in scratch.
    let rb_reg = match b {
        Operand::V(v) => match em.alloc.of(v) {
            Loc::Reg(r) => Some(r as u8),
            Loc::Spill(_) => None,
        },
        Operand::Imm(_) => None,
    };
    if rb_reg == Some(d) && d != ra_ {
        em.mv(S1, ra_);
        em.e(MI::AluRR {
            op,
            dst: S1,
            src: d,
        });
        em.mv(d, S1);
        return;
    }
    em.mv(d, ra_);
    match b {
        Operand::Imm(v) => em.e(MI::AluRI {
            op,
            dst: d,
            imm: v as u32,
        }),
        Operand::V(v) => match em.alloc.of(v) {
            Loc::Reg(r) => em.e(MI::AluRR {
                op,
                dst: d,
                src: r as u8,
            }),
            Loc::Spill(s) => {
                let mem = em.spill_mem(s);
                em.e(MI::AluRM { op, dst: d, mem });
            }
        },
    }
}

/// Compare `a` against `b`, setting EFLAGS.
fn emit_cmp(em: &mut Emitter, a: Operand, b: Operand) {
    let ra_ = em.read(a, S1);
    match b {
        Operand::Imm(v) => em.e(MI::AluRI {
            op: AluOp::Cmp,
            dst: ra_,
            imm: v as u32,
        }),
        Operand::V(_) => {
            let rb = em.read(b, S2);
            em.e(MI::AluRR {
                op: AluOp::Cmp,
                dst: ra_,
                src: rb,
            });
        }
    }
}

#[allow(clippy::too_many_lines)]
fn compile_fn(
    f: &TacFunction,
    pools: &RegPools,
    profile: &ToolchainProfile,
) -> Result<FnOut<MI>, CompileError> {
    let alloc = allocate(f, pools);
    let frame = frame_layout(&alloc, profile);
    let mut em = Emitter {
        out: Vec::new(),
        relocs: Vec::new(),
        label_at: HashMap::new(),
        fixups: Vec::new(),
        alloc: &alloc,
        frame: &frame,
    };

    // Prologue.
    em.e(MI::Push { src: EBP });
    em.e(MI::MovRR { dst: EBP, src: ESP });
    if frame.locals > 0 {
        em.e(MI::AluRI {
            op: AluOp::Sub,
            dst: ESP,
            imm: frame.locals,
        });
    }
    for (k, &r) in alloc.used_callee_saved.iter().enumerate() {
        em.e(MI::Store {
            mem: Mem::base_disp(EBP, -((frame.save_off + 4 * k as u32) as i32)),
            src: r as u8,
        });
    }
    // Parameters: [ebp + 8 + 4i].
    for (i, &p) in f.params.iter().enumerate() {
        let src = Mem::base_disp(EBP, 8 + 4 * i as i32);
        match alloc.of(p) {
            Loc::Reg(r) => em.e(MI::Load {
                dst: r as u8,
                mem: src,
            }),
            Loc::Spill(s) => {
                em.e(MI::Load { dst: S1, mem: src });
                let mem = em.spill_mem(s);
                em.e(MI::Store { mem, src: S1 });
            }
        }
    }

    let epilogue = |em: &mut Emitter| {
        for (k, &r) in em.alloc.used_callee_saved.iter().enumerate() {
            em.e(MI::Load {
                dst: r as u8,
                mem: Mem::base_disp(EBP, -((em.frame.save_off + 4 * k as u32) as i32)),
            });
        }
        em.e(MI::MovRR { dst: ESP, src: EBP });
        em.e(MI::Pop { dst: EBP });
        em.e(MI::Ret);
    };

    /// `d = (flags satisfy cc) ? 1 : 0` without SETcc: the Jcc skips the
    /// 5-byte `mov d, 0`.
    fn set_bool(em: &mut Emitter, d: u8, cc: Cc) {
        em.e(MI::MovRI { dst: d, imm: 1 });
        em.e(MI::Jcc { cc, rel: 5 });
        em.e(MI::MovRI { dst: d, imm: 0 });
    }

    for (ti, instr) in f.instrs.iter().enumerate() {
        match instr {
            Instr::Label(l) => {
                em.label_at.insert(*l, em.out.len());
            }
            Instr::Copy { dst, src } => {
                let d = em.target(*dst, S1);
                match src {
                    Operand::Imm(v) => em.e(MI::MovRI {
                        dst: d,
                        imm: *v as u32,
                    }),
                    Operand::V(_) => {
                        let s = em.read(*src, S1);
                        em.mv(d, s);
                    }
                }
                em.writeback(*dst, d);
            }
            Instr::Bin { op, dst, a, b } => {
                let d = em.target(*dst, S1);
                match op {
                    TBin::Add | TBin::Sub | TBin::And | TBin::Or | TBin::Xor => {
                        let ra_ = em.read(*a, S1);
                        let aop = match op {
                            TBin::Add => AluOp::Add,
                            TBin::Sub => AluOp::Sub,
                            TBin::And => AluOp::And,
                            TBin::Or => AluOp::Or,
                            TBin::Xor => AluOp::Xor,
                            _ => unreachable!(),
                        };
                        emit_alu(&mut em, aop, d, ra_, *b);
                    }
                    TBin::Mul => {
                        let ra_ = em.read(*a, S1);
                        em.mv(S1, ra_);
                        let rb = em.read(*b, S2);
                        em.e(MI::Imul { dst: S1, src: rb });
                        em.mv(d, S1);
                    }
                    TBin::Shl | TBin::Sar => match b {
                        Operand::Imm(v) => {
                            let ra_ = em.read(*a, S1);
                            em.mv(d, ra_);
                            em.e(MI::Shift {
                                kind: if *op == TBin::Shl {
                                    ShiftKind::Shl
                                } else {
                                    ShiftKind::Sar
                                },
                                dst: d,
                                imm: (*v & 31) as u8,
                            });
                        }
                        Operand::V(_) => {
                            return Err(CompileError {
                                message: format!(
                                    "function `{}`: x86 back end requires constant shift amounts",
                                    f.name
                                ),
                            })
                        }
                    },
                    TBin::Cmp(rel) => {
                        emit_cmp(&mut em, *a, *b);
                        set_bool(&mut em, d, rel_cc(*rel));
                    }
                }
                em.writeback(*dst, d);
            }
            Instr::Un { op, dst, a } => {
                let d = em.target(*dst, S1);
                match op {
                    TUn::Neg => {
                        let ra_ = em.read(*a, S2);
                        em.e(MI::MovRI { dst: d, imm: 0 });
                        em.e(MI::AluRR {
                            op: AluOp::Sub,
                            dst: d,
                            src: ra_,
                        });
                    }
                    TUn::BitNot => {
                        let ra_ = em.read(*a, S1);
                        em.mv(d, ra_);
                        em.e(MI::AluRI {
                            op: AluOp::Xor,
                            dst: d,
                            imm: u32::MAX,
                        });
                    }
                    TUn::Not => {
                        let ra_ = em.read(*a, S1);
                        em.e(MI::Test { a: ra_, b: ra_ });
                        set_bool(&mut em, d, Cc::E);
                    }
                }
                em.writeback(*dst, d);
            }
            Instr::AddrOf { dst, global } => {
                let d = em.target(*dst, S1);
                em.global_addr(d, *global, 0);
                em.writeback(*dst, d);
            }
            Instr::Load {
                dst,
                global,
                index,
                elem,
            } => {
                let d = em.target(*dst, S1);
                let byte = *elem == crate::ast::ElemType::Byte;
                match index {
                    Operand::Imm(i) => {
                        // Absolute addressing with a relocated addend.
                        let addend = (i * elem.size() as i32) as u32;
                        em.relocs.push(Reloc {
                            at: em.out.len(),
                            target: RelocTarget::Global(*global),
                        });
                        let mem = Mem::abs(addend);
                        if byte {
                            em.e(MI::Load8Z { dst: d, mem });
                        } else {
                            em.e(MI::Load { dst: d, mem });
                        }
                    }
                    Operand::V(_) => {
                        let idx = em.read(*index, S2);
                        em.mv(S2, idx);
                        if !byte {
                            em.e(MI::Shift {
                                kind: ShiftKind::Shl,
                                dst: S2,
                                imm: 2,
                            });
                        }
                        em.global_addr(S1, *global, 0);
                        em.e(MI::AluRR {
                            op: AluOp::Add,
                            dst: S1,
                            src: S2,
                        });
                        let mem = Mem::base_disp(S1, 0);
                        if byte {
                            em.e(MI::Load8Z { dst: d, mem });
                        } else {
                            em.e(MI::Load { dst: d, mem });
                        }
                    }
                }
                em.writeback(*dst, d);
            }
            Instr::Store {
                global,
                index,
                value,
                elem,
            } => {
                let byte = *elem == crate::ast::ElemType::Byte;
                match index {
                    Operand::Imm(i) => {
                        let addend = (i * elem.size() as i32) as u32;
                        let v = em.read(*value, S2);
                        em.relocs.push(Reloc {
                            at: em.out.len(),
                            target: RelocTarget::Global(*global),
                        });
                        let mem = Mem::abs(addend);
                        if byte {
                            // Byte stores need AL/CL/DL/BL.
                            if v >= 4 {
                                em.mv(S2, v);
                                em.e(MI::Store8 { mem, src: S2 });
                            } else {
                                em.e(MI::Store8 { mem, src: v });
                            }
                        } else {
                            em.e(MI::Store { mem, src: v });
                        }
                    }
                    Operand::V(_) => {
                        let idx = em.read(*index, S2);
                        em.mv(S2, idx);
                        if !byte {
                            em.e(MI::Shift {
                                kind: ShiftKind::Shl,
                                dst: S2,
                                imm: 2,
                            });
                        }
                        em.global_addr(S1, *global, 0);
                        em.e(MI::AluRR {
                            op: AluOp::Add,
                            dst: S1,
                            src: S2,
                        });
                        let v = em.read(*value, S2);
                        let mem = Mem::base_disp(S1, 0);
                        if byte {
                            if v >= 4 {
                                em.mv(S2, v);
                                em.e(MI::Store8 { mem, src: S2 });
                            } else {
                                em.e(MI::Store8 { mem, src: v });
                            }
                        } else {
                            em.e(MI::Store { mem, src: v });
                        }
                    }
                }
            }
            Instr::LoadPtr { dst, addr, elem } => {
                let a = em.read(*addr, S2);
                let d = em.target(*dst, S1);
                let mem = Mem::base_disp(a, 0);
                if *elem == crate::ast::ElemType::Byte {
                    em.e(MI::Load8Z { dst: d, mem });
                } else {
                    em.e(MI::Load { dst: d, mem });
                }
                em.writeback(*dst, d);
            }
            Instr::StorePtr { addr, value, elem } => {
                let a = em.read(*addr, S1);
                let v = em.read(*value, S2);
                let mem = Mem::base_disp(a, 0);
                if *elem == crate::ast::ElemType::Byte {
                    // Byte stores need AL/CL/DL/BL.
                    if v >= 4 {
                        em.mv(S2, v);
                        em.e(MI::Store8 { mem, src: S2 });
                    } else {
                        em.e(MI::Store8 { mem, src: v });
                    }
                } else {
                    em.e(MI::Store { mem, src: v });
                }
            }
            Instr::Call { dst, callee, args } => {
                // cdecl: push right-to-left, caller cleans up.
                for a in args.iter().rev() {
                    let r = em.read(*a, S1);
                    em.e(MI::Push { src: r });
                }
                em.relocs.push(Reloc {
                    at: em.out.len(),
                    target: RelocTarget::Func(*callee),
                });
                em.e(MI::CallRel { rel: 0 });
                if !args.is_empty() {
                    em.e(MI::AluRI {
                        op: AluOp::Add,
                        dst: ESP,
                        imm: 4 * args.len() as u32,
                    });
                }
                if let Some(d) = dst {
                    let t = em.target(*d, S2);
                    em.mv(t, EAX);
                    em.writeback(*d, t);
                }
            }
            Instr::Ret { value } => {
                if let Some(v) = value {
                    match v {
                        Operand::Imm(c) => em.e(MI::MovRI {
                            dst: EAX,
                            imm: *c as u32,
                        }),
                        Operand::V(_) => {
                            let r = em.read(*v, EAX);
                            em.mv(EAX, r);
                        }
                    }
                }
                epilogue(&mut em);
            }
            Instr::Jmp(l) => em.branch(None, *l),
            Instr::BrCmp {
                rel,
                a,
                b,
                taken,
                fall,
            } => {
                emit_cmp(&mut em, *a, *b);
                em.branch(Some(rel_cc(*rel)), *taken);
                emit_fall(&mut em, f, ti, *fall);
            }
            Instr::BrNz { cond, taken, fall } => {
                let c = em.read(*cond, S1);
                em.e(MI::Test { a: c, b: c });
                em.branch(Some(Cc::Ne), *taken);
                emit_fall(&mut em, f, ti, *fall);
            }
        }
    }
    if !matches!(
        f.instrs.last(),
        Some(Instr::Ret { .. })
            | Some(Instr::Jmp(_))
            | Some(Instr::BrCmp { .. })
            | Some(Instr::BrNz { .. })
    ) {
        epilogue(&mut em);
    }

    // Resolve branches over variable-length instructions.
    let mut offs = Vec::with_capacity(em.out.len() + 1);
    let mut o = 0u32;
    for i in &em.out {
        offs.push(o);
        o += firmup_isa::x86::encoded_len(i);
    }
    offs.push(o);
    for (idx, l) in em.fixups.clone() {
        let target = offs[em.label_at[&l]];
        let end = offs[idx] + firmup_isa::x86::encoded_len(&em.out[idx]);
        let rel = target as i32 - end as i32;
        match &mut em.out[idx] {
            MI::JmpRel { rel: r } => *r = rel,
            MI::Jcc { rel: r, .. } => *r = rel,
            other => unreachable!("fixup at non-branch {other:?}"),
        }
    }

    Ok(FnOut {
        name: f.name.clone(),
        exported: f.exported,
        instrs: em.out,
        relocs: em.relocs,
    })
}

fn emit_fall(em: &mut Emitter, f: &TacFunction, ti: usize, fall: Label) {
    if matches!(f.instrs.get(ti + 1), Some(Instr::Label(l)) if *l == fall) {
        return;
    }
    em.branch(None, fall);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::sema::check;
    use crate::tac::lower;

    fn build(src: &str, profile: &ToolchainProfile) -> LinkedBinary {
        let p = parse(src).unwrap();
        check(&p).unwrap();
        let mut t = lower(&p);
        crate::opt::optimize(&mut t, profile.opt_flags());
        compile(&t, profile, MemLayout::default()).unwrap()
    }

    fn decode_stream(lb: &LinkedBinary, lo: usize, hi: usize) -> Vec<MI> {
        let mut out = Vec::new();
        let mut off = lo;
        while off < hi {
            let (i, len) = firmup_isa::x86::decode(&lb.text, off, lb.text_base + off as u32)
                .unwrap_or_else(|e| panic!("undecodable at {off}: {e}"));
            out.push(i);
            off += len as usize;
        }
        out
    }

    #[test]
    fn whole_binary_decodes() {
        let lb = build(
            "global b: [byte; 8]; fn helper(x: int) -> int { return x * 3; } fn main(a: int) -> int { b[a] = 1; if (a < 10) { return helper(a); } return b[a]; }",
            &ToolchainProfile::gcc_like(),
        );
        for (name, addr, size, _) in &lb.symbols {
            let lo = (*addr - lb.text_base) as usize;
            let is = decode_stream(&lb, lo, lo + *size as usize);
            assert!(!is.is_empty(), "{name} decoded to nothing");
        }
    }

    #[test]
    fn call_rel_resolves() {
        let lb = build(
            "fn leaf() -> int { return 3; } fn callee(x: int) -> int { return x + leaf(); } fn main() -> int { return callee(9); }",
            &ToolchainProfile::gcc_like(),
        );
        let callee = lb.symbols.iter().find(|s| s.0 == "callee").unwrap().1;
        let main = lb.symbols.iter().find(|s| s.0 == "main").unwrap();
        let lo = (main.1 - lb.text_base) as usize;
        let mut off = lo;
        let mut ok = false;
        while off < lo + main.2 as usize {
            let addr = lb.text_base + off as u32;
            let (i, len) = firmup_isa::x86::decode(&lb.text, off, addr).unwrap();
            if let MI::CallRel { rel } = i {
                assert_eq!(addr.wrapping_add(len).wrapping_add(rel as u32), callee);
                ok = true;
            }
            off += len as usize;
        }
        assert!(ok);
    }

    #[test]
    fn prologue_uses_ebp_frame() {
        let lb = build(
            "fn main() -> int { return 0; }",
            &ToolchainProfile::gcc_like(),
        );
        let is = decode_stream(&lb, 0, lb.text.len());
        assert_eq!(is[0], MI::Push { src: EBP });
        assert_eq!(is[1], MI::MovRR { dst: EBP, src: ESP });
        assert!(is.contains(&MI::Ret));
    }

    #[test]
    fn args_are_pushed_cdecl() {
        let lb = build(
            "fn leaf() -> int { return 3; } fn g(a: int, b: int) -> int { return a - b + leaf(); } fn main() -> int { return g(10, 3); }",
            &ToolchainProfile::gcc_like(),
        );
        let main = lb.symbols.iter().find(|s| s.0 == "main").unwrap();
        let lo = (main.1 - lb.text_base) as usize;
        let is = decode_stream(&lb, lo, lo + main.2 as usize);
        let pushes = is.iter().filter(|i| matches!(i, MI::Push { .. })).count();
        assert!(pushes >= 3, "ebp + 2 args, got {pushes}");
        // Caller cleanup.
        assert!(is
            .iter()
            .any(|i| matches!(i, MI::AluRI { op: AluOp::Add, dst, imm: 8 } if *dst == ESP)));
    }

    #[test]
    fn global_absolute_addressing_patched() {
        let lb = build(
            "global t: [int; 4]; fn main() -> int { t[2] = 5; return t[2]; }",
            &ToolchainProfile::gcc_like(),
        );
        let is = decode_stream(&lb, 0, lb.text.len());
        let expect = lb.global_addrs[0] + 8;
        assert!(
            is.iter().any(|i| matches!(i, MI::Store { mem, .. } if mem.base.is_none() && mem.disp as u32 == expect)),
            "absolute store to t[2] missing: {is:?}"
        );
    }
}
