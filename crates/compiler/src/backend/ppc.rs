//! PowerPC 32-bit back end.

use std::collections::HashMap;

use firmup_isa::ppc::{BranchIf, CrBit, Instr as MI, SP};

use crate::emit::{link, CompileError, FnOut, LinkedBinary, MemLayout, Reloc, RelocTarget};
use crate::profile::ToolchainProfile;
use crate::regalloc::{allocate, Allocation, Loc, RegPools};
use crate::tac::{Instr, Label, Operand, Rel, TBin, TUn, TacFunction, TacProgram, VReg};

/// First scratch register.
const S1: u8 = 11;
/// Second scratch register.
const S2: u8 = 12;
const ARGS: [u8; 4] = [3, 4, 5, 6];
const RET: u8 = 3;

fn pools(profile: &ToolchainProfile) -> RegPools {
    if profile.opt == crate::profile::OptLevel::O0 {
        return RegPools {
            caller_saved: vec![],
            callee_saved: vec![],
        };
    }
    let mut caller: Vec<u16> = (7..=10).collect();
    let mut callee: Vec<u16> = (14..=23).collect();
    profile.reg_order.apply(&mut caller);
    profile.reg_order.apply(&mut callee);
    RegPools {
        caller_saved: caller,
        callee_saved: callee,
    }
}

struct Frame {
    size: u32,
    save_base: u32,
    lr_off: Option<u32>,
}

fn frame_layout(alloc: &Allocation, is_leaf: bool, profile: &ToolchainProfile) -> Frame {
    let spill_bytes = alloc.spill_slots * 4;
    let save_bytes = alloc.used_callee_saved.len() as u32 * 4;
    let lr_bytes = if is_leaf { 0 } else { 4 };
    let mut size = spill_bytes + save_bytes + lr_bytes + profile.frame_padding;
    size = (size + 7) & !7;
    Frame {
        size,
        save_base: spill_bytes,
        lr_off: (!is_leaf).then_some(spill_bytes + save_bytes),
    }
}

struct Emitter<'a> {
    out: Vec<MI>,
    relocs: Vec<Reloc>,
    label_at: HashMap<Label, usize>,
    /// `(index, label, conditional)` — conditional uses `bd`, else `off`.
    fixups: Vec<(usize, Label, bool)>,
    alloc: &'a Allocation,
    frame: &'a Frame,
}

impl<'a> Emitter<'a> {
    fn e(&mut self, i: MI) {
        self.out.push(i);
    }

    fn li(&mut self, dst: u8, v: i32) {
        if (-32768..=32767).contains(&v) {
            self.e(MI::Addi {
                rt: dst,
                ra: 0,
                si: v as i16,
            });
        } else {
            let u = v as u32;
            self.e(MI::Addis {
                rt: dst,
                ra: 0,
                si: (u >> 16) as u16 as i16,
            });
            if u & 0xffff != 0 {
                self.e(MI::Ori {
                    ra: dst,
                    rs: dst,
                    ui: (u & 0xffff) as u16,
                });
            }
        }
    }

    fn read(&mut self, op: Operand, scratch: u8) -> u8 {
        match op {
            Operand::Imm(v) => {
                self.li(scratch, v);
                scratch
            }
            Operand::V(v) => match self.alloc.of(v) {
                Loc::Reg(r) => r as u8,
                Loc::Spill(s) => {
                    self.e(MI::Lwz {
                        rt: scratch,
                        ra: SP,
                        d: (s * 4) as i16,
                    });
                    scratch
                }
            },
        }
    }

    fn target(&self, dst: VReg, scratch: u8) -> u8 {
        match self.alloc.of(dst) {
            Loc::Reg(r) => r as u8,
            Loc::Spill(_) => scratch,
        }
    }

    fn writeback(&mut self, dst: VReg, from: u8) {
        if let Loc::Spill(s) = self.alloc.of(dst) {
            self.e(MI::Stw {
                rs: from,
                ra: SP,
                d: (s * 4) as i16,
            });
        }
    }

    fn mv(&mut self, dst: u8, src: u8) {
        if dst != src {
            self.e(MI::Or {
                ra: dst,
                rs: src,
                rb: src,
            });
        }
    }

    fn global_addr(&mut self, dst: u8, gid: usize) {
        self.relocs.push(Reloc {
            at: self.out.len(),
            target: RelocTarget::Global(gid),
        });
        self.e(MI::Addis {
            rt: dst,
            ra: 0,
            si: 0,
        });
        self.e(MI::Ori {
            ra: dst,
            rs: dst,
            ui: 0,
        });
    }

    fn branch_cond(&mut self, cond: BranchIf, l: Label) {
        self.fixups.push((self.out.len(), l, true));
        self.e(MI::Bc { cond, bd: 0 });
    }

    fn branch(&mut self, l: Label) {
        self.fixups.push((self.out.len(), l, false));
        self.e(MI::B { off: 0, lk: false });
    }

    /// Compare and set CR0 for `a rel b`; returns which CR bit to test
    /// and whether "set" means taken.
    fn compare(&mut self, rel: Rel, a: Operand, b: Operand) -> BranchIf {
        let ra_ = self.read(a, S1);
        // cmpwi when the immediate fits.
        if let Operand::Imm(v) = b {
            if (-32768..=32767).contains(&v) {
                self.e(MI::Cmpwi {
                    ra: ra_,
                    si: v as i16,
                });
                return rel_to_branch(rel);
            }
        }
        let rb = self.read(b, S2);
        self.e(MI::Cmpw { ra: ra_, rb });
        rel_to_branch(rel)
    }
}

fn rel_to_branch(rel: Rel) -> BranchIf {
    match rel {
        Rel::Lt => BranchIf::Set(CrBit::Lt),
        Rel::Ge => BranchIf::Clear(CrBit::Lt),
        Rel::Gt => BranchIf::Set(CrBit::Gt),
        Rel::Le => BranchIf::Clear(CrBit::Gt),
        Rel::Eq => BranchIf::Set(CrBit::Eq),
        Rel::Ne => BranchIf::Clear(CrBit::Eq),
    }
}

/// Compile a TAC program to a linked PPC binary.
pub(crate) fn compile(
    tac: &TacProgram,
    profile: &ToolchainProfile,
    layout: MemLayout,
) -> Result<LinkedBinary, CompileError> {
    let pools = pools(profile);
    let mut fns = Vec::with_capacity(tac.functions.len());
    for f in &tac.functions {
        fns.push(compile_fn(f, &pools, profile)?);
    }
    Ok(link(
        fns,
        &tac.globals,
        layout,
        |_| 4,
        patch,
        firmup_isa::ppc::encode,
    ))
}

fn patch(instrs: &mut [MI], at: usize, instr_addr: u32, target: u32) {
    match &mut instrs[at] {
        MI::Addis { si, .. } => {
            *si = (target >> 16) as u16 as i16;
            if let MI::Ori { ui, .. } = &mut instrs[at + 1] {
                *ui = (target & 0xffff) as u16;
            } else {
                unreachable!("global materialization must be lis+ori");
            }
        }
        MI::B { off, lk: true } => {
            *off = target.wrapping_sub(instr_addr) as i32;
        }
        other => unreachable!("unexpected reloc site {other:?}"),
    }
}

#[allow(clippy::too_many_lines)]
fn compile_fn(
    f: &TacFunction,
    pools: &RegPools,
    profile: &ToolchainProfile,
) -> Result<FnOut<MI>, CompileError> {
    if f.params.len() > ARGS.len() {
        return Err(crate::backend::too_many_params(&f.name, f.params.len()));
    }
    let alloc = allocate(f, pools);
    let is_leaf = !f.instrs.iter().any(|i| matches!(i, Instr::Call { .. }));
    let frame = frame_layout(&alloc, is_leaf, profile);
    let mut em = Emitter {
        out: Vec::new(),
        relocs: Vec::new(),
        label_at: HashMap::new(),
        fixups: Vec::new(),
        alloc: &alloc,
        frame: &frame,
    };

    // Prologue.
    if frame.size > 0 {
        em.e(MI::Addi {
            rt: SP,
            ra: SP,
            si: -(frame.size as i32) as i16,
        });
    }
    if let Some(off) = frame.lr_off {
        em.e(MI::Mflr { rt: 0 });
        em.e(MI::Stw {
            rs: 0,
            ra: SP,
            d: off as i16,
        });
    }
    for (k, &r) in alloc.used_callee_saved.iter().enumerate() {
        em.e(MI::Stw {
            rs: r as u8,
            ra: SP,
            d: (frame.save_base + 4 * k as u32) as i16,
        });
    }
    for (i, &p) in f.params.iter().enumerate() {
        match alloc.of(p) {
            Loc::Reg(r) => em.mv(r as u8, ARGS[i]),
            Loc::Spill(s) => em.e(MI::Stw {
                rs: ARGS[i],
                ra: SP,
                d: (s * 4) as i16,
            }),
        }
    }

    let epilogue = |em: &mut Emitter| {
        for (k, &r) in em.alloc.used_callee_saved.iter().enumerate() {
            em.e(MI::Lwz {
                rt: r as u8,
                ra: SP,
                d: (em.frame.save_base + 4 * k as u32) as i16,
            });
        }
        if let Some(off) = em.frame.lr_off {
            em.e(MI::Lwz {
                rt: 0,
                ra: SP,
                d: off as i16,
            });
            em.e(MI::Mtlr { rs: 0 });
        }
        if em.frame.size > 0 {
            em.e(MI::Addi {
                rt: SP,
                ra: SP,
                si: em.frame.size as i16,
            });
        }
        em.e(MI::Blr);
    };

    /// Branchy 0/1 materialization: `li d,1; bc cond +8; li d,0`.
    fn set_bool(em: &mut Emitter, d: u8, cond: BranchIf) {
        em.e(MI::Addi {
            rt: d,
            ra: 0,
            si: 1,
        });
        em.e(MI::Bc { cond, bd: 8 });
        em.e(MI::Addi {
            rt: d,
            ra: 0,
            si: 0,
        });
    }

    for (ti, instr) in f.instrs.iter().enumerate() {
        match instr {
            Instr::Label(l) => {
                em.label_at.insert(*l, em.out.len());
            }
            Instr::Copy { dst, src } => {
                let d = em.target(*dst, S1);
                match src {
                    Operand::Imm(v) => em.li(d, *v),
                    Operand::V(_) => {
                        let s = em.read(*src, S1);
                        em.mv(d, s);
                    }
                }
                em.writeback(*dst, d);
            }
            Instr::Bin { op, dst, a, b } => {
                let d = em.target(*dst, S1);
                match op {
                    TBin::Add => {
                        let ra_ = em.read(*a, S1);
                        if let Operand::Imm(v) = b {
                            if (-32768..=32767).contains(v) {
                                em.e(MI::Addi {
                                    rt: d,
                                    ra: ra_,
                                    si: *v as i16,
                                });
                                em.writeback(*dst, d);
                                continue;
                            }
                        }
                        let rb = em.read(*b, S2);
                        em.e(MI::Add { rt: d, ra: ra_, rb });
                    }
                    TBin::Sub => {
                        let ra_ = em.read(*a, S1);
                        let rb = em.read(*b, S2);
                        em.e(MI::Subf {
                            rt: d,
                            ra: rb,
                            rb: ra_,
                        });
                    }
                    TBin::Mul => {
                        let ra_ = em.read(*a, S1);
                        let rb = em.read(*b, S2);
                        em.e(MI::Mullw { rt: d, ra: ra_, rb });
                    }
                    TBin::And | TBin::Or | TBin::Xor => {
                        let ra_ = em.read(*a, S1);
                        if let Operand::Imm(v) = b {
                            if (0..=0xffff).contains(v) {
                                let ui = *v as u16;
                                match op {
                                    TBin::And => em.e(MI::AndiDot { ra: d, rs: ra_, ui }),
                                    TBin::Or => em.e(MI::Ori { ra: d, rs: ra_, ui }),
                                    TBin::Xor => em.e(MI::Xori { ra: d, rs: ra_, ui }),
                                    _ => unreachable!(),
                                }
                                em.writeback(*dst, d);
                                continue;
                            }
                        }
                        let rb = em.read(*b, S2);
                        match op {
                            TBin::And => em.e(MI::And { ra: d, rs: ra_, rb }),
                            TBin::Or => em.e(MI::Or { ra: d, rs: ra_, rb }),
                            TBin::Xor => em.e(MI::Xor { ra: d, rs: ra_, rb }),
                            _ => unreachable!(),
                        }
                    }
                    TBin::Shl | TBin::Sar => {
                        let ra_ = em.read(*a, S1);
                        let rb = em.read(*b, S2);
                        match op {
                            TBin::Shl => em.e(MI::Slw { ra: d, rs: ra_, rb }),
                            TBin::Sar => em.e(MI::Sraw { ra: d, rs: ra_, rb }),
                            _ => unreachable!(),
                        }
                    }
                    TBin::Cmp(rel) => {
                        let cond = em.compare(*rel, *a, *b);
                        set_bool(&mut em, d, cond);
                    }
                }
                em.writeback(*dst, d);
            }
            Instr::Un { op, dst, a } => {
                let ra_ = em.read(*a, S1);
                let d = em.target(*dst, S1);
                match op {
                    TUn::Neg => {
                        em.li(S2, 0);
                        em.e(MI::Subf {
                            rt: d,
                            ra: ra_,
                            rb: S2,
                        });
                    }
                    TUn::BitNot => {
                        em.li(S2, -1);
                        em.e(MI::Xor {
                            ra: d,
                            rs: ra_,
                            rb: S2,
                        });
                    }
                    TUn::Not => {
                        em.e(MI::Cmpwi { ra: ra_, si: 0 });
                        set_bool(&mut em, d, BranchIf::Set(CrBit::Eq));
                    }
                }
                em.writeback(*dst, d);
            }
            Instr::AddrOf { dst, global } => {
                let d = em.target(*dst, S1);
                em.global_addr(d, *global);
                em.writeback(*dst, d);
            }
            Instr::Load {
                dst,
                global,
                index,
                elem,
            } => {
                em.global_addr(S1, *global);
                let d = em.target(*dst, S2);
                let byte = *elem == crate::ast::ElemType::Byte;
                match index {
                    Operand::Imm(i) => {
                        let off = i * elem.size() as i32;
                        let d16 = if (-32768..=32767).contains(&off) {
                            off as i16
                        } else {
                            em.li(S2, off);
                            em.e(MI::Add {
                                rt: S1,
                                ra: S1,
                                rb: S2,
                            });
                            0
                        };
                        if byte {
                            em.e(MI::Lbz {
                                rt: d,
                                ra: S1,
                                d: d16,
                            });
                        } else {
                            em.e(MI::Lwz {
                                rt: d,
                                ra: S1,
                                d: d16,
                            });
                        }
                    }
                    Operand::V(_) => {
                        let idx = em.read(*index, S2);
                        if byte {
                            em.e(MI::Add {
                                rt: S1,
                                ra: S1,
                                rb: idx,
                            });
                        } else {
                            em.li(0, 2);
                            em.e(MI::Slw {
                                ra: S2,
                                rs: idx,
                                rb: 0,
                            });
                            em.e(MI::Add {
                                rt: S1,
                                ra: S1,
                                rb: S2,
                            });
                        }
                        if byte {
                            em.e(MI::Lbz {
                                rt: d,
                                ra: S1,
                                d: 0,
                            });
                        } else {
                            em.e(MI::Lwz {
                                rt: d,
                                ra: S1,
                                d: 0,
                            });
                        }
                    }
                }
                em.writeback(*dst, d);
            }
            Instr::Store {
                global,
                index,
                value,
                elem,
            } => {
                em.global_addr(S1, *global);
                let byte = *elem == crate::ast::ElemType::Byte;
                let mut d16 = 0i16;
                match index {
                    Operand::Imm(i) => {
                        let off = i * elem.size() as i32;
                        if (-32768..=32767).contains(&off) {
                            d16 = off as i16;
                        } else {
                            em.li(S2, off);
                            em.e(MI::Add {
                                rt: S1,
                                ra: S1,
                                rb: S2,
                            });
                        }
                    }
                    Operand::V(_) => {
                        let idx = em.read(*index, S2);
                        if byte {
                            em.e(MI::Add {
                                rt: S1,
                                ra: S1,
                                rb: idx,
                            });
                        } else {
                            em.li(0, 2);
                            em.e(MI::Slw {
                                ra: S2,
                                rs: idx,
                                rb: 0,
                            });
                            em.e(MI::Add {
                                rt: S1,
                                ra: S1,
                                rb: S2,
                            });
                        }
                    }
                }
                let v = em.read(*value, S2);
                if byte {
                    em.e(MI::Stb {
                        rs: v,
                        ra: S1,
                        d: d16,
                    });
                } else {
                    em.e(MI::Stw {
                        rs: v,
                        ra: S1,
                        d: d16,
                    });
                }
            }
            Instr::LoadPtr { dst, addr, elem } => {
                let a = em.read(*addr, S1);
                let d = em.target(*dst, S2);
                if *elem == crate::ast::ElemType::Byte {
                    em.e(MI::Lbz { rt: d, ra: a, d: 0 });
                } else {
                    em.e(MI::Lwz { rt: d, ra: a, d: 0 });
                }
                em.writeback(*dst, d);
            }
            Instr::StorePtr { addr, value, elem } => {
                let a = em.read(*addr, S1);
                let v = em.read(*value, S2);
                if *elem == crate::ast::ElemType::Byte {
                    em.e(MI::Stb { rs: v, ra: a, d: 0 });
                } else {
                    em.e(MI::Stw { rs: v, ra: a, d: 0 });
                }
            }
            Instr::Call { dst, callee, args } => {
                for (i, a) in args.iter().enumerate() {
                    match a {
                        Operand::Imm(v) => em.li(ARGS[i], *v),
                        Operand::V(_) => {
                            let r = em.read(*a, ARGS[i]);
                            em.mv(ARGS[i], r);
                        }
                    }
                }
                em.relocs.push(Reloc {
                    at: em.out.len(),
                    target: RelocTarget::Func(*callee),
                });
                em.e(MI::B { off: 0, lk: true });
                if let Some(d) = dst {
                    let t = em.target(*d, S1);
                    em.mv(t, RET);
                    em.writeback(*d, t);
                }
            }
            Instr::Ret { value } => {
                if let Some(v) = value {
                    match v {
                        Operand::Imm(c) => em.li(RET, *c),
                        Operand::V(_) => {
                            let r = em.read(*v, RET);
                            em.mv(RET, r);
                        }
                    }
                }
                epilogue(&mut em);
            }
            Instr::Jmp(l) => em.branch(*l),
            Instr::BrCmp {
                rel,
                a,
                b,
                taken,
                fall,
            } => {
                let cond = em.compare(*rel, *a, *b);
                em.branch_cond(cond, *taken);
                emit_fall(&mut em, f, ti, *fall);
            }
            Instr::BrNz { cond, taken, fall } => {
                let c = em.read(*cond, S1);
                em.e(MI::Cmpwi { ra: c, si: 0 });
                em.branch_cond(BranchIf::Clear(CrBit::Eq), *taken);
                emit_fall(&mut em, f, ti, *fall);
            }
        }
    }
    if !matches!(
        f.instrs.last(),
        Some(Instr::Ret { .. })
            | Some(Instr::Jmp(_))
            | Some(Instr::BrCmp { .. })
            | Some(Instr::BrNz { .. })
    ) {
        epilogue(&mut em);
    }

    // Resolve intra-function branches (byte offsets relative to the
    // branch instruction itself).
    for (idx, l, conditional) in em.fixups.clone() {
        let delta = ((em.label_at[&l] as i32) - (idx as i32)) * 4;
        match &mut em.out[idx] {
            MI::Bc { bd, .. } if conditional => *bd = delta as i16,
            MI::B { off, .. } => *off = delta,
            other => unreachable!("fixup at non-branch {other:?}"),
        }
    }

    Ok(FnOut {
        name: f.name.clone(),
        exported: f.exported,
        instrs: em.out,
        relocs: em.relocs,
    })
}

fn emit_fall(em: &mut Emitter, f: &TacFunction, ti: usize, fall: Label) {
    if matches!(f.instrs.get(ti + 1), Some(Instr::Label(l)) if *l == fall) {
        return;
    }
    em.branch(fall);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::sema::check;
    use crate::tac::lower;

    fn build(src: &str, profile: &ToolchainProfile) -> LinkedBinary {
        let p = parse(src).unwrap();
        check(&p).unwrap();
        let mut t = lower(&p);
        crate::opt::optimize(&mut t, profile.opt_flags());
        compile(&t, profile, MemLayout::default()).unwrap()
    }

    #[test]
    fn whole_binary_decodes() {
        let lb = build(
            "global b: [byte; 8]; fn helper(x: int) -> int { return x * 3; } fn main(a: int) -> int { b[a] = 1; if (a < 10) { return helper(a); } return b[a]; }",
            &ToolchainProfile::gcc_like(),
        );
        // Scan per symbol: inter-function alignment padding is zero
        // bytes, which is not a PPC instruction.
        for (name, addr, size, _) in &lb.symbols {
            let lo = (*addr - lb.text_base) as usize;
            let mut off = lo;
            while off < lo + *size as usize {
                firmup_isa::ppc::decode(&lb.text, off, lb.text_base + off as u32)
                    .unwrap_or_else(|e| panic!("{name}: undecodable at {off}: {e}"));
                off += 4;
            }
        }
    }

    #[test]
    fn bl_reloc_resolves() {
        let lb = build(
            "fn leaf() -> int { return 3; } fn callee() -> int { return leaf() + 1; } fn main() -> int { return callee(); }",
            &ToolchainProfile::gcc_like(),
        );
        let callee = lb.symbols.iter().find(|s| s.0 == "callee").unwrap().1;
        let main = lb.symbols.iter().find(|s| s.0 == "main").unwrap();
        let lo = (main.1 - lb.text_base) as usize;
        let mut off = lo;
        let mut ok = false;
        while off < lo + main.2 as usize {
            let addr = lb.text_base + off as u32;
            let (i, _) = firmup_isa::ppc::decode(&lb.text, off, addr).unwrap();
            if let MI::B { off: rel, lk: true } = i {
                assert_eq!(addr.wrapping_add(rel as u32), callee);
                ok = true;
            }
            off += 4;
        }
        assert!(ok, "no bl in main");
    }

    #[test]
    fn comparisons_use_cr0() {
        let lb = build(
            "fn main(a: int) -> int { if (a == 31) { return 1; } return 0; }",
            &ToolchainProfile::gcc_like(),
        );
        let mut found_cmpwi = false;
        let mut found_bc = false;
        let mut off = 0;
        while off < lb.text.len() {
            let (i, _) = firmup_isa::ppc::decode(&lb.text, off, lb.text_base + off as u32).unwrap();
            match i {
                MI::Cmpwi { si: 31, .. } => found_cmpwi = true,
                MI::Bc { .. } => found_bc = true,
                _ => {}
            }
            off += 4;
        }
        assert!(found_cmpwi && found_bc);
    }
}
