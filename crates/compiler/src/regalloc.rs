//! Liveness analysis and linear-scan register allocation over TAC.
//!
//! The allocator is architecture-agnostic: back ends hand it two ordered
//! register pools (caller-saved and callee-saved, in the *toolchain
//! profile's* preference order — one of the knobs that makes different
//! vendors' builds of the same source use different registers).

use std::collections::{HashMap, HashSet};

use crate::tac::{Instr, Label, TacFunction, VReg};

/// Where a virtual register lives after allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loc {
    /// A physical register (architecture-specific number).
    Reg(u16),
    /// A stack spill slot (0-based index; the back end assigns frame
    /// offsets).
    Spill(u32),
}

/// Ordered register pools for allocation.
#[derive(Debug, Clone)]
pub struct RegPools {
    /// Caller-saved (clobbered by calls) registers, preferred order.
    pub caller_saved: Vec<u16>,
    /// Callee-saved registers, preferred order.
    pub callee_saved: Vec<u16>,
}

/// Result of register allocation.
#[derive(Debug, Clone)]
pub struct Allocation {
    /// Location of every vreg that appears in the function.
    pub loc: HashMap<VReg, Loc>,
    /// Callee-saved registers actually used (must be saved/restored by
    /// the prologue/epilogue), in pool order.
    pub used_callee_saved: Vec<u16>,
    /// Number of spill slots needed.
    pub spill_slots: u32,
}

impl Allocation {
    /// Location of a vreg.
    ///
    /// # Panics
    ///
    /// Panics if the vreg never appeared in the function.
    pub fn of(&self, v: VReg) -> Loc {
        *self
            .loc
            .get(&v)
            .unwrap_or_else(|| panic!("vreg v{} was not allocated", v.0))
    }
}

/// A live interval over linearized instruction positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Interval {
    vreg: VReg,
    start: usize,
    end: usize,
    crosses_call: bool,
}

/// Compute coarse live intervals (min/max extent with block-boundary
/// extension).
fn intervals(f: &TacFunction) -> Vec<Interval> {
    let n = f.instrs.len();
    // Block structure.
    let mut leaders: Vec<usize> = vec![0];
    for (i, ins) in f.instrs.iter().enumerate() {
        if matches!(ins, Instr::Label(_)) && i != 0 {
            leaders.push(i);
        } else if ins.is_terminator() && i + 1 < n {
            leaders.push(i + 1);
        }
    }
    leaders.dedup();
    let block_of = |pos: usize| match leaders.binary_search(&pos) {
        Ok(b) => b,
        Err(b) => b - 1,
    };
    let block_range = |b: usize| {
        let start = leaders[b];
        let end = if b + 1 < leaders.len() {
            leaders[b + 1]
        } else {
            n
        };
        (start, end)
    };
    let label_block: HashMap<Label, usize> = f
        .instrs
        .iter()
        .enumerate()
        .filter_map(|(i, ins)| match ins {
            Instr::Label(l) => Some((*l, block_of(i))),
            _ => None,
        })
        .collect();
    let nb = leaders.len();
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); nb];
    for (b, out) in succs.iter_mut().enumerate() {
        let (start, end) = block_range(b);
        if start == end {
            continue;
        }
        match &f.instrs[end - 1] {
            Instr::Jmp(l) => out.push(label_block[l]),
            Instr::BrCmp { taken, fall, .. } | Instr::BrNz { taken, fall, .. } => {
                out.push(label_block[taken]);
                out.push(label_block[fall]);
            }
            Instr::Ret { .. } => {}
            _ => {
                if b + 1 < nb {
                    out.push(b + 1);
                }
            }
        }
    }
    // Per-block use/def.
    let mut use_b: Vec<HashSet<VReg>> = vec![HashSet::new(); nb];
    let mut def_b: Vec<HashSet<VReg>> = vec![HashSet::new(); nb];
    for b in 0..nb {
        let (start, end) = block_range(b);
        for ins in &f.instrs[start..end] {
            for u in ins.uses() {
                if !def_b[b].contains(&u) {
                    use_b[b].insert(u);
                }
            }
            if let Some(d) = ins.def() {
                def_b[b].insert(d);
            }
        }
    }
    // Backward dataflow.
    let mut live_in: Vec<HashSet<VReg>> = vec![HashSet::new(); nb];
    let mut live_out: Vec<HashSet<VReg>> = vec![HashSet::new(); nb];
    loop {
        let mut changed = false;
        for b in (0..nb).rev() {
            let mut out: HashSet<VReg> = HashSet::new();
            for &s in &succs[b] {
                out.extend(live_in[s].iter().copied());
            }
            let mut inn: HashSet<VReg> = use_b[b].clone();
            for v in &out {
                if !def_b[b].contains(v) {
                    inn.insert(*v);
                }
            }
            if out != live_out[b] || inn != live_in[b] {
                live_out[b] = out;
                live_in[b] = inn;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // Extents.
    let mut ext: HashMap<VReg, (usize, usize)> = HashMap::new();
    let touch = |v: VReg, p: usize, ext: &mut HashMap<VReg, (usize, usize)>| {
        let e = ext.entry(v).or_insert((p, p));
        e.0 = e.0.min(p);
        e.1 = e.1.max(p);
    };
    for p in &f.params {
        touch(*p, 0, &mut ext);
    }
    for (i, ins) in f.instrs.iter().enumerate() {
        for u in ins.uses() {
            touch(u, i, &mut ext);
        }
        if let Some(d) = ins.def() {
            touch(d, i, &mut ext);
        }
    }
    for b in 0..nb {
        let (start, end) = block_range(b);
        for v in &live_in[b] {
            touch(*v, start, &mut ext);
        }
        for v in &live_out[b] {
            touch(*v, end.saturating_sub(1), &mut ext);
        }
    }
    // Call crossings.
    let call_positions: Vec<usize> = f
        .instrs
        .iter()
        .enumerate()
        .filter_map(|(i, ins)| matches!(ins, Instr::Call { .. }).then_some(i))
        .collect();
    let mut out: Vec<Interval> = ext
        .into_iter()
        .map(|(vreg, (start, end))| Interval {
            vreg,
            start,
            end,
            crosses_call: call_positions.iter().any(|&c| start < c && c < end),
        })
        .collect();
    out.sort_by_key(|iv| (iv.start, iv.vreg.0));
    out
}

/// Allocate the function's vregs to `pools`.
///
/// Intervals that are live across a call are restricted to callee-saved
/// registers (the generic way to preserve values over calls without
/// caller-side spill code). Intervals that do not fit anywhere get spill
/// slots.
pub fn allocate(f: &TacFunction, pools: &RegPools) -> Allocation {
    let ivs = intervals(f);
    let mut loc: HashMap<VReg, Loc> = HashMap::new();
    let mut active: Vec<(usize, u16, bool)> = Vec::new(); // (end, reg, callee_saved)
    let mut free_caller: Vec<u16> = pools.caller_saved.clone();
    let mut free_callee: Vec<u16> = pools.callee_saved.clone();
    let mut used_callee: Vec<u16> = Vec::new();
    let mut spill_slots = 0u32;
    // Keep preference order: take from the front.
    for iv in &ivs {
        // Expire.
        active.retain(|&(end, reg, callee)| {
            if end < iv.start {
                if callee {
                    free_callee.push(reg);
                    // Restore preference order.
                    free_callee.sort_by_key(|r| pools.callee_saved.iter().position(|p| p == r));
                } else {
                    free_caller.push(reg);
                    free_caller.sort_by_key(|r| pools.caller_saved.iter().position(|p| p == r));
                }
                false
            } else {
                true
            }
        });
        let choice: Option<(u16, bool)> = if iv.crosses_call {
            (!free_callee.is_empty()).then(|| (free_callee.remove(0), true))
        } else if !free_caller.is_empty() {
            Some((free_caller.remove(0), false))
        } else if !free_callee.is_empty() {
            Some((free_callee.remove(0), true))
        } else {
            None
        };
        match choice {
            Some((reg, callee)) => {
                if callee && !used_callee.contains(&reg) {
                    used_callee.push(reg);
                }
                active.push((iv.end, reg, callee));
                loc.insert(iv.vreg, Loc::Reg(reg));
            }
            None => {
                loc.insert(iv.vreg, Loc::Spill(spill_slots));
                spill_slots += 1;
            }
        }
    }
    used_callee.sort_by_key(|r| pools.callee_saved.iter().position(|p| p == r));
    Allocation {
        loc,
        used_callee_saved: used_callee,
        spill_slots,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opt::{optimize_function, OptFlags};
    use crate::parser::parse;
    use crate::sema::check;
    use crate::tac::lower;

    fn func(src: &str, idx: usize) -> TacFunction {
        let p = parse(src).unwrap();
        check(&p).unwrap();
        let mut t = lower(&p);
        optimize_function(&mut t.functions[idx], OptFlags::basic());
        t.functions[idx].clone()
    }

    fn pools() -> RegPools {
        RegPools {
            caller_saved: vec![8, 9, 10],
            callee_saved: vec![16, 17],
        }
    }

    #[test]
    fn simple_function_fits_in_registers() {
        let f = func("fn f(a: int, b: int) -> int { return a + b; }", 0);
        let a = allocate(&f, &pools());
        assert_eq!(a.spill_slots, 0);
        assert!(a.used_callee_saved.is_empty());
        // Distinct live vregs get distinct registers.
        let r0 = a.of(f.params[0]);
        let r1 = a.of(f.params[1]);
        assert_ne!(r0, r1);
    }

    #[test]
    fn values_live_across_calls_use_callee_saved() {
        let f = func(
            "fn g() -> int { return 1; } fn f(a: int) -> int { var x = a + 1; var y = g(); return x + y; }",
            1,
        );
        let a = allocate(&f, &pools());
        // `x` (and the parameter feeding it) must survive the call.
        let x_like: Vec<Loc> = f
            .instrs
            .iter()
            .filter_map(|i| i.def())
            .map(|v| a.of(v))
            .collect();
        assert!(
            x_like
                .iter()
                .any(|l| matches!(l, Loc::Reg(16) | Loc::Reg(17) | Loc::Spill(_))),
            "some value must live in a callee-saved reg or spill: {x_like:?}"
        );
    }

    #[test]
    fn spills_when_pressure_exceeds_registers() {
        // 8 simultaneously-live values vs 5 registers.
        let src = "fn f(a: int, b: int, c: int, d: int) -> int {
            var e = a + b; var g = c + d; var h = a + c; var i = b + d;
            return ((a + b) + (c + d)) + ((e + g) + (h + i));
        }";
        let f = func(src, 0);
        let a = allocate(&f, &pools());
        assert!(a.spill_slots > 0, "expected spills");
    }

    #[test]
    fn non_overlapping_intervals_share_registers() {
        let f = func(
            "fn f(a: int) -> int { var x = a + 1; var y = x + 1; var z = y + 1; return z; }",
            0,
        );
        let a = allocate(&f, &pools());
        assert_eq!(a.spill_slots, 0);
        let regs: HashSet<u16> = a
            .loc
            .values()
            .filter_map(|l| match l {
                Loc::Reg(r) => Some(*r),
                Loc::Spill(_) => None,
            })
            .collect();
        assert!(regs.len() <= 3, "chain should reuse registers: {regs:?}");
    }

    #[test]
    fn loop_variables_stay_live_across_back_edge() {
        let f = func(
            "fn f(n: int) -> int { var acc = 0; var i = 0; while (i < n) { acc = acc + i; i = i + 1; } return acc; }",
            0,
        );
        let a = allocate(&f, &pools());
        // acc, i and n are simultaneously live through the loop; all must
        // have distinct locations.
        let mut vregs: Vec<VReg> = vec![f.params[0]];
        vregs.extend(f.instrs.iter().filter_map(|i| match i {
            Instr::Copy { dst, .. } => Some(*dst),
            _ => None,
        }));
        vregs.sort();
        vregs.dedup();
        let locs: Vec<Loc> = vregs.iter().map(|v| a.of(*v)).collect();
        let unique: HashSet<String> = locs.iter().map(|l| format!("{l:?}")).collect();
        assert_eq!(unique.len(), locs.len(), "conflicting allocation: {locs:?}");
    }

    #[test]
    fn preference_order_respected() {
        let f = func("fn f(a: int) -> int { return a + 1; }", 0);
        let a = allocate(&f, &pools());
        // First interval gets the first caller-saved register.
        assert_eq!(a.of(f.params[0]), Loc::Reg(8));
    }
}
