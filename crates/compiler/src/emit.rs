//! Shared emission machinery: layout, relocation, linking, scheduling.

use std::fmt;

use crate::ast::Global;
use crate::tac::{FuncId, GlobalId, Instr, TacFunction};

/// Compilation failure (a program the back ends cannot express).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// Description.
    pub message: String,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "compile error: {}", self.message)
    }
}

impl std::error::Error for CompileError {}

/// Where code and data land in the address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemLayout {
    /// Base address of `.text`.
    pub text_base: u32,
    /// Base address of `.data`.
    pub data_base: u32,
}

impl Default for MemLayout {
    fn default() -> MemLayout {
        MemLayout {
            text_base: 0x0040_0000,
            data_base: 0x1000_0000,
        }
    }
}

/// What a relocation resolves to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelocTarget {
    /// A function's entry address.
    Func(FuncId),
    /// A global's data address.
    Global(GlobalId),
}

/// A pending fixup at machine-instruction index `at` within a function.
/// Interpretation of *how* to patch is backend-specific (hi/lo pairs,
/// rel32, …); the linker only supplies addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reloc {
    /// Index of the (first) instruction to patch.
    pub at: usize,
    /// Target whose address should be written.
    pub target: RelocTarget,
}

/// One compiled function before linking.
#[derive(Debug, Clone)]
pub struct FnOut<I> {
    /// Symbol name.
    pub name: String,
    /// Exported (survives partial stripping).
    pub exported: bool,
    /// Machine instructions (branch targets within the function already
    /// resolved by the back end).
    pub instrs: Vec<I>,
    /// Pending cross-function/global fixups.
    pub relocs: Vec<Reloc>,
}

/// A linked executable image, pre-ELF.
#[derive(Debug, Clone)]
pub struct LinkedBinary {
    /// `.text` contents.
    pub text: Vec<u8>,
    /// `.text` base address.
    pub text_base: u32,
    /// `.data` contents (globals, including interned strings).
    pub data: Vec<u8>,
    /// `.data` base address.
    pub data_base: u32,
    /// Function symbols: `(name, addr, size, exported)`.
    pub symbols: Vec<(String, u32, u32, bool)>,
    /// Address of each global by [`GlobalId`].
    pub global_addrs: Vec<u32>,
    /// Entry point (the `main` function if present, else the first).
    pub entry: u32,
}

/// Lay out globals in `.data`: returns (addresses, initialized bytes).
pub fn layout_globals(globals: &[Global], data_base: u32) -> (Vec<u32>, Vec<u8>) {
    let mut addrs = Vec::with_capacity(globals.len());
    let mut data = Vec::new();
    for g in globals {
        // 4-byte alignment for everything keeps loads simple.
        while data.len() % 4 != 0 {
            data.push(0);
        }
        addrs.push(data_base + data.len() as u32);
        let size = (g.elem.size() * g.len) as usize;
        match &g.init {
            Some(bytes) => {
                data.extend_from_slice(bytes);
                if bytes.len() < size {
                    data.extend(std::iter::repeat_n(0, size - bytes.len()));
                }
            }
            None => data.extend(std::iter::repeat_n(0, size)),
        }
    }
    (addrs, data)
}

/// Link compiled functions: assign addresses, apply relocations, encode.
///
/// `len` gives an instruction's encoded size; `patch` rewrites the
/// instruction(s) at a reloc site given `(instrs, at, instr_addr,
/// target_addr)`; `encode` appends an instruction's bytes.
pub fn link<I>(
    mut fns: Vec<FnOut<I>>,
    globals: &[Global],
    layout: MemLayout,
    len: impl Fn(&I) -> u32,
    patch: impl Fn(&mut [I], usize, u32, u32),
    encode: impl Fn(&I, &mut Vec<u8>),
) -> LinkedBinary {
    const FN_ALIGN: u32 = 16;
    // Function sizes and addresses.
    let mut fn_addrs = Vec::with_capacity(fns.len());
    let mut cursor = layout.text_base;
    let mut fn_sizes = Vec::with_capacity(fns.len());
    for f in &fns {
        cursor = (cursor + FN_ALIGN - 1) & !(FN_ALIGN - 1);
        fn_addrs.push(cursor);
        let size: u32 = f.instrs.iter().map(&len).sum();
        fn_sizes.push(size);
        cursor += size;
    }
    let (global_addrs, data) = layout_globals(globals, layout.data_base);
    // Apply relocations.
    for (fi, f) in fns.iter_mut().enumerate() {
        // Instruction offsets within the function.
        let mut offs = Vec::with_capacity(f.instrs.len());
        let mut o = 0u32;
        for i in &f.instrs {
            offs.push(o);
            o += len(i);
        }
        for r in f.relocs.clone() {
            let instr_addr = fn_addrs[fi] + offs[r.at];
            let target_addr = match r.target {
                RelocTarget::Func(id) => fn_addrs[id],
                RelocTarget::Global(id) => global_addrs[id],
            };
            patch(&mut f.instrs, r.at, instr_addr, target_addr);
        }
    }
    // Encode.
    let mut text = Vec::new();
    let mut symbols = Vec::new();
    for (fi, f) in fns.iter().enumerate() {
        let pad = (fn_addrs[fi] - layout.text_base) as usize - text.len();
        text.extend(std::iter::repeat_n(0, pad));
        for i in &f.instrs {
            encode(i, &mut text);
        }
        symbols.push((f.name.clone(), fn_addrs[fi], fn_sizes[fi], f.exported));
    }
    let entry = symbols
        .iter()
        .find(|(n, ..)| n == "main")
        .map(|&(_, a, ..)| a)
        .unwrap_or(layout.text_base);
    LinkedBinary {
        text,
        text_base: layout.text_base,
        data,
        data_base: layout.data_base,
        symbols,
        global_addrs,
        entry,
    }
}

impl LinkedBinary {
    /// Wrap in an ELF32 container for the given machine.
    pub fn to_elf(&self, machine: u16) -> firmup_obj::Elf {
        let mut b = firmup_obj::write::ElfBuilder::new(machine, self.entry);
        b.text(self.text_base, self.text.clone());
        if !self.data.is_empty() {
            b.data(self.data_base, self.data.clone());
        }
        for (name, addr, size, exported) in &self.symbols {
            b.func(name, *addr, *size, *exported);
        }
        b.build()
    }
}

/// Deterministic local scheduling: swap adjacent independent pure TAC
/// instructions based on a position hash. Models the instruction-order
/// variance different compiler schedulers introduce.
pub fn schedule_tac(f: &mut TacFunction) {
    let mut i = 0;
    while i + 1 < f.instrs.len() {
        let (a, b) = (&f.instrs[i], &f.instrs[i + 1]);
        let swappable = a.is_pure()
            && b.is_pure()
            && a.def().is_some()
            && b.def().is_some()
            && a.def() != b.def()
            && !b.uses().contains(&a.def().expect("checked"))
            && !a.uses().contains(&b.def().expect("checked"))
            // Loads may not move across each other when a store could
            // sit between blocks; keep load pairs stable for simplicity.
            && !(matches!(a, Instr::Load { .. }) && matches!(b, Instr::Load { .. }));
        // Simple deterministic "hash": swap every other eligible pair.
        if swappable && i % 2 == 0 {
            f.instrs.swap(i, i + 1);
            i += 2;
        } else {
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::ElemType;
    use crate::tac::{Operand, TBin, VReg};

    #[test]
    fn global_layout_aligns_and_initializes() {
        let globals = vec![
            Global {
                name: "s".into(),
                elem: ElemType::Byte,
                len: 3,
                init: Some(b"ab\0".to_vec()),
            },
            Global {
                name: "w".into(),
                elem: ElemType::Int,
                len: 2,
                init: None,
            },
        ];
        let (addrs, data) = layout_globals(&globals, 0x1000_0000);
        assert_eq!(addrs, vec![0x1000_0000, 0x1000_0004]);
        assert_eq!(&data[0..3], b"ab\0");
        assert_eq!(data.len(), 4 + 8);
    }

    #[test]
    fn link_assigns_aligned_addresses_and_patches() {
        // Fake 4-byte "instructions" that are just u32 slots; reloc
        // writes the target address into the slot.
        let fns = vec![
            FnOut {
                name: "main".into(),
                exported: false,
                instrs: vec![0u32, 0, 0],
                relocs: vec![Reloc {
                    at: 1,
                    target: RelocTarget::Func(1),
                }],
            },
            FnOut {
                name: "callee".into(),
                exported: true,
                instrs: vec![0u32],
                relocs: vec![Reloc {
                    at: 0,
                    target: RelocTarget::Global(0),
                }],
            },
        ];
        let globals = vec![Global {
            name: "g".into(),
            elem: ElemType::Int,
            len: 1,
            init: None,
        }];
        let lb = link(
            fns,
            &globals,
            MemLayout::default(),
            |_| 4,
            |instrs, at, _ia, ta| instrs[at] = ta,
            |i, out| out.extend_from_slice(&i.to_le_bytes()),
        );
        assert_eq!(lb.symbols[0].1, 0x0040_0000);
        assert_eq!(lb.symbols[1].1, 0x0040_0010, "16-byte alignment");
        assert_eq!(lb.entry, 0x0040_0000, "main is the entry");
        // The patched slot holds callee's address.
        let w = u32::from_le_bytes([lb.text[4], lb.text[5], lb.text[6], lb.text[7]]);
        assert_eq!(w, 0x0040_0010);
        // Callee's slot holds the global address.
        let w2 = u32::from_le_bytes([lb.text[16], lb.text[17], lb.text[18], lb.text[19]]);
        assert_eq!(w2, 0x1000_0000);
        assert_eq!(lb.global_addrs, vec![0x1000_0000]);
    }

    #[test]
    fn schedule_swaps_independent_pairs_only() {
        let mut f = TacFunction {
            name: "f".into(),
            params: vec![VReg(0)],
            vreg_count: 4,
            label_count: 0,
            instrs: vec![
                Instr::Bin {
                    op: TBin::Add,
                    dst: VReg(1),
                    a: Operand::V(VReg(0)),
                    b: Operand::Imm(1),
                },
                Instr::Bin {
                    op: TBin::Sub,
                    dst: VReg(2),
                    a: Operand::V(VReg(0)),
                    b: Operand::Imm(2),
                },
                // Dependent on VReg(1): must not move before it.
                Instr::Bin {
                    op: TBin::Mul,
                    dst: VReg(3),
                    a: Operand::V(VReg(1)),
                    b: Operand::Imm(3),
                },
                Instr::Ret {
                    value: Some(Operand::V(VReg(3))),
                },
            ],
            returns_value: true,
            exported: false,
        };
        schedule_tac(&mut f);
        // First two swapped, dependency preserved.
        assert!(matches!(f.instrs[0], Instr::Bin { op: TBin::Sub, .. }));
        assert!(matches!(f.instrs[1], Instr::Bin { op: TBin::Add, .. }));
        let mul_pos = f
            .instrs
            .iter()
            .position(|i| matches!(i, Instr::Bin { op: TBin::Mul, .. }))
            .unwrap();
        let add_pos = f
            .instrs
            .iter()
            .position(|i| matches!(i, Instr::Bin { op: TBin::Add, .. }))
            .unwrap();
        assert!(mul_pos > add_pos);
    }
}
