//! Toolchain profiles: the source of cross-compilation variance.
//!
//! The paper's premise is that "each vendor may use unique build tool
//! chains, which lead to vast syntactic differences in the assembly"
//! (§1). A [`ToolchainProfile`] bundles the knobs that make two builds of
//! identical source diverge: optimization level, register-allocation
//! preference order, instruction scheduling, delay-slot filling and frame
//! quirks.

use crate::opt::OptFlags;

/// Optimization level, mirroring common `-O` flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptLevel {
    /// No optimization; every value lives in a stack slot (classic `-O0`
    /// code shape).
    O0,
    /// Basic cleanup: folding, propagation, DCE.
    O1,
    /// Aggressive: adds CSE and inlining.
    O2,
    /// Like O1 but the back ends prefer compact idioms.
    Os,
}

impl OptLevel {
    /// TAC pass selection for this level.
    pub fn flags(self) -> OptFlags {
        match self {
            OptLevel::O0 => OptFlags::none(),
            OptLevel::O1 | OptLevel::Os => OptFlags::basic(),
            OptLevel::O2 => OptFlags::aggressive(),
        }
    }
}

impl ToolchainProfile {
    /// The full TAC pass selection for this profile: the optimization
    /// level's passes plus the profile's control-flow idioms.
    pub fn opt_flags(&self) -> OptFlags {
        let mut flags = self.opt.flags();
        flags.rotate_loops = self.rotate_loops;
        flags.invert_branches = self.invert_branches;
        flags.inline_threshold = flags.inline_threshold.map(|_| self.inline_threshold);
        flags
    }
}

/// Register-allocation preference order variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegOrder {
    /// The architecture's conventional order.
    Standard,
    /// Reversed pools (vendors' compilers often allocate from the other
    /// end of the file).
    Reversed,
    /// Odd/even interleave.
    Interleaved,
}

impl RegOrder {
    /// Apply this order to a pool.
    pub fn apply(self, pool: &mut Vec<u16>) {
        match self {
            RegOrder::Standard => {}
            RegOrder::Reversed => pool.reverse(),
            RegOrder::Interleaved => {
                let odd: Vec<u16> = pool.iter().copied().skip(1).step_by(2).collect();
                let even: Vec<u16> = pool.iter().copied().step_by(2).collect();
                pool.clear();
                pool.extend(odd);
                pool.extend(even);
            }
        }
    }
}

/// A complete build configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ToolchainProfile {
    /// Display name (e.g. `"gcc-5.2"`, `"vendor-sdk"`).
    pub name: String,
    /// Optimization level.
    pub opt: OptLevel,
    /// Register preference order.
    pub reg_order: RegOrder,
    /// Deterministic local instruction scheduling (reorders independent
    /// adjacent TAC instructions).
    pub schedule: bool,
    /// Fill MIPS branch delay slots with useful instructions instead of
    /// NOPs.
    pub fill_delay_slots: bool,
    /// Extra bytes of stack frame padding (vendor quirk; changes all
    /// frame offsets).
    pub frame_padding: u32,
    /// Rotate loops into guarded do-while form (gcc `-O2` style).
    pub rotate_loops: bool,
    /// Invert compare-and-branch polarity (layout heuristic variance).
    pub invert_branches: bool,
    /// Inlining size threshold when the optimization level inlines.
    pub inline_threshold: usize,
}

impl ToolchainProfile {
    /// The reference build used for query procedures in the paper's
    /// evaluation ("compiled with gcc 5.2 at the default optimization
    /// level (usually -O2)").
    pub fn gcc_like() -> ToolchainProfile {
        ToolchainProfile {
            name: "gcc-5.2-O2".into(),
            opt: OptLevel::O2,
            reg_order: RegOrder::Standard,
            schedule: false,
            fill_delay_slots: true,
            frame_padding: 0,
            rotate_loops: true,
            invert_branches: false,
            inline_threshold: 14,
        }
    }

    /// A vendor SDK that optimizes for size and allocates registers from
    /// the other end.
    pub fn vendor_size() -> ToolchainProfile {
        ToolchainProfile {
            name: "vendor-Os".into(),
            opt: OptLevel::Os,
            reg_order: RegOrder::Reversed,
            schedule: true,
            fill_delay_slots: false,
            frame_padding: 8,
            rotate_loops: false,
            invert_branches: true,
            inline_threshold: 8,
        }
    }

    /// A debug-style vendor build: no optimization at all.
    pub fn vendor_debug() -> ToolchainProfile {
        ToolchainProfile {
            name: "vendor-O0".into(),
            opt: OptLevel::O0,
            reg_order: RegOrder::Standard,
            schedule: false,
            fill_delay_slots: false,
            frame_padding: 0,
            rotate_loops: false,
            invert_branches: false,
            inline_threshold: 0,
        }
    }

    /// An aggressive vendor build with scheduling and interleaved
    /// allocation.
    pub fn vendor_fast() -> ToolchainProfile {
        ToolchainProfile {
            name: "vendor-O2-sched".into(),
            opt: OptLevel::O2,
            reg_order: RegOrder::Interleaved,
            schedule: true,
            fill_delay_slots: true,
            frame_padding: 4,
            rotate_loops: true,
            invert_branches: true,
            inline_threshold: 24,
        }
    }

    /// All built-in profiles.
    pub fn all() -> Vec<ToolchainProfile> {
        vec![
            ToolchainProfile::gcc_like(),
            ToolchainProfile::vendor_size(),
            ToolchainProfile::vendor_debug(),
            ToolchainProfile::vendor_fast(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_order_permutations() {
        let base = vec![1u16, 2, 3, 4, 5];
        let mut std = base.clone();
        RegOrder::Standard.apply(&mut std);
        assert_eq!(std, base);
        let mut rev = base.clone();
        RegOrder::Reversed.apply(&mut rev);
        assert_eq!(rev, vec![5, 4, 3, 2, 1]);
        let mut il = base.clone();
        RegOrder::Interleaved.apply(&mut il);
        assert_eq!(il, vec![2, 4, 1, 3, 5]);
        // Permutations preserve the register set.
        for mut p in [rev, il] {
            p.sort_unstable();
            assert_eq!(p, base);
        }
    }

    #[test]
    fn o0_disables_everything() {
        let f = OptLevel::O0.flags();
        assert!(!f.fold && !f.dce && f.inline_threshold.is_none());
        assert!(OptLevel::O2.flags().inline_threshold.is_some());
    }

    #[test]
    fn profiles_are_distinct() {
        let all = ToolchainProfile::all();
        for i in 0..all.len() {
            for j in i + 1..all.len() {
                assert_ne!(all[i], all[j]);
            }
        }
    }
}
