//! MinC: a small C-like language with four native back ends.
//!
//! This crate is the FirmUp reproduction's stand-in for "the vendor tool
//! chains": the paper's evaluation depends on the same source code being
//! compiled by *different* compilers for *different* architectures
//! (gcc 5.2 for queries, unknown vendor SDKs for targets — §5.1), and on
//! the resulting syntactic variance being large. MinC programs compile to
//! real machine code for MIPS32, ARM32, PPC32 and x86 under configurable
//! [`ToolchainProfile`]s, and the output is a genuine ELF32 executable
//! that the rest of the pipeline must disassemble and lift like any
//! found-in-the-wild binary.
//!
//! # Pipeline
//!
//! ```text
//! source → lex → parse → sema → TAC → optimize (per profile)
//!        → schedule → regalloc → instruction selection (per arch)
//!        → link → ELF32
//! ```
//!
//! # The MinC language
//!
//! MinC is a deliberately small C-like language. Everything is a 32-bit
//! signed `int`; the only aggregate data are global arrays.
//!
//! ```text
//! // Items: functions and globals. `pub fn` exports the symbol
//! // (survives partial stripping, like a library's public API).
//! global buf: [byte; 64];          // zero-initialized byte array
//! global tbl: [int; 16];           // zero-initialized word array
//! global msg = "hello";            // NUL-terminated bytes in .data
//!
//! pub fn str_len(p: int) -> int {  // ≤ 4 parameters on RISC targets
//!     var n = 0;                   // locals: `var name = expr;`
//!     while (peek8(p + n) != 0) {  // while / if-else / break / continue
//!         n = n + 1;
//!     }
//!     return n;
//! }
//!
//! fn demo(a: int) -> int {
//!     buf[a] = 65;                 // global array store (bounds unchecked)
//!     var x = tbl[2] + buf[a];     // global array load
//!     poke(&tbl + 4, x);           // word store through a computed address
//!     poke8(&buf, 66);             // byte store
//!     var y = peek(&tbl + 4);      // word load
//!     var s = "lit";               // string literal = address in .data
//!     if (x < 10 && y != 0) { return peek8(s); }
//!     return x ^ (y >> 2);         // >>/<< need constant amounts on ARM/x86
//! }
//! ```
//!
//! Operators (C precedence): `|| && | ^ & == != < <= > >= << >> + - *`
//! and unary `- ! ~`. There is no division, no function pointers, and no
//! recursion limit checking — the corpus packages are written within
//! these bounds.
//!
//! # Example
//!
//! ```
//! use firmup_compiler::{compile_source, CompilerOptions};
//! use firmup_isa::Arch;
//!
//! let elf = compile_source(
//!     "fn main() -> int { return 41 + 1; }",
//!     Arch::Mips32,
//!     &CompilerOptions::default(),
//! )?;
//! assert_eq!(elf.machine, Arch::Mips32.elf_machine());
//! assert!(elf.text().is_some());
//! # Ok::<(), firmup_compiler::CompilerError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod backend;
pub mod emit;
pub mod lexer;
pub mod opt;
pub mod parser;
pub mod profile;
pub mod regalloc;
pub mod sema;
pub mod tac;

use std::fmt;

pub use emit::{CompileError, LinkedBinary, MemLayout};
pub use parser::{parse, ParseError};
pub use profile::{OptLevel, RegOrder, ToolchainProfile};
pub use sema::SemaError;

use firmup_isa::Arch;

/// Everything that can go wrong between source text and ELF.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompilerError {
    /// Syntax error.
    Parse(ParseError),
    /// Semantic error.
    Sema(SemaError),
    /// Back-end limitation.
    Backend(CompileError),
}

impl fmt::Display for CompilerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompilerError::Parse(e) => e.fmt(f),
            CompilerError::Sema(e) => e.fmt(f),
            CompilerError::Backend(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for CompilerError {}

impl From<ParseError> for CompilerError {
    fn from(e: ParseError) -> Self {
        CompilerError::Parse(e)
    }
}

impl From<SemaError> for CompilerError {
    fn from(e: SemaError) -> Self {
        CompilerError::Sema(e)
    }
}

impl From<CompileError> for CompilerError {
    fn from(e: CompileError) -> Self {
        CompilerError::Backend(e)
    }
}

/// Build configuration: toolchain profile, memory layout, stripping.
#[derive(Debug, Clone)]
pub struct CompilerOptions {
    /// The toolchain profile (optimization, register order, scheduling…).
    pub profile: ToolchainProfile,
    /// Code/data placement.
    pub layout: MemLayout,
}

impl Default for CompilerOptions {
    fn default() -> Self {
        CompilerOptions {
            profile: ToolchainProfile::gcc_like(),
            layout: MemLayout::default(),
        }
    }
}

/// Compile MinC source text to an ELF32 executable for `arch`.
///
/// The produced ELF carries full symbol information; call
/// [`firmup_obj::Elf::strip`] to model firmware-style stripping.
///
/// # Errors
///
/// Returns [`CompilerError`] on syntax, semantic or back-end failures.
pub fn compile_source(
    src: &str,
    arch: Arch,
    options: &CompilerOptions,
) -> Result<firmup_obj::Elf, CompilerError> {
    let program = parse(src)?;
    sema::check(&program)?;
    let linked = compile_program(&program, arch, options)?;
    Ok(linked.to_elf(arch.elf_machine()))
}

/// Compile a parsed and checked program, returning the pre-ELF image
/// (exposes addresses and symbols directly — C-INTERMEDIATE).
///
/// # Errors
///
/// Returns [`CompilerError::Backend`] for programs the target back end
/// cannot express.
pub fn compile_program(
    program: &ast::Program,
    arch: Arch,
    options: &CompilerOptions,
) -> Result<LinkedBinary, CompilerError> {
    let mut tac = tac::lower(program);
    opt::optimize(&mut tac, options.profile.opt_flags());
    if options.profile.schedule {
        for f in &mut tac.functions {
            emit::schedule_tac(f);
        }
    }
    Ok(backend::compile_tac(
        &tac,
        arch,
        &options.profile,
        options.layout,
    )?)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
        global buf: [byte; 32];
        global limit: [int; 1];

        fn clamp(x: int, lo: int, hi: int) -> int {
            if (x < lo) { return lo; }
            if (x > hi) { return hi; }
            return x;
        }

        pub fn fill(n: int) -> int {
            var i = 0;
            var acc = 0;
            while (i < n) {
                buf[i] = clamp(i * 7, 0, 255);
                acc = acc + buf[i];
                i = i + 1;
            }
            limit[0] = acc;
            return acc;
        }

        fn main() -> int {
            return fill(16);
        }
    "#;

    #[test]
    fn compiles_for_all_architectures_and_profiles() {
        for arch in Arch::all() {
            for profile in ToolchainProfile::all() {
                let options = CompilerOptions {
                    profile: profile.clone(),
                    layout: MemLayout::default(),
                };
                let elf = compile_source(SRC, arch, &options)
                    .unwrap_or_else(|e| panic!("{arch}/{}: {e}", profile.name));
                assert!(elf.text().is_some(), "{arch}: no text");
                assert!(elf.func_symbols().len() >= 3, "{arch}: missing symbols");
                let fill = elf.symbols.iter().find(|s| s.name == "fill").unwrap();
                assert!(fill.global, "pub fn must be exported");
            }
        }
    }

    #[test]
    fn different_profiles_produce_different_bytes() {
        for arch in Arch::all() {
            let a = compile_source(SRC, arch, &CompilerOptions::default()).unwrap();
            let b = compile_source(
                SRC,
                arch,
                &CompilerOptions {
                    profile: ToolchainProfile::vendor_size(),
                    layout: MemLayout::default(),
                },
            )
            .unwrap();
            assert_ne!(
                a.text().unwrap().data,
                b.text().unwrap().data,
                "{arch}: profiles must diverge"
            );
        }
    }

    #[test]
    fn same_input_is_deterministic() {
        for arch in Arch::all() {
            let a = compile_source(SRC, arch, &CompilerOptions::default()).unwrap();
            let b = compile_source(SRC, arch, &CompilerOptions::default()).unwrap();
            assert_eq!(a.text().unwrap().data, b.text().unwrap().data, "{arch}");
        }
    }

    #[test]
    fn parse_errors_surface() {
        assert!(matches!(
            compile_source("fn f( {", Arch::X86, &CompilerOptions::default()),
            Err(CompilerError::Parse(_))
        ));
        assert!(matches!(
            compile_source(
                "fn f() -> int { return x; }",
                Arch::X86,
                &CompilerOptions::default()
            ),
            Err(CompilerError::Sema(_))
        ));
    }
}
