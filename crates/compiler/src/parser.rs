//! Recursive-descent parser for MinC.

use std::fmt;

use crate::ast::{BinOp, ElemType, Expr, Function, Global, Program, Stmt, UnOp};
use crate::lexer::{lex, LexError, TokKind, Token};

/// Parsing failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Problem description.
    pub message: String,
    /// 1-based source line.
    pub line: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> ParseError {
        ParseError {
            message: e.message,
            line: e.line,
        }
    }
}

/// Parse a MinC translation unit.
///
/// # Errors
///
/// Returns [`ParseError`] describing the first syntax problem.
///
/// # Example
///
/// ```
/// let program = firmup_compiler::parse(
///     "fn add(a: int, b: int) -> int { return a + b; }",
/// )?;
/// assert_eq!(program.functions.len(), 1);
/// # Ok::<(), firmup_compiler::ParseError>(())
/// ```
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    p.program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokKind {
        &self.tokens[self.pos].kind
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos].line
    }

    fn bump(&mut self) -> TokKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: message.into(),
            line: self.line(),
        })
    }

    fn expect(&mut self, kind: &TokKind) -> Result<(), ParseError> {
        if self.peek() == kind {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {kind}, found {}", self.peek()))
        }
    }

    fn eat(&mut self, kind: &TokKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            TokKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut prog = Program::default();
        loop {
            match self.peek() {
                TokKind::Eof => break,
                TokKind::Global => prog.globals.push(self.global()?),
                TokKind::Fn | TokKind::Pub => prog.functions.push(self.function()?),
                other => return self.err(format!("expected item, found {other}")),
            }
        }
        Ok(prog)
    }

    fn global(&mut self) -> Result<Global, ParseError> {
        self.expect(&TokKind::Global)?;
        let name = self.ident()?;
        if self.eat(&TokKind::Assign) {
            // global name = "literal";
            let s = match self.bump() {
                TokKind::Str(s) => s,
                other => return self.err(format!("expected string literal, found {other}")),
            };
            self.expect(&TokKind::Semi)?;
            let mut bytes = s.into_bytes();
            bytes.push(0);
            let len = bytes.len() as u32;
            return Ok(Global {
                name,
                elem: ElemType::Byte,
                len,
                init: Some(bytes),
            });
        }
        self.expect(&TokKind::Colon)?;
        self.expect(&TokKind::LBracket)?;
        let elem = match self.bump() {
            TokKind::Int => ElemType::Int,
            TokKind::Byte => ElemType::Byte,
            other => return self.err(format!("expected element type, found {other}")),
        };
        self.expect(&TokKind::Semi)?;
        let len = match self.bump() {
            TokKind::Num(n) if n > 0 => n as u32,
            other => return self.err(format!("expected positive length, found {other}")),
        };
        self.expect(&TokKind::RBracket)?;
        self.expect(&TokKind::Semi)?;
        Ok(Global {
            name,
            elem,
            len,
            init: None,
        })
    }

    fn function(&mut self) -> Result<Function, ParseError> {
        let exported = self.eat(&TokKind::Pub);
        self.expect(&TokKind::Fn)?;
        let name = self.ident()?;
        self.expect(&TokKind::LParen)?;
        let mut params = Vec::new();
        if !self.eat(&TokKind::RParen) {
            loop {
                let p = self.ident()?;
                self.expect(&TokKind::Colon)?;
                self.expect(&TokKind::Int)?;
                params.push(p);
                if !self.eat(&TokKind::Comma) {
                    break;
                }
            }
            self.expect(&TokKind::RParen)?;
        }
        let returns_value = if self.eat(&TokKind::Arrow) {
            self.expect(&TokKind::Int)?;
            true
        } else {
            false
        };
        let body = self.block()?;
        Ok(Function {
            name,
            params,
            returns_value,
            body,
            exported,
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect(&TokKind::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat(&TokKind::RBrace) {
            if matches!(self.peek(), TokKind::Eof) {
                return self.err("unexpected end of file inside block");
            }
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.peek().clone() {
            TokKind::Var => {
                self.bump();
                let name = self.ident()?;
                if self.eat(&TokKind::Colon) {
                    self.expect(&TokKind::Int)?;
                }
                self.expect(&TokKind::Assign)?;
                let init = self.expr()?;
                self.expect(&TokKind::Semi)?;
                Ok(Stmt::VarDecl { name, init })
            }
            TokKind::If => {
                self.bump();
                self.expect(&TokKind::LParen)?;
                let cond = self.expr()?;
                self.expect(&TokKind::RParen)?;
                let then_body = self.block()?;
                let else_body = if self.eat(&TokKind::Else) {
                    if matches!(self.peek(), TokKind::If) {
                        vec![self.stmt()?]
                    } else {
                        self.block()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    then_body,
                    else_body,
                })
            }
            TokKind::While => {
                self.bump();
                self.expect(&TokKind::LParen)?;
                let cond = self.expr()?;
                self.expect(&TokKind::RParen)?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body })
            }
            TokKind::Return => {
                self.bump();
                if self.eat(&TokKind::Semi) {
                    Ok(Stmt::Return(None))
                } else {
                    let e = self.expr()?;
                    self.expect(&TokKind::Semi)?;
                    Ok(Stmt::Return(Some(e)))
                }
            }
            TokKind::Break => {
                self.bump();
                self.expect(&TokKind::Semi)?;
                Ok(Stmt::Break)
            }
            TokKind::Continue => {
                self.bump();
                self.expect(&TokKind::Semi)?;
                Ok(Stmt::Continue)
            }
            TokKind::Ident(name) => {
                // Lookahead: assignment, index assignment, or expression.
                match &self.tokens[self.pos + 1].kind {
                    TokKind::Assign => {
                        self.bump();
                        self.bump();
                        let value = self.expr()?;
                        self.expect(&TokKind::Semi)?;
                        Ok(Stmt::Assign { name, value })
                    }
                    TokKind::LBracket => {
                        // Could be `g[i] = e;` or `g[i]` used in an
                        // expression statement; parse the index then look
                        // for `=`.
                        self.bump();
                        self.bump();
                        let index = self.expr()?;
                        self.expect(&TokKind::RBracket)?;
                        if self.eat(&TokKind::Assign) {
                            let value = self.expr()?;
                            self.expect(&TokKind::Semi)?;
                            Ok(Stmt::IndexAssign {
                                global: name,
                                index,
                                value,
                            })
                        } else {
                            // Rare: `g[i];` — evaluate and discard.
                            self.expect(&TokKind::Semi)?;
                            Ok(Stmt::ExprStmt(Expr::Index {
                                global: name,
                                index: Box::new(index),
                            }))
                        }
                    }
                    TokKind::LParen if name == "poke" || name == "poke8" => {
                        self.bump();
                        self.bump();
                        let addr = self.expr()?;
                        self.expect(&TokKind::Comma)?;
                        let value = self.expr()?;
                        self.expect(&TokKind::RParen)?;
                        self.expect(&TokKind::Semi)?;
                        let elem = if name == "poke" {
                            ElemType::Int
                        } else {
                            ElemType::Byte
                        };
                        Ok(Stmt::DerefAssign { addr, value, elem })
                    }
                    _ => {
                        let e = self.expr()?;
                        self.expect(&TokKind::Semi)?;
                        Ok(Stmt::ExprStmt(e))
                    }
                }
            }
            other => self.err(format!("expected statement, found {other}")),
        }
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_or()
    }

    fn or_or(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.and_and()?;
        while self.eat(&TokKind::OrOr) {
            let rhs = self.and_and()?;
            e = Expr::bin(BinOp::OrOr, e, rhs);
        }
        Ok(e)
    }

    fn and_and(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.bit_or()?;
        while self.eat(&TokKind::AndAnd) {
            let rhs = self.bit_or()?;
            e = Expr::bin(BinOp::AndAnd, e, rhs);
        }
        Ok(e)
    }

    fn bit_or(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.bit_xor()?;
        while self.eat(&TokKind::Pipe) {
            let rhs = self.bit_xor()?;
            e = Expr::bin(BinOp::Or, e, rhs);
        }
        Ok(e)
    }

    fn bit_xor(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.bit_and()?;
        while self.eat(&TokKind::Caret) {
            let rhs = self.bit_and()?;
            e = Expr::bin(BinOp::Xor, e, rhs);
        }
        Ok(e)
    }

    fn bit_and(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.equality()?;
        while self.eat(&TokKind::Amp) {
            let rhs = self.equality()?;
            e = Expr::bin(BinOp::And, e, rhs);
        }
        Ok(e)
    }

    fn equality(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.relational()?;
        loop {
            let op = match self.peek() {
                TokKind::EqEq => BinOp::Eq,
                TokKind::Ne => BinOp::Ne,
                _ => break,
            };
            self.bump();
            let rhs = self.relational()?;
            e = Expr::bin(op, e, rhs);
        }
        Ok(e)
    }

    fn relational(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.shift()?;
        loop {
            let op = match self.peek() {
                TokKind::Lt => BinOp::Lt,
                TokKind::Le => BinOp::Le,
                TokKind::Gt => BinOp::Gt,
                TokKind::Ge => BinOp::Ge,
                _ => break,
            };
            self.bump();
            let rhs = self.shift()?;
            e = Expr::bin(op, e, rhs);
        }
        Ok(e)
    }

    fn shift(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.additive()?;
        loop {
            let op = match self.peek() {
                TokKind::Shl => BinOp::Shl,
                TokKind::Shr => BinOp::Shr,
                _ => break,
            };
            self.bump();
            let rhs = self.additive()?;
            e = Expr::bin(op, e, rhs);
        }
        Ok(e)
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                TokKind::Plus => BinOp::Add,
                TokKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.multiplicative()?;
            e = Expr::bin(op, e, rhs);
        }
        Ok(e)
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.unary()?;
        while self.eat(&TokKind::Star) {
            let rhs = self.unary()?;
            e = Expr::bin(BinOp::Mul, e, rhs);
        }
        Ok(e)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        let op = match self.peek() {
            TokKind::Minus => Some(UnOp::Neg),
            TokKind::Bang => Some(UnOp::Not),
            TokKind::Tilde => Some(UnOp::BitNot),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let arg = self.unary()?;
            return Ok(Expr::Un {
                op,
                arg: Box::new(arg),
            });
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        match self.bump() {
            TokKind::Num(n) => Ok(Expr::Num(n)),
            TokKind::Str(s) => Ok(Expr::Str(s)),
            TokKind::Amp => {
                let name = self.ident()?;
                Ok(Expr::AddrOf(name))
            }
            TokKind::LParen => {
                let e = self.expr()?;
                self.expect(&TokKind::RParen)?;
                Ok(e)
            }
            TokKind::Ident(name) => match self.peek() {
                TokKind::LParen => {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.eat(&TokKind::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&TokKind::Comma) {
                                break;
                            }
                        }
                        self.expect(&TokKind::RParen)?;
                    }
                    // Memory builtins.
                    match (name.as_str(), args.len()) {
                        ("peek", 1) | ("peek8", 1) => {
                            let elem = if name == "peek" {
                                ElemType::Int
                            } else {
                                ElemType::Byte
                            };
                            return Ok(Expr::Deref {
                                addr: Box::new(args.remove(0)),
                                elem,
                            });
                        }
                        ("peek" | "peek8", n) => {
                            return self.err(format!("`{name}` takes 1 argument, got {n}"))
                        }
                        ("poke" | "poke8", _) => {
                            return self.err(format!("`{name}` is a statement, not an expression"))
                        }
                        _ => {}
                    }
                    Ok(Expr::Call { callee: name, args })
                }
                TokKind::LBracket => {
                    self.bump();
                    let index = self.expr()?;
                    self.expect(&TokKind::RBracket)?;
                    Ok(Expr::Index {
                        global: name,
                        index: Box::new(index),
                    })
                }
                _ => Ok(Expr::Var(name)),
            },
            other => self.err(format!("expected expression, found {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_function_with_params() {
        let p = parse("fn add(a: int, b: int) -> int { return a + b; }").unwrap();
        let f = &p.functions[0];
        assert_eq!(f.name, "add");
        assert_eq!(f.params, vec!["a", "b"]);
        assert!(f.returns_value);
        assert!(!f.exported);
    }

    #[test]
    fn parses_pub_fn() {
        let p = parse("pub fn e() { return; }").unwrap();
        assert!(p.functions[0].exported);
        assert!(!p.functions[0].returns_value);
    }

    #[test]
    fn parses_globals() {
        let p =
            parse("global buf: [byte; 64]; global tbl: [int; 8]; global msg = \"hi\";").unwrap();
        assert_eq!(p.globals.len(), 3);
        assert_eq!(p.globals[0].elem, ElemType::Byte);
        assert_eq!(p.globals[1].len, 8);
        assert_eq!(p.globals[2].init.as_deref(), Some(&b"hi\0"[..]));
    }

    #[test]
    fn precedence() {
        let p = parse("fn f(a: int) -> int { return a + 2 * 3 < 4 && 1; }").unwrap();
        // ((a + (2*3)) < 4) && 1
        if let Stmt::Return(Some(Expr::Bin { op, lhs, .. })) = &p.functions[0].body[0] {
            assert_eq!(*op, BinOp::AndAnd);
            if let Expr::Bin { op, .. } = lhs.as_ref() {
                assert_eq!(*op, BinOp::Lt);
            } else {
                panic!("expected comparison under &&");
            }
        } else {
            panic!("expected return of binop");
        }
    }

    #[test]
    fn control_flow_statements() {
        let src = r#"
            fn f(n: int) -> int {
                var acc = 0;
                var i = 0;
                while (i < n) {
                    if (i == 3) { break; } else { acc = acc + i; }
                    i = i + 1;
                    continue;
                }
                return acc;
            }
        "#;
        let p = parse(src).unwrap();
        assert_eq!(p.functions[0].body.len(), 4);
    }

    #[test]
    fn index_assignment_and_load() {
        let src = "global b: [byte; 4]; fn f(i: int) -> int { b[i] = 1; return b[i]; }";
        let p = parse(src).unwrap();
        assert!(matches!(p.functions[0].body[0], Stmt::IndexAssign { .. }));
    }

    #[test]
    fn else_if_chain() {
        let src = "fn f(a: int) -> int { if (a == 1) { return 1; } else if (a == 2) { return 2; } else { return 3; } }";
        let p = parse(src).unwrap();
        if let Stmt::If { else_body, .. } = &p.functions[0].body[0] {
            assert!(matches!(else_body[0], Stmt::If { .. }));
        } else {
            panic!("expected if");
        }
    }

    #[test]
    fn error_reports_line() {
        let e = parse("fn f() {\n  var = 3;\n}").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn call_statement_and_args() {
        let p = parse("fn g(x: int) {} fn f() { g(1); g(1 + 2); }").unwrap();
        assert_eq!(p.functions[1].body.len(), 2);
    }

    #[test]
    fn string_and_addrof_exprs() {
        let p =
            parse("global t: [int; 2]; fn f() -> int { var s = \"x\"; return s + &t; }").unwrap();
        assert!(matches!(
            p.functions[0].body[0],
            Stmt::VarDecl {
                init: Expr::Str(_),
                ..
            }
        ));
    }

    #[test]
    fn unterminated_block_is_error() {
        assert!(parse("fn f() { return;").is_err());
    }
}
