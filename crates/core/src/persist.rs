//! Typed persistence of the strand-hash corpus index — the `firmup
//! index` artifact.
//!
//! [`CorpusIndex`] is everything a scan needs *after* the expensive
//! unpack → parse → lift → canonicalize front half of the pipeline:
//! every target's [`ExecutableRep`] (procedure metadata + canonical
//! strand hashes), the trained [`GlobalContext`], and an inverted
//! [`StrandPostings`] table for candidate prefiltering. `firmup index
//! IMAGE... --out DIR` builds and saves one; `firmup scan --index DIR`
//! loads it and goes straight to the back-and-forth game.
//!
//! This module owns the *typed* encoding — how reps, context, and
//! postings become record payloads. The byte-level container (magic,
//! format version, per-record CRC-32, truncation-safe reads) is
//! [`firmup_firmware::index`] ("FUIX"); see ARCHITECTURE.md §4 for the
//! full format specification.
//!
//! Record names within the container:
//!
//! * `meta` — executable count (u32);
//! * `exe:<i>` — the i-th [`ExecutableRep`];
//! * `context` — the [`GlobalContext`] document frequencies;
//! * `postings` — the [`StrandPostings`] table.
//!
//! Unknown record names are skipped on load (the forward-compatibility
//! rule: additive format changes introduce new names, breaking changes
//! bump the container's format version).

use std::path::Path;
use std::sync::Arc;

use firmup_firmware::index::{index_path, read_container, write_container, IndexError, Record};
use firmup_isa::Arch;

use crate::error::{FaultCtx, FirmUpError};
use crate::sim::{ExecutableRep, GlobalContext, ProcedureRep, StrandPostings};

/// A persisted (or persistable) scan corpus: canonicalized executables
/// plus the derived search structures.
///
/// ```
/// use firmup_core::persist::CorpusIndex;
/// use firmup_core::sim::{ExecutableRep, ProcedureRep};
/// use firmup_isa::Arch;
/// let exe = ExecutableRep {
///     id: "fw/bin/wget".into(),
///     arch: Arch::Mips32,
///     procedures: vec![ProcedureRep {
///         addr: 0x400000, name: None, strands: vec![3, 5, 8],
///         block_count: 2, size: 24,
///     }],
/// };
/// let index = CorpusIndex::build(vec![exe]);
/// let blob = index.to_bytes();
/// let back = CorpusIndex::from_bytes(&blob).unwrap();
/// assert_eq!(back.executables[0].procedures[0].strands, vec![3, 5, 8]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusIndex {
    /// The canonicalized targets, in corpus order. [`StrandPostings`]
    /// executable positions index into this vector.
    pub executables: Vec<ExecutableRep>,
    /// Per-strand document frequencies trained over `executables`.
    pub context: Arc<GlobalContext>,
    /// Inverted strand → `(executable, procedure)` table.
    pub postings: StrandPostings,
}

impl CorpusIndex {
    /// Build the derived structures over a set of canonicalized
    /// executables (the in-memory path a cold scan takes, and the final
    /// step of `firmup index`).
    pub fn build(executables: Vec<ExecutableRep>) -> CorpusIndex {
        let _span = firmup_telemetry::span!("index.build");
        let context = Arc::new(GlobalContext::build(&executables));
        let postings = StrandPostings::build(&executables);
        CorpusIndex {
            executables,
            context,
            postings,
        }
    }

    /// Serialize into a FUIX container blob.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut records = Vec::with_capacity(self.executables.len() + 3);
        records.push(Record::new(
            "meta",
            (self.executables.len() as u32).to_le_bytes().to_vec(),
        ));
        for (i, exe) in self.executables.iter().enumerate() {
            records.push(Record::new(format!("exe:{i}"), encode_executable(exe)));
        }
        records.push(Record::new("context", encode_context(&self.context)));
        records.push(Record::new("postings", encode_postings(&self.postings)));
        write_container(&records)
    }

    /// Decode from a FUIX container blob.
    ///
    /// # Errors
    ///
    /// Any container-level damage surfaces as the [`IndexError`] the
    /// byte layer diagnosed; a record that parses as a container but
    /// whose typed payload is inconsistent (missing records, undecodable
    /// fields, unsorted strand vectors) is [`IndexError::Malformed`].
    pub fn from_bytes(blob: &[u8]) -> Result<CorpusIndex, IndexError> {
        let records = read_container(blob)?;
        let mut count: Option<u32> = None;
        let mut exes: Vec<Option<ExecutableRep>> = Vec::new();
        let mut context: Option<GlobalContext> = None;
        let mut postings: Option<StrandPostings> = None;
        for r in &records {
            if r.name == "meta" {
                let mut pos = 0;
                count = Some(get_u32(&r.payload, &mut pos, "meta record")?);
            } else if let Some(i) = r.name.strip_prefix("exe:") {
                let i: usize = i.parse().map_err(|_| malformed("bad exe record name"))?;
                if i >= exes.len() {
                    exes.resize_with(i + 1, || None);
                }
                exes[i] = Some(decode_executable(&r.payload)?);
            } else if r.name == "context" {
                context = Some(decode_context(&r.payload)?);
            } else if r.name == "postings" {
                postings = Some(decode_postings(&r.payload)?);
            }
            // Unknown record names are future additive extensions: skip.
        }
        let count = count.ok_or_else(|| malformed("missing meta record"))? as usize;
        if exes.len() != count {
            return Err(malformed(&format!(
                "meta declares {count} executables, found {}",
                exes.len()
            )));
        }
        let executables: Vec<ExecutableRep> = exes
            .into_iter()
            .enumerate()
            .map(|(i, e)| e.ok_or_else(|| malformed(&format!("missing record exe:{i}"))))
            .collect::<Result<_, _>>()?;
        let context = context.ok_or_else(|| malformed("missing context record"))?;
        let postings = postings.ok_or_else(|| malformed("missing postings record"))?;
        Ok(CorpusIndex {
            executables,
            context: Arc::new(context),
            postings,
        })
    }

    /// Write the index into `dir` (created if needed) as
    /// [`firmup_firmware::index::INDEX_FILE`].
    ///
    /// # Errors
    ///
    /// Filesystem failures surface as [`FirmUpError::Io`].
    pub fn save(&self, dir: &Path) -> Result<(), FirmUpError> {
        std::fs::create_dir_all(dir)
            .map_err(|e| FirmUpError::from(e).in_ctx(FaultCtx::image(dir.display().to_string())))?;
        let path = index_path(dir);
        std::fs::write(&path, self.to_bytes()).map_err(|e| {
            FirmUpError::from(e).in_ctx(FaultCtx::image(path.display().to_string()))
        })?;
        Ok(())
    }

    /// Load the index from `dir`.
    ///
    /// Telemetry: a successful load runs under an `index.load` span and
    /// adds one `index.cache_hit` per executable restored (the unpack /
    /// lift / canonicalize work the cache saved).
    ///
    /// # Errors
    ///
    /// A missing or unreadable file is [`FirmUpError::Io`]; a damaged
    /// one is [`FirmUpError::Index`] wrapping the byte-level diagnosis.
    /// Both carry the file path in their [`FaultCtx`].
    pub fn load(dir: &Path) -> Result<CorpusIndex, FirmUpError> {
        let _span = firmup_telemetry::span!("index.load");
        let path = index_path(dir);
        let ctx = FaultCtx::image(path.display().to_string());
        let blob = std::fs::read(&path).map_err(|e| FirmUpError::from(e).in_ctx(ctx.clone()))?;
        let index = CorpusIndex::from_bytes(&blob).map_err(|e| FirmUpError::from(e).in_ctx(ctx))?;
        firmup_telemetry::add("index.cache_hit", index.executables.len() as u64);
        Ok(index)
    }
}

fn malformed(reason: &str) -> IndexError {
    IndexError::Malformed {
        reason: reason.to_string(),
    }
}

// ---- payload encoding primitives -----------------------------------------
//
// Same discipline as the container: little-endian fixed-width integers,
// length-prefixed strings, every read bounds-checked. Payloads are
// CRC-protected by the container, so decode errors here mean a *logic*
// mismatch (or a version-1 reader meeting data only a future version
// writes inside an existing record — which the format rules forbid).

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn get_u32(b: &[u8], pos: &mut usize, what: &str) -> Result<u32, IndexError> {
    let s = b
        .get(*pos..pos.saturating_add(4))
        .ok_or_else(|| malformed(&format!("{what}: payload too short")))?;
    *pos += 4;
    Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
}

fn get_u64(b: &[u8], pos: &mut usize, what: &str) -> Result<u64, IndexError> {
    let s = b
        .get(*pos..pos.saturating_add(8))
        .ok_or_else(|| malformed(&format!("{what}: payload too short")))?;
    *pos += 8;
    Ok(u64::from_le_bytes([
        s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7],
    ]))
}

fn get_str(b: &[u8], pos: &mut usize, what: &str) -> Result<String, IndexError> {
    let len = get_u32(b, pos, what)? as usize;
    if len > b.len() {
        return Err(malformed(&format!("{what}: string length out of range")));
    }
    let s = b
        .get(*pos..pos.saturating_add(len))
        .ok_or_else(|| malformed(&format!("{what}: payload too short")))?;
    *pos += len;
    String::from_utf8(s.to_vec()).map_err(|_| malformed(&format!("{what}: non-UTF-8 string")))
}

// ---- ExecutableRep -------------------------------------------------------

fn encode_executable(exe: &ExecutableRep) -> Vec<u8> {
    let mut out = Vec::new();
    put_str(&mut out, &exe.id);
    put_u32(&mut out, u32::from(exe.arch.elf_machine()));
    put_u32(&mut out, exe.procedures.len() as u32);
    for p in &exe.procedures {
        put_u32(&mut out, p.addr);
        match &p.name {
            Some(n) => {
                out.push(1);
                put_str(&mut out, n);
            }
            None => out.push(0),
        }
        put_u32(&mut out, p.block_count as u32);
        put_u32(&mut out, p.size);
        put_u32(&mut out, p.strands.len() as u32);
        for &h in &p.strands {
            put_u64(&mut out, h);
        }
    }
    out
}

fn decode_executable(b: &[u8]) -> Result<ExecutableRep, IndexError> {
    let mut pos = 0;
    let id = get_str(b, &mut pos, "executable id")?;
    let machine = get_u32(b, &mut pos, "executable arch")?;
    let machine = u16::try_from(machine).map_err(|_| malformed("arch tag out of range"))?;
    let arch = Arch::from_elf_machine(machine)
        .ok_or_else(|| malformed(&format!("unknown arch tag {machine}")))?;
    let nprocs = get_u32(b, &mut pos, "procedure count")? as usize;
    if nprocs > b.len() {
        return Err(malformed("procedure count out of range"));
    }
    let mut procedures = Vec::with_capacity(nprocs);
    for _ in 0..nprocs {
        let addr = get_u32(b, &mut pos, "procedure addr")?;
        let has_name = b
            .get(pos)
            .copied()
            .ok_or_else(|| malformed("procedure name tag: payload too short"))?;
        pos += 1;
        let name = match has_name {
            0 => None,
            1 => Some(get_str(b, &mut pos, "procedure name")?),
            _ => return Err(malformed("bad procedure name tag")),
        };
        let block_count = get_u32(b, &mut pos, "procedure blocks")? as usize;
        let size = get_u32(b, &mut pos, "procedure size")?;
        let nstrands = get_u32(b, &mut pos, "strand count")? as usize;
        if nstrands.saturating_mul(8) > b.len() {
            return Err(malformed("strand count out of range"));
        }
        let mut strands = Vec::with_capacity(nstrands);
        for _ in 0..nstrands {
            strands.push(get_u64(b, &mut pos, "strand hash")?);
        }
        // The whole pipeline (Sim's merge walk, the game's pruning)
        // assumes sorted, deduplicated strand vectors; enforce the
        // invariant at the trust boundary.
        if strands.windows(2).any(|w| w[0] >= w[1]) {
            return Err(malformed("strand vector not sorted/deduplicated"));
        }
        procedures.push(ProcedureRep {
            addr,
            name,
            strands,
            block_count,
            size,
        });
    }
    Ok(ExecutableRep {
        id,
        arch,
        procedures,
    })
}

// ---- GlobalContext -------------------------------------------------------

fn encode_context(ctx: &GlobalContext) -> Vec<u8> {
    let entries = ctx.entries();
    let mut out = Vec::with_capacity(8 + entries.len() * 12);
    put_u32(&mut out, ctx.docs());
    put_u32(&mut out, entries.len() as u32);
    for (strand, df) in entries {
        put_u64(&mut out, strand);
        put_u32(&mut out, df);
    }
    out
}

fn decode_context(b: &[u8]) -> Result<GlobalContext, IndexError> {
    let mut pos = 0;
    let docs = get_u32(b, &mut pos, "context docs")?;
    let n = get_u32(b, &mut pos, "context entry count")? as usize;
    if n.saturating_mul(12) > b.len() {
        return Err(malformed("context entry count out of range"));
    }
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let strand = get_u64(b, &mut pos, "context strand")?;
        let df = get_u32(b, &mut pos, "context df")?;
        entries.push((strand, df));
    }
    Ok(GlobalContext::from_entries(docs, entries))
}

// ---- StrandPostings ------------------------------------------------------

fn encode_postings(postings: &StrandPostings) -> Vec<u8> {
    let entries = postings.entries();
    let mut out = Vec::new();
    put_u32(&mut out, entries.len() as u32);
    for (strand, sites) in entries {
        put_u64(&mut out, strand);
        put_u32(&mut out, sites.len() as u32);
        for &(exe, proc_) in sites {
            put_u32(&mut out, exe);
            put_u32(&mut out, proc_);
        }
    }
    out
}

fn decode_postings(b: &[u8]) -> Result<StrandPostings, IndexError> {
    let mut pos = 0;
    let n = get_u32(b, &mut pos, "postings strand count")? as usize;
    if n.saturating_mul(12) > b.len() {
        return Err(malformed("postings strand count out of range"));
    }
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let strand = get_u64(b, &mut pos, "postings strand")?;
        let nsites = get_u32(b, &mut pos, "posting list length")? as usize;
        if nsites.saturating_mul(8) > b.len() {
            return Err(malformed("posting list length out of range"));
        }
        let mut sites = Vec::with_capacity(nsites);
        for _ in 0..nsites {
            let exe = get_u32(b, &mut pos, "posting executable")?;
            let proc_ = get_u32(b, &mut pos, "posting procedure")?;
            sites.push((exe, proc_));
        }
        entries.push((strand, sites));
    }
    Ok(StrandPostings::from_entries(entries))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{prefilter_candidates, search_corpus, SearchConfig};
    use firmup_firmware::index::FORMAT_VERSION;

    fn exe(id: &str, strand_sets: &[&[u64]]) -> ExecutableRep {
        ExecutableRep {
            id: id.to_string(),
            arch: Arch::Mips32,
            procedures: strand_sets
                .iter()
                .enumerate()
                .map(|(i, s)| ProcedureRep {
                    addr: 0x1000 + (i as u32) * 0x40,
                    name: if i % 2 == 0 {
                        Some(format!("p{i}"))
                    } else {
                        None
                    },
                    strands: s.to_vec(),
                    block_count: i + 1,
                    size: 16 * (i as u32 + 1),
                })
                .collect(),
        }
    }

    fn sample() -> CorpusIndex {
        CorpusIndex::build(vec![
            exe("a", &[&[1, 2, 3], &[2, 9]]),
            exe("b", &[&[2, 3, 4]]),
            exe("c", &[&[], &[7]]),
        ])
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let index = sample();
        let back = CorpusIndex::from_bytes(&index.to_bytes()).unwrap();
        assert_eq!(back.executables, index.executables);
        assert_eq!(*back.context, *index.context);
        assert_eq!(back.postings, index.postings);
    }

    #[test]
    fn roundtrip_preserves_match_results() {
        // The acceptance property: searching against a reloaded index
        // yields the same results as the freshly built one.
        let index = sample();
        let back = CorpusIndex::from_bytes(&index.to_bytes()).unwrap();
        let config = SearchConfig {
            context: Some(index.context.clone()),
            ..SearchConfig::default()
        };
        let fresh = search_corpus(&index.executables[0], 0, &index.executables, &config);
        let config = SearchConfig {
            context: Some(back.context.clone()),
            ..SearchConfig::default()
        };
        let warm = search_corpus(&back.executables[0], 0, &back.executables, &config);
        assert_eq!(fresh, warm);
    }

    #[test]
    fn empty_corpus_roundtrips() {
        let index = CorpusIndex::build(Vec::new());
        let back = CorpusIndex::from_bytes(&index.to_bytes()).unwrap();
        assert!(back.executables.is_empty());
        assert!(back.postings.is_empty());
        assert_eq!(back.context.docs(), 0);
    }

    #[test]
    fn unknown_records_are_skipped() {
        // Forward compatibility: a future writer adding a record name is
        // readable by this version.
        let index = sample();
        let records = {
            let mut r = read_container(&index.to_bytes()).unwrap();
            r.push(Record::new("future:embedding", vec![9, 9, 9]));
            r
        };
        let back = CorpusIndex::from_bytes(&write_container(&records)).unwrap();
        assert_eq!(back.executables, index.executables);
    }

    #[test]
    fn missing_records_are_diagnosed() {
        let index = sample();
        for drop_name in ["meta", "exe:1", "context", "postings"] {
            let records: Vec<Record> = read_container(&index.to_bytes())
                .unwrap()
                .into_iter()
                .filter(|r| r.name != drop_name)
                .collect();
            let err = CorpusIndex::from_bytes(&write_container(&records)).unwrap_err();
            assert!(
                matches!(err, IndexError::Malformed { .. }),
                "dropping {drop_name}: {err:?}"
            );
        }
    }

    #[test]
    fn unsorted_strands_are_rejected() {
        let mut bad = exe("x", &[&[5]]);
        bad.procedures[0].strands = vec![5, 3];
        let blob = write_container(&[
            Record::new("meta", 1u32.to_le_bytes().to_vec()),
            Record::new("exe:0", super::encode_executable(&bad)),
            Record::new("context", super::encode_context(&GlobalContext::default())),
            Record::new(
                "postings",
                super::encode_postings(&StrandPostings::default()),
            ),
        ]);
        assert!(matches!(
            CorpusIndex::from_bytes(&blob),
            Err(IndexError::Malformed { .. })
        ));
    }

    #[test]
    fn save_and_load_through_the_filesystem() {
        let dir = std::env::temp_dir().join(format!(
            "firmup-persist-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let index = sample();
        index.save(&dir).unwrap();
        let back = CorpusIndex::load(&dir).unwrap();
        assert_eq!(back.executables, index.executables);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_failures_carry_the_path() {
        let dir = std::env::temp_dir().join("firmup-persist-definitely-missing");
        let err = CorpusIndex::load(&dir).unwrap_err();
        assert_eq!(err.kind(), "io");
        assert!(err.to_string().contains("corpus.fui"), "{err}");
    }

    #[test]
    fn damaged_file_is_an_index_error_with_path() {
        let dir = std::env::temp_dir().join(format!(
            "firmup-persist-damaged-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let index = sample();
        index.save(&dir).unwrap();
        let path = index_path(&dir);
        let mut blob = std::fs::read(&path).unwrap();
        let n = blob.len();
        blob[n - 1] ^= 0x01;
        std::fs::write(&path, &blob).unwrap();
        let err = CorpusIndex::load(&dir).unwrap_err();
        assert_eq!(err.kind(), "index");
        assert!(err.to_string().contains("corpus.fui"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prefilter_ranks_by_overlap_against_a_reloaded_index() {
        let index = CorpusIndex::from_bytes(&sample().to_bytes()).unwrap();
        // Query shares {2,3} with a, {2,3} with b... weight-free check:
        // a strand counts once per executable.
        let query = ProcedureRep {
            addr: 0,
            name: None,
            strands: vec![2, 3, 7],
            block_count: 1,
            size: 4,
        };
        let ranked = prefilter_candidates(&query, &index.postings, None, 0);
        let score = |e: usize| ranked.iter().find(|&&(i, _)| i == e).map(|&(_, s)| s);
        assert_eq!(score(0), Some(2.0)); // a: strands 2, 3
        assert_eq!(score(1), Some(2.0)); // b: strands 2, 3
        assert_eq!(score(2), Some(1.0)); // c: strand 7
        let top2 = prefilter_candidates(&query, &index.postings, None, 2);
        assert_eq!(top2.len(), 2);
        assert_eq!((top2[0].0, top2[1].0), (0, 1)); // ties break low-index
    }

    #[test]
    fn format_version_is_pinned() {
        // A reminder to bump deliberately: the container this module
        // writes must stay readable by version-1 readers until the
        // layout truly breaks.
        assert_eq!(FORMAT_VERSION, 1);
        let blob = sample().to_bytes();
        assert_eq!(&blob[4..8], &1u32.to_le_bytes());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_rep() -> impl Strategy<Value = ExecutableRep> {
        (
            "[a-z]{1,12}",
            0..4usize,
            proptest::collection::vec(proptest::collection::vec(any::<u64>(), 0..20), 0..6),
        )
            .prop_map(|(id, arch_i, strand_sets)| {
                let arch = Arch::all()[arch_i % Arch::all().len()];
                ExecutableRep {
                    id,
                    arch,
                    procedures: strand_sets
                        .into_iter()
                        .enumerate()
                        .map(|(i, mut strands)| {
                            strands.sort_unstable();
                            strands.dedup();
                            ProcedureRep {
                                addr: (i as u32) * 0x20,
                                name: (i % 3 == 0).then(|| format!("f{i}")),
                                strands,
                                block_count: i,
                                size: i as u32 * 4,
                            }
                        })
                        .collect(),
                }
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Write → read reproduces identical strand hashes (and all
        /// other fields) for arbitrary corpora.
        #[test]
        fn roundtrip_property(reps in proptest::collection::vec(arb_rep(), 0..5)) {
            let index = CorpusIndex::build(reps);
            let back = CorpusIndex::from_bytes(&index.to_bytes()).unwrap();
            prop_assert_eq!(&back.executables, &index.executables);
            prop_assert_eq!(back.context.entries(), index.context.entries());
            prop_assert_eq!(back.postings.entries(), index.postings.entries());
        }
    }
}
