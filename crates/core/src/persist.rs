//! Typed persistence of the strand-hash corpus index — the `firmup
//! index` artifact.
//!
//! [`CorpusIndex`] is everything a scan needs *after* the expensive
//! unpack → parse → lift → canonicalize front half of the pipeline:
//! every target's [`ExecutableRep`] (procedure metadata + canonical
//! strand hashes), the trained [`GlobalContext`], and an inverted
//! [`StrandPostings`] table for candidate prefiltering. `firmup index
//! IMAGE... --out DIR` builds and saves one; `firmup scan --index DIR`
//! loads it and goes straight to the back-and-forth game.
//!
//! This module owns the *typed* encoding — how reps, context, and
//! postings become record payloads. The byte-level container (magic,
//! format version, per-record CRC-32, truncation-safe reads) is
//! [`firmup_firmware::index`] ("FUIX"); see ARCHITECTURE.md §4 for the
//! full format specification.
//!
//! Record names within the container:
//!
//! * `meta` — executable count (u32);
//! * `seals` — digests of the images folded into this file (omitted
//!   when empty); readers skip manifest segments whose digest is
//!   sealed, which is what makes `firmup compact`'s two-file publish
//!   crash-safe (see ARCHITECTURE.md §4.9);
//! * `exemeta` — per-executable id + arch, decodable without touching
//!   any `exe:<i>` payload (written by v2 indexes; enables lazy loads);
//! * `exe:<i>` — the i-th [`ExecutableRep`];
//! * `context` — the [`GlobalContext`] document frequencies;
//! * `intern` — the corpus [`StrandInterner`] hash list, varint-delta
//!   compressed (written by v2 indexes; readers without it rebuild the
//!   interner from the context keys, counted in
//!   `index.interner_rebuilt`);
//! * `postings2` — the [`StrandPostings`] table, varint-delta
//!   compressed (current writers);
//! * `postings` — the same table in the legacy fixed-width layout
//!   (still read; written only by [`CorpusIndex::to_bytes_v1`]).
//!
//! ## Multi-segment layouts
//!
//! An index directory may additionally carry a live-segment manifest
//! (`segments.fum`) naming per-image segments under `segments/` that
//! were appended by `firmup index --add` *after* `corpus.fui` was last
//! written. [`CorpusIndex::open`] / [`CorpusIndex::load`] union the
//! base file with every live (unsealed) segment in manifest order:
//! executables concatenate, document frequencies add, and posting
//! lists merge with the segment's local executable positions rebased
//! by the running total — so the merged structures are exactly what a
//! from-scratch build over the same image set would produce.
//!
//! Unknown record names are skipped on load (the forward-compatibility
//! rule: additive format changes introduce new names, breaking changes
//! bump the container's format version).
//!
//! ## Eager vs. lazy loading
//!
//! [`CorpusIndex::load`] decodes every record up front (the historical
//! path; works for v1 and v2 files). [`CorpusIndex::open`] reads only
//! the record table, `meta`/`exemeta`, `context`, and `postings` from a
//! v2 file — each [`ExecutableRep`] stays a byte range until a scan
//! asks for it via [`CorpusIndex::try_get`] /
//! [`CorpusIndex::ensure_decoded`], then is cached for the life of the
//! index. Warm-scan startup cost therefore scales with the *candidate
//! set*, not the corpus. v1 files fall back to the eager path.

use std::borrow::Borrow;
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};

use firmup_firmware::crc::crc32;
use firmup_firmware::durable::write_atomic;
use firmup_firmware::index::{
    append_journal, index_path, journal_path, manifest_path, parse_journal, push_varint,
    read_container, read_manifest, read_table, read_varint, record_bytes, segment_file_name,
    segments_dir, write_container, write_container_v2, IndexError, JournalEntry, Record,
    TableEntry, FORMAT_V2,
};
use firmup_isa::Arch;

use crate::error::{FaultCtx, FirmUpError};
use crate::intern::StrandInterner;
use crate::sim::{ExecutableRep, GlobalContext, ProcedureRep, StrandPostings};

/// How a [`CorpusIndex`] holds its executables: fully decoded, or as
/// byte ranges into the loaded container blob that decode on first use.
#[derive(Debug, Clone)]
enum RepStore {
    /// Every rep decoded, in corpus order (built in memory, or loaded
    /// via the eager path).
    Eager(Vec<ExecutableRep>),
    /// One container blob per source (the base file, then each live
    /// segment) plus one table entry per executable; slot `i` is
    /// populated the first time executable `i` is needed.
    Lazy {
        blobs: Vec<Vec<u8>>,
        entries: Vec<LazyExe>,
        slots: Vec<OnceLock<ExecutableRep>>,
    },
}

/// The cheap, always-available identity of a lazily held executable:
/// what `exemeta` records, plus where the full payload lives. A `None`
/// table means the slot was pre-decoded at open time (a segment
/// without lazy sidecars) and never needs its blob again.
#[derive(Debug, Clone)]
struct LazyExe {
    id: String,
    arch: Arch,
    blob: usize,
    table: Option<TableEntry>,
}

/// A persisted (or persistable) scan corpus: canonicalized executables
/// plus the derived search structures.
///
/// ```
/// use firmup_core::persist::CorpusIndex;
/// use firmup_core::sim::{ExecutableRep, ProcedureRep};
/// use firmup_isa::Arch;
/// let exe = ExecutableRep {
///     id: "fw/bin/wget".into(),
///     arch: Arch::Mips32,
///     procedures: vec![ProcedureRep {
///         addr: 0x400000, name: None, strands: vec![3, 5, 8],
///         block_count: 2, size: 24, interned: None,
///     }],
/// };
/// let index = CorpusIndex::build(vec![exe]);
/// let blob = index.to_bytes();
/// let back = CorpusIndex::from_bytes(&blob).unwrap();
/// assert_eq!(back.get(0).procedures[0].strands, vec![3, 5, 8]);
/// ```
#[derive(Debug, Clone)]
pub struct CorpusIndex {
    /// The canonicalized targets, in corpus order. [`StrandPostings`]
    /// executable positions index into this store.
    store: RepStore,
    /// Per-strand document frequencies trained over the executables.
    pub context: Arc<GlobalContext>,
    /// Inverted strand → `(executable, procedure)` table.
    pub postings: StrandPostings,
    /// The corpus's frozen strand-hash set, naming every canonical
    /// strand by its rank ([`StrandId`](crate::intern::StrandId)).
    /// Every decoded rep and the context are interned against it, so
    /// game-phase similarity compares dense `u32` ids instead of `u64`
    /// hashes. Persisted as the `intern` record; rebuilt from the
    /// context's key set (counted in `index.interner_rebuilt`) when a
    /// pre-interning file lacks it.
    pub interner: Arc<StrandInterner>,
    /// Digests of the images folded into this corpus (base file seals
    /// plus any live segments unioned at open). Empty for indexes that
    /// predate incremental ingestion.
    seals: Vec<u64>,
    /// Manifest epoch observed at open (0 when no manifest exists).
    seg_epoch: u64,
    /// Live (unsealed) segments unioned at open.
    seg_count: usize,
}

/// A cheap handle to one executable of a [`CorpusIndex`], usable
/// wherever the search layer takes `Borrow<ExecutableRep>` (e.g.
/// [`crate::search::scan_units`]). The handle does *not* decode: the
/// caller must [`CorpusIndex::ensure_decoded`] every index it will
/// borrow first — `Borrow` is infallible, so an undecoded slot is a
/// programming error and panics.
#[derive(Debug, Clone, Copy)]
pub struct RepAt<'a> {
    /// The owning index.
    pub index: &'a CorpusIndex,
    /// Global executable position.
    pub i: usize,
}

impl Borrow<ExecutableRep> for RepAt<'_> {
    fn borrow(&self) -> &ExecutableRep {
        self.index.get(self.i)
    }
}

impl CorpusIndex {
    /// Build the derived structures over a set of canonicalized
    /// executables (the in-memory path a cold scan takes, and the final
    /// step of `firmup index`).
    pub fn build(mut executables: Vec<ExecutableRep>) -> CorpusIndex {
        let _span = firmup_telemetry::span!("index.build");
        let interner = Arc::new(StrandInterner::from_hashes(
            executables
                .iter()
                .flat_map(|e| e.procedures.iter())
                .flat_map(|p| p.strands.iter().copied()),
        ));
        for e in &mut executables {
            e.intern_with(&interner);
        }
        let mut context = GlobalContext::build(&executables);
        context.attach_interner(&interner);
        let postings = StrandPostings::build(&executables);
        CorpusIndex {
            store: RepStore::Eager(executables),
            context: Arc::new(context),
            postings,
            interner,
            seals: Vec::new(),
            seg_epoch: 0,
            seg_count: 0,
        }
    }

    /// Digests of the images folded into this corpus, in ingestion
    /// order: the base file's `seals` record plus the digest of every
    /// live segment unioned at open. The dedup set `index --add`
    /// consults, and the seal list `compact` persists.
    pub fn seals(&self) -> &[u64] {
        &self.seals
    }

    /// Replace the seal list (used by builders that know the image
    /// digests of everything they folded in — `firmup index` and
    /// `compact`). Serialized as the `seals` record, omitted when
    /// empty so pre-incremental blobs stay byte-identical.
    pub fn set_seals(&mut self, seals: Vec<u64>) {
        self.seals = seals;
    }

    /// Manifest epoch observed when this index was opened (0 when the
    /// directory had no `segments.fum`).
    pub fn segment_epoch(&self) -> u64 {
        self.seg_epoch
    }

    /// Number of live segments unioned into this index at open.
    pub fn segment_count(&self) -> usize {
        self.seg_count
    }

    /// Number of executables in the corpus (decoded or not).
    pub fn len(&self) -> usize {
        match &self.store {
            RepStore::Eager(v) => v.len(),
            RepStore::Lazy { entries, .. } => entries.len(),
        }
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether this index decodes executables on demand (a v2 file
    /// opened via [`CorpusIndex::open`]) rather than holding them all.
    pub fn is_lazy(&self) -> bool {
        matches!(self.store, RepStore::Lazy { .. })
    }

    /// Executable `i`'s id, without decoding its payload.
    ///
    /// # Panics
    ///
    /// If `i >= self.len()`.
    pub fn exe_id(&self, i: usize) -> &str {
        match &self.store {
            RepStore::Eager(v) => &v[i].id,
            RepStore::Lazy { entries, .. } => &entries[i].id,
        }
    }

    /// Executable `i`'s architecture, without decoding its payload.
    ///
    /// # Panics
    ///
    /// If `i >= self.len()`.
    pub fn exe_arch(&self, i: usize) -> Arch {
        match &self.store {
            RepStore::Eager(v) => v[i].arch,
            RepStore::Lazy { entries, .. } => entries[i].arch,
        }
    }

    /// Executable `i`, which must already be decoded (always true for
    /// an eager store; after [`CorpusIndex::ensure_decoded`] for a lazy
    /// one). The infallible accessor the scan's inner loop and
    /// [`RepAt`] use.
    ///
    /// # Panics
    ///
    /// If `i` is out of range, or the slot is lazy and undecoded — a
    /// programming error (a candidate reached the play phase without
    /// going through `ensure_decoded`).
    pub fn get(&self, i: usize) -> &ExecutableRep {
        match &self.store {
            RepStore::Eager(v) => &v[i],
            RepStore::Lazy { slots, .. } => slots[i]
                .get()
                .unwrap_or_else(|| panic!("executable {i} not decoded; ensure_decoded first")),
        }
    }

    /// Executable `i`, decoding (and caching) it if this is a lazy
    /// store. Concurrent calls may race to decode the same slot; the
    /// loser's work is discarded — wasteful but correct, and the scan
    /// path avoids it by batching through
    /// [`CorpusIndex::ensure_decoded`] before going parallel.
    ///
    /// Telemetry: each payload actually decoded adds one
    /// `index.reps_decoded`.
    ///
    /// # Errors
    ///
    /// A damaged payload (CRC mismatch, truncated range, undecodable
    /// fields) surfaces as the structured [`IndexError`].
    ///
    /// # Panics
    ///
    /// If `i >= self.len()`.
    pub fn try_get(&self, i: usize) -> Result<&ExecutableRep, IndexError> {
        match &self.store {
            RepStore::Eager(v) => Ok(&v[i]),
            RepStore::Lazy {
                blobs,
                entries,
                slots,
            } => {
                if let Some(rep) = slots[i].get() {
                    return Ok(rep);
                }
                let table = entries[i]
                    .table
                    .as_ref()
                    .ok_or_else(|| malformed("pre-decoded slot lost its value"))?;
                let bytes = record_bytes(&blobs[entries[i].blob], table)?;
                let mut rep = decode_executable(bytes)?;
                rep.intern_with(&self.interner);
                firmup_telemetry::incr("index.reps_decoded");
                // A concurrent decoder may have won the race; either
                // value is identical, so keep whichever landed.
                let _ = slots[i].set(rep);
                slots[i]
                    .get()
                    .ok_or_else(|| malformed("decoded slot vanished"))
            }
        }
    }

    /// Decode every executable in `indices` (the scan's candidate set),
    /// so subsequent [`CorpusIndex::get`] / [`RepAt`] borrows are
    /// infallible. A no-op on eager stores and for already-decoded
    /// slots.
    ///
    /// # Errors
    ///
    /// The first damaged payload aborts with its [`IndexError`].
    pub fn ensure_decoded(
        &self,
        indices: impl IntoIterator<Item = usize>,
    ) -> Result<(), IndexError> {
        for i in indices {
            self.try_get(i)?;
        }
        Ok(())
    }

    /// Decode everything — the lazy store's escape hatch for callers
    /// that genuinely need the whole corpus (re-serialization, fsck
    /// rebuilds, whole-corpus diffs).
    ///
    /// # Errors
    ///
    /// The first damaged payload aborts with its [`IndexError`].
    pub fn ensure_all(&self) -> Result<(), IndexError> {
        self.ensure_decoded(0..self.len())
    }

    /// Borrowable handles for the whole corpus, in order — the slice
    /// scan workers index into. Decode candidates first
    /// ([`CorpusIndex::ensure_decoded`]); see [`RepAt`].
    pub fn rep_view(&self) -> Vec<RepAt<'_>> {
        (0..self.len()).map(|i| RepAt { index: self, i }).collect()
    }

    /// Split `0..len()` into at most `k` near-equal contiguous ranges
    /// for feeding scan workers. Ranges only name executable positions
    /// — nothing is cloned or decoded — so a prefiltered candidate list
    /// (global indices from [`crate::search::prefilter_candidates`])
    /// routes to its owning shard by range membership.
    ///
    /// `k == 0` is treated as 1; an empty corpus yields no ranges;
    /// every executable lands in exactly one range.
    pub fn shard_ranges(&self, k: usize) -> Vec<std::ops::Range<usize>> {
        let n = self.len();
        if n == 0 {
            return Vec::new();
        }
        let k = k.clamp(1, n);
        (0..k).map(|i| (i * n / k)..((i + 1) * n / k)).collect()
    }

    /// The typed records every format version shares; v2 additionally
    /// writes `exemeta` so lazy readers can skip the exe payloads, the
    /// `intern` hash list, and `postings2` (varint-delta compressed)
    /// instead of the fixed-width legacy `postings`.
    ///
    /// # Panics
    ///
    /// On a lazy store with undecoded slots (callers re-serializing a
    /// lazy index must [`CorpusIndex::ensure_all`] first).
    fn typed_records(&self, v2: bool) -> Vec<Record> {
        let n = self.len();
        let mut records = Vec::with_capacity(n + 6);
        records.push(Record::new("meta", (n as u32).to_le_bytes().to_vec()));
        if !self.seals.is_empty() {
            records.push(Record::new("seals", encode_seals(&self.seals)));
        }
        if v2 {
            records.push(Record::new("exemeta", encode_exemeta(self)));
        }
        for i in 0..n {
            records.push(Record::new(
                format!("exe:{i}"),
                encode_executable(self.get(i)),
            ));
        }
        records.push(Record::new("context", encode_context(&self.context)));
        if v2 {
            records.push(Record::new("intern", encode_interner(&self.interner)));
            records.push(Record::new("postings2", encode_postings2(&self.postings)));
        } else {
            records.push(Record::new("postings", encode_postings(&self.postings)));
        }
        records
    }

    /// Serialize into a FUIX v2 container blob (offset table + `exemeta`
    /// record, so readers may load it lazily).
    ///
    /// # Panics
    ///
    /// On a lazy store with undecoded slots; [`CorpusIndex::ensure_all`]
    /// first.
    pub fn to_bytes(&self) -> Vec<u8> {
        write_container_v2(&self.typed_records(true))
    }

    /// Serialize into the historical FUIX v1 container (byte-identical
    /// to what pre-v2 builds wrote) — the back-compat escape hatch for
    /// producing indexes older readers can load.
    ///
    /// # Panics
    ///
    /// On a lazy store with undecoded slots; [`CorpusIndex::ensure_all`]
    /// first.
    pub fn to_bytes_v1(&self) -> Vec<u8> {
        write_container(&self.typed_records(false))
    }

    /// Decode from a FUIX container blob, eagerly (v1 or v2).
    ///
    /// # Errors
    ///
    /// Any container-level damage surfaces as the [`IndexError`] the
    /// byte layer diagnosed; a record that parses as a container but
    /// whose typed payload is inconsistent (missing records, undecodable
    /// fields, unsorted strand vectors) is [`IndexError::Malformed`].
    pub fn from_bytes(blob: &[u8]) -> Result<CorpusIndex, IndexError> {
        let records = read_container(blob)?;
        let mut count: Option<u32> = None;
        let mut exes: Vec<Option<ExecutableRep>> = Vec::new();
        let mut context: Option<GlobalContext> = None;
        let mut postings: Option<StrandPostings> = None;
        let mut intern: Option<Vec<u64>> = None;
        let mut seals: Vec<u64> = Vec::new();
        for r in &records {
            if r.name == "meta" {
                let mut pos = 0;
                count = Some(get_u32(&r.payload, &mut pos, "meta record")?);
            } else if r.name == "seals" {
                seals = decode_seals(&r.payload)?;
            } else if let Some(i) = r.name.strip_prefix("exe:") {
                let i: usize = i.parse().map_err(|_| malformed("bad exe record name"))?;
                if i >= exes.len() {
                    exes.resize_with(i + 1, || None);
                }
                exes[i] = Some(decode_executable(&r.payload)?);
            } else if r.name == "context" {
                context = Some(decode_context(&r.payload)?);
            } else if r.name == "intern" {
                intern = Some(decode_interner(&r.payload)?);
            } else if r.name == "postings" {
                postings = Some(decode_postings(&r.payload)?);
            } else if r.name == "postings2" {
                postings = Some(decode_postings2(&r.payload)?);
            }
            // Unknown record names (including exemeta, which the eager
            // path has no use for) are additive extensions: skip.
        }
        let count = count.ok_or_else(|| malformed("missing meta record"))? as usize;
        if exes.len() != count {
            return Err(malformed(&format!(
                "meta declares {count} executables, found {}",
                exes.len()
            )));
        }
        let mut executables: Vec<ExecutableRep> = exes
            .into_iter()
            .enumerate()
            .map(|(i, e)| e.ok_or_else(|| malformed(&format!("missing record exe:{i}"))))
            .collect::<Result<_, _>>()?;
        let mut context = context.ok_or_else(|| malformed("missing context record"))?;
        let postings = postings.ok_or_else(|| malformed("missing postings record"))?;
        let interner = Arc::new(interner_or_rebuild(intern, &context));
        for e in &mut executables {
            e.intern_with(&interner);
        }
        context.attach_interner(&interner);
        Ok(CorpusIndex {
            store: RepStore::Eager(executables),
            context: Arc::new(context),
            postings,
            interner,
            seals,
            seg_epoch: 0,
            seg_count: 0,
        })
    }

    /// Decode a FUIX v2 blob lazily: verify the offset table, decode
    /// `meta`/`exemeta`/`context`/`postings`, and hold every `exe:<i>`
    /// as an unverified byte range until first use. A v1 blob (no
    /// offset table semantics worth exploiting, no `exemeta`) falls
    /// back to the eager [`CorpusIndex::from_bytes`].
    ///
    /// Telemetry: adds the blob length to `index.bytes_mapped` when the
    /// lazy path is taken.
    ///
    /// # Errors
    ///
    /// Structured [`IndexError`]s for a damaged header, offset table,
    /// or any eagerly read record; a v2 file missing `exemeta` (or with
    /// counts disagreeing with `meta`) is [`IndexError::Malformed`].
    pub fn from_bytes_lazy(blob: Vec<u8>) -> Result<CorpusIndex, IndexError> {
        let (version, table) = read_table(&blob)?;
        if version < FORMAT_V2 {
            return CorpusIndex::from_bytes(&blob);
        }
        let mut count: Option<u32> = None;
        let mut identities: Option<Vec<(String, Arch)>> = None;
        let mut context: Option<GlobalContext> = None;
        let mut postings: Option<StrandPostings> = None;
        let mut intern: Option<Vec<u64>> = None;
        let mut exe_tables: Vec<Option<TableEntry>> = Vec::new();
        let mut seals: Vec<u64> = Vec::new();
        for e in &table {
            if e.name == "meta" {
                let payload = record_bytes(&blob, e)?;
                let mut pos = 0;
                count = Some(get_u32(payload, &mut pos, "meta record")?);
            } else if e.name == "seals" {
                seals = decode_seals(record_bytes(&blob, e)?)?;
            } else if e.name == "exemeta" {
                identities = Some(decode_exemeta(record_bytes(&blob, e)?)?);
            } else if let Some(i) = e.name.strip_prefix("exe:") {
                let i: usize = i.parse().map_err(|_| malformed("bad exe record name"))?;
                if i >= exe_tables.len() {
                    exe_tables.resize_with(i + 1, || None);
                }
                exe_tables[i] = Some(e.clone());
            } else if e.name == "context" {
                context = Some(decode_context(record_bytes(&blob, e)?)?);
            } else if e.name == "intern" {
                intern = Some(decode_interner(record_bytes(&blob, e)?)?);
            } else if e.name == "postings" {
                postings = Some(decode_postings(record_bytes(&blob, e)?)?);
            } else if e.name == "postings2" {
                postings = Some(decode_postings2(record_bytes(&blob, e)?)?);
            }
        }
        let count = count.ok_or_else(|| malformed("missing meta record"))? as usize;
        let identities =
            identities.ok_or_else(|| malformed("v2 container missing exemeta record"))?;
        if exe_tables.len() != count || identities.len() != count {
            return Err(malformed(&format!(
                "meta declares {count} executables, found {} payloads / {} identities",
                exe_tables.len(),
                identities.len()
            )));
        }
        let entries: Vec<LazyExe> = identities
            .into_iter()
            .zip(exe_tables)
            .enumerate()
            .map(|(i, ((id, arch), t))| {
                let table = t.ok_or_else(|| malformed(&format!("missing record exe:{i}")))?;
                Ok(LazyExe {
                    id,
                    arch,
                    blob: 0,
                    table: Some(table),
                })
            })
            .collect::<Result<_, IndexError>>()?;
        let mut context = context.ok_or_else(|| malformed("missing context record"))?;
        let postings = postings.ok_or_else(|| malformed("missing postings record"))?;
        let interner = Arc::new(interner_or_rebuild(intern, &context));
        context.attach_interner(&interner);
        firmup_telemetry::add("index.bytes_mapped", blob.len() as u64);
        let slots = (0..count).map(|_| OnceLock::new()).collect();
        Ok(CorpusIndex {
            store: RepStore::Lazy {
                blobs: vec![blob],
                entries,
                slots,
            },
            context: Arc::new(context),
            postings,
            interner,
            seals,
            seg_epoch: 0,
            seg_count: 0,
        })
    }

    /// Write the index into `dir` (created if needed) as
    /// [`firmup_firmware::index::INDEX_FILE`]. The write is atomic
    /// (temp file + fsync + rename): a concurrent reader sees either
    /// the previous complete index or this one, never a torn hybrid,
    /// and a crash mid-save cannot destroy the old file.
    ///
    /// # Errors
    ///
    /// Filesystem failures surface as [`FirmUpError::Io`].
    pub fn save(&self, dir: &Path) -> Result<(), FirmUpError> {
        std::fs::create_dir_all(dir)
            .map_err(|e| FirmUpError::from(e).in_ctx(FaultCtx::image(dir.display().to_string())))?;
        let path = index_path(dir);
        write_atomic(&path, &self.to_bytes()).map_err(|e| {
            FirmUpError::from(e).in_ctx(FaultCtx::image(path.display().to_string()))
        })?;
        Ok(())
    }

    /// Load the index from `dir`.
    ///
    /// Telemetry: a successful load runs under an `index.load` span and
    /// adds one `index.cache_hit` per executable restored (the unpack /
    /// lift / canonicalize work the cache saved).
    ///
    /// # Errors
    ///
    /// A missing file is [`IndexError::Missing`] and a zero-length one
    /// is [`IndexError::Truncated`] — distinct structured diagnoses
    /// (the first means "never built", the second "a write died"), both
    /// surfaced as [`FirmUpError::Index`]. Other unreadable files are
    /// [`FirmUpError::Io`]; damaged ones wrap the byte-level
    /// [`IndexError`]. All carry the file path in their [`FaultCtx`].
    pub fn load(dir: &Path) -> Result<CorpusIndex, FirmUpError> {
        CorpusIndex::open_dir(dir, true)
    }

    /// Open the index from `dir`, lazily when the file is v2 (eagerly
    /// for v1) — the preferred scan-time entry point: postings, context,
    /// and executable identities load now; procedure payloads load when
    /// a scan's candidate set demands them. Live segments named by the
    /// directory's manifest are unioned in (their payloads stay lazy
    /// too when they carry the v2 sidecars).
    ///
    /// Telemetry and errors match [`CorpusIndex::load`], plus
    /// `index.bytes_mapped` on the lazy path.
    ///
    /// # Errors
    ///
    /// As [`CorpusIndex::load`].
    pub fn open(dir: &Path) -> Result<CorpusIndex, FirmUpError> {
        CorpusIndex::open_dir(dir, false)
    }

    /// The shared directory entry point behind [`CorpusIndex::load`]
    /// (eager) and [`CorpusIndex::open`] (lazy): read `corpus.fui`,
    /// then union every live segment the manifest names.
    fn open_dir(dir: &Path, eager: bool) -> Result<CorpusIndex, FirmUpError> {
        let _span = firmup_telemetry::span!("index.load");
        let path = index_path(dir);
        let ctx = FaultCtx::image(path.display().to_string());
        let blob = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(FirmUpError::from(IndexError::Missing {
                    path: path.display().to_string(),
                })
                .in_ctx(ctx));
            }
            Err(e) => return Err(FirmUpError::from(e).in_ctx(ctx)),
        };
        if blob.is_empty() {
            return Err(FirmUpError::from(IndexError::Truncated {
                context: "empty index file",
            })
            .in_ctx(ctx));
        }
        let mut index = if eager {
            CorpusIndex::from_bytes(&blob).map_err(|e| FirmUpError::from(e).in_ctx(ctx))?
        } else {
            CorpusIndex::from_bytes_lazy(blob).map_err(|e| FirmUpError::from(e).in_ctx(ctx))?
        };
        let manifest_ctx = FaultCtx::image(manifest_path(dir).display().to_string());
        let manifest = read_manifest(dir).map_err(|e| FirmUpError::from(e).in_ctx(manifest_ctx))?;
        if let Some(m) = manifest {
            index.seg_epoch = m.epoch;
            // Segments whose digest is already sealed into the base
            // were folded by a compact whose manifest rewrite hasn't
            // landed (or crashed mid-publish): skip them, or their
            // executables would count twice.
            let live: Vec<JournalEntry> = m
                .entries
                .into_iter()
                .filter(|e| !index.seals.contains(&e.digest))
                .collect();
            index.seg_count = live.len();
            index.union_segments(dir, &live)?;
        }
        firmup_telemetry::add("index.cache_hit", index.len() as u64);
        Ok(index)
    }

    /// Fold each live segment into the loaded base, in manifest order:
    /// append its executables, add its document frequencies, and merge
    /// its posting lists with local executable positions rebased by the
    /// running corpus size. Rebasing preserves every list's `(exe,
    /// proc)` ordering, so the merged table is exactly what
    /// [`StrandPostings::build`] over the concatenated corpus yields.
    fn union_segments(&mut self, dir: &Path, live: &[JournalEntry]) -> Result<(), FirmUpError> {
        if live.is_empty() {
            return Ok(());
        }
        let seg_dir = segments_dir(dir);
        let mut docs = self.context.docs();
        let mut df: std::collections::HashMap<u64, u32> =
            self.context.entries().into_iter().collect();
        let mut post: std::collections::HashMap<u64, Vec<(u32, u32)>> = self
            .postings
            .entries()
            .into_iter()
            .map(|(s, l)| (s, l.to_vec()))
            .collect();
        for entry in live {
            let path = seg_dir.join(&entry.segment);
            let ctx = FaultCtx::image(path.display().to_string());
            let blob = match std::fs::read(&path) {
                Ok(b) => b,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                    return Err(FirmUpError::from(IndexError::Missing {
                        path: path.display().to_string(),
                    })
                    .in_ctx(ctx));
                }
                Err(e) => return Err(FirmUpError::from(e).in_ctx(ctx)),
            };
            if crc32(&blob) != entry.crc {
                return Err(FirmUpError::from(IndexError::ChecksumMismatch {
                    record: entry.segment.clone(),
                })
                .in_ctx(ctx));
            }
            let offset = self.len() as u32;
            let parts = decode_segment_parts(blob, !self.is_lazy())
                .map_err(|e| FirmUpError::from(e).in_ctx(ctx))?;
            docs += parts.docs;
            for (s, n) in parts.df {
                *df.entry(s).or_default() += n;
            }
            for (s, sites) in parts.postings {
                post.entry(s)
                    .or_default()
                    .extend(sites.into_iter().map(|(e, p)| (e + offset, p)));
            }
            self.push_segment_store(parts.store);
            self.seals.push(entry.digest);
        }
        // The unioned strand set differs from the base's: freeze a new
        // interner over it (df keys are exactly the union's strand set)
        // and re-intern everything already decoded. Lazily held reps
        // intern against the new interner when they decode.
        let interner = Arc::new(StrandInterner::from_hashes(df.keys().copied()));
        let mut context = GlobalContext::from_entries(docs, df);
        context.attach_interner(&interner);
        self.context = Arc::new(context);
        self.postings = StrandPostings::from_entries(post);
        self.interner = interner;
        self.reintern_decoded();
        Ok(())
    }

    /// Re-intern every already-decoded executable against the current
    /// [`CorpusIndex::interner`] (after a segment union replaced it).
    fn reintern_decoded(&mut self) {
        let interner = self.interner.clone();
        match &mut self.store {
            RepStore::Eager(v) => {
                for e in v {
                    e.intern_with(&interner);
                }
            }
            RepStore::Lazy { slots, .. } => {
                for slot in slots {
                    if let Some(rep) = slot.get_mut() {
                        rep.intern_with(&interner);
                    }
                }
            }
        }
    }

    /// Append one decoded segment's executables to this index's store,
    /// keeping the store's eager/lazy shape.
    fn push_segment_store(&mut self, parts: SegmentStore) {
        match (&mut self.store, parts) {
            (RepStore::Eager(v), SegmentStore::Decoded(reps)) => v.extend(reps),
            (RepStore::Lazy { entries, slots, .. }, SegmentStore::Decoded(reps)) => {
                // A segment without lazy sidecars under a lazy base:
                // hold the already-decoded reps in pre-filled slots.
                for rep in reps {
                    entries.push(LazyExe {
                        id: rep.id.clone(),
                        arch: rep.arch,
                        blob: 0,
                        table: None,
                    });
                    let slot = OnceLock::new();
                    let _ = slot.set(rep);
                    slots.push(slot);
                }
            }
            (
                RepStore::Lazy {
                    blobs,
                    entries,
                    slots,
                },
                SegmentStore::Lazy {
                    blob,
                    identities,
                    tables,
                },
            ) => {
                let bi = blobs.len();
                firmup_telemetry::add("index.bytes_mapped", blob.len() as u64);
                blobs.push(blob);
                for ((id, arch), table) in identities.into_iter().zip(tables) {
                    entries.push(LazyExe {
                        id,
                        arch,
                        blob: bi,
                        table: Some(table),
                    });
                    slots.push(OnceLock::new());
                }
            }
            (RepStore::Eager(_), SegmentStore::Lazy { .. }) => {
                unreachable!("eager open never requests lazy segment parts")
            }
        }
    }

    /// Write the index into `dir` in the historical v1 layout — see
    /// [`CorpusIndex::to_bytes_v1`]. Same atomicity as
    /// [`CorpusIndex::save`].
    ///
    /// # Errors
    ///
    /// Filesystem failures surface as [`FirmUpError::Io`].
    pub fn save_v1(&self, dir: &Path) -> Result<(), FirmUpError> {
        std::fs::create_dir_all(dir)
            .map_err(|e| FirmUpError::from(e).in_ctx(FaultCtx::image(dir.display().to_string())))?;
        let path = index_path(dir);
        write_atomic(&path, &self.to_bytes_v1()).map_err(|e| {
            FirmUpError::from(e).in_ctx(FaultCtx::image(path.display().to_string()))
        })?;
        Ok(())
    }
}

fn malformed(reason: &str) -> IndexError {
    IndexError::Malformed {
        reason: reason.to_string(),
    }
}

// ---- per-image checkpoint segments ---------------------------------------

/// Serialize one image's executables as a checkpoint segment: a FUIX
/// v2 container holding `meta` + `exe:<i>` plus the mergeable sidecars
/// (`exemeta`, per-segment `context` and `postings` with *local*
/// executable positions) that let [`CorpusIndex::open`] union the
/// segment without decoding its payloads. Derived structures are still
/// rebuilt from scratch at finalize, so a resumed build and an
/// uninterrupted one produce byte-identical `corpus.fui` files.
pub fn segment_to_bytes(reps: &[ExecutableRep]) -> Vec<u8> {
    let mut records = Vec::with_capacity(reps.len() + 4);
    records.push(Record::new(
        "meta",
        (reps.len() as u32).to_le_bytes().to_vec(),
    ));
    records.push(Record::new(
        "exemeta",
        encode_exemeta_pairs(reps.iter().map(|r| (r.id.as_str(), r.arch))),
    ));
    for (i, exe) in reps.iter().enumerate() {
        records.push(Record::new(format!("exe:{i}"), encode_executable(exe)));
    }
    records.push(Record::new(
        "context",
        encode_context(&GlobalContext::build(reps)),
    ));
    records.push(Record::new(
        "postings2",
        encode_postings2(&StrandPostings::build(reps)),
    ));
    write_container_v2(&records)
}

/// How a segment's executables enter the loaded store.
enum SegmentStore {
    /// Fully decoded reps (eager open, or a segment without sidecars).
    Decoded(Vec<ExecutableRep>),
    /// The segment blob plus identity/table rows for lazy decode.
    Lazy {
        blob: Vec<u8>,
        identities: Vec<(String, Arch)>,
        tables: Vec<TableEntry>,
    },
}

/// One segment's contribution to the union: its store shape plus the
/// mergeable derived parts (document count, per-strand frequencies,
/// posting lists with segment-local executable positions).
struct SegmentParts {
    store: SegmentStore,
    docs: u32,
    df: Vec<(u64, u32)>,
    postings: Vec<(u64, Vec<(u32, u32)>)>,
}

/// Pull a segment apart for the union. With `eager` false and every
/// sidecar present, payload records stay undecoded byte ranges; a
/// segment missing any sidecar (e.g. written before segments carried
/// them) falls back to a full decode and rebuilds the derived parts —
/// [`GlobalContext::build`]/[`StrandPostings::build`] over the same
/// reps produce identical entries, so the union is unaffected.
fn decode_segment_parts(blob: Vec<u8>, eager: bool) -> Result<SegmentParts, IndexError> {
    let (version, table) = read_table(&blob)?;
    let mut count: Option<u32> = None;
    let mut identities: Option<Vec<(String, Arch)>> = None;
    let mut context: Option<GlobalContext> = None;
    let mut postings: Option<StrandPostings> = None;
    let mut exe_tables: Vec<Option<TableEntry>> = Vec::new();
    if version >= FORMAT_V2 {
        for e in &table {
            if e.name == "meta" {
                let payload = record_bytes(&blob, e)?;
                let mut pos = 0;
                count = Some(get_u32(payload, &mut pos, "segment meta")?);
            } else if e.name == "exemeta" {
                identities = Some(decode_exemeta(record_bytes(&blob, e)?)?);
            } else if let Some(i) = e.name.strip_prefix("exe:") {
                let i: usize = i.parse().map_err(|_| malformed("bad exe record name"))?;
                if i >= exe_tables.len() {
                    exe_tables.resize_with(i + 1, || None);
                }
                exe_tables[i] = Some(e.clone());
            } else if e.name == "context" {
                context = Some(decode_context(record_bytes(&blob, e)?)?);
            } else if e.name == "postings" {
                postings = Some(decode_postings(record_bytes(&blob, e)?)?);
            } else if e.name == "postings2" {
                postings = Some(decode_postings2(record_bytes(&blob, e)?)?);
            }
        }
    }
    match (identities, context, postings) {
        (Some(identities), Some(context), Some(postings)) if !eager => {
            let count = count.ok_or_else(|| malformed("segment missing meta record"))? as usize;
            if exe_tables.len() != count || identities.len() != count {
                return Err(malformed(&format!(
                    "segment meta declares {count} executables, found {} payloads / {} identities",
                    exe_tables.len(),
                    identities.len()
                )));
            }
            let tables: Vec<TableEntry> = exe_tables
                .into_iter()
                .enumerate()
                .map(|(i, t)| t.ok_or_else(|| malformed(&format!("segment missing exe:{i}"))))
                .collect::<Result<_, _>>()?;
            Ok(SegmentParts {
                docs: context.docs(),
                df: context.entries(),
                postings: postings
                    .entries()
                    .into_iter()
                    .map(|(s, l)| (s, l.to_vec()))
                    .collect(),
                store: SegmentStore::Lazy {
                    blob,
                    identities,
                    tables,
                },
            })
        }
        (_, context, postings) => {
            let reps = segment_from_bytes(&blob)?;
            let context = context.unwrap_or_else(|| GlobalContext::build(&reps));
            let postings = postings.unwrap_or_else(|| StrandPostings::build(&reps));
            Ok(SegmentParts {
                docs: context.docs(),
                df: context.entries(),
                postings: postings
                    .entries()
                    .into_iter()
                    .map(|(s, l)| (s, l.to_vec()))
                    .collect(),
                store: SegmentStore::Decoded(reps),
            })
        }
    }
}

/// Decode a checkpoint segment back into its executables.
///
/// # Errors
///
/// Container damage or a typed-payload inconsistency, as a structured
/// [`IndexError`].
pub fn segment_from_bytes(blob: &[u8]) -> Result<Vec<ExecutableRep>, IndexError> {
    let records = read_container(blob)?;
    let mut count: Option<u32> = None;
    let mut exes: Vec<Option<ExecutableRep>> = Vec::new();
    for r in &records {
        if r.name == "meta" {
            let mut pos = 0;
            count = Some(get_u32(&r.payload, &mut pos, "segment meta")?);
        } else if let Some(i) = r.name.strip_prefix("exe:") {
            let i: usize = i.parse().map_err(|_| malformed("bad exe record name"))?;
            if i >= exes.len() {
                exes.resize_with(i + 1, || None);
            }
            exes[i] = Some(decode_executable(&r.payload)?);
        }
    }
    let count = count.ok_or_else(|| malformed("segment missing meta record"))? as usize;
    if exes.len() != count {
        return Err(malformed(&format!(
            "segment meta declares {count} executables, found {}",
            exes.len()
        )));
    }
    exes.into_iter()
        .enumerate()
        .map(|(i, e)| e.ok_or_else(|| malformed(&format!("segment missing record exe:{i}"))))
        .collect()
}

/// What [`IndexCheckpoint::open`] found on disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Committed segments that verified and will be reused.
    pub reused: usize,
    /// Journal entries whose segment was missing or failed its CRC
    /// (dropped; those images re-lift).
    pub damaged: usize,
    /// Whether the journal ended in a torn (discarded) append.
    pub torn_tail: bool,
}

/// The journaled checkpoint state of one `firmup index --out DIR`
/// build: per-image segments under `DIR/segments/` plus a manifest
/// journal (`journal.fuj`) whose entries commit each segment. A build
/// that crashes after N commits resumes by replaying the journal,
/// verifying each segment's CRC, and re-lifting only what is missing —
/// at most one image of work is lost.
#[derive(Debug)]
pub struct IndexCheckpoint {
    dir: PathBuf,
    entries: Vec<JournalEntry>,
}

impl IndexCheckpoint {
    /// Open (or reset) the checkpoint state in `dir`.
    ///
    /// With `resume` false the journal and all segments are cleared for
    /// a fresh build — but `corpus.fui` is left alone, so concurrent
    /// readers keep loading the last complete snapshot until the new
    /// one atomically replaces it. With `resume` true the journal is
    /// replayed: each entry's segment file is read and its CRC-32
    /// verified; entries that fail are dropped (their images re-lift).
    ///
    /// # Errors
    ///
    /// Filesystem failures as [`FirmUpError::Io`].
    pub fn open(
        dir: &Path,
        resume: bool,
    ) -> Result<(IndexCheckpoint, CheckpointStats), FirmUpError> {
        let io_ctx = |p: &Path| FaultCtx::image(p.display().to_string());
        std::fs::create_dir_all(dir).map_err(|e| FirmUpError::from(e).in_ctx(io_ctx(dir)))?;
        let seg_dir = segments_dir(dir);
        std::fs::create_dir_all(&seg_dir)
            .map_err(|e| FirmUpError::from(e).in_ctx(io_ctx(&seg_dir)))?;
        let journal = journal_path(dir);
        let mut stats = CheckpointStats::default();
        let mut entries = Vec::new();
        if resume {
            let bytes = match std::fs::read(&journal) {
                Ok(b) => b,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
                Err(e) => return Err(FirmUpError::from(e).in_ctx(io_ctx(&journal))),
            };
            let (parsed, torn) = parse_journal(&bytes);
            stats.torn_tail = torn;
            for entry in parsed {
                let seg_path = seg_dir.join(&entry.segment);
                match std::fs::read(&seg_path) {
                    Ok(blob) if crc32(&blob) == entry.crc => {
                        stats.reused += 1;
                        entries.push(entry);
                    }
                    _ => stats.damaged += 1,
                }
            }
            if torn || stats.damaged > 0 {
                // Rewrite the journal to only the verified entries so
                // the damage is diagnosed once, not on every restart.
                let mut fresh = String::new();
                for e in &entries {
                    fresh.push_str(&firmup_firmware::index::render_journal_entry(e));
                }
                write_atomic(&journal, fresh.as_bytes())
                    .map_err(|e| FirmUpError::from(e).in_ctx(io_ctx(&journal)))?;
            }
        } else {
            match std::fs::remove_file(&journal) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(FirmUpError::from(e).in_ctx(io_ctx(&journal))),
            }
            // A fresh build also invalidates the live-segment manifest:
            // its entries point at segment files cleared below, and the
            // rebuilt corpus.fui will carry its own seals.
            let manifest = manifest_path(dir);
            match std::fs::remove_file(&manifest) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(FirmUpError::from(e).in_ctx(io_ctx(&manifest))),
            }
            let listing = std::fs::read_dir(&seg_dir)
                .map_err(|e| FirmUpError::from(e).in_ctx(io_ctx(&seg_dir)))?;
            for item in listing.flatten() {
                let _ = std::fs::remove_file(item.path());
            }
        }
        Ok((
            IndexCheckpoint {
                dir: dir.to_path_buf(),
                entries,
            },
            stats,
        ))
    }

    /// Whether a segment for this image digest is already committed.
    pub fn committed(&self, digest: u64) -> bool {
        self.entries.iter().any(|e| e.digest == digest)
    }

    /// The journal entry of a committed segment, if any — what `index
    /// --add` copies into the manifest when it adopts a segment that a
    /// crashed run committed but never published.
    pub fn entry(&self, digest: u64) -> Option<&JournalEntry> {
        self.entries.iter().find(|e| e.digest == digest)
    }

    /// Number of committed segments (reused + newly written).
    pub fn segments(&self) -> usize {
        self.entries.len()
    }

    /// Load the executables of a committed segment.
    ///
    /// # Errors
    ///
    /// [`FirmUpError::Index`] if no such segment is committed or its
    /// contents fail to decode; [`FirmUpError::Io`] on read failures.
    pub fn load_segment(&self, digest: u64) -> Result<Vec<ExecutableRep>, FirmUpError> {
        let entry = self
            .entries
            .iter()
            .find(|e| e.digest == digest)
            .ok_or_else(|| {
                FirmUpError::from(malformed(&format!(
                    "no committed segment for {digest:016x}"
                )))
            })?;
        let path = segments_dir(&self.dir).join(&entry.segment);
        let ctx = FaultCtx::image(path.display().to_string());
        let blob = std::fs::read(&path).map_err(|e| FirmUpError::from(e).in_ctx(ctx.clone()))?;
        segment_from_bytes(&blob).map_err(|e| FirmUpError::from(e).in_ctx(ctx))
    }

    /// Durably commit one image's executables: write the segment
    /// atomically, then append (and fsync) its journal entry. Only
    /// after both is the image's work safe against a crash.
    ///
    /// Telemetry: increments `index.segments_committed`.
    ///
    /// # Errors
    ///
    /// Filesystem failures as [`FirmUpError::Io`].
    pub fn commit(&mut self, digest: u64, reps: &[ExecutableRep]) -> Result<(), FirmUpError> {
        let bytes = segment_to_bytes(reps);
        let entry = JournalEntry {
            digest,
            crc: crc32(&bytes),
            executables: reps.len() as u32,
            segment: segment_file_name(digest),
        };
        let seg_path = segments_dir(&self.dir).join(&entry.segment);
        write_atomic(&seg_path, &bytes).map_err(|e| {
            FirmUpError::from(e).in_ctx(FaultCtx::image(seg_path.display().to_string()))
        })?;
        let journal = journal_path(&self.dir);
        append_journal(&journal, &entry).map_err(|e| {
            FirmUpError::from(e).in_ctx(FaultCtx::image(journal.display().to_string()))
        })?;
        firmup_telemetry::incr("index.segments_committed");
        self.entries.push(entry);
        Ok(())
    }
}

// ---- payload encoding primitives -----------------------------------------
//
// Same discipline as the container: little-endian fixed-width integers,
// length-prefixed strings, every read bounds-checked. Payloads are
// CRC-protected by the container, so decode errors here mean a *logic*
// mismatch (or a version-1 reader meeting data only a future version
// writes inside an existing record — which the format rules forbid).

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn get_u32(b: &[u8], pos: &mut usize, what: &str) -> Result<u32, IndexError> {
    let s = b
        .get(*pos..pos.saturating_add(4))
        .ok_or_else(|| malformed(&format!("{what}: payload too short")))?;
    *pos += 4;
    Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
}

fn get_u64(b: &[u8], pos: &mut usize, what: &str) -> Result<u64, IndexError> {
    let s = b
        .get(*pos..pos.saturating_add(8))
        .ok_or_else(|| malformed(&format!("{what}: payload too short")))?;
    *pos += 8;
    Ok(u64::from_le_bytes([
        s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7],
    ]))
}

fn get_str(b: &[u8], pos: &mut usize, what: &str) -> Result<String, IndexError> {
    let len = get_u32(b, pos, what)? as usize;
    if len > b.len() {
        return Err(malformed(&format!("{what}: string length out of range")));
    }
    let s = b
        .get(*pos..pos.saturating_add(len))
        .ok_or_else(|| malformed(&format!("{what}: payload too short")))?;
    *pos += len;
    String::from_utf8(s.to_vec()).map_err(|_| malformed(&format!("{what}: non-UTF-8 string")))
}

// ---- ExecutableRep -------------------------------------------------------

fn encode_executable(exe: &ExecutableRep) -> Vec<u8> {
    let mut out = Vec::new();
    put_str(&mut out, &exe.id);
    put_u32(&mut out, u32::from(exe.arch.elf_machine()));
    put_u32(&mut out, exe.procedures.len() as u32);
    for p in &exe.procedures {
        put_u32(&mut out, p.addr);
        match &p.name {
            Some(n) => {
                out.push(1);
                put_str(&mut out, n);
            }
            None => out.push(0),
        }
        put_u32(&mut out, p.block_count as u32);
        put_u32(&mut out, p.size);
        put_u32(&mut out, p.strands.len() as u32);
        for &h in &p.strands {
            put_u64(&mut out, h);
        }
    }
    out
}

fn decode_executable(b: &[u8]) -> Result<ExecutableRep, IndexError> {
    let mut pos = 0;
    let id = get_str(b, &mut pos, "executable id")?;
    let machine = get_u32(b, &mut pos, "executable arch")?;
    let machine = u16::try_from(machine).map_err(|_| malformed("arch tag out of range"))?;
    let arch = Arch::from_elf_machine(machine)
        .ok_or_else(|| malformed(&format!("unknown arch tag {machine}")))?;
    let nprocs = get_u32(b, &mut pos, "procedure count")? as usize;
    if nprocs > b.len() {
        return Err(malformed("procedure count out of range"));
    }
    let mut procedures = Vec::with_capacity(nprocs);
    for _ in 0..nprocs {
        let addr = get_u32(b, &mut pos, "procedure addr")?;
        let has_name = b
            .get(pos)
            .copied()
            .ok_or_else(|| malformed("procedure name tag: payload too short"))?;
        pos += 1;
        let name = match has_name {
            0 => None,
            1 => Some(get_str(b, &mut pos, "procedure name")?),
            _ => return Err(malformed("bad procedure name tag")),
        };
        let block_count = get_u32(b, &mut pos, "procedure blocks")? as usize;
        let size = get_u32(b, &mut pos, "procedure size")?;
        let nstrands = get_u32(b, &mut pos, "strand count")? as usize;
        if nstrands.saturating_mul(8) > b.len() {
            return Err(malformed("strand count out of range"));
        }
        let mut strands = Vec::with_capacity(nstrands);
        for _ in 0..nstrands {
            strands.push(get_u64(b, &mut pos, "strand hash")?);
        }
        // The whole pipeline (Sim's merge walk, the game's pruning)
        // assumes sorted, deduplicated strand vectors; enforce the
        // invariant at the trust boundary.
        if strands.windows(2).any(|w| w[0] >= w[1]) {
            return Err(malformed("strand vector not sorted/deduplicated"));
        }
        procedures.push(ProcedureRep {
            addr,
            name,
            strands,
            block_count,
            size,
            interned: None,
        });
    }
    Ok(ExecutableRep {
        id,
        arch,
        procedures,
    })
}

// ---- exemeta -------------------------------------------------------------
//
// The v2 sidecar that makes lazy loads possible: every executable's id
// and arch in one small eagerly read record, so arch-grouping and
// progress reporting never touch an exe payload.

fn encode_exemeta(index: &CorpusIndex) -> Vec<u8> {
    encode_exemeta_pairs((0..index.len()).map(|i| (index.exe_id(i), index.exe_arch(i))))
}

fn encode_exemeta_pairs<'a>(items: impl ExactSizeIterator<Item = (&'a str, Arch)>) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, items.len() as u32);
    for (id, arch) in items {
        put_str(&mut out, id);
        put_u32(&mut out, u32::from(arch.elf_machine()));
    }
    out
}

fn decode_exemeta(b: &[u8]) -> Result<Vec<(String, Arch)>, IndexError> {
    let mut pos = 0;
    let n = get_u32(b, &mut pos, "exemeta count")? as usize;
    if n.saturating_mul(8) > b.len() {
        return Err(malformed("exemeta count out of range"));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let id = get_str(b, &mut pos, "exemeta id")?;
        let machine = get_u32(b, &mut pos, "exemeta arch")?;
        let machine = u16::try_from(machine).map_err(|_| malformed("arch tag out of range"))?;
        let arch = Arch::from_elf_machine(machine)
            .ok_or_else(|| malformed(&format!("unknown arch tag {machine}")))?;
        out.push((id, arch));
    }
    Ok(out)
}

// ---- seals ---------------------------------------------------------------
//
// The image digests folded into a corpus file, in ingestion order.
// Written only when non-empty so pre-incremental blobs (and every
// golden fixture derived from them) keep their exact bytes.

fn encode_seals(seals: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + seals.len() * 8);
    put_u32(&mut out, seals.len() as u32);
    for &d in seals {
        put_u64(&mut out, d);
    }
    out
}

fn decode_seals(b: &[u8]) -> Result<Vec<u64>, IndexError> {
    let mut pos = 0;
    let n = get_u32(b, &mut pos, "seals count")? as usize;
    if n.saturating_mul(8) > b.len() {
        return Err(malformed("seals count out of range"));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(get_u64(b, &mut pos, "seal digest")?);
    }
    Ok(out)
}

// ---- GlobalContext -------------------------------------------------------

fn encode_context(ctx: &GlobalContext) -> Vec<u8> {
    let entries = ctx.entries();
    let mut out = Vec::with_capacity(8 + entries.len() * 12);
    put_u32(&mut out, ctx.docs());
    put_u32(&mut out, entries.len() as u32);
    for (strand, df) in entries {
        put_u64(&mut out, strand);
        put_u32(&mut out, df);
    }
    out
}

fn decode_context(b: &[u8]) -> Result<GlobalContext, IndexError> {
    let mut pos = 0;
    let docs = get_u32(b, &mut pos, "context docs")?;
    let n = get_u32(b, &mut pos, "context entry count")? as usize;
    if n.saturating_mul(12) > b.len() {
        return Err(malformed("context entry count out of range"));
    }
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let strand = get_u64(b, &mut pos, "context strand")?;
        let df = get_u32(b, &mut pos, "context df")?;
        entries.push((strand, df));
    }
    Ok(GlobalContext::from_entries(docs, entries))
}

// ---- StrandPostings ------------------------------------------------------

fn encode_postings(postings: &StrandPostings) -> Vec<u8> {
    let entries = postings.entries();
    let mut out = Vec::new();
    put_u32(&mut out, entries.len() as u32);
    for (strand, sites) in entries {
        put_u64(&mut out, strand);
        put_u32(&mut out, sites.len() as u32);
        for &(exe, proc_) in sites {
            put_u32(&mut out, exe);
            put_u32(&mut out, proc_);
        }
    }
    out
}

fn decode_postings(b: &[u8]) -> Result<StrandPostings, IndexError> {
    let mut pos = 0;
    let n = get_u32(b, &mut pos, "postings strand count")? as usize;
    if n.saturating_mul(12) > b.len() {
        return Err(malformed("postings strand count out of range"));
    }
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let strand = get_u64(b, &mut pos, "postings strand")?;
        let nsites = get_u32(b, &mut pos, "posting list length")? as usize;
        if nsites.saturating_mul(8) > b.len() {
            return Err(malformed("posting list length out of range"));
        }
        let mut sites = Vec::with_capacity(nsites);
        for _ in 0..nsites {
            let exe = get_u32(b, &mut pos, "posting executable")?;
            let proc_ = get_u32(b, &mut pos, "posting procedure")?;
            sites.push((exe, proc_));
        }
        entries.push((strand, sites));
    }
    Ok(StrandPostings::from_entries(entries))
}

// ---- postings2 / intern: sorted varint-delta encodings -------------------
//
// Both records exploit the same invariant: their key sequences are
// strictly increasing (postings keys by construction, interner hashes
// by definition, packed `(exe << 32) | proc` sites within one posting
// list by walk order). Sorted u64s delta-encode to mostly-small gaps,
// and LEB128 varints store small gaps in one or two bytes — so the
// records shrink by roughly the hash entropy they no longer repeat.
// Strict monotonicity doubles as the trust boundary: a zero or
// overflowing delta cannot come from our writers and is diagnosed as
// `Malformed`, never absorbed.

fn encode_interner(interner: &StrandInterner) -> Vec<u8> {
    let hashes = interner.hashes();
    let mut out = Vec::with_capacity(10 + hashes.len() * 2);
    push_varint(&mut out, hashes.len() as u64);
    let mut prev = 0u64;
    for (i, &h) in hashes.iter().enumerate() {
        push_varint(&mut out, if i == 0 { h } else { h - prev });
        prev = h;
    }
    out
}

fn decode_interner(b: &[u8]) -> Result<Vec<u64>, IndexError> {
    let mut pos = 0;
    let n = read_varint(b, &mut pos, "intern count")? as usize;
    // Every hash costs at least one delta byte.
    if n > b.len() {
        return Err(malformed("intern count out of range"));
    }
    let mut hashes = Vec::with_capacity(n);
    let mut prev = 0u64;
    for i in 0..n {
        let delta = read_varint(b, &mut pos, "intern delta")?;
        let h = if i == 0 {
            delta
        } else {
            if delta == 0 {
                return Err(malformed("intern hashes not strictly increasing"));
            }
            prev.checked_add(delta)
                .ok_or_else(|| malformed("intern delta overflows u64"))?
        };
        hashes.push(h);
        prev = h;
    }
    Ok(hashes)
}

/// The decoded `intern` record, or — for pre-interning files that lack
/// one — a rebuild from the context's key set (the same strand set, by
/// construction), counted in `index.interner_rebuilt`.
fn interner_or_rebuild(intern: Option<Vec<u64>>, context: &GlobalContext) -> StrandInterner {
    match intern {
        Some(hashes) => StrandInterner::from_sorted(hashes),
        None => {
            firmup_telemetry::incr("index.interner_rebuilt");
            StrandInterner::from_hashes(context.entries().into_iter().map(|(s, _)| s))
        }
    }
}

fn encode_postings2(postings: &StrandPostings) -> Vec<u8> {
    let keys = postings.keys();
    let mut out = Vec::with_capacity(10 + keys.len() * 4);
    push_varint(&mut out, keys.len() as u64);
    let mut prev_key = 0u64;
    for (i, &key) in keys.iter().enumerate() {
        push_varint(&mut out, if i == 0 { key } else { key - prev_key });
        prev_key = key;
        let sites = postings.list_at(i);
        push_varint(&mut out, sites.len() as u64);
        let mut prev_site = 0u64;
        for (j, &(exe, proc_)) in sites.iter().enumerate() {
            let packed = (u64::from(exe) << 32) | u64::from(proc_);
            push_varint(&mut out, if j == 0 { packed } else { packed - prev_site });
            prev_site = packed;
        }
    }
    out
}

fn decode_postings2(b: &[u8]) -> Result<StrandPostings, IndexError> {
    let mut pos = 0;
    let n = read_varint(b, &mut pos, "postings2 strand count")? as usize;
    // Every strand costs at least two bytes (key delta + list length).
    if n.saturating_mul(2) > b.len() {
        return Err(malformed("postings2 strand count out of range"));
    }
    let mut entries = Vec::with_capacity(n);
    let mut prev_key = 0u64;
    for i in 0..n {
        let delta = read_varint(b, &mut pos, "postings2 key delta")?;
        let key = if i == 0 {
            delta
        } else {
            if delta == 0 {
                return Err(malformed("postings2 keys not strictly increasing"));
            }
            prev_key
                .checked_add(delta)
                .ok_or_else(|| malformed("postings2 key delta overflows u64"))?
        };
        prev_key = key;
        let m = read_varint(b, &mut pos, "postings2 list length")? as usize;
        if m > b.len() {
            return Err(malformed("postings2 list length out of range"));
        }
        let mut sites = Vec::with_capacity(m);
        let mut prev_site = 0u64;
        for j in 0..m {
            let delta = read_varint(b, &mut pos, "postings2 site delta")?;
            let packed = if j == 0 {
                delta
            } else {
                if delta == 0 {
                    return Err(malformed("postings2 sites not strictly increasing"));
                }
                prev_site
                    .checked_add(delta)
                    .ok_or_else(|| malformed("postings2 site delta overflows u64"))?
            };
            prev_site = packed;
            sites.push(((packed >> 32) as u32, packed as u32));
        }
        entries.push((key, sites));
    }
    Ok(StrandPostings::from_entries(entries))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{prefilter_candidates, search_corpus, SearchConfig};
    use firmup_firmware::index::{FORMAT_V1, MAX_SUPPORTED_VERSION};

    /// Decode everything and clone it out — the test-side view of an
    /// index's executables, agnostic to eager vs. lazy storage.
    fn reps_of(ix: &CorpusIndex) -> Vec<ExecutableRep> {
        ix.ensure_all().unwrap();
        (0..ix.len()).map(|i| ix.get(i).clone()).collect()
    }

    fn exe(id: &str, strand_sets: &[&[u64]]) -> ExecutableRep {
        ExecutableRep {
            id: id.to_string(),
            arch: Arch::Mips32,
            procedures: strand_sets
                .iter()
                .enumerate()
                .map(|(i, s)| ProcedureRep {
                    addr: 0x1000 + (i as u32) * 0x40,
                    name: if i % 2 == 0 {
                        Some(format!("p{i}"))
                    } else {
                        None
                    },
                    strands: s.to_vec(),
                    block_count: i + 1,
                    size: 16 * (i as u32 + 1),
                    interned: None,
                })
                .collect(),
        }
    }

    fn sample() -> CorpusIndex {
        CorpusIndex::build(vec![
            exe("a", &[&[1, 2, 3], &[2, 9]]),
            exe("b", &[&[2, 3, 4]]),
            exe("c", &[&[], &[7]]),
        ])
    }

    #[test]
    fn shard_ranges_partition_the_corpus() {
        let index = sample();
        for k in [0usize, 1, 2, 3, 7] {
            let ranges = index.shard_ranges(k);
            assert!(!ranges.is_empty());
            assert!(ranges.len() <= index.len());
            // Contiguous, complete, non-overlapping coverage.
            let mut next = 0usize;
            for r in &ranges {
                assert_eq!(r.start, next);
                next = r.end;
            }
            assert_eq!(next, index.len());
        }
        // Empty corpus: no ranges.
        assert!(CorpusIndex::build(Vec::new()).shard_ranges(4).is_empty());
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let index = sample();
        let back = CorpusIndex::from_bytes(&index.to_bytes()).unwrap();
        assert_eq!(reps_of(&back), reps_of(&index));
        assert_eq!(*back.context, *index.context);
        assert_eq!(back.postings, index.postings);
    }

    #[test]
    fn lazy_roundtrip_matches_eager() {
        let index = sample();
        let blob = index.to_bytes();
        let eager = CorpusIndex::from_bytes(&blob).unwrap();
        let lazy = CorpusIndex::from_bytes_lazy(blob).unwrap();
        assert!(lazy.is_lazy() && !eager.is_lazy());
        assert_eq!(lazy.len(), eager.len());
        // Identity is available before any payload decode.
        for i in 0..lazy.len() {
            assert_eq!(lazy.exe_id(i), eager.exe_id(i));
            assert_eq!(lazy.exe_arch(i), eager.exe_arch(i));
        }
        assert_eq!(*lazy.context, *eager.context);
        assert_eq!(lazy.postings, eager.postings);
        assert_eq!(reps_of(&lazy), reps_of(&eager));
        // Re-serializing a fully decoded lazy index reproduces the blob.
        assert_eq!(lazy.to_bytes(), eager.to_bytes());
    }

    #[test]
    fn v1_blob_falls_back_to_eager_load() {
        let index = sample();
        let back = CorpusIndex::from_bytes_lazy(index.to_bytes_v1()).unwrap();
        assert!(!back.is_lazy());
        assert_eq!(reps_of(&back), reps_of(&index));
    }

    #[test]
    fn v2_without_exemeta_is_malformed_for_lazy_loads() {
        let index = sample();
        let records: Vec<Record> = index
            .typed_records(true)
            .into_iter()
            .filter(|r| r.name != "exemeta")
            .collect();
        let blob = write_container_v2(&records);
        // Eager readers don't need the sidecar...
        assert_eq!(
            reps_of(&CorpusIndex::from_bytes(&blob).unwrap()),
            reps_of(&index)
        );
        // ...lazy ones diagnose its absence.
        let err = CorpusIndex::from_bytes_lazy(blob).unwrap_err();
        assert!(matches!(err, IndexError::Malformed { .. }), "{err:?}");
    }

    #[test]
    fn lazy_damage_surfaces_at_decode_not_open() {
        let index = sample();
        let blob = index.to_bytes();
        // Find the exe:1 payload and flip a bit in it: the offset table
        // still verifies, so open succeeds; try_get(1) diagnoses.
        let (_, table) = read_table(&blob).unwrap();
        let e1 = table.iter().find(|e| e.name == "exe:1").unwrap().clone();
        let mut bad = blob;
        bad[e1.offset as usize] ^= 0x40;
        let lazy = CorpusIndex::from_bytes_lazy(bad).unwrap();
        assert!(lazy.try_get(0).is_ok());
        let err = lazy.try_get(1).unwrap_err();
        assert!(
            matches!(err, IndexError::ChecksumMismatch { .. }),
            "{err:?}"
        );
        assert!(lazy.ensure_all().is_err());
    }

    #[test]
    fn roundtrip_preserves_match_results() {
        // The acceptance property: searching against a reloaded index —
        // eager or lazy — yields the same results as the freshly built
        // one.
        let index = sample();
        let blob = index.to_bytes();
        let back = CorpusIndex::from_bytes(&blob).unwrap();
        let lazy = CorpusIndex::from_bytes_lazy(blob).unwrap();
        lazy.ensure_all().unwrap();
        let config = SearchConfig {
            context: Some(index.context.clone()),
            ..SearchConfig::default()
        };
        let fresh = search_corpus(index.get(0), 0, &index.rep_view(), &config);
        let config = SearchConfig {
            context: Some(back.context.clone()),
            ..SearchConfig::default()
        };
        let warm = search_corpus(back.get(0), 0, &back.rep_view(), &config);
        let config = SearchConfig {
            context: Some(lazy.context.clone()),
            ..SearchConfig::default()
        };
        let cold = search_corpus(lazy.get(0), 0, &lazy.rep_view(), &config);
        assert_eq!(fresh, warm);
        assert_eq!(fresh, cold);
    }

    #[test]
    fn empty_corpus_roundtrips() {
        let index = CorpusIndex::build(Vec::new());
        for back in [
            CorpusIndex::from_bytes(&index.to_bytes()).unwrap(),
            CorpusIndex::from_bytes_lazy(index.to_bytes()).unwrap(),
        ] {
            assert!(back.is_empty());
            assert!(back.postings.is_empty());
            assert_eq!(back.context.docs(), 0);
        }
    }

    #[test]
    fn unknown_records_are_skipped() {
        // Forward compatibility: a future writer adding a record name is
        // readable by this version.
        let index = sample();
        let records = {
            let mut r = read_container(&index.to_bytes()).unwrap();
            r.push(Record::new("future:embedding", vec![9, 9, 9]));
            r
        };
        let back = CorpusIndex::from_bytes(&write_container(&records)).unwrap();
        assert_eq!(reps_of(&back), reps_of(&index));
    }

    #[test]
    fn missing_records_are_diagnosed() {
        let index = sample();
        for drop_name in ["meta", "exe:1", "context", "postings2"] {
            let records: Vec<Record> = read_container(&index.to_bytes())
                .unwrap()
                .into_iter()
                .filter(|r| r.name != drop_name)
                .collect();
            let err = CorpusIndex::from_bytes(&write_container(&records)).unwrap_err();
            assert!(
                matches!(err, IndexError::Malformed { .. }),
                "dropping {drop_name}: {err:?}"
            );
        }
    }

    #[test]
    fn unsorted_strands_are_rejected() {
        let mut bad = exe("x", &[&[5]]);
        bad.procedures[0].strands = vec![5, 3];
        let blob = write_container(&[
            Record::new("meta", 1u32.to_le_bytes().to_vec()),
            Record::new("exe:0", super::encode_executable(&bad)),
            Record::new("context", super::encode_context(&GlobalContext::default())),
            Record::new(
                "postings",
                super::encode_postings(&StrandPostings::default()),
            ),
        ]);
        assert!(matches!(
            CorpusIndex::from_bytes(&blob),
            Err(IndexError::Malformed { .. })
        ));
    }

    #[test]
    fn save_and_load_through_the_filesystem() {
        let dir = std::env::temp_dir().join(format!(
            "firmup-persist-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let index = sample();
        index.save(&dir).unwrap();
        let back = CorpusIndex::load(&dir).unwrap();
        assert_eq!(reps_of(&back), reps_of(&index));
        // open() takes the lazy path for the v2 file save() writes...
        let lazy = CorpusIndex::open(&dir).unwrap();
        assert!(lazy.is_lazy());
        assert_eq!(reps_of(&lazy), reps_of(&index));
        // ...and the eager path for a v1 file.
        index.save_v1(&dir).unwrap();
        let v1 = CorpusIndex::open(&dir).unwrap();
        assert!(!v1.is_lazy());
        assert_eq!(reps_of(&v1), reps_of(&index));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_index_is_a_structured_missing_error_with_path() {
        let dir = std::env::temp_dir().join("firmup-persist-definitely-missing");
        let err = CorpusIndex::load(&dir).unwrap_err();
        assert_eq!(err.kind(), "index");
        assert!(
            matches!(
                err,
                FirmUpError::Index {
                    source: IndexError::Missing { .. },
                    ..
                }
            ),
            "{err:?}"
        );
        assert!(err.to_string().contains("corpus.fui"), "{err}");
    }

    #[test]
    fn zero_length_index_is_a_structured_truncation_with_path() {
        let dir = std::env::temp_dir().join(format!(
            "firmup-persist-empty-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(index_path(&dir), b"").unwrap();
        let err = CorpusIndex::load(&dir).unwrap_err();
        assert_eq!(err.kind(), "index");
        assert!(
            matches!(
                err,
                FirmUpError::Index {
                    source: IndexError::Truncated { .. },
                    ..
                }
            ),
            "{err:?}"
        );
        assert!(err.to_string().contains("corpus.fui"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn damaged_file_is_an_index_error_with_path() {
        let dir = std::env::temp_dir().join(format!(
            "firmup-persist-damaged-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let index = sample();
        index.save(&dir).unwrap();
        let path = index_path(&dir);
        let mut blob = std::fs::read(&path).unwrap();
        let n = blob.len();
        blob[n - 1] ^= 0x01;
        std::fs::write(&path, &blob).unwrap();
        let err = CorpusIndex::load(&dir).unwrap_err();
        assert_eq!(err.kind(), "index");
        assert!(err.to_string().contains("corpus.fui"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prefilter_ranks_by_overlap_against_a_reloaded_index() {
        let index = CorpusIndex::from_bytes(&sample().to_bytes()).unwrap();
        // Query shares {2,3} with a, {2,3} with b... weight-free check:
        // a strand counts once per executable.
        let query = ProcedureRep {
            addr: 0,
            name: None,
            strands: vec![2, 3, 7],
            block_count: 1,
            size: 4,
            interned: None,
        };
        let ranked = prefilter_candidates(&query, &index.postings, None, 0);
        let score = |e: usize| ranked.iter().find(|&&(i, _)| i == e).map(|&(_, s)| s);
        assert_eq!(score(0), Some(2.0)); // a: strands 2, 3
        assert_eq!(score(1), Some(2.0)); // b: strands 2, 3
        assert_eq!(score(2), Some(1.0)); // c: strand 7
        let top2 = prefilter_candidates(&query, &index.postings, None, 2);
        assert_eq!(top2.len(), 2);
        assert_eq!((top2[0].0, top2[1].0), (0, 1)); // ties break low-index
    }

    #[test]
    fn segments_roundtrip() {
        let reps = reps_of(&sample());
        let blob = segment_to_bytes(&reps);
        assert_eq!(segment_from_bytes(&blob).unwrap(), reps);
        assert!(segment_from_bytes(&segment_to_bytes(&[]))
            .unwrap()
            .is_empty());
        // Damage is diagnosed, not panicked on.
        let mut bad = blob.clone();
        let n = bad.len();
        bad[n - 1] ^= 1;
        assert!(segment_from_bytes(&bad).is_err());
    }

    #[test]
    fn checkpoint_commit_resume_and_damage_detection() {
        let dir = std::env::temp_dir().join(format!(
            "firmup-checkpoint-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let reps = reps_of(&sample());

        // Fresh build: commit two segments.
        let (mut ckpt, stats) = IndexCheckpoint::open(&dir, false).unwrap();
        assert_eq!(stats, CheckpointStats::default());
        ckpt.commit(0x11, &reps[0..1]).unwrap();
        ckpt.commit(0x22, &reps[1..3]).unwrap();
        assert!(ckpt.committed(0x11) && ckpt.committed(0x22) && !ckpt.committed(0x33));

        // Resume: both segments verify and reload intact.
        let (ckpt, stats) = IndexCheckpoint::open(&dir, true).unwrap();
        assert_eq!(
            (stats.reused, stats.damaged, stats.torn_tail),
            (2, 0, false)
        );
        assert_eq!(ckpt.load_segment(0x11).unwrap(), reps[0..1]);
        assert_eq!(ckpt.load_segment(0x22).unwrap(), reps[1..3]);

        // Damage one segment on disk: resume drops exactly that entry.
        let seg = segments_dir(&dir).join(segment_file_name(0x11));
        let mut blob = std::fs::read(&seg).unwrap();
        blob[10] ^= 0xff;
        std::fs::write(&seg, &blob).unwrap();
        let (ckpt, stats) = IndexCheckpoint::open(&dir, true).unwrap();
        assert_eq!((stats.reused, stats.damaged), (1, 1));
        assert!(!ckpt.committed(0x11) && ckpt.committed(0x22));

        // A torn journal tail is discarded and flagged once: the
        // rewrite means the *next* resume is clean.
        let journal = journal_path(&dir);
        let mut bytes = std::fs::read(&journal).unwrap();
        bytes.extend_from_slice(b"seg 00000000000000ab 0000");
        std::fs::write(&journal, &bytes).unwrap();
        let (_, stats) = IndexCheckpoint::open(&dir, true).unwrap();
        assert!(stats.torn_tail);
        let (_, stats) = IndexCheckpoint::open(&dir, true).unwrap();
        assert!(!stats.torn_tail, "journal rewrite did not stick");

        // Fresh open clears everything.
        let (ckpt, _) = IndexCheckpoint::open(&dir, false).unwrap();
        assert_eq!(ckpt.segments(), 0);
        assert!(!journal.exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn seals_record_roundtrips_and_is_omitted_when_empty() {
        let mut index = sample();
        // No seals: bytes are exactly the pre-incremental layout (no
        // `seals` record at all).
        let plain = index.to_bytes();
        assert!(read_container(&plain)
            .unwrap()
            .iter()
            .all(|r| r.name != "seals"));
        index.set_seals(vec![0xaa, 0xbb, 0xcc]);
        let sealed = index.to_bytes();
        assert_ne!(plain, sealed);
        let eager = CorpusIndex::from_bytes(&sealed).unwrap();
        assert_eq!(eager.seals(), &[0xaa, 0xbb, 0xcc]);
        let lazy = CorpusIndex::from_bytes_lazy(sealed.clone()).unwrap();
        assert_eq!(lazy.seals(), &[0xaa, 0xbb, 0xcc]);
        // Re-serialization keeps the seal list (compact depends on it).
        lazy.ensure_all().unwrap();
        assert_eq!(lazy.to_bytes(), sealed);
        // Old-style readers skip the record; the reps still load.
        assert_eq!(reps_of(&eager), reps_of(&index));
    }

    /// Build the on-disk shape `index --add` leaves behind: a base
    /// `corpus.fui` over `base_reps`, plus one live segment per entry
    /// of `segments`, published via the manifest at `epoch`.
    fn write_layout(
        dir: &std::path::Path,
        base: &CorpusIndex,
        segments: &[(u64, &[ExecutableRep])],
        epoch: u64,
    ) {
        use firmup_firmware::index::{write_manifest, Manifest};
        base.save(dir).unwrap();
        std::fs::create_dir_all(segments_dir(dir)).unwrap();
        let mut entries = Vec::new();
        for &(digest, reps) in segments {
            let blob = segment_to_bytes(reps);
            let name = segment_file_name(digest);
            std::fs::write(segments_dir(dir).join(&name), &blob).unwrap();
            entries.push(JournalEntry {
                digest,
                crc: crc32(&blob),
                executables: reps.len() as u32,
                segment: name,
            });
        }
        write_manifest(dir, &Manifest { epoch, entries }).unwrap();
    }

    #[test]
    fn multi_segment_open_unions_live_segments() {
        let dir = std::env::temp_dir().join(format!(
            "firmup-union-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let all = reps_of(&sample());
        let mut base = CorpusIndex::build(all[0..1].to_vec());
        base.set_seals(vec![0xa1]);
        write_layout(&dir, &base, &[(0xb2, &all[1..2]), (0xc3, &all[2..3])], 7);

        let full = CorpusIndex::build(all.clone());
        for index in [
            CorpusIndex::open(&dir).unwrap(),
            CorpusIndex::load(&dir).unwrap(),
        ] {
            assert_eq!(index.len(), 3);
            assert_eq!(index.segment_epoch(), 7);
            assert_eq!(index.segment_count(), 2);
            assert_eq!(index.seals(), &[0xa1, 0xb2, 0xc3]);
            assert_eq!(reps_of(&index), all);
            // The merged derived structures are exactly the
            // from-scratch build's.
            assert_eq!(index.context.entries(), full.context.entries());
            assert_eq!(index.context.docs(), full.context.docs());
            assert_eq!(index.postings.entries(), full.postings.entries());
        }
        // The lazy path stays lazy across the union.
        assert!(CorpusIndex::open(&dir).unwrap().is_lazy());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sealed_segments_are_skipped_on_open() {
        // The compact crash window: corpus.fui already holds an image
        // whose segment the (not yet rewritten) manifest still names.
        let dir = std::env::temp_dir().join(format!(
            "firmup-sealskip-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let all = reps_of(&sample());
        let mut base = CorpusIndex::build(all.clone());
        base.set_seals(vec![0xa1, 0xb2, 0xc3]);
        // Manifest still lists 0xb2 and 0xc3 — both sealed, both skipped.
        write_layout(&dir, &base, &[(0xb2, &all[1..2]), (0xc3, &all[2..3])], 9);
        let index = CorpusIndex::open(&dir).unwrap();
        assert_eq!(index.len(), 3, "sealed segments must not double-count");
        assert_eq!(index.segment_count(), 0);
        assert_eq!(index.segment_epoch(), 9);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn add_history_then_union_reproduces_full_build_bytes() {
        // The compact contract: serializing the unioned index writes
        // the same bytes a from-scratch build over the same images (in
        // the same order, with the same seals) would.
        let dir = std::env::temp_dir().join(format!(
            "firmup-compacteq-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let all = reps_of(&sample());
        let mut base = CorpusIndex::build(all[0..1].to_vec());
        base.set_seals(vec![0xa1]);
        write_layout(&dir, &base, &[(0xb2, &all[1..2]), (0xc3, &all[2..3])], 2);
        let union = CorpusIndex::load(&dir).unwrap();
        let mut full = CorpusIndex::build(all);
        full.set_seals(vec![0xa1, 0xb2, 0xc3]);
        assert_eq!(union.to_bytes(), full.to_bytes());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unsidecared_segments_fall_back_to_eager_union() {
        // A segment written without the v2 sidecars (e.g. by an older
        // build) still unions — just eagerly.
        let dir = std::env::temp_dir().join(format!(
            "firmup-plainseg-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let all = reps_of(&sample());
        let base = CorpusIndex::build(all[0..1].to_vec());
        base.save(&dir).unwrap();
        std::fs::create_dir_all(segments_dir(&dir)).unwrap();
        // Hand-roll the old layout: meta + exe:<i> only, v1 container.
        let mut records = vec![Record::new("meta", 2u32.to_le_bytes().to_vec())];
        for (i, exe) in all[1..3].iter().enumerate() {
            records.push(Record::new(format!("exe:{i}"), encode_executable(exe)));
        }
        let blob = write_container(&records);
        let name = segment_file_name(0xdd);
        std::fs::write(segments_dir(&dir).join(&name), &blob).unwrap();
        firmup_firmware::index::write_manifest(
            &dir,
            &firmup_firmware::index::Manifest {
                epoch: 1,
                entries: vec![JournalEntry {
                    digest: 0xdd,
                    crc: crc32(&blob),
                    executables: 2,
                    segment: name,
                }],
            },
        )
        .unwrap();
        let full = CorpusIndex::build(all.clone());
        let index = CorpusIndex::open(&dir).unwrap();
        assert_eq!(reps_of(&index), all);
        assert_eq!(index.context.entries(), full.context.entries());
        assert_eq!(index.postings.entries(), full.postings.entries());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn damaged_live_segment_fails_open_with_structured_error() {
        let dir = std::env::temp_dir().join(format!(
            "firmup-badseg-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let all = reps_of(&sample());
        let base = CorpusIndex::build(all[0..1].to_vec());
        write_layout(&dir, &base, &[(0xb2, &all[1..2])], 1);
        let seg = segments_dir(&dir).join(segment_file_name(0xb2));
        let mut blob = std::fs::read(&seg).unwrap();
        let n = blob.len();
        blob[n / 2] ^= 0xff;
        std::fs::write(&seg, &blob).unwrap();
        let err = CorpusIndex::open(&dir).unwrap_err();
        assert_eq!(err.kind(), "index");
        assert!(err.to_string().contains("checksum"), "{err}");
        // A missing segment file is diagnosed as Missing, not Io.
        std::fs::remove_file(&seg).unwrap();
        let err = CorpusIndex::open(&dir).unwrap_err();
        assert!(
            matches!(
                err,
                FirmUpError::Index {
                    source: IndexError::Missing { .. },
                    ..
                }
            ),
            "{err:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn format_version_is_pinned() {
        // A reminder to bump deliberately: to_bytes writes the current
        // (v2, lazily loadable) layout; to_bytes_v1 stays byte-for-byte
        // what pre-v2 builds wrote so old readers keep working.
        assert_eq!(FORMAT_V1, 1);
        assert_eq!(MAX_SUPPORTED_VERSION, 2);
        let index = sample();
        assert_eq!(&index.to_bytes()[4..8], &2u32.to_le_bytes());
        assert_eq!(&index.to_bytes_v1()[4..8], &1u32.to_le_bytes());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_rep() -> impl Strategy<Value = ExecutableRep> {
        (
            "[a-z]{1,12}",
            0..4usize,
            proptest::collection::vec(proptest::collection::vec(any::<u64>(), 0..20), 0..6),
        )
            .prop_map(|(id, arch_i, strand_sets)| {
                let arch = Arch::all()[arch_i % Arch::all().len()];
                ExecutableRep {
                    id,
                    arch,
                    procedures: strand_sets
                        .into_iter()
                        .enumerate()
                        .map(|(i, mut strands)| {
                            strands.sort_unstable();
                            strands.dedup();
                            ProcedureRep {
                                addr: (i as u32) * 0x20,
                                name: (i % 3 == 0).then(|| format!("f{i}")),
                                strands,
                                block_count: i,
                                size: i as u32 * 4,
                                interned: None,
                            }
                        })
                        .collect(),
                }
            })
    }

    fn decoded(ix: &CorpusIndex) -> Vec<ExecutableRep> {
        ix.ensure_all().unwrap();
        (0..ix.len()).map(|i| ix.get(i).clone()).collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Write → read reproduces identical strand hashes (and all
        /// other fields) for arbitrary corpora — through the eager v2
        /// reader, the lazy v2 reader, and the v1 compatibility writer
        /// alike.
        #[test]
        fn roundtrip_property(reps in proptest::collection::vec(arb_rep(), 0..5)) {
            let index = CorpusIndex::build(reps);
            let blob = index.to_bytes();
            let eager = CorpusIndex::from_bytes(&blob).unwrap();
            let lazy = CorpusIndex::from_bytes_lazy(blob).unwrap();
            let v1 = CorpusIndex::from_bytes(&index.to_bytes_v1()).unwrap();
            let want = decoded(&index);
            for back in [&eager, &lazy, &v1] {
                prop_assert_eq!(&decoded(back), &want);
                prop_assert_eq!(back.context.entries(), index.context.entries());
                prop_assert_eq!(back.postings.entries(), index.postings.entries());
            }
            // Identity metadata is consistent with the decoded reps.
            for (i, w) in want.iter().enumerate() {
                prop_assert_eq!(lazy.exe_id(i), &w.id);
                prop_assert_eq!(lazy.exe_arch(i), w.arch);
            }
        }
    }
}
