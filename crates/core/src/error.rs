//! The unified FirmUp error taxonomy.
//!
//! FirmUp's value is scanning *thousands of messy firmware images*
//! (§5.1's 2,000-image / 200K-procedure corpus): one corrupted package
//! must never abort a whole scan. Every stage of the pipeline — unpack,
//! ELF parse, lift, compile (query builds), search — therefore reports
//! through a single [`FirmUpError`] whose variants wrap the stage-local
//! error types, and every error carries a [`FaultCtx`] that attributes
//! the failure to an image, package, procedure, and byte offset.
//!
//! Faults that the type system cannot rule out (panics in a lift or a
//! game on pathological inputs) are contained with [`isolate`], which
//! converts an unwind into a structured [`FirmUpError::Poisoned`] so
//! the scan keeps going and telemetry counts the casualty.

use std::any::Any;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

use firmup_firmware::durable::LockError;
use firmup_firmware::image::ImageError;
use firmup_firmware::index::IndexError;
use firmup_firmware::packages::PackageError;
use firmup_obj::ElfError;

use crate::lift::LiftError;
use crate::search::BudgetReason;

/// Attribution context carried by every [`FirmUpError`]: which image,
/// package, procedure, and byte offset a failure belongs to. All fields
/// are optional — stages fill in what they know and callers enrich the
/// context on the way up with [`FirmUpError::in_ctx`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultCtx {
    /// Firmware image path or id.
    pub image: Option<String>,
    /// Package / part name inside the image.
    pub package: Option<String>,
    /// Procedure name or address.
    pub procedure: Option<String>,
    /// Byte offset into the failing blob.
    pub offset: Option<u64>,
}

impl FaultCtx {
    /// Empty context.
    pub fn new() -> FaultCtx {
        FaultCtx::default()
    }

    /// Context rooted at an image.
    pub fn image(image: impl Into<String>) -> FaultCtx {
        FaultCtx {
            image: Some(image.into()),
            ..FaultCtx::default()
        }
    }

    /// Attach a package / part name.
    #[must_use]
    pub fn with_package(mut self, package: impl Into<String>) -> FaultCtx {
        self.package = Some(package.into());
        self
    }

    /// Attach a procedure name or address.
    #[must_use]
    pub fn with_procedure(mut self, procedure: impl Into<String>) -> FaultCtx {
        self.procedure = Some(procedure.into());
        self
    }

    /// Attach a byte offset.
    #[must_use]
    pub fn with_offset(mut self, offset: u64) -> FaultCtx {
        self.offset = Some(offset);
        self
    }

    /// Whether any attribution is present.
    pub fn is_empty(&self) -> bool {
        self.image.is_none()
            && self.package.is_none()
            && self.procedure.is_none()
            && self.offset.is_none()
    }

    /// Merge: fields already set win; missing fields are taken from
    /// `outer` (used when an outer stage enriches an inner error).
    fn absorb(&mut self, outer: FaultCtx) {
        if self.image.is_none() {
            self.image = outer.image;
        }
        if self.package.is_none() {
            self.package = outer.package;
        }
        if self.procedure.is_none() {
            self.procedure = outer.procedure;
        }
        if self.offset.is_none() {
            self.offset = outer.offset;
        }
    }
}

impl fmt::Display for FaultCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut sep = "";
        if let Some(i) = &self.image {
            write!(f, "image={i}")?;
            sep = ", ";
        }
        if let Some(p) = &self.package {
            write!(f, "{sep}package={p}")?;
            sep = ", ";
        }
        if let Some(p) = &self.procedure {
            write!(f, "{sep}procedure={p}")?;
            sep = ", ";
        }
        if let Some(o) = self.offset {
            write!(f, "{sep}offset={o:#x}")?;
        }
        Ok(())
    }
}

/// The unified pipeline error: one variant per failure class, each
/// carrying its stage-local source error plus a [`FaultCtx`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FirmUpError {
    /// Firmware image unpacking failed ([`ImageError`]).
    Unpack {
        /// Stage-local cause.
        source: ImageError,
        /// Attribution (boxed to keep `Result<_, FirmUpError>` small).
        ctx: Box<FaultCtx>,
    },
    /// ELF parsing failed ([`ElfError`]).
    Object {
        /// Stage-local cause.
        source: ElfError,
        /// Attribution (boxed to keep `Result<_, FirmUpError>` small).
        ctx: Box<FaultCtx>,
    },
    /// Lifting failed ([`LiftError`]).
    Lift {
        /// Stage-local cause.
        source: LiftError,
        /// Attribution (boxed to keep `Result<_, FirmUpError>` small).
        ctx: Box<FaultCtx>,
    },
    /// A query/corpus build failed to compile (message of the
    /// underlying `firmup_compiler::CompilerError`).
    Compile {
        /// Rendered compiler diagnostic.
        message: String,
        /// Attribution (boxed to keep `Result<_, FirmUpError>` small).
        ctx: Box<FaultCtx>,
    },
    /// Package metadata lookup failed ([`PackageError`]).
    Package {
        /// Stage-local cause.
        source: PackageError,
        /// Attribution (boxed to keep `Result<_, FirmUpError>` small).
        ctx: Box<FaultCtx>,
    },
    /// A stage panicked and the unwind was contained by [`isolate`]
    /// (or the search driver); the work item is poisoned, not the scan.
    Poisoned {
        /// Rendered panic payload.
        panic: String,
        /// Attribution (boxed to keep `Result<_, FirmUpError>` small).
        ctx: Box<FaultCtx>,
    },
    /// A [`crate::search::ScanBudget`] bound fired before the work item
    /// completed; partial results may still have been reported.
    BudgetExceeded {
        /// Which bound fired.
        reason: BudgetReason,
        /// Attribution (boxed to keep `Result<_, FirmUpError>` small).
        ctx: Box<FaultCtx>,
    },
    /// A persisted corpus index could not be read
    /// ([`firmup_firmware::index::IndexError`]): wrong magic, a future
    /// format version, truncation, a failed record checksum, or an
    /// undecodable typed payload. An index is a cache — the remedy is
    /// always "rebuild with `firmup index`", never a crash.
    Index {
        /// Stage-local cause.
        source: IndexError,
        /// Attribution (boxed to keep `Result<_, FirmUpError>` small).
        ctx: Box<FaultCtx>,
    },
    /// An index directory's advisory writer lock could not be acquired
    /// ([`firmup_firmware::durable::LockError`]): either a live
    /// `firmup index` holds it (the caller should wait or pick another
    /// directory) or the lock file itself was unreachable.
    Lock {
        /// Stage-local cause.
        source: LockError,
        /// Attribution (boxed to keep `Result<_, FirmUpError>` small).
        ctx: Box<FaultCtx>,
    },
    /// Filesystem-level failure (CLI reads).
    Io {
        /// Rendered `std::io::Error`.
        message: String,
        /// Attribution (boxed to keep `Result<_, FirmUpError>` small).
        ctx: Box<FaultCtx>,
    },
}

impl FirmUpError {
    /// The attribution context.
    pub fn ctx(&self) -> &FaultCtx {
        match self {
            FirmUpError::Unpack { ctx, .. }
            | FirmUpError::Object { ctx, .. }
            | FirmUpError::Lift { ctx, .. }
            | FirmUpError::Compile { ctx, .. }
            | FirmUpError::Package { ctx, .. }
            | FirmUpError::Poisoned { ctx, .. }
            | FirmUpError::BudgetExceeded { ctx, .. }
            | FirmUpError::Index { ctx, .. }
            | FirmUpError::Lock { ctx, .. }
            | FirmUpError::Io { ctx, .. } => ctx.as_ref(),
        }
    }

    fn ctx_mut(&mut self) -> &mut FaultCtx {
        match self {
            FirmUpError::Unpack { ctx, .. }
            | FirmUpError::Object { ctx, .. }
            | FirmUpError::Lift { ctx, .. }
            | FirmUpError::Compile { ctx, .. }
            | FirmUpError::Package { ctx, .. }
            | FirmUpError::Poisoned { ctx, .. }
            | FirmUpError::BudgetExceeded { ctx, .. }
            | FirmUpError::Index { ctx, .. }
            | FirmUpError::Lock { ctx, .. }
            | FirmUpError::Io { ctx, .. } => ctx.as_mut(),
        }
    }

    /// Enrich the context: fields the error already attributes win,
    /// missing ones are filled from `outer`.
    #[must_use]
    pub fn in_ctx(mut self, outer: FaultCtx) -> FirmUpError {
        self.ctx_mut().absorb(outer);
        self
    }

    /// Stable failure-class name, used as a telemetry counter suffix
    /// (`scan.errors.<kind>`).
    pub fn kind(&self) -> &'static str {
        match self {
            FirmUpError::Unpack { .. } => "unpack",
            FirmUpError::Object { .. } => "object",
            FirmUpError::Lift { .. } => "lift",
            FirmUpError::Compile { .. } => "compile",
            FirmUpError::Package { .. } => "package",
            FirmUpError::Poisoned { .. } => "poisoned",
            FirmUpError::BudgetExceeded { .. } => "budget",
            FirmUpError::Index { .. } => "index",
            FirmUpError::Lock { .. } => "lock",
            FirmUpError::Io { .. } => "io",
        }
    }

    /// Whether the error is a contained panic.
    pub fn is_poisoned(&self) -> bool {
        matches!(self, FirmUpError::Poisoned { .. })
    }
}

impl fmt::Display for FirmUpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FirmUpError::Unpack { source, .. } => write!(f, "unpack: {source}")?,
            FirmUpError::Object { source, .. } => write!(f, "object: {source}")?,
            FirmUpError::Lift { source, .. } => write!(f, "lift: {source}")?,
            FirmUpError::Compile { message, .. } => write!(f, "compile: {message}")?,
            FirmUpError::Package { source, .. } => write!(f, "package: {source}")?,
            FirmUpError::Poisoned { panic, .. } => write!(f, "poisoned (panic): {panic}")?,
            FirmUpError::BudgetExceeded { reason, .. } => {
                write!(f, "budget exceeded: {reason}")?;
            }
            FirmUpError::Index { source, .. } => write!(f, "index: {source}")?,
            FirmUpError::Lock { source, .. } => write!(f, "lock: {source}")?,
            FirmUpError::Io { message, .. } => write!(f, "io: {message}")?,
        }
        let ctx = self.ctx();
        if !ctx.is_empty() {
            write!(f, " [{ctx}]")?;
        }
        Ok(())
    }
}

impl std::error::Error for FirmUpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FirmUpError::Unpack { source, .. } => Some(source),
            FirmUpError::Object { source, .. } => Some(source),
            FirmUpError::Lift { source, .. } => Some(source),
            FirmUpError::Package { source, .. } => Some(source),
            FirmUpError::Index { source, .. } => Some(source),
            FirmUpError::Lock { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<ImageError> for FirmUpError {
    fn from(source: ImageError) -> FirmUpError {
        FirmUpError::Unpack {
            source,
            ctx: Box::new(FaultCtx::new()),
        }
    }
}

impl From<ElfError> for FirmUpError {
    fn from(source: ElfError) -> FirmUpError {
        FirmUpError::Object {
            source,
            ctx: Box::new(FaultCtx::new()),
        }
    }
}

impl From<LiftError> for FirmUpError {
    fn from(source: LiftError) -> FirmUpError {
        FirmUpError::Lift {
            source,
            ctx: Box::new(FaultCtx::new()),
        }
    }
}

impl From<PackageError> for FirmUpError {
    fn from(source: PackageError) -> FirmUpError {
        FirmUpError::Package {
            source,
            ctx: Box::new(FaultCtx::new()),
        }
    }
}

impl From<firmup_compiler::CompilerError> for FirmUpError {
    fn from(source: firmup_compiler::CompilerError) -> FirmUpError {
        FirmUpError::Compile {
            message: source.to_string(),
            ctx: Box::new(FaultCtx::new()),
        }
    }
}

impl From<IndexError> for FirmUpError {
    fn from(source: IndexError) -> FirmUpError {
        FirmUpError::Index {
            source,
            ctx: Box::new(FaultCtx::new()),
        }
    }
}

impl From<LockError> for FirmUpError {
    fn from(source: LockError) -> FirmUpError {
        FirmUpError::Lock {
            source,
            ctx: Box::new(FaultCtx::new()),
        }
    }
}

impl From<std::io::Error> for FirmUpError {
    fn from(source: std::io::Error) -> FirmUpError {
        FirmUpError::Io {
            message: source.to_string(),
            ctx: Box::new(FaultCtx::new()),
        }
    }
}

/// Render a caught panic payload (the `Box<dyn Any>` from
/// `catch_unwind`) into a displayable message.
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run `f`, containing both structured errors and panics: an unwind is
/// converted into [`FirmUpError::Poisoned`] carrying `ctx`, so a
/// pathological work item can never take the scan down with it.
///
/// Telemetry: a contained panic increments `scan.targets_poisoned`.
pub fn isolate<T>(
    ctx: FaultCtx,
    f: impl FnOnce() -> Result<T, FirmUpError>,
) -> Result<T, FirmUpError> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(result) => result.map_err(|e| e.in_ctx(ctx)),
        Err(payload) => {
            firmup_telemetry::incr("scan.targets_poisoned");
            Err(FirmUpError::Poisoned {
                panic: panic_message(payload.as_ref()),
                ctx: Box::new(ctx),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_attribution_renders() {
        let e = FirmUpError::from(ImageError::Truncated).in_ctx(
            FaultCtx::image("fw.fwim")
                .with_package("bin/wget")
                .with_offset(0x40),
        );
        let msg = e.to_string();
        assert!(msg.contains("truncated"), "{msg}");
        assert!(msg.contains("image=fw.fwim"), "{msg}");
        assert!(msg.contains("package=bin/wget"), "{msg}");
        assert!(msg.contains("offset=0x40"), "{msg}");
        assert_eq!(e.kind(), "unpack");
    }

    #[test]
    fn inner_attribution_wins_over_outer() {
        let e = FirmUpError::Poisoned {
            panic: "boom".into(),
            ctx: Box::new(FaultCtx::new().with_package("inner")),
        }
        .in_ctx(FaultCtx::image("outer.fwim").with_package("outer"));
        assert_eq!(e.ctx().package.as_deref(), Some("inner"));
        assert_eq!(e.ctx().image.as_deref(), Some("outer.fwim"));
    }

    #[test]
    fn isolate_contains_panics() {
        let r: Result<(), FirmUpError> =
            isolate(FaultCtx::image("x.fwim"), || panic!("index out of range"));
        let e = r.unwrap_err();
        assert!(e.is_poisoned());
        assert!(e.to_string().contains("index out of range"));
        assert!(e.to_string().contains("x.fwim"));
    }

    #[test]
    fn isolate_passes_values_and_errors_through() {
        assert_eq!(isolate(FaultCtx::new(), || Ok(7)).unwrap(), 7);
        let e: FirmUpError = ElfError::BadMagic.into();
        let r: Result<(), _> = isolate(FaultCtx::image("i"), || Err(e));
        assert_eq!(r.unwrap_err().ctx().image.as_deref(), Some("i"));
    }

    #[test]
    fn from_impls_cover_every_stage() {
        assert_eq!(FirmUpError::from(ImageError::NotAnImage).kind(), "unpack");
        assert_eq!(FirmUpError::from(ElfError::BadMagic).kind(), "object");
        assert_eq!(FirmUpError::from(LiftError::NoText).kind(), "lift",);
        assert_eq!(
            FirmUpError::from(PackageError::UnknownPackage("zsh".into())).kind(),
            "package"
        );
        assert_eq!(FirmUpError::from(IndexError::NotAnIndex).kind(), "index");
        assert_eq!(
            FirmUpError::from(LockError::Held {
                pid: 1,
                path: "idx/index.lock".into(),
                scope: "index".into()
            })
            .kind(),
            "lock"
        );
        assert_eq!(FirmUpError::from(std::io::Error::other("x")).kind(), "io");
    }
}
