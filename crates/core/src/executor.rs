//! Work-stealing executor for fine-grained scan work units.
//!
//! A corpus scan decomposes into many independent units — a chunk of
//! targets inside one [`crate::search::search_corpus`] call, or a
//! (query × candidate-shard) pair at the whole-scan level (see
//! [`crate::search::scan_units`]). [`run_units`] schedules those units
//! over `std::thread::scope` workers that drain a per-worker chunked
//! deque and steal from a sibling's tail when their own runs dry —
//! std-only, no extra dependencies.
//!
//! **Determinism invariant.** Every unit's result lands in a slot
//! vector indexed by unit number, and the merged output is read back in
//! slot order. Scheduling, stealing, and arrival order can never leak
//! into results: for a fixed input, `threads = N` produces the same
//! output vector for every `N`.
//!
//! Telemetry: each processed chunk counts in `scan.units_done` and
//! records its item count in the `scan.unit_items` histogram; each
//! successful steal counts in `scan.steal_count` and (under span
//! tracing) emits a `steal` instant with thief/victim lanes. Each
//! *unit* runs under a `unit` span parented on the caller's innermost
//! span via an explicit [`TraceCtx`] keyed by unit index — so the
//! reconstructed span tree is identical at every thread count even when
//! a unit executes on a stolen worker, and chunk boundaries (which vary
//! with `threads`) never shape the tree.

use std::collections::VecDeque;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use firmup_telemetry::{Counter, Histogram, TraceCtx};

/// Resolve a `threads` setting: `0` means one worker per available
/// core (falling back to 4 when parallelism cannot be queried).
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get)
    } else {
        threads
    }
}

/// Process-wide ceiling on workers spawned by concurrent [`run_units`]
/// calls (`0` = uncapped). A long-lived server admitting many scans at
/// once sets this once so N in-flight requests × M threads each cannot
/// oversubscribe the machine.
static WORKER_CAP: AtomicUsize = AtomicUsize::new(0);

/// Workers currently granted to in-flight [`run_units`] calls.
static WORKERS_IN_USE: AtomicUsize = AtomicUsize::new(0);

/// Set the process-wide worker ceiling shared by every concurrent
/// [`run_units`] call (`0` restores the default: uncapped). Each call
/// still gets at least one worker, so a saturated cap degrades to
/// serial execution instead of blocking — and the determinism invariant
/// makes the granted width unobservable in results.
pub fn set_worker_cap(cap: usize) {
    WORKER_CAP.store(cap, Ordering::SeqCst);
}

/// A grant of worker slots against [`WORKER_CAP`], released on drop.
struct WorkerClaim {
    granted: usize,
    charged: usize,
}

impl Drop for WorkerClaim {
    fn drop(&mut self) {
        if self.charged > 0 {
            WORKERS_IN_USE.fetch_sub(self.charged, Ordering::SeqCst);
        }
    }
}

/// How many of `want` workers fit under `cap` given `already` granted:
/// everything when uncapped, otherwise what remains — but never less
/// than one, so no caller ever blocks on the cap.
fn grant(want: usize, cap: usize, already: usize) -> usize {
    if cap == 0 {
        want
    } else {
        want.min(cap.saturating_sub(already)).max(1)
    }
}

/// Claim up to `want` worker slots against the global cap.
fn claim_workers(want: usize) -> WorkerClaim {
    let cap = WORKER_CAP.load(Ordering::SeqCst);
    if cap == 0 || want <= 1 {
        return WorkerClaim {
            granted: want,
            charged: 0,
        };
    }
    // Optimistically charge the full request, then refund what the cap
    // refuses — a single fetch_add keeps concurrent claimants additive.
    let already = WORKERS_IN_USE.fetch_add(want, Ordering::SeqCst);
    let granted = grant(want, cap, already);
    if granted < want {
        WORKERS_IN_USE.fetch_sub(want - granted, Ordering::SeqCst);
    }
    WorkerClaim {
        granted,
        charged: granted,
    }
}

/// Scheduling chunk size for `items` spread over `threads` workers:
/// about four chunks per worker so stealing can rebalance a skewed
/// workload, never zero.
pub fn chunk_size(items: usize, threads: usize) -> usize {
    (items / (threads.max(1) * 4)).max(1)
}

/// Metric handles resolved once per [`run_units`] call. The registry
/// resolution (name hash + map lock) must stay off the per-chunk path:
/// a scan issues O(units) chunks, and the regression pin in
/// `tests/metric_lookup_pin.rs` requires registry traffic to be O(1)
/// in corpus size. `None` when telemetry was disabled at entry, so the
/// disabled path stays lookup-free.
struct ChunkMetrics {
    units_done: Counter,
    unit_items: Histogram,
    steals: Counter,
}

impl ChunkMetrics {
    fn resolve() -> Option<ChunkMetrics> {
        firmup_telemetry::enabled().then(|| ChunkMetrics {
            units_done: firmup_telemetry::counter("scan.units_done"),
            unit_items: firmup_telemetry::histogram("scan.unit_items"),
            steals: firmup_telemetry::counter("scan.steal_count"),
        })
    }
}

/// Process one chunk of unit indices, with per-chunk telemetry. Every
/// unit gets its own `unit` span, parented on `parent` (the caller's
/// innermost span at [`run_units`] entry) and keyed by unit index so
/// its identity is scheduling-independent.
fn run_chunk<R>(
    range: Range<usize>,
    parent: Option<&TraceCtx>,
    metrics: Option<&ChunkMetrics>,
    run: &(impl Fn(usize) -> R + Sync),
    out: &mut Vec<(usize, R)>,
) {
    if let Some(m) = metrics {
        m.units_done.incr();
        m.unit_items.observe(range.len() as u64);
    }
    for i in range {
        let _span = match parent {
            Some(p) => p.child("unit", i as u64).enter(),
            None => firmup_telemetry::span!("unit"),
        };
        out.push((i, run(i)));
    }
}

/// Run `n` independent work units over `threads` workers (resolved via
/// [`resolve_threads`]) pulling chunks of `chunk` consecutive unit
/// indices from per-worker deques, stealing from siblings when idle.
///
/// `run(i)` is called exactly once for every `i in 0..n`; the returned
/// vector holds the results in unit order regardless of thread count or
/// scheduling — see the module docs for the determinism invariant.
///
/// A panic inside `run` propagates out of the scope join (poisoning the
/// whole call), exactly like the pre-executor scoped-thread pools;
/// callers that need isolation catch unwinds inside `run` (as
/// [`crate::search::search_corpus_robust`] does).
pub fn run_units<R, F>(n: usize, threads: usize, chunk: usize, run: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let claim = claim_workers(resolve_threads(threads).min(n.max(1)));
    let threads = claim.granted;
    let chunk = chunk.max(1);
    // Captured once on the calling thread: the parent every unit span
    // hangs from, no matter which worker ends up executing it.
    let parent = firmup_telemetry::current_ctx();
    let metrics = ChunkMetrics::resolve();
    if threads <= 1 || n <= 1 {
        let mut out = Vec::with_capacity(n);
        for start in (0..n).step_by(chunk) {
            run_chunk(
                start..(start + chunk).min(n),
                parent.as_ref(),
                metrics.as_ref(),
                &run,
                &mut out,
            );
        }
        return out.into_iter().map(|(_, r)| r).collect();
    }
    // Deal chunks round-robin across per-worker deques up front; no new
    // work is ever enqueued, so "every deque empty" is a safe exit.
    let queues: Vec<Mutex<VecDeque<Range<usize>>>> =
        (0..threads).map(|_| Mutex::new(VecDeque::new())).collect();
    for (c, start) in (0..n).step_by(chunk).enumerate() {
        queues[c % threads]
            .lock()
            .expect("unit queue lock")
            .push_back(start..(start + chunk).min(n));
    }
    let slots: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for w in 0..threads {
            let queues = &queues;
            let slots = &slots;
            let run = &run;
            let parent = parent.as_ref();
            let metrics = metrics.as_ref();
            scope.spawn(move || {
                firmup_telemetry::set_worker(Some(w as u32));
                let mut done: Vec<(usize, R)> = Vec::new();
                loop {
                    // Own work first (front), then steal a victim's tail.
                    // The own-queue pop must be its own statement: a
                    // guard temporary chained into `.or_else(..)` would
                    // stay alive across the whole steal scan, and two
                    // idle workers each holding their own (empty) queue
                    // lock while trying the other's form a lock cycle.
                    let own = queues[w].lock().expect("unit queue lock").pop_front();
                    let job = own.or_else(|| {
                        (1..threads).find_map(|off| {
                            let victim = (w + off) % threads;
                            let stolen = queues[victim].lock().expect("unit queue lock").pop_back();
                            if let Some(range) = &stolen {
                                if let Some(m) = metrics {
                                    m.steals.incr();
                                }
                                firmup_telemetry::trace_instant(
                                    "steal",
                                    &[
                                        ("victim", victim.to_string()),
                                        ("thief", w.to_string()),
                                        ("units", format!("{range:?}")),
                                    ],
                                );
                            }
                            stolen
                        })
                    });
                    let Some(range) = job else { break };
                    run_chunk(range, parent, metrics, run, &mut done);
                }
                let mut slots = slots.lock().expect("unit slots lock");
                for (i, r) in done {
                    slots[i] = Some(r);
                }
            });
        }
    });
    slots
        .into_inner()
        .expect("unit slots lock")
        .into_iter()
        .map(|r| r.expect("every unit slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_are_in_unit_order_for_every_thread_count() {
        let calls = AtomicUsize::new(0);
        for threads in [1, 2, 3, 4, 8] {
            for n in [0, 1, 2, 7, 33] {
                calls.store(0, Ordering::Relaxed);
                let out = run_units(n, threads, 3, |i| {
                    calls.fetch_add(1, Ordering::Relaxed);
                    i * 10
                });
                assert_eq!(out, (0..n).map(|i| i * 10).collect::<Vec<_>>());
                assert_eq!(calls.load(Ordering::Relaxed), n, "run once per unit");
            }
        }
    }

    #[test]
    fn idle_workers_steal_pending_chunks() {
        firmup_telemetry::enable();
        let before = firmup_telemetry::counter("scan.steal_count").get();
        // chunk = 1 deals unit i to queue i % 2: evens to worker 0, odds
        // to worker 1. Worker 0's units sleep, so worker 1 drains its
        // own queue quickly and must steal the pending even units.
        run_units(8, 2, 1, |i| {
            if i % 2 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            i
        });
        assert!(
            firmup_telemetry::counter("scan.steal_count").get() > before,
            "no steal recorded for a skewed workload"
        );
    }

    #[test]
    fn concurrent_stealers_never_deadlock() {
        // Regression: the steal scan once ran while the thief still held
        // its own (empty) queue lock — the guard temporary from
        // `queues[w].lock()` chained straight into `.or_else(..)` lived
        // until the end of the statement — so several simultaneously
        // idle workers could each hold their own queue lock while
        // probing a sibling's and form a lock cycle. Steal-heavy rounds
        // (one unit per worker, one straggler) made that near-certain
        // over a few hundred iterations; a watchdog turns the historic
        // hang into a clean failure.
        use std::sync::mpsc;
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            for round in 0..400usize {
                let n = 12;
                let out = run_units(n, 4, 1, |i| {
                    // Skewed, allocation-bearing work so workers drain
                    // their queues at different rates and re-enter the
                    // steal scan many times per round.
                    let mut acc = 0u64;
                    for k in 0..((i * 7 + round) % 23) * 40 {
                        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k as u64);
                        if k % 16 == 0 {
                            acc ^= format!("{acc:x}").len() as u64;
                        }
                    }
                    (i, acc)
                });
                assert_eq!(out.len(), n);
                assert!(out.iter().enumerate().all(|(i, r)| r.0 == i));
            }
            let _ = tx.send(());
        });
        rx.recv_timeout(std::time::Duration::from_secs(120))
            .expect("steal-heavy rounds deadlocked: lock cycle among idle stealers");
    }

    #[test]
    fn grant_math_caps_but_never_starves() {
        // Uncapped: everything granted.
        assert_eq!(grant(8, 0, 1000), 8);
        // Under cap: full request.
        assert_eq!(grant(3, 8, 2), 3);
        // Partially available: what remains.
        assert_eq!(grant(4, 8, 6), 2);
        // Saturated (or overshot): still one worker, never zero.
        assert_eq!(grant(4, 8, 8), 1);
        assert_eq!(grant(4, 8, 100), 1);
        // want = 1 is always satisfiable.
        assert_eq!(grant(1, 2, 2), 1);
    }

    #[test]
    fn capped_run_units_stays_correct_and_releases_slots() {
        // Functional check under a tight cap: results stay deterministic
        // and complete while several run_units calls race for two slots,
        // and every slot is released afterwards. Counter *values* during
        // the race are scheduling-dependent, so only the end state is
        // asserted exactly.
        set_worker_cap(2);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..5 {
                        let out = run_units(16, 4, 1, |i| i * 3);
                        assert_eq!(out, (0..16).map(|i| i * 3).collect::<Vec<_>>());
                    }
                });
            }
        });
        set_worker_cap(0);
        // Sibling tests may have claimed slots during the capped window;
        // their calls are short, so the counter must drain to zero. With
        // the cap back at 0 no new claim charges anything, so a counter
        // stuck above zero is a leak.
        let gone = (0..1000).any(|_| {
            if WORKERS_IN_USE.load(Ordering::SeqCst) == 0 {
                return true;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
            false
        });
        assert!(gone, "worker slots leaked past their run_units call");
    }

    #[test]
    fn chunk_size_is_never_zero_and_scales_down() {
        assert_eq!(chunk_size(0, 4), 1);
        assert_eq!(chunk_size(3, 4), 1);
        assert!(chunk_size(1000, 4) >= 2);
        assert!(chunk_size(1000, 1) > chunk_size(1000, 8));
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }
}
