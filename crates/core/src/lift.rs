//! From stripped ELF bytes to lifted procedures.
//!
//! This module replaces the paper's IDA Pro + angr.io front end (§3.1):
//! it recovers procedure boundaries and basic blocks from a (possibly
//! stripped) executable, lifts them through `firmup-isa`, fixes the MIPS
//! delay-slot block-boundary problem the paper describes, and runs the
//! corroboration checks the authors added on top of their lifter —
//! CFG connectivity and coverage of unaccounted-for text bytes.
//!
//! Procedure discovery on stripped binaries:
//!
//! 1. seed with the ELF entry point and all symbol addresses (if any);
//! 2. linear-sweep the text section collecting direct call targets;
//! 3. procedure boundaries = next discovered start (functions are laid
//!    out contiguously);
//! 4. report text ranges no procedure covers (dead functions reachable
//!    only indirectly are *not* silently lost — callers can decide).

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

use firmup_ir::{Block, Procedure, ProgramIr};
use firmup_isa::{Arch, Control, DecodeError, LiftCtx};
use firmup_obj::Elf;

/// A fully lifted executable.
#[derive(Debug, Clone)]
pub struct LiftedExecutable {
    /// Architecture.
    pub arch: Arch,
    /// Lifted procedures.
    pub program: ProgramIr,
    /// Lifting diagnostics: undecodable ranges, unreachable blocks,
    /// uncovered text bytes (the §3.1 corroboration output).
    pub warnings: Vec<String>,
}

impl LiftedExecutable {
    /// Total number of procedures.
    pub fn procedure_count(&self) -> usize {
        self.program.procedures.len()
    }
}

/// Lifting failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LiftError {
    /// The ELF machine type is not one of the four supported ISAs.
    UnsupportedMachine {
        /// The `e_machine` value found.
        machine: u16,
    },
    /// The executable has no text section.
    NoText,
    /// The entry region failed to decode at all.
    EntryUndecodable(DecodeError),
}

impl fmt::Display for LiftError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LiftError::UnsupportedMachine { machine } => {
                write!(f, "unsupported e_machine {machine}")
            }
            LiftError::NoText => f.write_str("executable has no .text section"),
            LiftError::EntryUndecodable(e) => write!(f, "entry point undecodable: {e}"),
        }
    }
}

impl std::error::Error for LiftError {}

/// Lifting options.
#[derive(Debug, Clone, Copy, Default)]
pub struct LiftOptions {
    /// Reproduce the naive tool behaviour the paper's §3.1 warns about:
    /// leave a MIPS branch's delay-slot instruction in the *following*
    /// block instead of folding it into the branch's block. Only useful
    /// for measuring the resulting strand discrepancy.
    pub naive_delay_slots: bool,
}

/// Lift an ELF executable with default options.
///
/// # Errors
///
/// Returns [`LiftError`] when the architecture is unknown or the image
/// has no usable text.
pub fn lift_executable(elf: &Elf) -> Result<LiftedExecutable, LiftError> {
    lift_executable_with(elf, LiftOptions::default())
}

/// Lift an ELF executable with explicit [`LiftOptions`].
///
/// # Errors
///
/// Returns [`LiftError`] when the architecture is unknown or the image
/// has no usable text.
pub fn lift_executable_with(
    elf: &Elf,
    options: LiftOptions,
) -> Result<LiftedExecutable, LiftError> {
    let _span = firmup_telemetry::span!("lift");
    let arch = Arch::from_elf_machine(elf.machine).ok_or(LiftError::UnsupportedMachine {
        machine: elf.machine,
    })?;
    let text = elf.text().ok_or(LiftError::NoText)?;
    let base = text.addr;
    let bytes = &text.data;
    let mut warnings = Vec::new();

    // --- Pass 1: discover procedure starts. ---
    let mut starts: BTreeSet<u32> = BTreeSet::new();
    if text.contains(elf.entry) {
        starts.insert(elf.entry);
    }
    for sym in elf.func_symbols() {
        if text.contains(sym.value) {
            starts.insert(sym.value);
        }
    }
    // Linear sweep for direct call targets. On x86 the sweep can lose
    // sync across alignment padding; resynchronize at the next decodable
    // offset and record the gap.
    let mut off = 0usize;
    let mut undecodable = 0usize;
    while off < bytes.len() {
        let addr = base + off as u32;
        match firmup_isa::decode_info(arch, bytes, off, addr) {
            Ok(d) => {
                if let Control::Call(t) = d.ctrl {
                    if text.contains(t) {
                        starts.insert(t);
                    }
                }
                off += d.len as usize;
            }
            Err(_) => {
                undecodable += 1;
                off += if arch.fixed_width() { 4 } else { 1 };
            }
        }
    }
    if undecodable > 0 {
        firmup_telemetry::add("lift.undecodable", undecodable as u64);
        warnings.push(format!(
            "linear sweep: {undecodable} undecodable location(s) (alignment padding or data in text)"
        ));
    }
    if starts.is_empty() {
        starts.insert(base);
    }

    // --- Pass 2: procedure extents = [start, next start). ---
    let start_list: Vec<u32> = starts.iter().copied().collect();
    let mut procedures = Vec::with_capacity(start_list.len());
    let mut scratch = LiftScratch::default();
    for (i, &start) in start_list.iter().enumerate() {
        let end = start_list.get(i + 1).copied().unwrap_or(text.end());
        match lift_procedure(
            arch,
            bytes,
            base,
            start,
            end,
            options,
            &mut warnings,
            &mut scratch,
        ) {
            Ok(proc_) => procedures.push(proc_),
            Err(e) => warnings.push(format!("procedure at {start:#x} dropped: {e}")),
        }
    }

    // Attach symbol names (query executables are not stripped).
    let names: BTreeMap<u32, (String, bool)> = elf
        .func_symbols()
        .iter()
        .map(|s| (s.value, (s.name.clone(), s.global)))
        .collect();
    for p in &mut procedures {
        if let Some((name, _)) = names.get(&p.addr) {
            p.name = Some(name.clone());
        }
    }

    // --- Pass 3 (§3.1 corroboration): coverage + connectivity. ---
    let covered: u32 = procedures
        .iter()
        .map(|p| p.blocks.iter().map(|b| b.len).sum::<u32>())
        .sum();
    let total = bytes.len() as u32;
    if covered * 10 < total * 7 {
        firmup_telemetry::incr("lift.corroboration.low_coverage");
        warnings.push(format!(
            "text coverage is low: {covered}/{total} bytes inside recovered blocks"
        ));
    }
    for p in &procedures {
        let unreachable = p.cfg().unreachable_blocks();
        if !unreachable.is_empty() {
            firmup_telemetry::incr("lift.corroboration.disconnected");
            warnings.push(format!(
                "{}: {} unreachable block(s)",
                p.display_name(),
                unreachable.len()
            ));
        }
    }
    if firmup_telemetry::enabled() {
        firmup_telemetry::add("lift.procedures", procedures.len() as u64);
        firmup_telemetry::add(
            "lift.blocks",
            procedures.iter().map(|p| p.blocks.len() as u64).sum(),
        );
    }

    Ok(LiftedExecutable {
        arch,
        program: ProgramIr { procedures },
        warnings,
    })
}

/// Per-executable scratch buffers reused across [`lift_procedure`]
/// calls. Discovery allocates a work queue, a visited map, and a leader
/// list per procedure; a stripped router image has thousands of
/// procedures, so the buffers are hoisted here and cleared (capacity
/// kept) between calls instead of reallocated.
#[derive(Default)]
struct LiftScratch {
    /// Leader work queue for the discovery walk.
    queue: VecDeque<u32>,
    /// Visited map for the discovery walk, indexed by `pc - start`.
    visited: Vec<bool>,
    /// Sorted leader addresses, snapshot of the `leaders` set.
    leader_list: Vec<u32>,
}

/// Lift one procedure in `[start, end)`: recover its blocks by recursive
/// traversal and lift each. Warnings are appended to the caller's
/// buffer; on `Err` nothing has been appended (the entry instruction is
/// the first one decoded, so failure precedes any warning).
#[allow(clippy::too_many_arguments)]
fn lift_procedure(
    arch: Arch,
    bytes: &[u8],
    base: u32,
    start: u32,
    end: u32,
    options: LiftOptions,
    warnings: &mut Vec<String>,
    scratch: &mut LiftScratch,
) -> Result<Procedure, LiftError> {
    // Block leaders: reachable branch targets within [start, end).
    let mut leaders: BTreeSet<u32> = BTreeSet::new();
    leaders.insert(start);
    let queue = &mut scratch.queue;
    queue.clear();
    queue.push_back(start);
    let visited = &mut scratch.visited;
    visited.clear();
    visited.resize((end - start) as usize, false);
    // First, walk instructions from each leader to find all targets.
    while let Some(lead) = queue.pop_front() {
        let mut pc = lead;
        loop {
            if pc < start || pc >= end || visited[(pc - start) as usize] {
                break;
            }
            let off = (pc - base) as usize;
            let d = match firmup_isa::decode_info(arch, bytes, off, pc) {
                Ok(d) => d,
                Err(e) => {
                    if pc == start {
                        return Err(LiftError::EntryUndecodable(e));
                    }
                    warnings.push(format!("undecodable at {pc:#x}: {e}"));
                    break;
                }
            };
            visited[(pc - start) as usize] = true;
            let slot = if d.delay_slot && !options.naive_delay_slots {
                4
            } else {
                0
            };
            let next = pc + d.len + slot;
            match d.ctrl {
                Control::Fall => {
                    pc = next;
                    continue;
                }
                Control::Jump(t) => {
                    if (start..end).contains(&t) && leaders.insert(t) {
                        queue.push_back(t);
                    }
                    break;
                }
                Control::CondJump(t) => {
                    if (start..end).contains(&t) && leaders.insert(t) {
                        queue.push_back(t);
                    }
                    if leaders.insert(next) {
                        queue.push_back(next);
                    }
                    break;
                }
                Control::Call(_) | Control::IndirectCall => {
                    // Calls end a block (they carry a terminator in the
                    // IR) but control returns to the next instruction.
                    if leaders.insert(next) {
                        queue.push_back(next);
                    }
                    break;
                }
                Control::IndirectJump | Control::Ret => break,
            }
        }
    }
    // Lift each block: [leader, next leader or terminator].
    let leader_list = &mut scratch.leader_list;
    leader_list.clear();
    leader_list.extend(leaders.iter().copied());
    let mut blocks: Vec<Block> = Vec::with_capacity(leader_list.len());
    for &lead in leader_list.iter() {
        if let Some(block) = lift_block(arch, bytes, base, lead, end, &leaders, options, warnings) {
            blocks.push(block);
        }
    }
    blocks.sort_by_key(|b| b.addr);
    blocks.dedup_by_key(|b| b.addr);
    Ok(Procedure {
        addr: start,
        name: None,
        blocks,
    })
}

/// Lift the block starting at `lead`. The MIPS delay-slot fix lives
/// here: the instruction *after* a branch is lifted before the branch's
/// own statements, inside the same block, so that the strand content the
/// paper's §3.1 caveat describes stays with the right block.
#[allow(clippy::too_many_arguments)]
fn lift_block(
    arch: Arch,
    bytes: &[u8],
    base: u32,
    lead: u32,
    proc_end: u32,
    leaders: &BTreeSet<u32>,
    options: LiftOptions,
    warnings: &mut Vec<String>,
) -> Option<Block> {
    let mut ctx = LiftCtx::new();
    let mut asm = Vec::new();
    let mut pc = lead;
    loop {
        if pc >= proc_end {
            // Fell off the end of the procedure: synthesize a fall edge.
            ctx.terminate(firmup_ir::Jump::Fall(pc));
            break;
        }
        if pc != lead && leaders.contains(&pc) {
            ctx.terminate(firmup_ir::Jump::Fall(pc));
            break;
        }
        let off = (pc - base) as usize;
        // Peek the classification first (delay slots change lift order).
        let info = match firmup_isa::decode_info(arch, bytes, off, pc) {
            Ok(d) => d,
            Err(e) => {
                warnings.push(format!("undecodable at {pc:#x}: {e}"));
                if ctx.jump.is_none() {
                    ctx.terminate(firmup_ir::Jump::Fall(pc));
                }
                break;
            }
        };
        if info.delay_slot {
            // Lift the delay-slot instruction first (it executes before
            // the transfer; the compiler guarantees independence), then
            // the branch itself, which sets the terminator. In naive
            // mode (§3.1's broken-tool behaviour) the slot instruction
            // is skipped here and mis-attributed to the fall-through
            // block by the address arithmetic below.
            let slot_off = off + info.len as usize;
            let slot_pc = pc + info.len;
            if slot_pc < proc_end && !options.naive_delay_slots {
                match firmup_isa::lift_into(arch, bytes, slot_off, slot_pc, &mut ctx) {
                    Ok(d) => asm.push(d.asm),
                    Err(e) => warnings.push(format!("delay slot at {slot_pc:#x}: {e}")),
                }
                if ctx.jump.is_some() {
                    // A control transfer in a delay slot is
                    // architecturally undefined and never
                    // compiler-emitted — only corrupted text decodes
                    // this way. Keep the slot's terminator and end the
                    // block instead of terminating it twice.
                    warnings.push(format!("control transfer in delay slot at {slot_pc:#x}"));
                    break;
                }
            }
            match firmup_isa::lift_into(arch, bytes, off, pc, &mut ctx) {
                Ok(d) => asm.push(d.asm),
                Err(e) => {
                    warnings.push(format!("undecodable branch at {pc:#x}: {e}"));
                    break;
                }
            }
            pc = pc + info.len + if options.naive_delay_slots { 0 } else { 4 };
            if ctx.jump.is_some() {
                break;
            }
        } else {
            match firmup_isa::lift_into(arch, bytes, off, pc, &mut ctx) {
                Ok(d) => {
                    asm.push(d.asm);
                    pc += d.len;
                }
                Err(e) => {
                    warnings.push(format!("undecodable at {pc:#x}: {e}"));
                    if ctx.jump.is_none() {
                        ctx.terminate(firmup_ir::Jump::Fall(pc));
                    }
                    break;
                }
            }
            if ctx.jump.is_some() {
                break;
            }
        }
    }
    let jump = ctx.jump.take()?;
    Some(Block {
        addr: lead,
        len: pc - lead,
        stmts: ctx.stmts,
        jump,
        asm,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use firmup_compiler::{compile_source, CompilerOptions, ToolchainProfile};

    // Three mutually-reachable functions, none small enough (or leaf
    // enough) for the O2 inliner to erase — procedure discovery must see
    // all of them even when stripped.
    const SRC: &str = r#"
        fn grind(x: int) -> int {
            var acc = x;
            var i = 0;
            while (i < 3) {
                acc = acc + i * x;
                acc = acc ^ (acc >> 2);
                acc = acc + (acc << 1);
                i = i + 1;
            }
            return acc;
        }
        fn helper(x: int) -> int {
            if (x < 0) { return grind(0 - x); }
            return grind(x);
        }
        fn main(a: int) -> int {
            var s = 0;
            var i = 0;
            while (i < a) {
                s = s + helper(i - 3);
                i = i + 1;
            }
            return s;
        }
    "#;

    #[test]
    fn unsupported_machine_is_a_structured_error() {
        let mut b = firmup_obj::write::ElfBuilder::new(0x1234, 0x1000);
        b.text(0x1000, vec![0u8; 16]);
        let r = lift_executable(&b.build());
        assert!(matches!(
            r,
            Err(LiftError::UnsupportedMachine { machine: 0x1234 })
        ));
    }

    #[test]
    fn missing_text_is_a_structured_error() {
        // EM_MIPS but no executable section at all.
        let b = firmup_obj::write::ElfBuilder::new(8, 0);
        assert!(matches!(
            lift_executable(&b.build()),
            Err(LiftError::NoText)
        ));
    }

    #[test]
    fn garbage_text_never_panics_or_hangs() {
        // Deterministic garbage in .text on every ISA: the lifter must
        // return Ok-with-warnings or a structured Err, never panic or
        // spin. (The test harness itself bounds runtime.)
        let mut state = 0x0bad_f00d_dead_beefu64;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let machines: Vec<u16> = Arch::all().iter().map(|a| a.elf_machine()).collect();
        for &machine in &machines {
            for round in 0..8 {
                let len = 16 + (round * 12);
                let text: Vec<u8> = (0..len).map(|_| next() as u8).collect();
                let mut b = firmup_obj::write::ElfBuilder::new(machine, 0x1000);
                b.text(0x1000, text);
                let _ = lift_executable(&b.build());
            }
        }
    }

    #[test]
    fn branch_in_delay_slot_is_contained_not_a_panic() {
        // Two back-to-back `beq $0,$0,+1`: the second branch sits in the
        // first one's delay slot — architecturally undefined, never
        // compiler-emitted, but reachable from corrupted text (the chaos
        // harness found exactly this via a bit flip). The lifter must
        // keep one terminator and warn, not panic.
        let beq: u32 = (4 << 26) | 1;
        let jr_ra: u32 = (31 << 21) | 8;
        let mut text = Vec::new();
        for w in [beq, beq, 0, jr_ra, 0] {
            text.extend_from_slice(&w.to_le_bytes());
        }
        let mut b = firmup_obj::write::ElfBuilder::new(8, 0x1000);
        b.text(0x1000, text);
        let lifted = lift_executable(&b.build()).expect("structured result");
        assert!(
            lifted.warnings.iter().any(|w| w.contains("delay slot")),
            "expected a delay-slot warning: {:?}",
            lifted.warnings
        );
    }

    #[test]
    fn lifts_all_architectures() {
        for arch in Arch::all() {
            let elf = compile_source(SRC, arch, &CompilerOptions::default()).unwrap();
            let lifted = lift_executable(&elf).unwrap();
            assert_eq!(lifted.arch, arch);
            assert_eq!(lifted.procedure_count(), 3, "{arch}");
            let main = lifted.program.procedure_named("main").unwrap();
            assert!(
                main.blocks.len() >= 3,
                "{arch}: main should have a loop CFG"
            );
            assert!(
                main.cfg().unreachable_blocks().is_empty(),
                "{arch}: connectivity check failed"
            );
        }
    }

    #[test]
    fn stripped_binaries_discover_procedures_from_calls() {
        for arch in Arch::all() {
            let mut elf = compile_source(SRC, arch, &CompilerOptions::default()).unwrap();
            elf.strip(false);
            let lifted = lift_executable(&elf).unwrap();
            assert_eq!(
                lifted.procedure_count(),
                3,
                "{arch}: helper and grind must be found via their call sites"
            );
            assert!(lifted.program.procedures.iter().all(|p| p.name.is_none()));
        }
    }

    #[test]
    fn call_graph_recovered() {
        for arch in Arch::all() {
            let elf = compile_source(SRC, arch, &CompilerOptions::default()).unwrap();
            let lifted = lift_executable(&elf).unwrap();
            let cg = lifted.program.call_graph();
            let main = lifted.program.procedure_named("main").unwrap();
            let helper = lifted.program.procedure_named("helper").unwrap();
            let grind = lifted.program.procedure_named("grind").unwrap();
            assert_eq!(cg.callees(main.addr), &[helper.addr], "{arch}");
            assert_eq!(cg.callees(helper.addr), &[grind.addr], "{arch}");
            assert_eq!(cg.callers(helper.addr), vec![main.addr], "{arch}");
        }
    }

    #[test]
    fn mips_delay_slots_fold_into_branch_block() {
        // With delay-slot filling on, the delay instruction's statements
        // must appear in the same block as the branch, before the exit.
        let elf = compile_source(SRC, Arch::Mips32, &CompilerOptions::default()).unwrap();
        let lifted = lift_executable(&elf).unwrap();
        let main = lifted.program.procedure_named("main").unwrap();
        // Every block with a conditional exit must have a terminator —
        // i.e., delay slots never leak into the next block as separate
        // leaders (block addresses are multiple of 4 and disjoint).
        let mut covered = std::collections::BTreeSet::new();
        for b in &main.blocks {
            for a in (b.addr..b.end()).step_by(4) {
                assert!(covered.insert(a), "overlapping blocks at {a:#x}");
            }
        }
    }

    #[test]
    fn unsupported_machine_rejected() {
        let mut elf = compile_source(SRC, Arch::X86, &CompilerOptions::default()).unwrap();
        elf.machine = 62; // EM_X86_64
        assert!(matches!(
            lift_executable(&elf),
            Err(LiftError::UnsupportedMachine { machine: 62 })
        ));
    }

    #[test]
    fn no_text_rejected() {
        let elf = firmup_obj::Elf::new(8, 0);
        assert!(matches!(lift_executable(&elf), Err(LiftError::NoText)));
    }

    #[test]
    fn o0_and_o2_have_same_procedure_count() {
        for arch in Arch::all() {
            let o2 = compile_source(SRC, arch, &CompilerOptions::default()).unwrap();
            let o0 = compile_source(
                SRC,
                arch,
                &CompilerOptions {
                    profile: ToolchainProfile::vendor_debug(),
                    layout: Default::default(),
                },
            )
            .unwrap();
            assert_eq!(
                lift_executable(&o2).unwrap().procedure_count(),
                lift_executable(&o0).unwrap().procedure_count(),
                "{arch}"
            );
        }
    }
}
