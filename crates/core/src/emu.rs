//! A whole-program emulator over the lifted IR.
//!
//! Not part of the FirmUp search pipeline itself — the paper's approach
//! is purely static — but essential infrastructure for *validating* the
//! reproduction: the same MinC program compiled for all four
//! architectures under every toolchain profile must compute the same
//! results when executed. This differential check is what lets the rest
//! of the pipeline trust the compiler + lifter substrate.

use std::fmt;

use firmup_ir::{Machine, RegId, Width};
use firmup_isa::{Arch, LiftCtx};
use firmup_obj::Elf;

/// Sentinel return address that terminates emulation of the top frame.
const EXIT_SENTINEL: u32 = 0xdead_0000;
/// Initial stack pointer.
const STACK_TOP: u32 = 0x7fff_f000;

/// Emulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmuError {
    /// PC left every section.
    WildPc {
        /// The offending program counter.
        pc: u32,
    },
    /// An instruction failed to decode.
    Decode(String),
    /// The step budget was exhausted (probably a loop bug).
    OutOfFuel,
    /// Expression evaluation failed (lifter bug).
    Eval(String),
    /// The executable cannot be emulated (no text / unknown arch).
    BadImage(String),
}

impl fmt::Display for EmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmuError::WildPc { pc } => write!(f, "wild program counter {pc:#x}"),
            EmuError::Decode(e) => write!(f, "decode: {e}"),
            EmuError::OutOfFuel => f.write_str("out of fuel"),
            EmuError::Eval(e) => write!(f, "eval: {e}"),
            EmuError::BadImage(e) => write!(f, "bad image: {e}"),
        }
    }
}

impl std::error::Error for EmuError {}

/// Run `function(args…)` inside an ELF executable and return its result.
///
/// The callee must follow the platform calling convention the
/// `firmup-compiler` back ends emit (register args on the RISC targets,
/// cdecl on x86).
///
/// # Errors
///
/// Returns [`EmuError`] on decode failures, wild control flow, or fuel
/// exhaustion (default one million instructions).
pub fn call_function(elf: &Elf, function: &str, args: &[u32]) -> Result<u32, EmuError> {
    let sym = elf
        .symbols
        .iter()
        .find(|s| s.name == function)
        .ok_or_else(|| EmuError::BadImage(format!("no symbol `{function}`")))?;
    call_address(elf, sym.value, args)
}

/// Like [`call_function`] but with an explicit entry address (usable on
/// stripped binaries).
///
/// # Errors
///
/// See [`call_function`].
pub fn call_address(elf: &Elf, entry: u32, args: &[u32]) -> Result<u32, EmuError> {
    let arch = Arch::from_elf_machine(elf.machine)
        .ok_or_else(|| EmuError::BadImage(format!("unknown machine {}", elf.machine)))?;
    let text = elf
        .text()
        .ok_or_else(|| EmuError::BadImage("no .text".into()))?;

    let mut m = Machine::new();
    // Load all sections into memory.
    for s in &elf.sections {
        for (i, &b) in s.data.iter().enumerate() {
            m.store(s.addr + i as u32, u32::from(b), Width::W8);
        }
    }
    let sp = firmup_isa::stack_pointer(arch);
    match arch {
        Arch::Mips32 | Arch::Arm32 => {
            m.set_reg(sp, STACK_TOP);
            let arg_base: u16 = match arch {
                Arch::Mips32 => 4, // $a0
                Arch::Arm32 => 0,  // r0
                _ => unreachable!(),
            };
            for (i, &a) in args.iter().take(4).enumerate() {
                m.set_reg(RegId(arg_base + i as u16), a);
            }
            let link: RegId = match arch {
                Arch::Mips32 => RegId(31),
                Arch::Arm32 => RegId(14),
                _ => unreachable!(),
            };
            m.set_reg(link, EXIT_SENTINEL);
        }
        Arch::Ppc32 => {
            m.set_reg(sp, STACK_TOP);
            for (i, &a) in args.iter().take(4).enumerate() {
                m.set_reg(RegId(3 + i as u16), a);
            }
            m.set_reg(firmup_isa::ppc::LR, EXIT_SENTINEL);
        }
        Arch::X86 => {
            // cdecl: args pushed right-to-left, then the return address.
            let mut esp = STACK_TOP;
            for &a in args.iter().rev() {
                esp -= 4;
                m.store(esp, a, Width::W32);
            }
            esp -= 4;
            m.store(esp, EXIT_SENTINEL, Width::W32);
            m.set_reg(sp, esp);
        }
    }

    let mut pc = entry;
    let mut fuel: u64 = 1_000_000;
    let bytes = &text.data;
    let base = text.addr;
    loop {
        if pc == EXIT_SENTINEL {
            let ret: RegId = match arch {
                Arch::Mips32 => RegId(2), // $v0
                Arch::Arm32 => RegId(0),
                Arch::Ppc32 => RegId(3),
                Arch::X86 => RegId(0), // eax
            };
            return Ok(m.reg(ret));
        }
        if !text.contains(pc) {
            return Err(EmuError::WildPc { pc });
        }
        if fuel == 0 {
            return Err(EmuError::OutOfFuel);
        }
        fuel -= 1;
        let off = (pc - base) as usize;
        // x86 return target must be read before Ret's ESP adjustment.
        let x86_ret_target = if arch == Arch::X86 {
            Some(m.load(m.reg(sp), Width::W32))
        } else {
            None
        };
        let mut ctx = LiftCtx::new();
        let d = firmup_isa::lift_into(arch, bytes, off, pc, &mut ctx)
            .map_err(|e| EmuError::Decode(e.to_string()))?;
        // MIPS delay slot: executes before the transfer.
        if d.delay_slot {
            let slot_off = off + d.len as usize;
            let slot_pc = pc + d.len;
            if slot_pc < text.end() {
                let mut slot_ctx = LiftCtx::new();
                firmup_isa::lift_into(arch, bytes, slot_off, slot_pc, &mut slot_ctx)
                    .map_err(|e| EmuError::Decode(e.to_string()))?;
                run_stmts(&mut m, &slot_ctx.stmts)?;
            }
        }
        m.taken_exits.clear();
        run_stmts(&mut m, &ctx.stmts)?;
        // Resolve the next PC.
        if let Some(&t) = m.taken_exits.first() {
            pc = t;
            continue;
        }
        let jump = ctx.jump.unwrap_or(firmup_ir::Jump::Fall(
            pc + d.len + if d.delay_slot { 4 } else { 0 },
        ));
        pc = match jump {
            firmup_ir::Jump::Fall(n) | firmup_ir::Jump::Direct(n) => n,
            firmup_ir::Jump::Indirect(e) => {
                m.eval(&e).map_err(|e| EmuError::Eval(e.to_string()))?
            }
            firmup_ir::Jump::Call { target, .. } => match target {
                firmup_ir::CallTarget::Direct(t) => t,
                firmup_ir::CallTarget::Indirect(e) => {
                    m.eval(&e).map_err(|e| EmuError::Eval(e.to_string()))?
                }
            },
            firmup_ir::Jump::Ret => match arch {
                Arch::Mips32 => m.reg(RegId(31)),
                Arch::Arm32 => m.reg(RegId(14)),
                Arch::Ppc32 => m.reg(firmup_isa::ppc::LR),
                Arch::X86 => x86_ret_target.expect("computed above"),
            },
        };
    }
}

fn run_stmts(m: &mut Machine, stmts: &[firmup_ir::Stmt]) -> Result<(), EmuError> {
    for s in stmts {
        // Statements after a taken exit do not execute.
        if !m.taken_exits.is_empty() {
            break;
        }
        m.step(s).map_err(|e| EmuError::Eval(e.to_string()))?;
    }
    Ok(())
}

/// Read back a global byte array after execution — used by tests to
/// observe side effects.
pub fn read_memory(elf: &Elf, m: &Machine, addr: u32, len: u32) -> Vec<u8> {
    let _ = elf;
    (0..len)
        .map(|i| m.load(addr + i, Width::W8) as u8)
        .collect()
}

/// Snapshot of registers/memory access for advanced tests.
pub fn fresh_machine_with_image(elf: &Elf) -> Machine {
    let mut m = Machine::new();
    for s in &elf.sections {
        for (i, &b) in s.data.iter().enumerate() {
            m.store(s.addr + i as u32, u32::from(b), Width::W8);
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use firmup_compiler::{compile_source, CompilerOptions, ToolchainProfile};

    fn run_everywhere(src: &str, func: &str, args: &[u32]) -> Vec<u32> {
        let mut results = Vec::new();
        for arch in Arch::all() {
            for profile in ToolchainProfile::all() {
                let options = CompilerOptions {
                    profile: profile.clone(),
                    layout: Default::default(),
                };
                let elf = compile_source(src, arch, &options)
                    .unwrap_or_else(|e| panic!("{arch}/{}: {e}", profile.name));
                let r = call_function(&elf, func, args)
                    .unwrap_or_else(|e| panic!("{arch}/{}: {e}", profile.name));
                results.push(r);
            }
        }
        results
    }

    fn assert_all_equal(src: &str, func: &str, args: &[u32], expect: u32) {
        let rs = run_everywhere(src, func, args);
        for (i, r) in rs.iter().enumerate() {
            assert_eq!(*r, expect, "configuration {i} diverged for {func}{args:?}");
        }
    }

    #[test]
    fn arithmetic_is_uniform() {
        let src = "pub fn f(a: int, b: int) -> int { return (a + b * 3 - 2) ^ (a << 2) | (b >> 1) & 15; }";
        assert_all_equal(src, "f", &[7, 9], {
            let (a, b) = (7i32, 9i32);
            ((a + b * 3 - 2) ^ (a << 2) | (b >> 1) & 15) as u32
        });
    }

    #[test]
    fn signed_comparisons_are_uniform() {
        let src = "pub fn f(a: int, b: int) -> int { if (a < b) { return 1; } if (a > b) { return 2; } return 3; }";
        assert_all_equal(src, "f", &[(-5i32) as u32, 3], 1);
        assert_all_equal(src, "f", &[3, (-5i32) as u32], 2);
        assert_all_equal(src, "f", &[9, 9], 3);
    }

    #[test]
    fn loops_and_calls_are_uniform() {
        let src = r#"
            fn square(x: int) -> int { return x * x; }
            pub fn sum_squares(n: int) -> int {
                var s = 0;
                var i = 1;
                while (i <= n) { s = s + square(i); i = i + 1; }
                return s;
            }
        "#;
        assert_all_equal(src, "sum_squares", &[5], 55);
        assert_all_equal(src, "sum_squares", &[0], 0);
    }

    #[test]
    fn globals_and_strings_are_uniform() {
        let src = r#"
            global buf: [byte; 16];
            global msg = "AB";
            pub fn f(i: int) -> int {
                buf[i] = 65 + i;
                var p = &msg;
                return buf[i] * 256 + msg[0];
            }
        "#;
        assert_all_equal(src, "f", &[3], (65 + 3) * 256 + 65);
    }

    #[test]
    fn short_circuit_is_uniform() {
        // g() must only run when a != 0.
        let src = r#"
            global counter: [int; 1];
            fn g() -> int { counter[0] = counter[0] + 1; return 1; }
            pub fn f(a: int) -> int {
                if (a && g()) { return counter[0]; }
                return counter[0] + 100;
            }
        "#;
        assert_all_equal(src, "f", &[1], 1);
        assert_all_equal(src, "f", &[0], 100);
    }

    #[test]
    fn recursion_works() {
        let src = "pub fn fib(n: int) -> int { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }";
        assert_all_equal(src, "fib", &[10], 55);
    }

    #[test]
    fn negative_and_bitnot() {
        let src = "pub fn f(a: int) -> int { return -a + ~a + !a; }";
        let a = 12i32;
        assert_all_equal(src, "f", &[a as u32], ((-a) + !a) as u32);
        assert_all_equal(src, "f", &[0], 0); // 0 + !0 + 1 == 0
    }

    #[test]
    fn pointer_builtins_are_uniform() {
        // A strlen-like loop through peek8/poke8 over a buffer address.
        let src = r#"
            global buf = "hello";
            fn str_len(p: int) -> int {
                var n = 0;
                while (peek8(p + n) != 0) { n = n + 1; }
                return n;
            }
            pub fn f() -> int {
                var p = &buf;
                poke8(p + 1, 69);
                return str_len(p) * 256 + peek8(p + 1);
            }
        "#;
        assert_all_equal(src, "f", &[], 5 * 256 + 69);
    }

    #[test]
    fn word_pointer_builtins_are_uniform() {
        let src = r#"
            global cells: [int; 4];
            pub fn f(v: int) -> int {
                var p = &cells;
                poke(p + 8, v * 3);
                return peek(p + 8) + peek(p);
            }
        "#;
        assert_all_equal(src, "f", &[7], 21);
    }

    #[test]
    fn out_of_fuel_detected() {
        let src = "pub fn spin() -> int { while (1) { } return 0; }";
        let elf = compile_source(src, Arch::Mips32, &CompilerOptions::default()).unwrap();
        assert_eq!(call_function(&elf, "spin", &[]), Err(EmuError::OutOfFuel));
    }

    #[test]
    fn missing_symbol_is_error() {
        let elf = compile_source(
            "fn main() -> int { return 0; }",
            Arch::X86,
            &CompilerOptions::default(),
        )
        .unwrap();
        assert!(matches!(
            call_function(&elf, "nope", &[]),
            Err(EmuError::BadImage(_))
        ));
    }
}
