//! FirmUp: precise static detection of common vulnerabilities in
//! stripped firmware — the core similarity engine.
//!
//! This crate implements the paper's contribution end to end:
//!
//! 1. [`lift`] — procedure/CFG recovery and lifting of stripped ELF
//!    executables (§3.1, replacing IDA Pro + angr/VEX);
//! 2. [`strand`] — Algorithm 1: decomposing basic blocks into data-flow
//!    strands (§3.2);
//! 3. [`canon`] — §3.2.1: offset elimination, register folding,
//!    optimizer-based canonicalization and name normalization;
//! 4. [`mod@sim`] — `Sim(q,t) = |Strands(q) ∩ Strands(t)|` over hashed
//!    canonical strands (§3.3);
//! 5. [`game`] — Algorithm 2: the back-and-forth game that lifts
//!    pairwise similarity to executable-level partial matching (§4);
//! 6. [`search`] — the corpus-search outer loop with parallel targets;
//! 7. [`persist`] — the on-disk strand-hash corpus index (`firmup
//!    index` / `firmup scan --index`) with candidate prefiltering.
//!
//! The [`emu`] module is reproduction infrastructure (differential
//! validation of the compiler/lifter substrate), not part of FirmUp
//! itself — the paper's approach is purely static.
//!
//! # Example: find a procedure across toolchains
//!
//! ```
//! use firmup_compiler::{compile_source, CompilerOptions, ToolchainProfile};
//! use firmup_core::{canon::CanonConfig, search};
//! use firmup_isa::Arch;
//!
//! let src = r#"
//!     fn helper(x: int) -> int {
//!         var acc = 0;
//!         var i = 0;
//!         while (i < x) { acc = acc + i * 31; i = i + 1; }
//!         return acc;
//!     }
//!     fn main(a: int) -> int { return helper(a + 2); }
//! "#;
//! // "Query": default (gcc-like) build with symbols.
//! let query_elf = compile_source(src, Arch::Mips32, &CompilerOptions::default())?;
//! // "Target": vendor build, stripped.
//! let mut target_elf = compile_source(
//!     src,
//!     Arch::Mips32,
//!     &CompilerOptions { profile: ToolchainProfile::vendor_size(), ..Default::default() },
//! )?;
//! target_elf.strip(false);
//!
//! let config = CanonConfig::default();
//! let query = firmup_core::sim::index_elf(&query_elf, "query", &config)?;
//! let target = firmup_core::sim::index_elf(&target_elf, "target", &config)?;
//! let qv = query.find_named("helper").expect("query keeps symbols");
//! let result = search::search_target(&query, qv, &target, &search::SearchConfig::default());
//! assert!(result.found());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod canon;
pub mod emu;
pub mod error;
pub mod executor;
pub mod game;
pub mod intern;
pub mod lift;
pub mod merge;
pub mod persist;
pub mod search;
pub mod sim;
pub mod strand;

pub use arena::{StrandArena, StrandView};
pub use canon::{AddrSpace, CanonConfig, CanonicalStrand};
pub use error::{isolate, FaultCtx, FirmUpError};
pub use executor::{resolve_threads, run_units};
pub use game::{GameConfig, GameEnd, GameResult, GameStats};
pub use intern::{InternedStrands, StrandId, StrandInterner};
pub use lift::{lift_executable, LiftedExecutable};
pub use persist::{CorpusIndex, RepAt};
pub use search::{
    merge_outcomes, prefilter_candidates, scan_units, search_corpus, search_corpus_robust,
    search_target, BudgetReason, Explain, ScanBudget, ScanReport, ScanStats, ScanUnit,
    SearchConfig, TargetOutcome, TargetResult,
};
pub use sim::{index_elf, sim, ExecutableRep, GlobalContext, ProcedureRep, StrandPostings};
pub use strand::{decompose, Strand};
