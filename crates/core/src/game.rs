//! Binary similarity as a back-and-forth game — §4, Algorithm 2.
//!
//! Pairwise similarity alone picks a *local* maximum: the target
//! procedure with the most shared strands, which large unrelated
//! procedures routinely win (Fig. 2/4 of the paper). The game lifts the
//! decision to the executable level: a *player* proposes a match for the
//! query; a *rival* tries to exhibit a query-side procedure that fits the
//! proposed target better; the player must then either re-justify or
//! re-match. The algorithm implements the player's winning strategy,
//! producing a **partial** matching that must contain the query but need
//! not cover either executable — robust to firmware customization
//! (missing/extra procedures) where full-graph matching breaks.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;

use crate::sim::{sim, ExecutableRep};

/// Which executable a work-stack item belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// The query executable `Q`.
    Query,
    /// The target executable `T`.
    Target,
}

/// A procedure reference on the game's work stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Item {
    /// Which executable.
    pub side: Side,
    /// Procedure index within that executable.
    pub index: usize,
}

/// Why the game ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GameEnd {
    /// A match for the query procedure was found.
    QueryMatched,
    /// The stack reached a fixed state: no further moves exist, the
    /// matching cannot be completed.
    FixedPoint,
    /// A resource heuristic fired (too many matches / stack too deep /
    /// too many steps) — §4.2's last ending condition.
    LimitExceeded,
    /// The wall-clock [`GameConfig::deadline`] passed before the game
    /// settled; the partial matching built so far is still reported.
    DeadlineExceeded,
}

impl GameEnd {
    /// Stable snake_case label — the suffix of the `game.ended.*`
    /// telemetry counters and the value `--explain` reports.
    pub fn label(self) -> &'static str {
        match self {
            GameEnd::QueryMatched => "query_matched",
            GameEnd::FixedPoint => "fixed_point",
            GameEnd::LimitExceeded => "limit_exceeded",
            GameEnd::DeadlineExceeded => "deadline_exceeded",
        }
    }

    /// All endings, in [`GameStats`] tally order.
    const ALL: [GameEnd; 4] = [
        GameEnd::QueryMatched,
        GameEnd::FixedPoint,
        GameEnd::LimitExceeded,
        GameEnd::DeadlineExceeded,
    ];

    fn tally_index(self) -> usize {
        match self {
            GameEnd::QueryMatched => 0,
            GameEnd::FixedPoint => 1,
            GameEnd::LimitExceeded => 2,
            GameEnd::DeadlineExceeded => 3,
        }
    }
}

/// Per-scan accumulator for game-phase telemetry. [`play`] resolves
/// `game.played` / `game.steps` / `game.ended.*` in the registry once
/// per game — a lock, a `String` key, and (for `ended`) a `format!`
/// allocation per target. A scan passes one `GameStats` to
/// [`play_recorded`] instead; everything accumulates in plain fields
/// and [`flush`](GameStats::flush) merges into the registry once at
/// scan end, producing identical counter totals.
#[derive(Debug, Default)]
pub struct GameStats {
    played: u64,
    steps: firmup_telemetry::LocalHistogram,
    ended: [u64; 4],
}

impl GameStats {
    /// An empty accumulator.
    pub fn new() -> GameStats {
        GameStats::default()
    }

    /// Games accumulated since the last flush.
    pub fn played(&self) -> u64 {
        self.played
    }

    /// Fold another accumulator into this one.
    pub fn merge(&mut self, other: &GameStats) {
        self.played += other.played;
        self.steps.merge(&other.steps);
        for (t, o) in self.ended.iter_mut().zip(&other.ended) {
            *t += o;
        }
    }

    fn record(&mut self, ended: GameEnd, steps: usize) {
        self.played += 1;
        self.steps.record(steps as u64);
        self.ended[ended.tally_index()] += 1;
    }

    /// Merge the tallies into the global registry (a bounded handful of
    /// name resolutions, independent of how many games were played) and
    /// clear the accumulator.
    pub fn flush(&mut self) {
        if self.played > 0 {
            firmup_telemetry::add("game.played", self.played);
            for end in GameEnd::ALL {
                let n = self.ended[end.tally_index()];
                if n > 0 {
                    firmup_telemetry::add(&format!("game.ended.{}", end.label()), n);
                }
            }
        }
        self.steps.flush_into("game.steps");
        self.played = 0;
        self.ended = [0; 4];
    }
}

/// Tunable limits (§4.2: "as a heuristic, the game can also be stopped
/// if too many matches were found or ToMatch contains too many
/// procedures").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GameConfig {
    /// Minimum shared strands for a candidate to count as a match at
    /// all.
    pub min_sim: usize,
    /// Stop after this many player/rival iterations.
    pub max_steps: usize,
    /// Stop when the partial matching grows past this size.
    pub max_matches: usize,
    /// Stop when the work stack grows past this size.
    pub max_stack: usize,
    /// Wall-clock deadline: stop with [`GameEnd::DeadlineExceeded`] once
    /// `Instant::now()` passes it. `None` (the default) means untimed.
    /// Scan budgets ([`crate::search::ScanBudget`]) set this per game.
    pub deadline: Option<std::time::Instant>,
}

impl Default for GameConfig {
    fn default() -> Self {
        GameConfig {
            min_sim: 1,
            max_steps: 256,
            max_matches: 64,
            max_stack: 64,
            deadline: None,
        }
    }
}

/// One retraceable step, for rendering game courses like the paper's
/// Table 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStep {
    /// The procedure being matched this iteration.
    pub m: Item,
    /// The best match found for `m` on the other side.
    pub forward: usize,
    /// The best match found for `forward` back on `m`'s side.
    pub back: usize,
    /// `Sim` of the forward pair.
    pub sim_forward: usize,
    /// Whether the pair was accepted into the matching.
    pub accepted: bool,
}

/// Result of one game.
#[derive(Debug, Clone)]
pub struct GameResult {
    /// The target procedure matched to the query, with its `Sim` score
    /// (`None` when the game failed).
    pub query_match: Option<(usize, usize)>,
    /// The whole partial matching: `(query index, target index, sim)`.
    /// Populated by [`play`]; empty from [`play_recorded`], whose one
    /// caller (the corpus-scan hot path) reads only `query_match` —
    /// assembling the full matching would allocate a buffer per game
    /// just to drop it.
    pub matches: Vec<(usize, usize, usize)>,
    /// Iterations performed (the paper's Fig. 9 metric).
    pub steps: usize,
    /// Why the game stopped.
    pub ended: GameEnd,
    /// Full trace for game-course rendering. Recorded by [`play`];
    /// empty from [`play_recorded`], whose one caller (the corpus-scan
    /// hot path) discards it — recording would grow a heap buffer per
    /// game just to drop it.
    pub trace: Vec<TraceStep>,
}

impl fmt::Display for GameResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "game: {:?} after {} step(s), {} pair(s)",
            self.ended,
            self.steps,
            self.matches.len()
        )
    }
}

/// Play the similarity game for `query.procedures[qv]` against `target`.
///
/// # Panics
///
/// Panics if `qv` is out of bounds.
pub fn play(
    query: &ExecutableRep,
    qv: usize,
    target: &ExecutableRep,
    config: &GameConfig,
) -> GameResult {
    let mut trace = Vec::new();
    let mut result = play_with(query, qv, target, config, None, Some(&mut trace), true);
    result.trace = trace;
    result
}

/// [`play`] with scan-local telemetry: when `stats` is given the
/// per-game counters accumulate there (zero registry traffic); when
/// `None` they are recorded directly, the legacy per-game behaviour.
/// Neither the game trace nor the full `matches` vector is assembled
/// (both come back empty): this is the corpus-scan entry point, its
/// one caller reads only `query_match`/`steps`/`ended` — use [`play`]
/// when rendering game courses or inspecting the whole matching.
///
/// # Panics
///
/// Panics if `qv` is out of bounds.
pub fn play_recorded(
    query: &ExecutableRep,
    qv: usize,
    target: &ExecutableRep,
    config: &GameConfig,
    stats: Option<&mut GameStats>,
) -> GameResult {
    play_with(query, qv, target, config, stats, None, false)
}

fn play_with(
    query: &ExecutableRep,
    qv: usize,
    target: &ExecutableRep,
    config: &GameConfig,
    stats: Option<&mut GameStats>,
    trace: Option<&mut Vec<TraceStep>>,
    want_matches: bool,
) -> GameResult {
    assert!(qv < query.procedures.len(), "query index out of range");
    let _span = firmup_telemetry::span!("game");
    let result = PLAY_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => play_inner(query, qv, target, config, &mut scratch, trace, want_matches),
        // Re-entrant play on this thread (e.g. through a test harness
        // hook): fall back to fresh scratch rather than panicking.
        Err(_) => play_inner(
            query,
            qv,
            target,
            config,
            &mut PlayScratch::default(),
            trace,
            want_matches,
        ),
    });
    match stats {
        Some(st) => st.record(result.ended, result.steps),
        None => {
            if firmup_telemetry::enabled() {
                // Fig. 9's metric: how many back-and-forth iterations
                // games need.
                firmup_telemetry::incr("game.played");
                firmup_telemetry::observe("game.steps", result.steps as u64);
                firmup_telemetry::incr(&format!("game.ended.{}", result.ended.label()));
            }
        }
    }
    result
}

/// Cell cap for the dense sim memo (32 MiB of `(u32, u32)` cells).
/// Above it — one pathological pair of huge executables — the memo
/// falls back to a hash map instead of pinning that much scratch per
/// worker thread.
const DENSE_CELL_LIMIT: usize = 1 << 22;

/// Sentinel for "unmatched" in the dense matched arrays.
const UNMATCHED: u32 = u32::MAX;

/// Reusable per-thread game scratch: the pairwise-sim memo and both
/// matched arrays, capacity-retaining across games so a corpus scan
/// allocates nothing per target once warm. The memo is epoch-tagged —
/// starting a game bumps the epoch instead of clearing the table.
#[derive(Debug, Default)]
struct PlayScratch {
    /// Dense `(epoch, sim)` memo, row-major `query × target`.
    sims: Vec<(u32, u32)>,
    /// Current memo epoch; cells with a different tag are vacant.
    epoch: u32,
    /// `q → t` (`UNMATCHED` when free).
    matched_q: Vec<u32>,
    /// `t → q` (`UNMATCHED` when free).
    matched_t: Vec<u32>,
    /// The ToMatch work stack, capacity-retaining across games.
    to_match: Vec<Item>,
}

thread_local! {
    static PLAY_SCRATCH: RefCell<PlayScratch> = RefCell::new(PlayScratch::default());
}

fn play_inner(
    query: &ExecutableRep,
    qv: usize,
    target: &ExecutableRep,
    config: &GameConfig,
    scratch: &mut PlayScratch,
    mut trace: Option<&mut Vec<TraceStep>>,
    want_matches: bool,
) -> GameResult {
    let nq = query.procedures.len();
    let nt = target.procedures.len();
    let cells = nq.saturating_mul(nt);
    let dense = cells <= DENSE_CELL_LIMIT;
    scratch.epoch = scratch.epoch.wrapping_add(1);
    if scratch.epoch == 0 {
        // Epoch wrap: old tags become ambiguous, so clear once per 2^32
        // games and restart.
        scratch.sims.fill((0, 0));
        scratch.epoch = 1;
    }
    let PlayScratch {
        sims,
        epoch,
        matched_q,
        matched_t,
        to_match,
    } = scratch;
    let ep = *epoch;
    if dense && sims.len() < cells {
        sims.resize(cells, (0, 0));
    }
    let mut map_memo: HashMap<(usize, usize), usize> = HashMap::new();
    let mut sim_of = |qi: usize, ti: usize| -> usize {
        if dense {
            let cell = &mut sims[qi * nt + ti];
            if cell.0 == ep {
                cell.1 as usize
            } else {
                let v = sim(&query.procedures[qi], &target.procedures[ti]);
                *cell = (ep, v as u32);
                v
            }
        } else {
            *map_memo
                .entry((qi, ti))
                .or_insert_with(|| sim(&query.procedures[qi], &target.procedures[ti]))
        }
    };

    // Matches, per side.
    matched_q.clear();
    matched_q.resize(nq, UNMATCHED);
    matched_t.clear();
    matched_t.resize(nt, UNMATCHED);
    let mut matched_count = 0usize;
    to_match.clear();
    to_match.push(Item {
        side: Side::Query,
        index: qv,
    });
    let mut steps = 0usize;
    let ended;

    loop {
        // Ending conditions (GameDidntEnd()).
        if matched_q[qv] != UNMATCHED {
            ended = GameEnd::QueryMatched;
            break;
        }
        if to_match.is_empty() {
            ended = GameEnd::FixedPoint;
            break;
        }
        if steps >= config.max_steps
            || matched_count >= config.max_matches
            || to_match.len() >= config.max_stack
        {
            ended = GameEnd::LimitExceeded;
            break;
        }
        if config
            .deadline
            .is_some_and(|d| std::time::Instant::now() >= d)
        {
            ended = GameEnd::DeadlineExceeded;
            break;
        }
        steps += 1;
        let m = *to_match.last().expect("checked non-empty");

        // Forward: best unmatched candidate on the other side.
        let forward = match m.side {
            Side::Query => best_match(
                |ti| matched_t[ti] == UNMATCHED,
                nt,
                |ti| sim_of(m.index, ti),
                config.min_sim,
            ),
            Side::Target => best_match(
                |qi| matched_q[qi] == UNMATCHED,
                nq,
                |qi| sim_of(qi, m.index),
                config.min_sim,
            ),
        };
        let Some((fwd, fwd_sim)) = forward else {
            // No candidate at all for the top of the stack: fixed state.
            ended = GameEnd::FixedPoint;
            break;
        };
        // Back: best unmatched candidate for `forward` on M's side.
        let back = match m.side {
            Side::Query => best_match(
                |qi| matched_q[qi] == UNMATCHED,
                nq,
                |qi| sim_of(qi, fwd),
                config.min_sim,
            ),
            Side::Target => best_match(
                |ti| matched_t[ti] == UNMATCHED,
                nt,
                |ti| sim_of(fwd, ti),
                config.min_sim,
            ),
        };
        let Some((back_idx, _)) = back else {
            ended = GameEnd::FixedPoint;
            break;
        };

        let accepted = back_idx == m.index;
        if let Some(t) = trace.as_deref_mut() {
            t.push(TraceStep {
                m,
                forward: fwd,
                back: back_idx,
                sim_forward: fwd_sim,
                accepted,
            });
        }
        if accepted {
            // M ↔ Forward joins the matching.
            let (qi, ti) = match m.side {
                Side::Query => (m.index, fwd),
                Side::Target => (fwd, m.index),
            };
            matched_q[qi] = ti as u32;
            matched_t[ti] = qi as u32;
            matched_count += 1;
            // ToMatch.Pop(Matches): clear everything now matched off the
            // top of the stack.
            while let Some(top) = to_match.last() {
                let is_matched = match top.side {
                    Side::Query => matched_q[top.index] != UNMATCHED,
                    Side::Target => matched_t[top.index] != UNMATCHED,
                };
                if is_matched {
                    to_match.pop();
                } else {
                    break;
                }
            }
        } else {
            // PushIfNotExists([Forward, Back]).
            let fwd_item = Item {
                side: match m.side {
                    Side::Query => Side::Target,
                    Side::Target => Side::Query,
                },
                index: fwd,
            };
            let back_item = Item {
                side: m.side,
                index: back_idx,
            };
            let mut pushed = false;
            for item in [fwd_item, back_item] {
                if !to_match.contains(&item) {
                    to_match.push(item);
                    pushed = true;
                }
            }
            if !pushed {
                // Nothing new to explore and the top keeps failing: the game
                // will never end — the paper's "fixed state".
                ended = GameEnd::FixedPoint;
                break;
            }
        }
    }

    let mut matches: Vec<(usize, usize, usize)> = Vec::new();
    if want_matches {
        matches.reserve_exact(matched_count);
        for (qi, &ti) in matched_q.iter().enumerate() {
            if ti != UNMATCHED {
                matches.push((qi, ti as usize, sim_of(qi, ti as usize)));
            }
        }
    }
    let query_match = (matched_q[qv] != UNMATCHED)
        .then(|| (matched_q[qv] as usize, sim_of(qv, matched_q[qv] as usize)));
    GameResult {
        query_match,
        matches,
        steps,
        ended,
        trace: Vec::new(),
    }
}

/// Argmax with deterministic tie-breaking (higher sim, then lower
/// index), restricted to unmatched candidates and a minimum score.
fn best_match(
    eligible: impl Fn(usize) -> bool,
    n: usize,
    mut score: impl FnMut(usize) -> usize,
    min_sim: usize,
) -> Option<(usize, usize)> {
    let mut best: Option<(usize, usize)> = None;
    for i in 0..n {
        if !eligible(i) {
            continue;
        }
        let s = score(i);
        if s < min_sim {
            continue;
        }
        match best {
            Some((_, bs)) if bs >= s => {}
            _ => best = Some((i, s)),
        }
    }
    best
}

/// Procedure-centric matching (the `PC∼` baseline from §4.1): the single
/// best target by pairwise similarity, no game. Used for the ablation in
/// Fig. 9's discussion ("without this iterative matching process, the
/// overall precision drops from 90.11% to 67.3%").
pub fn procedure_centric(
    query: &ExecutableRep,
    qv: usize,
    target: &ExecutableRep,
    min_sim: usize,
) -> Option<(usize, usize)> {
    best_match(
        |_| true,
        target.procedures.len(),
        |ti| sim(&query.procedures[qv], &target.procedures[ti]),
        min_sim,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::ProcedureRep;
    use firmup_isa::Arch;

    /// Build a fake executable whose procedures have the given strand
    /// sets.
    fn exec(id: &str, procs: &[&[u64]]) -> ExecutableRep {
        ExecutableRep {
            id: id.into(),
            arch: Arch::Mips32,
            procedures: procs
                .iter()
                .enumerate()
                .map(|(i, strands)| {
                    let mut s = strands.to_vec();
                    s.sort_unstable();
                    s.dedup();
                    ProcedureRep {
                        addr: 0x1000 + (i as u32) * 0x100,
                        name: None,
                        strands: s,
                        block_count: 1,
                        size: 16,
                        interned: None,
                    }
                })
                .collect(),
        }
    }

    #[test]
    fn immediate_match_takes_one_step() {
        let q = exec("q", &[&[1, 2, 3]]);
        let t = exec("t", &[&[1, 2, 3], &[9, 10]]);
        let r = play(&q, 0, &t, &GameConfig::default());
        assert_eq!(r.ended, GameEnd::QueryMatched);
        assert_eq!(r.query_match, Some((0, 3)));
        assert_eq!(r.steps, 1);
    }

    #[test]
    fn fig4_scenario_game_corrects_local_maximum() {
        // Fig. 4 of the paper: q1={s1,s2,s3}, q2={s1,s3,s4,s5};
        // t1={s1,s2,s3,s4,s5}, t2={s2,s3}.
        // Procedure-centric matches q1→t1 (sim 3); the game must end
        // with q1→t2 because q2 fits t1 better (sim 4).
        let q = exec("q", &[&[1, 2, 3], &[1, 3, 4, 5]]);
        let t = exec("t", &[&[1, 2, 3, 4, 5], &[2, 3]]);
        // Procedure-centric: local maximum.
        assert_eq!(procedure_centric(&q, 0, &t, 1), Some((0, 3)));
        // Game: executable-level maximum.
        let r = play(&q, 0, &t, &GameConfig::default());
        assert_eq!(r.ended, GameEnd::QueryMatched);
        assert_eq!(r.query_match.map(|(t, _)| t), Some(1), "q1 must match t2");
        assert!(r.steps > 1, "required rival interaction");
        // The full matching also pairs q2 with t1.
        assert!(r.matches.contains(&(1, 0, 4)));
    }

    #[test]
    fn no_candidates_is_fixed_point() {
        let q = exec("q", &[&[1, 2]]);
        let t = exec("t", &[&[7, 8]]);
        let r = play(&q, 0, &t, &GameConfig::default());
        assert_eq!(r.ended, GameEnd::FixedPoint);
        assert_eq!(r.query_match, None);
    }

    #[test]
    fn empty_target_is_fixed_point() {
        let q = exec("q", &[&[1]]);
        let t = exec("t", &[]);
        let r = play(&q, 0, &t, &GameConfig::default());
        assert_eq!(r.ended, GameEnd::FixedPoint);
    }

    #[test]
    fn matching_is_injective() {
        let q = exec("q", &[&[1, 2, 3], &[1, 2, 4], &[1, 2, 5]]);
        let t = exec("t", &[&[1, 2, 3, 4, 5], &[1, 2, 3], &[2, 5]]);
        let r = play(&q, 0, &t, &GameConfig::default());
        let mut qs: Vec<usize> = r.matches.iter().map(|&(q, _, _)| q).collect();
        let mut ts: Vec<usize> = r.matches.iter().map(|&(_, t, _)| t).collect();
        qs.dedup();
        ts.sort_unstable();
        ts.dedup();
        assert_eq!(qs.len(), r.matches.len());
        assert_eq!(ts.len(), r.matches.len());
    }

    #[test]
    fn limits_stop_runaway_games() {
        // Large families of near-identical procedures force many rival
        // moves; a tiny step limit must end the game.
        let strands: Vec<Vec<u64>> = (0..20)
            .map(|i| (0..10u64).chain([100 + i as u64]).collect())
            .collect();
        let views: Vec<&[u64]> = strands.iter().map(Vec::as_slice).collect();
        let q = exec("q", &views);
        let t = exec("t", &views);
        let r = play(
            &q,
            0,
            &t,
            &GameConfig {
                max_steps: 2,
                ..GameConfig::default()
            },
        );
        assert!(matches!(
            r.ended,
            GameEnd::LimitExceeded | GameEnd::QueryMatched
        ));
        assert!(r.steps <= 2);
    }

    #[test]
    fn expired_deadline_ends_game_gracefully() {
        // A deadline already in the past must stop the game on its
        // first iteration with DeadlineExceeded — never hang or panic.
        let strands: Vec<Vec<u64>> = (0..20)
            .map(|i| (0..10u64).chain([100 + i as u64]).collect())
            .collect();
        let views: Vec<&[u64]> = strands.iter().map(Vec::as_slice).collect();
        let q = exec("q", &views);
        let t = exec("t", &views);
        let r = play(
            &q,
            0,
            &t,
            &GameConfig {
                deadline: Some(std::time::Instant::now()),
                ..GameConfig::default()
            },
        );
        assert_eq!(r.ended, GameEnd::DeadlineExceeded);
        assert_eq!(r.query_match, None);
        assert!(r.steps <= 1);
    }

    #[test]
    fn trace_records_rival_moves() {
        let q = exec("q", &[&[1, 2, 3], &[1, 3, 4, 5]]);
        let t = exec("t", &[&[1, 2, 3, 4, 5], &[2, 3]]);
        let r = play(&q, 0, &t, &GameConfig::default());
        assert!(!r.trace.is_empty());
        assert!(
            r.trace.iter().any(|s| !s.accepted),
            "a rejected move exists"
        );
        assert!(r.trace.iter().any(|s| s.accepted));
    }

    #[test]
    fn min_sim_gates_matches() {
        let q = exec("q", &[&[1, 2]]);
        let t = exec("t", &[&[1, 9]]); // sim = 1
        let strict = GameConfig {
            min_sim: 2,
            ..GameConfig::default()
        };
        assert_eq!(play(&q, 0, &t, &strict).query_match, None);
        assert!(play(&q, 0, &t, &GameConfig::default())
            .query_match
            .is_some());
    }
}
