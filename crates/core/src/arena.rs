//! Per-unit bump arena for strand decomposition scratch.
//!
//! Decomposing a block into strands used to clone every picked
//! [`SsaStmt`](firmup_ir::ssa::SsaStmt) and the block's whole variable
//! table *per strand* — the dominant allocator traffic of
//! lift-and-canonicalize (ROADMAP open item 1; the `IRBuilderArena`
//! idiom borrowed from fugue-re). [`StrandArena`] replaces that with
//! two flat, capacity-retaining buffers: strand *picks* (indices into
//! the block's statement list) and per-strand *spans* into the pick
//! buffer. A strand becomes a [`StrandView`] — a borrowed slice of
//! pick indices — and canonicalization reads statements straight out
//! of the block, copying nothing.
//!
//! # Ownership contract
//!
//! The arena is reset **between units** (one procedure, or one
//! executable), never mid-read: [`StrandArena::reset`] takes `&mut
//! self`, so the borrow checker statically guarantees no
//! [`StrandView`] from the previous unit survives a reset — a dangling
//! view is a compile error, not a runtime hazard:
//!
//! ```compile_fail
//! use firmup_core::arena::StrandArena;
//! let mut arena = StrandArena::new();
//! let view = arena.strand(0);
//! arena.reset(); // ERROR: cannot borrow `arena` as mutable while `view` borrows it
//! let _ = view;
//! ```
//!
//! Under `cfg(test)` / debug builds, `reset` additionally poisons the
//! span table so any *index*-level misuse (holding a strand number
//! across a reset and re-resolving it) trips an assertion instead of
//! silently reading a later unit's data.

/// Bump-style scratch for one lift-and-canonicalize unit's strands.
///
/// All buffers retain capacity across [`reset`](StrandArena::reset),
/// so a steady-state indexing or scan loop performs no allocation per
/// block after warm-up.
#[derive(Debug, Default)]
pub struct StrandArena {
    /// Statement indices of every strand, concatenated.
    picks: Vec<u32>,
    /// Per-strand `(start, end)` ranges into `picks`.
    spans: Vec<(u32, u32)>,
    /// Reusable per-block scratch: uncovered-root flags (Algorithm 1's
    /// `indexes` set), loaned out via [`take_scratch`](Self::take_scratch).
    roots: Vec<bool>,
    /// Reusable per-strand scratch: the strand's live-variable bitmap.
    svars: Vec<bool>,
    /// High-water mark of `picks`, in bytes, across the arena's life.
    peak_bytes: usize,
}

/// One decomposed strand: the indices (into the enclosing block's
/// statement list) of its picked statements, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StrandView<'a> {
    /// Indices into `block.stmts`, ascending.
    pub picks: &'a [u32],
}

/// Poison span written by [`StrandArena::reset`] in test/debug builds.
const POISON: (u32, u32) = (u32::MAX, u32::MAX);

impl StrandArena {
    /// An empty arena.
    pub fn new() -> StrandArena {
        StrandArena::default()
    }

    /// Number of strands currently held.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the arena holds no strands.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The `i`-th strand of the current unit, or `None` past the end.
    ///
    /// # Panics
    ///
    /// In test/debug builds, panics if `i` names a poisoned span — a
    /// strand index that leaked across a [`reset`](StrandArena::reset).
    pub fn strand(&self, i: usize) -> Option<StrandView<'_>> {
        let &(start, end) = self.spans.get(i)?;
        debug_assert!(
            (start, end) != POISON,
            "strand index {i} leaked across an arena reset"
        );
        Some(StrandView {
            picks: &self.picks[start as usize..end as usize],
        })
    }

    /// Begin a new strand; returns its index. Statements are added with
    /// [`push_pick`](StrandArena::push_pick) and the strand is closed by
    /// the next `begin_strand` or by a reader calling
    /// [`strand`](StrandArena::strand).
    pub fn begin_strand(&mut self) -> usize {
        let at = self.picks.len() as u32;
        self.spans.push((at, at));
        self.spans.len() - 1
    }

    /// Append one picked statement index to the currently open strand.
    ///
    /// # Panics
    ///
    /// Panics if no strand is open.
    pub fn push_pick(&mut self, stmt_index: u32) {
        self.picks.push(stmt_index);
        let span = self.spans.last_mut().expect("no open strand");
        span.1 = self.picks.len() as u32;
    }

    /// Reverse the pick order of the currently open strand (decompose
    /// walks backwards; canonical order is execution order).
    pub fn reverse_open_strand(&mut self) {
        if let Some(&(start, end)) = self.spans.last() {
            self.picks[start as usize..end as usize].reverse();
        }
    }

    /// Drop every strand, retaining buffer capacity. Statically safe:
    /// taking `&mut self` means no [`StrandView`] can outlive the call.
    /// Test/debug builds poison the span table first so stale strand
    /// *indices* (not views) also fail fast.
    pub fn reset(&mut self) {
        self.peak_bytes = self.peak_bytes.max(self.bytes_in_use());
        #[cfg(any(test, debug_assertions))]
        for span in &mut self.spans {
            *span = POISON;
        }
        self.picks.clear();
        self.spans.clear();
    }

    /// Loan out the reusable decomposition scratch buffers (root flags,
    /// live-variable bitmap). Return them with
    /// [`give_scratch`](Self::give_scratch) so their capacity carries to
    /// the next block; dropping them instead merely costs a fresh
    /// allocation later.
    pub(crate) fn take_scratch(&mut self) -> (Vec<bool>, Vec<bool>) {
        (
            std::mem::take(&mut self.roots),
            std::mem::take(&mut self.svars),
        )
    }

    /// Return scratch buffers taken with [`take_scratch`](Self::take_scratch).
    pub(crate) fn give_scratch(&mut self, roots: Vec<bool>, svars: Vec<bool>) {
        self.roots = roots;
        self.svars = svars;
    }

    /// Bytes of strand data currently live in the arena.
    pub fn bytes_in_use(&self) -> usize {
        self.picks.len() * std::mem::size_of::<u32>()
            + self.spans.len() * std::mem::size_of::<(u32, u32)>()
    }

    /// Largest [`bytes_in_use`](StrandArena::bytes_in_use) ever observed
    /// at a reset — the arena's steady-state footprint.
    pub fn peak_bytes(&self) -> usize {
        self.peak_bytes.max(self.bytes_in_use())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(arena: &mut StrandArena, strands: &[&[u32]]) {
        for s in strands {
            arena.begin_strand();
            for &p in *s {
                arena.push_pick(p);
            }
        }
    }

    #[test]
    fn strands_round_trip() {
        let mut a = StrandArena::new();
        fill(&mut a, &[&[0, 2, 5], &[1], &[]]);
        assert_eq!(a.len(), 3);
        assert_eq!(a.strand(0).unwrap().picks, &[0, 2, 5]);
        assert_eq!(a.strand(1).unwrap().picks, &[1]);
        assert_eq!(a.strand(2).unwrap().picks, &[] as &[u32]);
        assert!(a.strand(3).is_none());
    }

    #[test]
    fn reverse_open_strand_only_touches_the_open_one() {
        let mut a = StrandArena::new();
        fill(&mut a, &[&[7, 8]]);
        a.begin_strand();
        a.push_pick(3);
        a.push_pick(1);
        a.push_pick(0);
        a.reverse_open_strand();
        assert_eq!(
            a.strand(0).unwrap().picks,
            &[7, 8],
            "closed strand untouched"
        );
        assert_eq!(a.strand(1).unwrap().picks, &[0, 1, 3]);
    }

    #[test]
    fn reset_retains_capacity_and_clears_strands() {
        let mut a = StrandArena::new();
        fill(&mut a, &[&[1, 2, 3], &[4]]);
        let cap = a.picks.capacity();
        a.reset();
        assert!(a.is_empty());
        assert_eq!(a.bytes_in_use(), 0);
        assert!(a.picks.capacity() >= cap, "reset must not shrink");
        assert!(a.peak_bytes() > 0);
    }

    #[test]
    fn no_data_leaks_across_reset() {
        // Unit A: three strands. Reset. Unit B: one strand. Indices from
        // unit A past unit B's length must not resolve to anything.
        let mut a = StrandArena::new();
        fill(&mut a, &[&[9, 9, 9], &[8], &[7, 7]]);
        a.reset();
        fill(&mut a, &[&[1]]);
        assert_eq!(a.len(), 1);
        assert_eq!(a.strand(0).unwrap().picks, &[1]);
        assert!(a.strand(1).is_none(), "unit A's strand 1 is gone");
        assert!(a.strand(2).is_none(), "unit A's strand 2 is gone");
    }

    #[test]
    #[should_panic(expected = "leaked across an arena reset")]
    fn stale_index_hits_poison() {
        // A stale strand *index* (the view lifetime is enforced at
        // compile time; this guards the index-level misuse) must trip
        // the poison check, not silently alias the next unit's data.
        let mut a = StrandArena::new();
        fill(&mut a, &[&[1], &[2]]);
        // Simulate a reader that cached `spans` slots across reset by
        // peeking before the clear happens. The poison fill runs first,
        // so any such read sees POISON and asserts.
        for span in &mut a.spans {
            *span = super::POISON;
        }
        let _ = a.strand(1);
    }

    #[test]
    fn peak_bytes_tracks_high_water_mark() {
        let mut a = StrandArena::new();
        fill(&mut a, &[&[1, 2, 3, 4, 5]]);
        let big = a.bytes_in_use();
        a.reset();
        fill(&mut a, &[&[1]]);
        assert_eq!(a.peak_bytes(), big.max(a.bytes_in_use()));
        assert!(a.peak_bytes() >= big);
    }
}
