//! Procedure representations and pairwise similarity — §3.3.
//!
//! A procedure is represented as the set of its canonical strand hashes;
//! `Sim(q, t) = |Strands(q) ∩ Strands(t)|`, computed on sorted hash
//! vectors ("to calculate Sim faster, we keep the procedure
//! representation as a set of hashed strands").

use firmup_isa::Arch;
use firmup_obj::Elf;

use crate::canon::{canonicalize, AddrSpace, CanonConfig};
use crate::lift::{lift_executable, LiftError, LiftedExecutable};
use crate::strand::decompose;

/// A procedure as the similarity pipeline sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcedureRep {
    /// Entry address in its executable.
    pub addr: u32,
    /// Symbol name when the binary was not (fully) stripped.
    pub name: Option<String>,
    /// Sorted, deduplicated canonical strand hashes.
    pub strands: Vec<u64>,
    /// Basic-block count (used by the graph-based baseline and for
    /// diagnostics).
    pub block_count: usize,
    /// Code size in bytes.
    pub size: u32,
}

impl ProcedureRep {
    /// IDA-style display name.
    pub fn display_name(&self) -> String {
        match &self.name {
            Some(n) => n.clone(),
            None => format!("sub_{:x}", self.addr),
        }
    }

    /// Number of unique canonical strands.
    pub fn strand_count(&self) -> usize {
        self.strands.len()
    }
}

/// A whole executable, indexed for search.
#[derive(Debug, PartialEq, Eq)]
pub struct ExecutableRep {
    /// Identifier (file name / corpus path).
    pub id: String,
    /// Architecture.
    pub arch: Arch,
    /// Procedures, sorted by address.
    pub procedures: Vec<ProcedureRep>,
}

impl Clone for ExecutableRep {
    /// Cloning a rep copies every strand vector, which is the dominant
    /// allocation on corpus-scale scans — so each clone is counted in
    /// the `rep.clones` telemetry counter. Scan-path code should borrow
    /// reps (e.g. [`GlobalContext::build`] takes any iterator of
    /// references); a regression test pins `rep.clones` to stay flat as
    /// the corpus grows.
    fn clone(&self) -> ExecutableRep {
        firmup_telemetry::incr("rep.clones");
        ExecutableRep {
            id: self.id.clone(),
            arch: self.arch,
            procedures: self.procedures.clone(),
        }
    }
}

impl ExecutableRep {
    /// Find a procedure index by name.
    pub fn find_named(&self, name: &str) -> Option<usize> {
        self.procedures
            .iter()
            .position(|p| p.name.as_deref() == Some(name))
    }

    /// Find a procedure index by address.
    pub fn find_addr(&self, addr: u32) -> Option<usize> {
        self.procedures.iter().position(|p| p.addr == addr)
    }

    /// Total strand count across procedures.
    pub fn strand_total(&self) -> usize {
        self.procedures.iter().map(ProcedureRep::strand_count).sum()
    }
}

/// `Sim(q, t)`: the number of shared canonical strands.
pub fn sim(q: &ProcedureRep, t: &ProcedureRep) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < q.strands.len() && j < t.strands.len() {
        match q.strands[i].cmp(&t.strands[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// Build the similarity representation of a lifted executable.
pub fn build_rep(
    lifted: &LiftedExecutable,
    space: &AddrSpace,
    config: &CanonConfig,
    id: &str,
) -> ExecutableRep {
    let _span = firmup_telemetry::span!("canonicalize");
    let procedures = lifted
        .program
        .procedures
        .iter()
        .map(|p| {
            let mut hashes: Vec<u64> = p
                .blocks
                .iter()
                .flat_map(|b| {
                    let ssa = firmup_ir::ssa::ssa_block(b);
                    decompose(&ssa)
                        .iter()
                        .map(|s| canonicalize(s, space, config).hash)
                        .collect::<Vec<u64>>()
                })
                .collect();
            hashes.sort_unstable();
            hashes.dedup();
            ProcedureRep {
                addr: p.addr,
                name: p.name.clone(),
                strands: hashes,
                block_count: p.blocks.len(),
                size: p.blocks.iter().map(|b| b.len).sum(),
            }
        })
        .collect();
    let rep = ExecutableRep {
        id: id.to_string(),
        arch: lifted.arch,
        procedures,
    };
    if firmup_telemetry::enabled() {
        firmup_telemetry::incr("index.executables");
        firmup_telemetry::add("index.procedures", rep.procedures.len() as u64);
        firmup_telemetry::add(
            "index.strands",
            rep.procedures.iter().map(|p| p.strands.len() as u64).sum(),
        );
    }
    rep
}

/// A trained global context: per-strand document frequency over a
/// corpus sample, used to weight strands by significance (the mechanism
/// GitZ introduced and the paper reuses when training per-architecture
/// contexts for the §5.3 comparison: "a set of randomly sampled
/// procedures in the wild used to statistically estimate the
/// significance of a strand").
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GlobalContext {
    df: std::collections::HashMap<u64, u32>,
    docs: u32,
}

impl GlobalContext {
    /// Build from a corpus sample (each executable is one document).
    ///
    /// Takes any iterator of *borrowed* reps, so callers holding
    /// `Vec<ExecutableRep>`, `&[ExecutableRep]`, or keyed collections
    /// can train a context without cloning a single strand vector:
    ///
    /// ```
    /// use firmup_core::sim::{ExecutableRep, GlobalContext};
    /// let reps: Vec<ExecutableRep> = Vec::new();
    /// let ctx = GlobalContext::build(&reps); // borrows, never clones
    /// assert_eq!(ctx.docs(), 0);
    /// ```
    pub fn build<'a>(sample: impl IntoIterator<Item = &'a ExecutableRep>) -> GlobalContext {
        let mut df: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
        let mut docs = 0u32;
        for exe in sample {
            docs += 1;
            let mut seen: std::collections::HashSet<u64> = std::collections::HashSet::new();
            for p in &exe.procedures {
                seen.extend(p.strands.iter().copied());
            }
            for h in seen {
                *df.entry(h).or_default() += 1;
            }
        }
        GlobalContext { df, docs }
    }

    /// Number of documents in the sample.
    pub fn docs(&self) -> u32 {
        self.docs
    }

    /// The serializable form: `(strand, document frequency)` pairs,
    /// sorted by strand hash. Inverse of [`GlobalContext::from_entries`].
    pub fn entries(&self) -> Vec<(u64, u32)> {
        let mut v: Vec<(u64, u32)> = self.df.iter().map(|(&k, &n)| (k, n)).collect();
        v.sort_unstable();
        v
    }

    /// Rebuild a context from its serialized parts (see
    /// `firmup_core::persist` for the on-disk encoding).
    pub fn from_entries(docs: u32, entries: impl IntoIterator<Item = (u64, u32)>) -> GlobalContext {
        GlobalContext {
            df: entries.into_iter().collect(),
            docs,
        }
    }

    /// Significance weight of a strand: `ln((docs+1) / (df+1))`.
    /// Strands appearing in every executable weigh ~0; rare strands
    /// weigh ~ln(docs).
    pub fn weight(&self, strand: u64) -> f64 {
        let df = self.df.get(&strand).copied().unwrap_or(0);
        (f64::from(self.docs + 1) / f64::from(df + 1)).ln()
    }

    /// Weighted similarity: the significance mass of shared strands.
    pub fn weighted_sim(&self, q: &ProcedureRep, t: &ProcedureRep) -> f64 {
        let (mut i, mut j, mut acc) = (0, 0, 0.0);
        while i < q.strands.len() && j < t.strands.len() {
            match q.strands[i].cmp(&t.strands[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    acc += self.weight(q.strands[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        acc
    }

    /// Total significance mass of a procedure's strands.
    pub fn mass(&self, p: &ProcedureRep) -> f64 {
        p.strands.iter().map(|&h| self.weight(h)).sum()
    }
}

/// An inverted strand index: canonical strand hash → every
/// `(executable, procedure)` that contains it.
///
/// This is the corpus-index query structure: given a query procedure's
/// strand set, walking the posting lists of just those strands touches
/// only executables that share *something* with the query, so candidate
/// prefiltering ([`crate::search::prefilter_candidates`]) costs
/// `O(query strands × matching sites)` instead of
/// `O(corpus procedures)`. Executable/procedure positions are `u32`
/// indices into the owning corpus slice (2,000-image corpora fit with
/// room to spare, and the narrower posting entries halve the on-disk
/// postings record).
///
/// ```
/// use firmup_core::sim::{ExecutableRep, ProcedureRep, StrandPostings};
/// use firmup_isa::Arch;
/// let exe = ExecutableRep {
///     id: "t".into(),
///     arch: Arch::Mips32,
///     procedures: vec![ProcedureRep {
///         addr: 0x1000, name: None, strands: vec![7, 9], block_count: 1, size: 8,
///     }],
/// };
/// let postings = StrandPostings::build([&exe]);
/// assert_eq!(postings.postings(7), &[(0, 0)]);
/// assert!(postings.postings(8).is_empty());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StrandPostings {
    map: std::collections::HashMap<u64, Vec<(u32, u32)>>,
}

impl StrandPostings {
    /// Build the inverted index over a corpus of borrowed reps. Posting
    /// lists come out sorted by `(executable, procedure)` because the
    /// corpus is walked in order.
    pub fn build<'a>(executables: impl IntoIterator<Item = &'a ExecutableRep>) -> StrandPostings {
        let mut map: std::collections::HashMap<u64, Vec<(u32, u32)>> =
            std::collections::HashMap::new();
        for (ei, exe) in executables.into_iter().enumerate() {
            for (pi, proc_) in exe.procedures.iter().enumerate() {
                for &h in &proc_.strands {
                    map.entry(h).or_default().push((ei as u32, pi as u32));
                }
            }
        }
        StrandPostings { map }
    }

    /// The posting list for one strand (empty when the strand is absent
    /// from the corpus).
    pub fn postings(&self, strand: u64) -> &[(u32, u32)] {
        self.map.get(&strand).map_or(&[], Vec::as_slice)
    }

    /// Number of distinct strands in the index.
    pub fn strand_count(&self) -> usize {
        self.map.len()
    }

    /// Whether the index holds no strands at all.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The serializable form: `(strand, posting list)` pairs sorted by
    /// strand hash. Inverse of [`StrandPostings::from_entries`].
    pub fn entries(&self) -> Vec<(u64, &[(u32, u32)])> {
        let mut v: Vec<(u64, &[(u32, u32)])> =
            self.map.iter().map(|(&k, l)| (k, l.as_slice())).collect();
        v.sort_unstable_by_key(|&(k, _)| k);
        v
    }

    /// Rebuild a postings table from its serialized parts (see
    /// `firmup_core::persist` for the on-disk encoding).
    pub fn from_entries(entries: impl IntoIterator<Item = (u64, Vec<(u32, u32)>)>) -> Self {
        StrandPostings {
            map: entries.into_iter().collect(),
        }
    }
}

/// One-call convenience: lift + decompose + canonicalize an ELF.
///
/// # Errors
///
/// Propagates [`LiftError`] from the lifting stage.
pub fn index_elf(elf: &Elf, id: &str, config: &CanonConfig) -> Result<ExecutableRep, LiftError> {
    let _span = firmup_telemetry::span!("index");
    let lifted = lift_executable(elf)?;
    let space = AddrSpace::from_elf(elf);
    Ok(build_rep(&lifted, &space, config, id))
}

#[cfg(test)]
mod tests {
    use super::*;
    use firmup_compiler::{compile_source, CompilerOptions, ToolchainProfile};

    const SRC: &str = r#"
        global table: [int; 32];
        fn mix(a: int, b: int) -> int {
            var h = a * 31 + b;
            h = h ^ (h >> 7);
            return h;
        }
        pub fn lookup(key: int, len: int) -> int {
            var i = 0;
            var h = mix(key, len);
            while (i < len) {
                if (table[i] == h) { return i; }
                i = i + 1;
            }
            return 0 - 1;
        }
        fn main() -> int { return lookup(5, 10); }
    "#;

    fn rep(arch: Arch, profile: ToolchainProfile) -> ExecutableRep {
        let elf = compile_source(
            SRC,
            arch,
            &CompilerOptions {
                profile,
                layout: Default::default(),
            },
        )
        .unwrap();
        index_elf(&elf, "test", &CanonConfig::default()).unwrap()
    }

    #[test]
    fn self_similarity_is_total() {
        let r = rep(Arch::Mips32, ToolchainProfile::gcc_like());
        for p in &r.procedures {
            assert_eq!(sim(p, p), p.strand_count());
        }
    }

    #[test]
    fn sim_is_symmetric() {
        let r = rep(Arch::Mips32, ToolchainProfile::gcc_like());
        for a in &r.procedures {
            for b in &r.procedures {
                assert_eq!(sim(a, b), sim(b, a));
            }
        }
    }

    #[test]
    fn same_source_different_profile_still_shares_strands() {
        for arch in Arch::all() {
            let a = rep(arch, ToolchainProfile::gcc_like());
            let b = rep(arch, ToolchainProfile::vendor_size());
            let qa = &a.procedures[a.find_named("lookup").unwrap()];
            let qb = &b.procedures[b.find_named("lookup").unwrap()];
            let s = sim(qa, qb);
            assert!(
                s >= 2,
                "{arch}: cross-profile lookup() shares too few strands ({s} of {}/{})",
                qa.strand_count(),
                qb.strand_count()
            );
        }
    }

    #[test]
    fn cross_architecture_sharing_exists() {
        // The headline property: MIPS-built query strands appear in the
        // ARM build of the same source.
        let a = rep(Arch::Mips32, ToolchainProfile::gcc_like());
        let b = rep(Arch::Arm32, ToolchainProfile::gcc_like());
        let qa = &a.procedures[a.find_named("lookup").unwrap()];
        let qb = &b.procedures[b.find_named("lookup").unwrap()];
        let s = sim(qa, qb);
        assert!(s >= 1, "no cross-architecture strand sharing ({s})");
    }

    #[test]
    fn right_procedure_wins_within_target() {
        // Sim(query lookup, target lookup) must beat Sim(query lookup,
        // any other target procedure).
        let q = rep(Arch::Mips32, ToolchainProfile::gcc_like());
        let t = rep(Arch::Mips32, ToolchainProfile::vendor_size());
        let qi = q.find_named("lookup").unwrap();
        let ti = t.find_named("lookup").unwrap();
        let qv = &q.procedures[qi];
        let true_sim = sim(qv, &t.procedures[ti]);
        for (i, p) in t.procedures.iter().enumerate() {
            if i != ti {
                assert!(
                    sim(qv, p) < true_sim,
                    "{} ({}) ties/beats the true positive ({true_sim})",
                    p.display_name(),
                    sim(qv, p)
                );
            }
        }
    }

    #[test]
    fn strands_are_deduplicated_and_sorted() {
        let r = rep(Arch::X86, ToolchainProfile::gcc_like());
        for p in &r.procedures {
            let mut sorted = p.strands.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted, p.strands);
        }
    }

    #[test]
    fn lookup_helpers() {
        let r = rep(Arch::Ppc32, ToolchainProfile::gcc_like());
        let i = r.find_named("mix").unwrap();
        assert_eq!(r.find_addr(r.procedures[i].addr), Some(i));
        assert!(r.find_named("nope").is_none());
        assert!(r.strand_total() > 0);
    }
}
