//! Procedure representations and pairwise similarity — §3.3.
//!
//! A procedure is represented as the set of its canonical strand hashes;
//! `Sim(q, t) = |Strands(q) ∩ Strands(t)|`, computed on sorted hash
//! vectors ("to calculate Sim faster, we keep the procedure
//! representation as a set of hashed strands").

use firmup_isa::Arch;
use firmup_obj::Elf;

use crate::arena::StrandArena;
use crate::canon::{canonical_hash_picks, AddrSpace, CanonConfig, CanonScratch};
use crate::intern::{InternedStrands, StrandInterner};
use crate::lift::{lift_executable, LiftError, LiftedExecutable};
use crate::merge;
use crate::strand::decompose_into;

/// A procedure as the similarity pipeline sees it.
///
/// Equality ignores the [`interned`](ProcedureRep::interned) cache:
/// two reps with the same strands are the same procedure whether or
/// not either has been translated to interner ids.
#[derive(Debug, Clone)]
pub struct ProcedureRep {
    /// Entry address in its executable.
    pub addr: u32,
    /// Symbol name when the binary was not (fully) stripped.
    pub name: Option<String>,
    /// Sorted, deduplicated canonical strand hashes.
    pub strands: Vec<u64>,
    /// Basic-block count (used by the graph-based baseline and for
    /// diagnostics).
    pub block_count: usize,
    /// Code size in bytes.
    pub size: u32,
    /// `strands` translated to dense [`StrandInterner`] ids — a pure
    /// cache attached by [`ExecutableRep::intern_with`], consulted by
    /// [`sim`] and the [`GlobalContext`] weighted paths when tokens
    /// line up, and ignored by equality.
    pub interned: Option<InternedStrands>,
}

impl PartialEq for ProcedureRep {
    fn eq(&self, other: &ProcedureRep) -> bool {
        self.addr == other.addr
            && self.name == other.name
            && self.strands == other.strands
            && self.block_count == other.block_count
            && self.size == other.size
    }
}

impl Eq for ProcedureRep {}

impl ProcedureRep {
    /// IDA-style display name.
    pub fn display_name(&self) -> String {
        match &self.name {
            Some(n) => n.clone(),
            None => format!("sub_{:x}", self.addr),
        }
    }

    /// Number of unique canonical strands.
    pub fn strand_count(&self) -> usize {
        self.strands.len()
    }
}

/// A whole executable, indexed for search.
#[derive(Debug, PartialEq, Eq)]
pub struct ExecutableRep {
    /// Identifier (file name / corpus path).
    pub id: String,
    /// Architecture.
    pub arch: Arch,
    /// Procedures, sorted by address.
    pub procedures: Vec<ProcedureRep>,
}

impl Clone for ExecutableRep {
    /// Cloning a rep copies every strand vector, which is the dominant
    /// allocation on corpus-scale scans — so each clone is counted in
    /// the `rep.clones` telemetry counter. Scan-path code should borrow
    /// reps (e.g. [`GlobalContext::build`] takes any iterator of
    /// references); a regression test pins `rep.clones` to stay flat as
    /// the corpus grows.
    fn clone(&self) -> ExecutableRep {
        firmup_telemetry::incr("rep.clones");
        ExecutableRep {
            id: self.id.clone(),
            arch: self.arch,
            procedures: self.procedures.clone(),
        }
    }
}

impl ExecutableRep {
    /// Find a procedure index by name.
    pub fn find_named(&self, name: &str) -> Option<usize> {
        self.procedures
            .iter()
            .position(|p| p.name.as_deref() == Some(name))
    }

    /// Find a procedure index by address.
    pub fn find_addr(&self, addr: u32) -> Option<usize> {
        self.procedures.iter().position(|p| p.addr == addr)
    }

    /// Total strand count across procedures.
    pub fn strand_total(&self) -> usize {
        self.procedures.iter().map(ProcedureRep::strand_count).sum()
    }

    /// Attach interner-id caches to every procedure (see
    /// [`ProcedureRep::interned`]). Corpus reps interned against the
    /// corpus interner are always `complete`; query reps may contain
    /// strands the corpus has never seen and come out partial — the id
    /// fast paths account for that.
    pub fn intern_with(&mut self, interner: &StrandInterner) {
        for p in &mut self.procedures {
            p.interned = Some(InternedStrands::of(&p.strands, interner));
        }
    }
}

/// Whether `q` and `t` carry id caches from the *same* interner
/// instance that license an exact id-space intersection: tokens must
/// match, and at least one side must be `complete` (a strand missing
/// from the interner then provably cannot occur on the complete side,
/// so dropping it from the merge loses nothing).
fn id_comparable<'a>(
    q: &'a ProcedureRep,
    t: &'a ProcedureRep,
) -> Option<(&'a InternedStrands, &'a InternedStrands)> {
    match (&q.interned, &t.interned) {
        (Some(qi), Some(ti)) if qi.token == ti.token && (qi.complete || ti.complete) => {
            Some((qi, ti))
        }
        _ => None,
    }
}

/// `Sim(q, t)`: the number of shared canonical strands.
///
/// When both reps carry comparable interner ids the intersection runs
/// over dense `u32` ids; otherwise over the `u64` hash vectors. Both
/// paths produce the same count (ids are hash ranks — see
/// [`crate::intern`]).
pub fn sim(q: &ProcedureRep, t: &ProcedureRep) -> usize {
    if let Some((qi, ti)) = id_comparable(q, t) {
        merge::intersect_count(&qi.ids, &ti.ids)
    } else {
        merge::intersect_count(&q.strands, &t.strands)
    }
}

/// Build the similarity representation of a lifted executable.
///
/// The hot path is fully arena-backed: strand decomposition records
/// statement indices into a per-executable [`StrandArena`] (reset per
/// block) and hashing runs through one reusable
/// [`CanonScratch`] — steady state allocates only the final
/// per-procedure hash vectors.
pub fn build_rep(
    lifted: &LiftedExecutable,
    space: &AddrSpace,
    config: &CanonConfig,
    id: &str,
) -> ExecutableRep {
    let _span = firmup_telemetry::span!("canonicalize");
    let mut arena = StrandArena::new();
    let mut scratch = CanonScratch::default();
    let mut procedures = Vec::with_capacity(lifted.program.procedures.len());
    for p in &lifted.program.procedures {
        let mut hashes: Vec<u64> = Vec::new();
        for b in &p.blocks {
            let ssa = firmup_ir::ssa::ssa_block(b);
            arena.reset();
            let n = decompose_into(&mut arena, &ssa);
            for i in 0..n {
                let view = arena.strand(i).expect("index in range");
                hashes.push(canonical_hash_picks(
                    &ssa,
                    view.picks,
                    space,
                    config,
                    &mut scratch,
                ));
            }
        }
        hashes.sort_unstable();
        hashes.dedup();
        procedures.push(ProcedureRep {
            addr: p.addr,
            name: p.name.clone(),
            strands: hashes,
            block_count: p.blocks.len(),
            size: p.blocks.iter().map(|b| b.len).sum(),
            interned: None,
        });
    }
    let rep = ExecutableRep {
        id: id.to_string(),
        arch: lifted.arch,
        procedures,
    };
    firmup_telemetry::add("canon.strands", scratch.take_count());
    if firmup_telemetry::enabled() {
        firmup_telemetry::incr("index.executables");
        firmup_telemetry::add("index.procedures", rep.procedures.len() as u64);
        firmup_telemetry::add(
            "index.strands",
            rep.procedures.iter().map(|p| p.strands.len() as u64).sum(),
        );
        firmup_telemetry::add("index.arena_bytes", arena.peak_bytes() as u64);
    }
    rep
}

/// A trained global context: per-strand document frequency over a
/// corpus sample, used to weight strands by significance (the mechanism
/// GitZ introduced and the paper reuses when training per-architecture
/// contexts for the §5.3 comparison: "a set of randomly sampled
/// procedures in the wild used to statistically estimate the
/// significance of a strand").
/// Equality compares the trained statistics (`df`, `docs`) only; the
/// id-indexed weight cache attached by
/// [`attach_interner`](GlobalContext::attach_interner) is derived
/// state and ignored.
#[derive(Debug, Clone, Default)]
pub struct GlobalContext {
    df: std::collections::HashMap<u64, u32>,
    docs: u32,
    /// Token of the interner `id_weights` was computed against
    /// (0 = none attached).
    token: u64,
    /// `weight(hash)` for every interned strand, indexed by
    /// [`StrandId`](crate::intern::StrandId).
    id_weights: Vec<f64>,
}

impl PartialEq for GlobalContext {
    fn eq(&self, other: &GlobalContext) -> bool {
        self.df == other.df && self.docs == other.docs
    }
}

impl GlobalContext {
    /// Build from a corpus sample (each executable is one document).
    ///
    /// Takes any iterator of *borrowed* reps, so callers holding
    /// `Vec<ExecutableRep>`, `&[ExecutableRep]`, or keyed collections
    /// can train a context without cloning a single strand vector:
    ///
    /// ```
    /// use firmup_core::sim::{ExecutableRep, GlobalContext};
    /// let reps: Vec<ExecutableRep> = Vec::new();
    /// let ctx = GlobalContext::build(&reps); // borrows, never clones
    /// assert_eq!(ctx.docs(), 0);
    /// ```
    pub fn build<'a>(sample: impl IntoIterator<Item = &'a ExecutableRep>) -> GlobalContext {
        let mut df: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
        let mut docs = 0u32;
        for exe in sample {
            docs += 1;
            let mut seen: std::collections::HashSet<u64> = std::collections::HashSet::new();
            for p in &exe.procedures {
                seen.extend(p.strands.iter().copied());
            }
            for h in seen {
                *df.entry(h).or_default() += 1;
            }
        }
        GlobalContext {
            df,
            docs,
            token: 0,
            id_weights: Vec::new(),
        }
    }

    /// Precompute `weight(hash)` for every strand the interner knows,
    /// unlocking the id-indexed weighted paths. The cache stores the
    /// exact `f64` the hash path would compute, and id order is hash
    /// order, so every weighted sum accumulates the same values in the
    /// same order — bit-identical results, one array load instead of a
    /// hash lookup per strand.
    pub fn attach_interner(&mut self, interner: &StrandInterner) {
        self.id_weights = interner.hashes().iter().map(|&h| self.weight(h)).collect();
        self.token = interner.token();
    }

    /// Number of documents in the sample.
    pub fn docs(&self) -> u32 {
        self.docs
    }

    /// The serializable form: `(strand, document frequency)` pairs,
    /// sorted by strand hash. Inverse of [`GlobalContext::from_entries`].
    pub fn entries(&self) -> Vec<(u64, u32)> {
        let mut v: Vec<(u64, u32)> = self.df.iter().map(|(&k, &n)| (k, n)).collect();
        v.sort_unstable();
        v
    }

    /// Rebuild a context from its serialized parts (see
    /// `firmup_core::persist` for the on-disk encoding).
    pub fn from_entries(docs: u32, entries: impl IntoIterator<Item = (u64, u32)>) -> GlobalContext {
        GlobalContext {
            df: entries.into_iter().collect(),
            docs,
            token: 0,
            id_weights: Vec::new(),
        }
    }

    /// Significance weight of a strand: `ln((docs+1) / (df+1))`.
    /// Strands appearing in every executable weigh ~0; rare strands
    /// weigh ~ln(docs).
    pub fn weight(&self, strand: u64) -> f64 {
        let df = self.df.get(&strand).copied().unwrap_or(0);
        (f64::from(self.docs + 1) / f64::from(df + 1)).ln()
    }

    /// Weighted similarity: the significance mass of shared strands.
    ///
    /// Takes the id fast path when both reps carry ids from the same
    /// interner this context was attached to; both paths visit the
    /// shared strands in ascending hash order and add the same `f64`s,
    /// so the result is bit-identical either way.
    pub fn weighted_sim(&self, q: &ProcedureRep, t: &ProcedureRep) -> f64 {
        let mut acc = 0.0;
        match id_comparable(q, t) {
            Some((qi, ti)) if self.token != 0 && qi.token == self.token => {
                merge::for_each_common(&qi.ids, &ti.ids, |id| {
                    acc += self.id_weights[id as usize];
                });
            }
            _ => {
                merge::for_each_common(&q.strands, &t.strands, |h| acc += self.weight(h));
            }
        }
        acc
    }

    /// Total significance mass of a procedure's strands.
    pub fn mass(&self, p: &ProcedureRep) -> f64 {
        // The id path needs a *complete* translation: an unknown strand
        // still has nonzero weight (df = 0), so a partial id list would
        // undercount the mass.
        if let Some(i) = &p.interned {
            if i.complete && self.token != 0 && i.token == self.token {
                return i.ids.iter().map(|&id| self.id_weights[id as usize]).sum();
            }
        }
        p.strands.iter().map(|&h| self.weight(h)).sum()
    }
}

/// An inverted strand index: canonical strand hash → every
/// `(executable, procedure)` that contains it.
///
/// This is the corpus-index query structure: given a query procedure's
/// strand set, walking the posting lists of just those strands touches
/// only executables that share *something* with the query, so candidate
/// prefiltering ([`crate::search::prefilter_candidates`]) costs
/// `O(query strands × matching sites)` instead of
/// `O(corpus procedures)`. Executable/procedure positions are `u32`
/// indices into the owning corpus slice (2,000-image corpora fit with
/// room to spare, and the narrower posting entries halve the on-disk
/// postings record).
///
/// ```
/// use firmup_core::sim::{ExecutableRep, ProcedureRep, StrandPostings};
/// use firmup_isa::Arch;
/// let exe = ExecutableRep {
///     id: "t".into(),
///     arch: Arch::Mips32,
///     procedures: vec![ProcedureRep {
///         addr: 0x1000, name: None, strands: vec![7, 9], block_count: 1, size: 8,
///         interned: None,
///     }],
/// };
/// let postings = StrandPostings::build([&exe]);
/// assert_eq!(postings.postings(7), &[(0, 0)]);
/// assert!(postings.postings(8).is_empty());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StrandPostings {
    /// Sorted, deduplicated strand hashes — the key column.
    keys: Vec<u64>,
    /// `keys[i]`'s posting list is `sites[offsets[i]..offsets[i + 1]]`;
    /// `len == keys.len() + 1` (or empty when there are no keys).
    offsets: Vec<u32>,
    /// All posting lists, concatenated in key order; each list sorted
    /// by `(executable, procedure)`.
    sites: Vec<(u32, u32)>,
}

impl StrandPostings {
    /// Build the inverted index over a corpus of borrowed reps. Posting
    /// lists come out sorted by `(executable, procedure)` because the
    /// corpus is walked in order.
    pub fn build<'a>(executables: impl IntoIterator<Item = &'a ExecutableRep>) -> StrandPostings {
        let mut triples: Vec<(u64, (u32, u32))> = Vec::new();
        for (ei, exe) in executables.into_iter().enumerate() {
            for (pi, proc_) in exe.procedures.iter().enumerate() {
                for &h in &proc_.strands {
                    triples.push((h, (ei as u32, pi as u32)));
                }
            }
        }
        // Sites of one key are already in walk order, which *is*
        // ascending (executable, procedure) order, so a full sort by
        // (key, site) groups the lists without reordering any of them.
        triples.sort_unstable();
        let mut p = StrandPostings::default();
        p.sites.reserve_exact(triples.len());
        for (h, site) in triples {
            if p.keys.last() != Some(&h) {
                p.keys.push(h);
                p.offsets.push(p.sites.len() as u32);
            }
            p.sites.push(site);
        }
        if !p.keys.is_empty() {
            p.offsets.push(p.sites.len() as u32);
        }
        p
    }

    /// The posting list of the `i`-th key, in key order.
    fn list(&self, i: usize) -> &[(u32, u32)] {
        &self.sites[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// The posting list for one strand (empty when the strand is absent
    /// from the corpus).
    pub fn postings(&self, strand: u64) -> &[(u32, u32)] {
        match self.keys.binary_search(&strand) {
            Ok(i) => self.list(i),
            Err(_) => &[],
        }
    }

    /// The sorted key column — lets callers intersect a sorted query
    /// strand set against the whole table with one galloping merge
    /// instead of a lookup per strand
    /// (see [`prefilter_candidates`](crate::search::prefilter_candidates)).
    pub fn keys(&self) -> &[u64] {
        &self.keys
    }

    /// The posting list of the `i`-th key (pairs with [`keys`](Self::keys)).
    ///
    /// # Panics
    ///
    /// Panics if `i >= keys().len()`.
    pub fn list_at(&self, i: usize) -> &[(u32, u32)] {
        self.list(i)
    }

    /// Number of distinct strands in the index.
    pub fn strand_count(&self) -> usize {
        self.keys.len()
    }

    /// Total posting sites across all strands.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// Whether the index holds no strands at all.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Resident size of the table's backing arrays, in bytes (the
    /// `postings_bytes` bench metric).
    pub fn resident_bytes(&self) -> usize {
        self.keys.len() * std::mem::size_of::<u64>()
            + self.offsets.len() * std::mem::size_of::<u32>()
            + self.sites.len() * std::mem::size_of::<(u32, u32)>()
    }

    /// The serializable form: `(strand, posting list)` pairs sorted by
    /// strand hash. Inverse of [`StrandPostings::from_entries`].
    pub fn entries(&self) -> Vec<(u64, &[(u32, u32)])> {
        (0..self.keys.len())
            .map(|i| (self.keys[i], self.list(i)))
            .collect()
    }

    /// Rebuild a postings table from its serialized parts (see
    /// `firmup_core::persist` for the on-disk encoding). Entries may
    /// arrive in any order; a repeated key keeps the last list.
    pub fn from_entries(entries: impl IntoIterator<Item = (u64, Vec<(u32, u32)>)>) -> Self {
        let mut pairs: Vec<(u64, Vec<(u32, u32)>)> = entries.into_iter().collect();
        pairs.sort_by_key(|&(k, _)| k);
        let mut p = StrandPostings::default();
        for (h, list) in pairs {
            if p.keys.last() == Some(&h) {
                // Last-wins, matching the map-collect semantics the
                // serialized form was originally defined by.
                p.keys.pop();
                let at = p.offsets.pop().expect("one offset per key") as usize;
                p.sites.truncate(at);
            }
            p.keys.push(h);
            p.offsets.push(p.sites.len() as u32);
            p.sites.extend(list);
        }
        if !p.keys.is_empty() {
            p.offsets.push(p.sites.len() as u32);
        }
        p
    }
}

/// One-call convenience: lift + decompose + canonicalize an ELF.
///
/// # Errors
///
/// Propagates [`LiftError`] from the lifting stage.
pub fn index_elf(elf: &Elf, id: &str, config: &CanonConfig) -> Result<ExecutableRep, LiftError> {
    let _span = firmup_telemetry::span!("index");
    let lifted = lift_executable(elf)?;
    let space = AddrSpace::from_elf(elf);
    Ok(build_rep(&lifted, &space, config, id))
}

#[cfg(test)]
mod tests {
    use super::*;
    use firmup_compiler::{compile_source, CompilerOptions, ToolchainProfile};

    const SRC: &str = r#"
        global table: [int; 32];
        fn mix(a: int, b: int) -> int {
            var h = a * 31 + b;
            h = h ^ (h >> 7);
            return h;
        }
        pub fn lookup(key: int, len: int) -> int {
            var i = 0;
            var h = mix(key, len);
            while (i < len) {
                if (table[i] == h) { return i; }
                i = i + 1;
            }
            return 0 - 1;
        }
        fn main() -> int { return lookup(5, 10); }
    "#;

    fn rep(arch: Arch, profile: ToolchainProfile) -> ExecutableRep {
        let elf = compile_source(
            SRC,
            arch,
            &CompilerOptions {
                profile,
                layout: Default::default(),
            },
        )
        .unwrap();
        index_elf(&elf, "test", &CanonConfig::default()).unwrap()
    }

    #[test]
    fn self_similarity_is_total() {
        let r = rep(Arch::Mips32, ToolchainProfile::gcc_like());
        for p in &r.procedures {
            assert_eq!(sim(p, p), p.strand_count());
        }
    }

    #[test]
    fn sim_is_symmetric() {
        let r = rep(Arch::Mips32, ToolchainProfile::gcc_like());
        for a in &r.procedures {
            for b in &r.procedures {
                assert_eq!(sim(a, b), sim(b, a));
            }
        }
    }

    #[test]
    fn same_source_different_profile_still_shares_strands() {
        for arch in Arch::all() {
            let a = rep(arch, ToolchainProfile::gcc_like());
            let b = rep(arch, ToolchainProfile::vendor_size());
            let qa = &a.procedures[a.find_named("lookup").unwrap()];
            let qb = &b.procedures[b.find_named("lookup").unwrap()];
            let s = sim(qa, qb);
            assert!(
                s >= 2,
                "{arch}: cross-profile lookup() shares too few strands ({s} of {}/{})",
                qa.strand_count(),
                qb.strand_count()
            );
        }
    }

    #[test]
    fn cross_architecture_sharing_exists() {
        // The headline property: MIPS-built query strands appear in the
        // ARM build of the same source.
        let a = rep(Arch::Mips32, ToolchainProfile::gcc_like());
        let b = rep(Arch::Arm32, ToolchainProfile::gcc_like());
        let qa = &a.procedures[a.find_named("lookup").unwrap()];
        let qb = &b.procedures[b.find_named("lookup").unwrap()];
        let s = sim(qa, qb);
        assert!(s >= 1, "no cross-architecture strand sharing ({s})");
    }

    #[test]
    fn right_procedure_wins_within_target() {
        // Sim(query lookup, target lookup) must beat Sim(query lookup,
        // any other target procedure).
        let q = rep(Arch::Mips32, ToolchainProfile::gcc_like());
        let t = rep(Arch::Mips32, ToolchainProfile::vendor_size());
        let qi = q.find_named("lookup").unwrap();
        let ti = t.find_named("lookup").unwrap();
        let qv = &q.procedures[qi];
        let true_sim = sim(qv, &t.procedures[ti]);
        for (i, p) in t.procedures.iter().enumerate() {
            if i != ti {
                assert!(
                    sim(qv, p) < true_sim,
                    "{} ({}) ties/beats the true positive ({true_sim})",
                    p.display_name(),
                    sim(qv, p)
                );
            }
        }
    }

    #[test]
    fn strands_are_deduplicated_and_sorted() {
        let r = rep(Arch::X86, ToolchainProfile::gcc_like());
        for p in &r.procedures {
            let mut sorted = p.strands.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted, p.strands);
        }
    }

    #[test]
    fn lookup_helpers() {
        let r = rep(Arch::Ppc32, ToolchainProfile::gcc_like());
        let i = r.find_named("mix").unwrap();
        assert_eq!(r.find_addr(r.procedures[i].addr), Some(i));
        assert!(r.find_named("nope").is_none());
        assert!(r.strand_total() > 0);
    }
}
