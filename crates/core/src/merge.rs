//! Sorted-set merge primitives shared by the similarity and prefilter
//! hot paths.
//!
//! `Sim(q, t)` and candidate prefiltering both intersect sorted sets
//! whose sizes can be wildly skewed (a 10-strand query procedure vs. a
//! 100k-key postings table). A plain linear merge is `O(|a| + |b|)`;
//! when one side is much smaller, galloping (exponential probe +
//! binary search, the timsort/roaring idiom) drops that to
//! `O(|small| · log |large|)`. Both strategies visit the common
//! elements in the same ascending order, so any fold over them — a
//! count, or an `f64` significance sum — is bit-identical to the naive
//! merge; the `merge_prop` property suite pins that equivalence.

/// Size ratio above which [`for_each_common`] gallops instead of
/// linear-merging. Galloping costs ~2·log₂(gap) comparisons per probe,
/// so it only wins once the large side is several times longer.
const SKEW: usize = 8;

/// First index `i` with `slice[i] >= target`, i.e. the insertion point
/// of `target` in a sorted slice, found by exponential search from the
/// front: doubling probes until overshoot, then a binary search of the
/// last gap. Cost is `O(log i)` — proportional to how far the answer
/// is, not to the slice length.
pub fn gallop_ge<T: Ord>(slice: &[T], target: &T) -> usize {
    let mut hi = 1usize;
    while hi <= slice.len() && slice[hi - 1] < *target {
        hi <<= 1;
    }
    // Invariant: everything before `lo` is < target, everything at
    // `hi..` (if any) is unknown but `slice[hi-1] >= target` when
    // `hi <= len`.
    let lo = hi >> 1;
    let hi = hi.min(slice.len());
    lo + slice[lo..hi].partition_point(|v| v < target)
}

/// Visit every element common to two sorted, deduplicated slices, in
/// ascending order — galloping through the larger side when the size
/// skew warrants it, linear-merging otherwise. The visit order (and
/// hence any accumulation order) is identical across both strategies.
pub fn for_each_common<T: Ord + Copy>(a: &[T], b: &[T], f: impl FnMut(T)) {
    if a.len() <= b.len() {
        merge_into(a, b, f);
    } else {
        merge_into(b, a, f);
    }
}

fn merge_into<T: Ord + Copy>(small: &[T], mut large: &[T], mut f: impl FnMut(T)) {
    if small.len() * SKEW < large.len() {
        for &x in small {
            let at = gallop_ge(large, &x);
            large = &large[at..];
            match large.first() {
                Some(&y) if y == x => f(x),
                Some(_) => {}
                None => return,
            }
        }
    } else {
        let (mut i, mut j) = (0, 0);
        while i < small.len() && j < large.len() {
            match small[i].cmp(&large[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    f(small[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
    }
}

/// `|a ∩ b|` over sorted, deduplicated slices.
pub fn intersect_count<T: Ord + Copy>(a: &[T], b: &[T]) -> usize {
    let mut n = 0;
    for_each_common(a, b, |_| n += 1);
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &[u64], b: &[u64]) -> Vec<u64> {
        a.iter().filter(|x| b.contains(x)).copied().collect()
    }

    #[test]
    fn gallop_ge_is_the_insertion_point() {
        let s = [2u64, 4, 6, 8, 10];
        for t in 0..=11 {
            assert_eq!(
                gallop_ge(&s, &t),
                s.partition_point(|&v| v < t),
                "target {t}"
            );
        }
        assert_eq!(gallop_ge(&[] as &[u64], &5), 0);
    }

    #[test]
    fn common_matches_naive_on_skewed_sets() {
        let large: Vec<u64> = (0..200).map(|i| i * 3).collect();
        let small: Vec<u64> = vec![3, 9, 100, 300, 597];
        let mut seen = Vec::new();
        for_each_common(&small, &large, |v| seen.push(v));
        assert_eq!(seen, naive(&small, &large));
        // Symmetric: argument order must not matter.
        let mut swapped = Vec::new();
        for_each_common(&large, &small, |v| swapped.push(v));
        assert_eq!(swapped, seen);
    }

    #[test]
    fn common_matches_naive_on_similar_sizes() {
        let a: Vec<u64> = vec![1, 2, 3, 5, 8, 13, 21];
        let b: Vec<u64> = vec![2, 3, 4, 5, 6, 21, 22];
        let mut seen = Vec::new();
        for_each_common(&a, &b, |v| seen.push(v));
        assert_eq!(seen, vec![2, 3, 5, 21]);
        assert_eq!(intersect_count(&a, &b), 4);
    }

    #[test]
    fn empty_and_disjoint_sets() {
        assert_eq!(intersect_count::<u64>(&[], &[1, 2]), 0);
        assert_eq!(intersect_count::<u64>(&[1, 2], &[]), 0);
        assert_eq!(intersect_count::<u64>(&[1, 3], &[2, 4]), 0);
    }
}
