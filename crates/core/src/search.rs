//! Executable-level search: FirmUp's outer loop.
//!
//! Given a query executable and a query procedure, search a set of
//! target executables; for each target, play the back-and-forth game
//! and decide whether the target *contains* the query procedure. The
//! paper validated findings semi-manually (§5.2); as the automated
//! stand-in we accept a game match whose similarity clears a
//! configurable fraction of the query's strand count.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use std::borrow::Borrow;

use crate::executor::{chunk_size, resolve_threads, run_units};
use crate::game::{play, play_recorded, GameConfig, GameEnd, GameResult, GameStats};
use crate::sim::{ExecutableRep, GlobalContext, ProcedureRep, StrandPostings};

/// Search configuration.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Game limits.
    pub game: GameConfig,
    /// Absolute minimum shared strands for acceptance.
    pub min_sim: usize,
    /// Minimum accepted fraction of the query's strand set: raw
    /// `sim / |q|` without a global context, or significance-weighted
    /// `wsim(q,t) / mass(q)` with one.
    pub accept_ratio: f64,
    /// Worker threads for corpus search (0 = all available cores).
    pub threads: usize,
    /// Optional trained global context: weights strands by rarity so
    /// that ubiquitous loop/compare strands cannot carry an acceptance.
    pub context: Option<std::sync::Arc<GlobalContext>>,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            game: GameConfig::default(),
            min_sim: 3,
            accept_ratio: 0.45,
            threads: 0,
            context: None,
        }
    }
}

/// Outcome of searching one target executable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TargetResult {
    /// Target executable id.
    pub target_id: String,
    /// The matched procedure (index, address, sim) when accepted.
    pub matched: Option<MatchInfo>,
    /// Steps the game needed (Fig. 9's metric).
    pub steps: usize,
    /// How the game ended.
    pub ended: GameEnd,
    /// Microseconds left on the binding wall-clock deadline when the
    /// game returned (negative when the game overran it). `None` when
    /// the search ran without a deadline — the only case covered by the
    /// determinism invariant, which is why this is recorded here and not
    /// derived at report time.
    pub deadline_margin_us: Option<i64>,
}

/// An accepted match.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchInfo {
    /// Procedure index in the target executable.
    pub index: usize,
    /// Procedure address.
    pub addr: u32,
    /// Shared strand count.
    pub sim: usize,
}

/// Scan-local telemetry accumulator: per-target counters and timing
/// histograms collected as plain fields, merged across workers, and
/// flushed to the global registry once per scan — so registry traffic
/// (a lock plus a `String` key per metric touch) stays O(1) in corpus
/// size instead of O(targets). Counter totals after
/// [`flush`](ScanStats::flush) are identical to the legacy per-target
/// recording.
#[derive(Debug, Default)]
pub struct ScanStats {
    targets: u64,
    accepted: u64,
    target_us: firmup_telemetry::LocalHistogram,
    game: GameStats,
}

impl ScanStats {
    /// An empty accumulator.
    pub fn new() -> ScanStats {
        ScanStats::default()
    }

    /// Targets searched since the last flush.
    pub fn targets(&self) -> u64 {
        self.targets
    }

    /// Fold another worker's accumulator into this one.
    pub fn merge(&mut self, other: &ScanStats) {
        self.targets += other.targets;
        self.accepted += other.accepted;
        self.target_us.merge(&other.target_us);
        self.game.merge(&other.game);
    }

    /// Merge everything into the global registry (a bounded handful of
    /// name resolutions, independent of corpus size) and clear.
    pub fn flush(&mut self) {
        if firmup_telemetry::enabled() {
            if self.targets > 0 {
                firmup_telemetry::add("search.targets", self.targets);
            }
            if self.accepted > 0 {
                firmup_telemetry::add("search.accepted", self.accepted);
            }
        }
        self.target_us.flush_into("search.target_us");
        self.game.flush();
        self.targets = 0;
        self.accepted = 0;
    }
}

/// Search a single target executable for `query.procedures[qv]`.
pub fn search_target(
    query: &ExecutableRep,
    qv: usize,
    target: &ExecutableRep,
    config: &SearchConfig,
) -> TargetResult {
    search_target_with(query, qv, target, config, None, None)
}

/// [`search_target`] with the scan-loop fast paths: `qp_mass` carries
/// the query procedure's context mass precomputed once per job (it is a
/// pure function of the query and the context, so recomputing it per
/// target is pure overhead), and `stats` redirects per-target telemetry
/// into a scan-local accumulator. With `stats == None` the legacy
/// direct-to-registry recording is preserved bit for bit.
fn search_target_with(
    query: &ExecutableRep,
    qv: usize,
    target: &ExecutableRep,
    config: &SearchConfig,
    qp_mass: Option<f64>,
    mut stats: Option<&mut ScanStats>,
) -> TargetResult {
    let started = firmup_telemetry::enabled().then(std::time::Instant::now);
    let result: GameResult = play_recorded(
        query,
        qv,
        target,
        &config.game,
        stats.as_deref_mut().map(|s| &mut s.game),
    );
    let matched = result.query_match.and_then(|(ti, s)| {
        let qp = &query.procedures[qv];
        let tp = &target.procedures[ti];
        let fraction_ok = match &config.context {
            Some(ctx) => {
                let mass = qp_mass.unwrap_or_else(|| ctx.mass(qp));
                mass <= f64::EPSILON || ctx.weighted_sim(qp, tp) >= config.accept_ratio * mass
            }
            None => (s as f64) >= config.accept_ratio * qp.strand_count() as f64,
        };
        let accepted = s >= config.min_sim && fraction_ok;
        accepted.then_some(MatchInfo {
            index: ti,
            addr: tp.addr,
            sim: s,
        })
    });
    if let Some(t0) = started {
        let us = t0.elapsed().as_micros() as u64;
        match stats {
            Some(st) => {
                st.targets += 1;
                if matched.is_some() {
                    st.accepted += 1;
                }
                st.target_us.record(us);
            }
            None => {
                firmup_telemetry::observe("search.target_us", us);
                firmup_telemetry::incr("search.targets");
                if matched.is_some() {
                    firmup_telemetry::incr("search.accepted");
                }
            }
        }
    }
    let deadline_margin_us = config.game.deadline.map(|d| {
        let now = Instant::now();
        if d >= now {
            i64::try_from((d - now).as_micros()).unwrap_or(i64::MAX)
        } else {
            -i64::try_from((now - d).as_micros()).unwrap_or(i64::MAX)
        }
    });
    TargetResult {
        target_id: target.id.clone(),
        matched,
        steps: result.steps,
        ended: result.ended,
        deadline_margin_us,
    }
}

/// Search many targets in parallel over the work-stealing executor
/// ([`crate::executor::run_units`], matching the paper's threaded setup
/// on a 72-thread Xeon). Targets are chunked for scheduling; results
/// come back in target order for every thread count.
///
/// Targets are taken through [`Borrow`], so both owned slices
/// (`&[ExecutableRep]`) and borrowed candidate lists
/// (`&[&ExecutableRep]`, e.g. a prefiltered subset of a loaded corpus
/// index) work without cloning a single rep.
pub fn search_corpus<T: Borrow<ExecutableRep> + Sync>(
    query: &ExecutableRep,
    qv: usize,
    targets: &[T],
    config: &SearchConfig,
) -> Vec<TargetResult> {
    let _span = firmup_telemetry::span!("search");
    let threads = resolve_threads(config.threads);
    run_units(
        targets.len(),
        threads,
        chunk_size(targets.len(), threads),
        |i| search_target(query, qv, targets[i].borrow(), config),
    )
}

/// Candidate prefiltering over a strand postings table: rank executables
/// by (optionally significance-weighted) strand overlap with the query
/// procedure and keep the top `k`.
///
/// This is the corpus-index fast path: instead of playing the full
/// back-and-forth game against every executable in a 2,000-image corpus,
/// the scan walks only the posting lists of the query's strands —
/// touching exactly the executables that share at least one canonical
/// strand — and plays the game against the `k` best. With a
/// [`GlobalContext`], each shared strand contributes its significance
/// weight (so ubiquitous prologue strands cannot carry a candidate);
/// without one, every shared strand counts 1.0.
///
/// Returns `(executable index, overlap score)` pairs, best first, ties
/// broken toward the lower index for determinism. `k == 0` is treated
/// as "no limit" (rank everything that overlaps). Executables sharing
/// no strand with the query are never returned — the game cannot accept
/// them anyway ([`SearchConfig::min_sim`] ≥ 1).
///
/// Telemetry: each invocation adds the surviving candidate count to
/// `prefilter.candidates` and counts `prefilter.invocations`.
pub fn prefilter_candidates(
    query: &ProcedureRep,
    postings: &StrandPostings,
    context: Option<&GlobalContext>,
    k: usize,
) -> Vec<(usize, f64)> {
    let mut overlap: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
    // Both the query's strand set and the postings key array are sorted,
    // so one forward galloping cursor finds every query strand's slot —
    // O(|q| log |keys|) worst case instead of a cold binary search per
    // strand, and nearly linear when the query's strands cluster.
    let keys = postings.keys();
    let mut base = 0usize;
    for &strand in &query.strands {
        let at = base + crate::merge::gallop_ge(&keys[base..], &strand);
        base = at;
        if keys.get(at) != Some(&strand) {
            continue;
        }
        base = at + 1;
        let w = context.map_or(1.0, |c| c.weight(strand));
        // A strand counts once per executable, no matter how many of its
        // procedures contain it — mirroring set-based `Sim`.
        let mut last: Option<u32> = None;
        for &(exe, _proc) in postings.list_at(at) {
            if last != Some(exe) {
                *overlap.entry(exe).or_default() += w;
                last = Some(exe);
            }
        }
    }
    let mut ranked: Vec<(usize, f64)> = overlap
        .into_iter()
        .map(|(exe, score)| (exe as usize, score))
        .collect();
    ranked.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    if k > 0 {
        ranked.truncate(k);
    }
    firmup_telemetry::incr("prefilter.invocations");
    firmup_telemetry::add("prefilter.candidates", ranked.len() as u64);
    ranked
}

// `TargetResult` needs Clone for the slot vector above.
impl TargetResult {
    /// Whether the search reported a (claimed) occurrence.
    pub fn found(&self) -> bool {
        self.matched.is_some()
    }
}

/// Provenance for one accepted finding: why the scan believes this
/// target procedure is the query (`scan --explain`). Every field is a
/// pure function of the input corpus and configuration, so explain
/// records inherit the scan determinism invariant — byte-identical
/// across thread counts and cold vs. warm — except `deadline_margin_us`,
/// which only exists on budget-bounded scans (already outside the
/// invariant).
#[derive(Debug, Clone, PartialEq)]
pub struct Explain {
    /// 1-based rank of the target among the prefiltered candidates, if
    /// a candidate prefilter ran.
    pub prefilter_rank: Option<usize>,
    /// The target's strand-overlap prefilter score.
    pub prefilter_score: Option<f64>,
    /// How many candidates the prefilter ranked in total.
    pub prefilter_pool: Option<usize>,
    /// Strand count of the query procedure.
    pub query_strands: usize,
    /// Strand count of the matched target procedure.
    pub target_strands: usize,
    /// Shared canonical strands (the game's `sim`).
    pub shared_strands: usize,
    /// Acceptance threshold the match had to clear
    /// ([`SearchConfig::accept_ratio`]).
    pub accept_ratio: f64,
    /// Significance-weighted similarity, when a trained
    /// [`GlobalContext`] weighted the acceptance.
    pub weighted_sim: Option<f64>,
    /// Total significance mass of the query procedure under that
    /// context.
    pub query_mass: Option<f64>,
    /// Back-and-forth rounds the game needed.
    pub game_steps: usize,
    /// How the game ended ([`GameEnd::label`]).
    pub game_ended: GameEnd,
    /// Wall-clock margin to the binding deadline, from
    /// [`TargetResult::deadline_margin_us`].
    pub deadline_margin_us: Option<i64>,
}

impl Explain {
    /// Assemble the provenance of an accepted match from the search
    /// inputs that produced it. Prefilter provenance is attached
    /// separately via [`Explain::with_prefilter`].
    pub fn for_match(
        query: &ExecutableRep,
        qv: usize,
        target: &ExecutableRep,
        m: &MatchInfo,
        r: &TargetResult,
        config: &SearchConfig,
    ) -> Explain {
        let qp = &query.procedures[qv];
        let tp = &target.procedures[m.index];
        let (weighted_sim, query_mass) = match &config.context {
            Some(ctx) => (Some(ctx.weighted_sim(qp, tp)), Some(ctx.mass(qp))),
            None => (None, None),
        };
        Explain {
            prefilter_rank: None,
            prefilter_score: None,
            prefilter_pool: None,
            query_strands: qp.strand_count(),
            target_strands: tp.strand_count(),
            shared_strands: m.sim,
            accept_ratio: config.accept_ratio,
            weighted_sim,
            query_mass,
            game_steps: r.steps,
            game_ended: r.ended,
            deadline_margin_us: r.deadline_margin_us,
        }
    }

    /// Attach prefilter provenance: the target's 1-based `rank` and
    /// overlap `score` among a ranked pool of `pool` candidates.
    #[must_use]
    pub fn with_prefilter(mut self, rank: usize, score: f64, pool: usize) -> Explain {
        self.prefilter_rank = Some(rank);
        self.prefilter_score = Some(score);
        self.prefilter_pool = Some(pool);
        self
    }

    /// Render as a JSON object (the `explain` field of a JSON finding).
    pub fn to_json(&self) -> firmup_telemetry::json::Json {
        use firmup_telemetry::json::Json;
        let mut obj: Vec<(String, Json)> = Vec::new();
        let mut num = |k: &str, v: f64| obj.push((k.to_string(), Json::Num(v)));
        if let Some(r) = self.prefilter_rank {
            num("prefilter_rank", r as f64);
        }
        if let Some(s) = self.prefilter_score {
            num("prefilter_score", s);
        }
        if let Some(p) = self.prefilter_pool {
            num("prefilter_pool", p as f64);
        }
        num("query_strands", self.query_strands as f64);
        num("target_strands", self.target_strands as f64);
        num("shared_strands", self.shared_strands as f64);
        num("accept_ratio", self.accept_ratio);
        if let Some(w) = self.weighted_sim {
            num("weighted_sim", w);
        }
        if let Some(m) = self.query_mass {
            num("query_mass", m);
        }
        num("game_steps", self.game_steps as f64);
        obj.push((
            "game_ended".to_string(),
            Json::Str(self.game_ended.label().to_string()),
        ));
        if let Some(us) = self.deadline_margin_us {
            obj.push(("deadline_margin_us".to_string(), Json::Num(us as f64)));
        }
        Json::Obj(obj)
    }

    /// Render as indented human-readable lines (the `--explain` text
    /// output under a finding).
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if let (Some(rank), Some(score), Some(pool)) = (
            self.prefilter_rank,
            self.prefilter_score,
            self.prefilter_pool,
        ) {
            let _ = writeln!(
                out,
                "    prefilter: rank {rank}/{pool} (overlap score {score:.2})"
            );
        }
        let _ = write!(
            out,
            "    strands: {} shared of {} query / {} target (accept ratio {:.2})",
            self.shared_strands, self.query_strands, self.target_strands, self.accept_ratio
        );
        out.push('\n');
        if let (Some(w), Some(m)) = (self.weighted_sim, self.query_mass) {
            let _ = writeln!(out, "    weighted: wsim {w:.3} of query mass {m:.3}");
        }
        let _ = write!(
            out,
            "    game: {} step(s), ended {}",
            self.game_steps,
            self.game_ended.label()
        );
        out.push('\n');
        if let Some(us) = self.deadline_margin_us {
            let _ = writeln!(out, "    deadline margin: {us} us");
        }
        out
    }
}

/// Wall-clock and step budgets for a scan, applied at three scopes
/// (per-game, per-target-executable, whole-scan). `None` means
/// unbounded; the default is fully unbounded, matching the legacy
/// [`search_corpus`] behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanBudget {
    /// Wall-clock bound for a single back-and-forth game.
    pub per_game: Option<Duration>,
    /// Wall-clock bound for all work on one target executable.
    pub per_target: Option<Duration>,
    /// Wall-clock bound for the whole scan.
    pub total: Option<Duration>,
    /// Total game steps across the whole scan (a deterministic budget
    /// for reproducible degradation, unlike wall-clock bounds).
    pub max_steps_total: Option<u64>,
    /// Absolute wall-clock deadline for the whole scan. Unlike `total`
    /// (which is measured from when the scan loop itself starts), this
    /// is an externally anchored instant — set it to charge setup work
    /// (index load, queue wait in a server) against the caller's
    /// deadline. When both are set the earlier one binds.
    pub deadline: Option<Instant>,
}

impl ScanBudget {
    /// A budget with no bounds set.
    pub fn unlimited() -> ScanBudget {
        ScanBudget::default()
    }

    /// Whether any bound is configured.
    pub fn is_bounded(&self) -> bool {
        *self != ScanBudget::default()
    }

    /// Convert the relative `total` bound into an absolute [`deadline`]
    /// anchored at `now`, so everything that happens after `now` — index
    /// load, queue wait, lift — counts against the whole-scan allowance
    /// instead of restarting the clock when the scan loop is reached.
    /// Keeps the earlier instant when a deadline is already set.
    ///
    /// [`deadline`]: ScanBudget::deadline
    #[must_use]
    pub fn anchored(mut self, now: Instant) -> ScanBudget {
        if let Some(total) = self.total.take() {
            let d = now + total;
            self.deadline = Some(self.deadline.map_or(d, |e| e.min(d)));
        }
        self
    }

    /// The binding wall-clock deadline for a game starting now, given
    /// when the scan and the current target started — the earliest of
    /// the three scoped deadlines, tagged with which bound it came from.
    fn game_deadline(
        &self,
        scan_start: Instant,
        target_start: Instant,
    ) -> Option<(Instant, BudgetReason)> {
        let mut best: Option<(Instant, BudgetReason)> = None;
        let mut consider = |deadline: Option<Instant>, reason: BudgetReason| {
            if let Some(d) = deadline {
                if best.is_none_or(|(b, _)| d < b) {
                    best = Some((d, reason));
                }
            }
        };
        consider(
            self.per_game.map(|d| Instant::now() + d),
            BudgetReason::GameDeadline,
        );
        consider(
            self.per_target.map(|d| target_start + d),
            BudgetReason::TargetDeadline,
        );
        consider(
            self.total.map(|d| scan_start + d),
            BudgetReason::ScanDeadline,
        );
        consider(self.deadline, BudgetReason::ScanDeadline);
        best
    }
}

/// Which [`ScanBudget`] bound fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetReason {
    /// [`ScanBudget::per_game`] expired mid-game.
    GameDeadline,
    /// [`ScanBudget::per_target`] expired for this target.
    TargetDeadline,
    /// [`ScanBudget::total`] expired for the whole scan.
    ScanDeadline,
    /// [`ScanBudget::max_steps_total`] was spent.
    StepBudget,
}

impl fmt::Display for BudgetReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BudgetReason::GameDeadline => "per-game deadline",
            BudgetReason::TargetDeadline => "per-target deadline",
            BudgetReason::ScanDeadline => "scan deadline",
            BudgetReason::StepBudget => "step budget",
        })
    }
}

/// Fault-tolerant outcome of one target: completed, poisoned by a
/// contained panic, or degraded by a budget bound. The scan always
/// produces exactly one outcome per target — a pathological target can
/// cost at most its own slot.
#[derive(Debug, Clone)]
pub enum TargetOutcome {
    /// The game ran to a natural end.
    Completed(TargetResult),
    /// The per-target work panicked; the unwind was contained.
    Poisoned {
        /// Target executable id.
        target_id: String,
        /// Rendered panic payload.
        panic: String,
    },
    /// A budget bound fired. `partial` carries the degraded result when
    /// the game got far enough to report one.
    BudgetExceeded {
        /// Target executable id.
        target_id: String,
        /// Partial result, when the interrupted game produced one.
        partial: Option<TargetResult>,
        /// Which bound fired.
        reason: BudgetReason,
    },
}

impl TargetOutcome {
    /// The target executable id.
    pub fn target_id(&self) -> &str {
        match self {
            TargetOutcome::Completed(r) => &r.target_id,
            TargetOutcome::Poisoned { target_id, .. }
            | TargetOutcome::BudgetExceeded { target_id, .. } => target_id,
        }
    }

    /// The underlying result, if any (complete or partial).
    pub fn result(&self) -> Option<&TargetResult> {
        match self {
            TargetOutcome::Completed(r) => Some(r),
            TargetOutcome::BudgetExceeded { partial, .. } => partial.as_ref(),
            TargetOutcome::Poisoned { .. } => None,
        }
    }

    /// Whether a (possibly partial) result reports an occurrence.
    pub fn found(&self) -> bool {
        self.result().is_some_and(TargetResult::found)
    }
}

/// The report of a fault-tolerant corpus search: one outcome per
/// target, plus casualty counts.
#[derive(Debug, Clone, Default)]
pub struct ScanReport {
    /// One outcome per target, in target order.
    pub outcomes: Vec<TargetOutcome>,
}

impl ScanReport {
    /// Completed (non-degraded) results.
    pub fn completed(&self) -> impl Iterator<Item = &TargetResult> {
        self.outcomes.iter().filter_map(|o| match o {
            TargetOutcome::Completed(r) => Some(r),
            _ => None,
        })
    }

    /// Number of targets whose work panicked.
    pub fn poisoned(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o, TargetOutcome::Poisoned { .. }))
            .count()
    }

    /// Number of targets degraded by a budget bound.
    pub fn budget_exceeded(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o, TargetOutcome::BudgetExceeded { .. }))
            .count()
    }

    /// All results, complete or partial, in target order.
    pub fn results(&self) -> impl Iterator<Item = &TargetResult> {
        self.outcomes.iter().filter_map(TargetOutcome::result)
    }
}

/// Play one target under budget bounds, containing panics. The per-game
/// deadline is computed *here*, immediately before the game starts —
/// never once per worker or per unit — so a slow sibling game on the
/// same worker can never eat a later game's `per_game` allowance.
#[allow(clippy::too_many_arguments)]
fn run_one_target(
    query: &ExecutableRep,
    qv: usize,
    target: &ExecutableRep,
    config: &SearchConfig,
    budget: &ScanBudget,
    scan_start: Instant,
    steps_spent: &AtomicU64,
    qp_mass: Option<f64>,
    stats: Option<&mut ScanStats>,
) -> TargetOutcome {
    // Deterministic bound first: refuse to start once the scan-wide
    // step budget is spent.
    if budget
        .max_steps_total
        .is_some_and(|max| steps_spent.load(Ordering::Relaxed) >= max)
    {
        firmup_telemetry::incr("scan.budget_exceeded");
        return TargetOutcome::BudgetExceeded {
            target_id: target.id.clone(),
            partial: None,
            reason: BudgetReason::StepBudget,
        };
    }
    let target_start = Instant::now();
    // A scan/target deadline already in the past: report without
    // playing at all.
    let deadline = budget.game_deadline(scan_start, target_start);
    if let Some((d, reason)) = deadline {
        if d <= target_start {
            firmup_telemetry::incr("scan.budget_exceeded");
            return TargetOutcome::BudgetExceeded {
                target_id: target.id.clone(),
                partial: None,
                reason,
            };
        }
    }
    let mut cfg = config.clone();
    cfg.game.deadline = deadline.map(|(d, _)| d);
    let played = catch_unwind(AssertUnwindSafe(|| {
        search_target_with(query, qv, target, &cfg, qp_mass, stats)
    }));
    match played {
        Ok(r) => {
            steps_spent.fetch_add(r.steps as u64, Ordering::Relaxed);
            if r.ended == GameEnd::DeadlineExceeded {
                firmup_telemetry::incr("scan.budget_exceeded");
                let reason = deadline.map_or(BudgetReason::GameDeadline, |(_, r)| r);
                TargetOutcome::BudgetExceeded {
                    target_id: target.id.clone(),
                    partial: Some(r),
                    reason,
                }
            } else {
                TargetOutcome::Completed(r)
            }
        }
        Err(payload) => {
            firmup_telemetry::incr("scan.targets_poisoned");
            TargetOutcome::Poisoned {
                target_id: target.id.clone(),
                panic: crate::error::panic_message(payload.as_ref()),
            }
        }
    }
}

/// One fine-grained scan work unit: a query job plus the shard of
/// candidate targets it plays against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanUnit {
    /// Index into the job list passed to [`scan_units`].
    pub job: usize,
    /// Indices into the corpus slice passed to [`scan_units`] —
    /// typically one candidate shard of a prefiltered list.
    pub targets: Vec<usize>,
}

/// Execute fine-grained (query × candidate-shard) scan units over the
/// work-stealing executor, sharing one [`ScanBudget`] across all units:
/// the scan deadline and the step budget are global, while per-target
/// and per-game deadlines are re-derived immediately before every
/// single game — a slow sibling game on the same worker can never eat a
/// later game's allowance. Returns one outcome vector per unit,
/// in unit order — combine a job's vectors with [`merge_outcomes`] for
/// an arrival-order-free report.
///
/// `stop` is polled before each unit starts; once it returns `true`
/// remaining units yield empty outcome vectors (the cooperative-cancel
/// path behind `^C`). A cancelled scan naturally loses the determinism
/// guarantee, exactly like a wall-clock budget.
pub fn scan_units<T: Borrow<ExecutableRep> + Sync>(
    jobs: &[(&ExecutableRep, usize)],
    units: &[ScanUnit],
    corpus: &[T],
    config: &SearchConfig,
    budget: &ScanBudget,
    stop: &(dyn Fn() -> bool + Sync),
) -> Vec<Vec<TargetOutcome>> {
    let _span = firmup_telemetry::span!("search");
    let scan_start = Instant::now();
    let steps_spent = AtomicU64::new(0);
    // The query's significance mass is a pure function of (job, context):
    // compute it once per job here instead of once per target inside the
    // acceptance check.
    let job_mass: Option<Vec<f64>> = config.context.as_ref().map(|ctx| {
        jobs.iter()
            .map(|&(q, qv)| ctx.mass(&q.procedures[qv]))
            .collect()
    });
    let stats = std::sync::Mutex::new(ScanStats::new());
    let out = run_units(units.len(), resolve_threads(config.threads), 1, |u| {
        if stop() {
            return Vec::new();
        }
        let unit = &units[u];
        let (query, qv) = jobs[unit.job];
        let qp_mass = job_mass.as_ref().map(|m| m[unit.job]);
        let mut local = ScanStats::new();
        let outcomes: Vec<TargetOutcome> = unit
            .targets
            .iter()
            .map(|&t| {
                run_one_target(
                    query,
                    qv,
                    corpus[t].borrow(),
                    config,
                    budget,
                    scan_start,
                    &steps_spent,
                    qp_mass,
                    Some(&mut local),
                )
            })
            .collect();
        stats.lock().expect("scan stats lock").merge(&local);
        outcomes
    });
    stats.into_inner().expect("scan stats lock").flush();
    out
}

/// Deterministically merge one query job's per-unit outcomes: findings
/// first, ranked by (sim descending, target id, match address), then
/// the non-findings by target id. The order is a pure function of
/// result content and stable identifiers — never of unit arrival order
/// — which is what keeps `--threads N` byte-identical for every `N`.
pub fn merge_outcomes(per_unit: Vec<Vec<TargetOutcome>>) -> Vec<TargetOutcome> {
    fn key(o: &TargetOutcome) -> (u8, std::cmp::Reverse<usize>, &str, u32) {
        match o.result().and_then(|r| r.matched.as_ref()) {
            Some(m) => (0, std::cmp::Reverse(m.sim), o.target_id(), m.addr),
            None => (1, std::cmp::Reverse(0), o.target_id(), 0),
        }
    }
    let mut all: Vec<TargetOutcome> = per_unit.into_iter().flatten().collect();
    all.sort_by(|a, b| key(a).cmp(&key(b)));
    all
}

/// Fault-tolerant corpus search: like [`search_corpus`] but each target
/// is isolated — a panic poisons only its own slot ([`TargetOutcome::
/// Poisoned`]), and [`ScanBudget`] bounds degrade targets gracefully
/// instead of hanging the scan. Implemented as a single-job [`scan_units`]
/// call whose units are contiguous target chunks, so outcomes keep
/// target order. Telemetry: contained panics count in
/// `scan.targets_poisoned`, budget casualties in `scan.budget_exceeded`.
pub fn search_corpus_robust<T: Borrow<ExecutableRep> + Sync>(
    query: &ExecutableRep,
    qv: usize,
    targets: &[T],
    config: &SearchConfig,
    budget: &ScanBudget,
) -> ScanReport {
    let chunk = chunk_size(targets.len(), resolve_threads(config.threads));
    let units: Vec<ScanUnit> = (0..targets.len())
        .step_by(chunk)
        .map(|start| ScanUnit {
            job: 0,
            targets: (start..(start + chunk).min(targets.len())).collect(),
        })
        .collect();
    let per_unit = scan_units(&[(query, qv)], &units, targets, config, budget, &|| false);
    ScanReport {
        outcomes: per_unit.into_iter().flatten().collect(),
    }
}

/// Top-k candidates within one target: repeatedly play the game,
/// excluding previously returned procedures. The paper measures the
/// human-effort tradeoff of top-k result lists in §5.3 (Fig. 9's
/// discussion); FirmUp itself returns one match per game, so k > 1 is
/// obtained by re-playing on the residual executable.
pub fn top_k(
    query: &ExecutableRep,
    qv: usize,
    target: &ExecutableRep,
    k: usize,
    config: &GameConfig,
) -> Vec<MatchInfo> {
    let mut out = Vec::new();
    let mut residual = target.clone();
    let mut removed: Vec<usize> = Vec::new(); // original indices, sorted
    for _ in 0..k {
        let g = play(query, qv, &residual, config);
        let Some((ti, s)) = g.query_match else { break };
        // Map the residual index back to the original executable.
        let mut orig = ti;
        for &r in &removed {
            if r <= orig {
                orig += 1;
            }
        }
        out.push(MatchInfo {
            index: orig,
            addr: residual.procedures[ti].addr,
            sim: s,
        });
        residual.procedures.remove(ti);
        let insert_at = removed.partition_point(|&r| r <= orig);
        removed.insert(insert_at, orig);
        if residual.procedures.is_empty() {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::ProcedureRep;
    use firmup_isa::Arch;

    fn exec(id: &str, procs: &[&[u64]]) -> ExecutableRep {
        ExecutableRep {
            id: id.into(),
            arch: Arch::Mips32,
            procedures: procs
                .iter()
                .enumerate()
                .map(|(i, strands)| {
                    let mut s = strands.to_vec();
                    s.sort_unstable();
                    s.dedup();
                    ProcedureRep {
                        addr: 0x1000 + (i as u32) * 0x100,
                        name: None,
                        strands: s,
                        block_count: 1,
                        size: 16,
                        interned: None,
                    }
                })
                .collect(),
        }
    }

    #[test]
    fn accepts_strong_matches_rejects_weak() {
        let q = exec("q", &[&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]]);
        let strong = exec("strong", &[&[1, 2, 3, 4, 5, 6, 7, 99]]);
        let weak = exec("weak", &[&[1, 200, 300]]);
        let config = SearchConfig::default();
        assert!(search_target(&q, 0, &strong, &config).found());
        assert!(
            !search_target(&q, 0, &weak, &config).found(),
            "1/10 shared is below ratio"
        );
    }

    #[test]
    fn corpus_search_parallel_matches_serial() {
        let q = exec("q", &[&[1, 2, 3, 4, 5, 6]]);
        let targets: Vec<ExecutableRep> = (0..24)
            .map(|i| {
                if i % 3 == 0 {
                    exec(&format!("t{i}"), &[&[1, 2, 3, 4, 5, 88], &[7, 8]])
                } else {
                    exec(&format!("t{i}"), &[&[100 + i as u64, 200]])
                }
            })
            .collect();
        let serial = SearchConfig {
            threads: 1,
            ..SearchConfig::default()
        };
        let parallel = SearchConfig {
            threads: 4,
            ..SearchConfig::default()
        };
        let a = search_corpus(&q, 0, &targets, &serial);
        let b = search_corpus(&q, 0, &targets, &parallel);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.target_id, y.target_id);
            assert_eq!(x.matched, y.matched);
        }
        assert_eq!(a.iter().filter(|r| r.found()).count(), 8);
    }

    #[test]
    fn top_k_returns_decreasing_distinct_candidates() {
        let q = exec("q", &[&[1, 2, 3, 4, 5, 6]]);
        let t = exec(
            "t",
            &[
                &[1, 2, 3, 4, 5, 9],
                &[1, 2, 3, 7, 8],
                &[1, 2, 10],
                &[50, 51],
            ],
        );
        let hits = crate::search::top_k(&q, 0, &t, 3, &crate::game::GameConfig::default());
        assert_eq!(hits.len(), 3);
        assert_eq!(hits[0].index, 0);
        assert_eq!(hits[1].index, 1);
        assert_eq!(hits[2].index, 2);
        assert!(hits[0].sim >= hits[1].sim && hits[1].sim >= hits[2].sim);
        // Addresses refer to the *original* executable.
        assert_eq!(hits[2].addr, t.procedures[2].addr);
    }

    #[test]
    fn top_k_stops_when_no_more_candidates() {
        let q = exec("q", &[&[1, 2]]);
        let t = exec("t", &[&[1, 2], &[99]]);
        let hits = crate::search::top_k(&q, 0, &t, 5, &crate::game::GameConfig::default());
        assert_eq!(hits.len(), 1, "the 99-only procedure shares nothing");
    }

    #[test]
    fn empty_targets_ok() {
        let q = exec("q", &[&[1]]);
        let empty: &[ExecutableRep] = &[];
        assert!(search_corpus(&q, 0, empty, &SearchConfig::default()).is_empty());
    }

    #[test]
    fn robust_search_matches_legacy_on_healthy_corpus() {
        let q = exec("q", &[&[1, 2, 3, 4, 5, 6]]);
        let targets: Vec<ExecutableRep> = (0..12)
            .map(|i| {
                if i % 3 == 0 {
                    exec(&format!("t{i}"), &[&[1, 2, 3, 4, 5, 88], &[7, 8]])
                } else {
                    exec(&format!("t{i}"), &[&[100 + i as u64, 200]])
                }
            })
            .collect();
        let config = SearchConfig {
            threads: 4,
            ..SearchConfig::default()
        };
        let legacy = search_corpus(&q, 0, &targets, &config);
        let report = search_corpus_robust(&q, 0, &targets, &config, &ScanBudget::unlimited());
        assert_eq!(report.outcomes.len(), legacy.len());
        assert_eq!(report.poisoned(), 0);
        assert_eq!(report.budget_exceeded(), 0);
        for (o, r) in report.outcomes.iter().zip(&legacy) {
            assert_eq!(o.target_id(), r.target_id);
            assert_eq!(o.result().and_then(|x| x.matched.clone()), r.matched);
        }
    }

    #[test]
    fn panicking_targets_poison_only_their_slot() {
        // An out-of-range query index makes `play` panic for every
        // target; the robust scan must contain each unwind and still
        // produce one outcome per target.
        let q = exec("q", &[&[1, 2, 3]]);
        let targets = vec![exec("a", &[&[1, 2]]), exec("b", &[&[3]])];
        let config = SearchConfig {
            threads: 2,
            ..SearchConfig::default()
        };
        let report = search_corpus_robust(&q, 99, &targets, &config, &ScanBudget::unlimited());
        assert_eq!(report.outcomes.len(), 2);
        assert_eq!(report.poisoned(), 2);
        for (o, id) in report.outcomes.iter().zip(["a", "b"]) {
            assert_eq!(o.target_id(), id);
            match o {
                TargetOutcome::Poisoned { panic, .. } => {
                    assert!(panic.contains("out of range"), "{panic}");
                }
                other => panic!("expected Poisoned, got {other:?}"),
            }
        }
    }

    #[test]
    fn spent_step_budget_degrades_remaining_targets() {
        let q = exec("q", &[&[1, 2, 3]]);
        let targets = vec![exec("a", &[&[1, 2, 3]]), exec("b", &[&[1, 2, 3]])];
        let config = SearchConfig {
            threads: 1,
            ..SearchConfig::default()
        };
        let budget = ScanBudget {
            max_steps_total: Some(0),
            ..ScanBudget::default()
        };
        let report = search_corpus_robust(&q, 0, &targets, &config, &budget);
        assert_eq!(report.budget_exceeded(), 2);
        for o in &report.outcomes {
            assert!(matches!(
                o,
                TargetOutcome::BudgetExceeded {
                    reason: BudgetReason::StepBudget,
                    partial: None,
                    ..
                }
            ));
        }
    }

    #[test]
    fn expired_scan_deadline_reports_partial_outcomes() {
        let q = exec("q", &[&[1, 2, 3]]);
        let targets = vec![exec("a", &[&[1, 2, 3]])];
        let budget = ScanBudget {
            total: Some(Duration::ZERO),
            ..ScanBudget::default()
        };
        let config = SearchConfig {
            threads: 1,
            ..SearchConfig::default()
        };
        let report = search_corpus_robust(&q, 0, &targets, &config, &budget);
        assert_eq!(report.outcomes.len(), 1);
        match &report.outcomes[0] {
            TargetOutcome::BudgetExceeded { reason, .. } => {
                assert_eq!(*reason, BudgetReason::ScanDeadline);
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
        assert!(!report.outcomes[0].found());
    }

    #[test]
    fn slow_game_exceeds_only_its_own_unit_under_parallel_workers() {
        // Regression test for per-game deadline scoping: the deadline
        // must be derived immediately before *each* game, never once
        // per worker. A single pathologically slow target must come
        // back BudgetExceeded while every sibling unit on the same
        // worker pool completes.
        //
        // The slow game is a rival cascade: the query has procedures
        // q_k sharing `common` plus k extra strands with every target
        // procedure, so the back-match from any target prefers the
        // highest-index unmatched q over q_0 — each step counters the
        // last, and with ~32k-strand sets every step costs millions of
        // merge operations, far beyond a 1 ms game allowance.
        let common: Vec<u64> = (0..32_768).collect();
        let extras: Vec<u64> = (900_000..900_040).collect();
        let proc_with = |addr: u32, strands: Vec<u64>| ProcedureRep {
            addr,
            name: None,
            strands,
            block_count: 1,
            size: 16,
            interned: None,
        };
        let query = ExecutableRep {
            id: "q".into(),
            arch: Arch::Mips32,
            procedures: (0..40)
                .map(|k| {
                    let mut s = common.clone();
                    s.extend_from_slice(&extras[..k]);
                    proc_with(0x1000 + k as u32, s)
                })
                .collect(),
        };
        let slow = ExecutableRep {
            id: "slow".into(),
            arch: Arch::Mips32,
            procedures: (0..40)
                .map(|j| {
                    let mut s = common.clone();
                    s.extend_from_slice(&extras);
                    proc_with(0x2000 + j as u32, s)
                })
                .collect(),
        };
        // Fast siblings: one tiny procedure each. Their games accept on
        // the first step (sim ties break toward q_0), so they finish
        // with QueryMatched no matter how slow the wall clock is.
        let fast = |i: u32| ExecutableRep {
            id: format!("fast{i}"),
            arch: Arch::Mips32,
            procedures: vec![proc_with(0x3000 + i, vec![1, 2, 3])],
        };
        let targets = vec![slow, fast(0), fast(1), fast(2)];
        let config = SearchConfig {
            threads: 2,
            ..SearchConfig::default()
        };
        let budget = ScanBudget {
            per_game: Some(Duration::from_millis(1)),
            ..ScanBudget::default()
        };
        let report = search_corpus_robust(&query, 0, &targets, &config, &budget);
        assert_eq!(report.outcomes.len(), 4);
        match &report.outcomes[0] {
            TargetOutcome::BudgetExceeded { reason, .. } => {
                assert_eq!(*reason, BudgetReason::GameDeadline);
            }
            other => panic!("slow target should exceed its game deadline, got {other:?}"),
        }
        for o in &report.outcomes[1..] {
            assert!(
                matches!(o, TargetOutcome::Completed(_)),
                "sibling unit degraded by a neighbour's slow game: {o:?}"
            );
        }
    }

    #[test]
    fn merge_outcomes_is_independent_of_unit_split_and_arrival() {
        let done = |id: &str, sim: Option<(usize, u32)>| {
            TargetOutcome::Completed(TargetResult {
                target_id: id.into(),
                matched: sim.map(|(s, addr)| MatchInfo {
                    index: 0,
                    addr,
                    sim: s,
                }),
                steps: 1,
                ended: GameEnd::QueryMatched,
                deadline_margin_us: None,
            })
        };
        let a = done("t/a", Some((9, 0x10)));
        let b = done("t/b", Some((9, 0x20))); // ties with a on sim → id order
        let c = done("t/c", Some((12, 0x30))); // best sim → first
        let d = done("t/d", None); // non-finding → after all findings
                                   // Two different unit splits, each in a different arrival order.
        let merged1 = merge_outcomes(vec![
            vec![d.clone(), a.clone()],
            vec![b.clone()],
            vec![c.clone()],
        ]);
        let merged2 = merge_outcomes(vec![vec![c.clone(), b.clone(), a.clone(), d.clone()]]);
        let ids = |v: &[TargetOutcome]| -> Vec<String> {
            v.iter().map(|o| o.target_id().to_string()).collect()
        };
        assert_eq!(ids(&merged1), vec!["t/c", "t/a", "t/b", "t/d"]);
        assert_eq!(ids(&merged1), ids(&merged2));
    }

    #[test]
    fn anchored_budget_converts_total_into_earliest_deadline() {
        let now = Instant::now();
        // total becomes an absolute deadline anchored at `now`.
        let b = ScanBudget {
            total: Some(Duration::from_secs(5)),
            ..ScanBudget::default()
        }
        .anchored(now);
        assert_eq!(b.total, None);
        assert_eq!(b.deadline, Some(now + Duration::from_secs(5)));
        assert!(b.is_bounded());
        // An earlier pre-existing deadline wins; a later one is tightened.
        let early = now + Duration::from_secs(1);
        let b = ScanBudget {
            total: Some(Duration::from_secs(5)),
            deadline: Some(early),
            ..ScanBudget::default()
        }
        .anchored(now);
        assert_eq!(b.deadline, Some(early));
        let b = ScanBudget {
            total: Some(Duration::from_secs(1)),
            deadline: Some(now + Duration::from_secs(60)),
            ..ScanBudget::default()
        }
        .anchored(now);
        assert_eq!(b.deadline, Some(now + Duration::from_secs(1)));
        // No total: anchoring is a no-op.
        let b = ScanBudget::unlimited().anchored(now);
        assert_eq!(b, ScanBudget::unlimited());
    }

    #[test]
    fn expired_anchored_deadline_reports_scan_deadline_without_playing() {
        let q = exec("q", &[&[1, 2, 3]]);
        let targets = vec![exec("a", &[&[1, 2, 3]]), exec("b", &[&[1, 2, 3]])];
        // A zero allowance anchored before the scan loop starts: every
        // target must come back ScanDeadline-exceeded without playing.
        let budget = ScanBudget {
            total: Some(Duration::ZERO),
            ..ScanBudget::default()
        }
        .anchored(Instant::now());
        let config = SearchConfig {
            threads: 1,
            ..SearchConfig::default()
        };
        let report = search_corpus_robust(&q, 0, &targets, &config, &budget);
        assert_eq!(report.outcomes.len(), 2);
        for o in &report.outcomes {
            match o {
                TargetOutcome::BudgetExceeded {
                    reason, partial, ..
                } => {
                    assert_eq!(*reason, BudgetReason::ScanDeadline);
                    assert!(partial.is_none(), "deadline in the past must not play");
                }
                other => panic!("expected BudgetExceeded, got {other:?}"),
            }
        }
    }

    #[test]
    fn budget_reason_display_is_readable() {
        assert_eq!(BudgetReason::GameDeadline.to_string(), "per-game deadline");
        assert_eq!(BudgetReason::StepBudget.to_string(), "step budget");
        assert!(!ScanBudget::unlimited().is_bounded());
        assert!(ScanBudget {
            per_game: Some(Duration::from_millis(5)),
            ..ScanBudget::default()
        }
        .is_bounded());
    }
}
