//! Executable-level search: FirmUp's outer loop.
//!
//! Given a query executable and a query procedure, search a set of
//! target executables; for each target, play the back-and-forth game
//! and decide whether the target *contains* the query procedure. The
//! paper validated findings semi-manually (§5.2); as the automated
//! stand-in we accept a game match whose similarity clears a
//! configurable fraction of the query's strand count.

use std::sync::Mutex;

use crate::game::{play, GameConfig, GameEnd, GameResult};
use crate::sim::{ExecutableRep, GlobalContext};

/// Search configuration.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Game limits.
    pub game: GameConfig,
    /// Absolute minimum shared strands for acceptance.
    pub min_sim: usize,
    /// Minimum accepted fraction of the query's strand set: raw
    /// `sim / |q|` without a global context, or significance-weighted
    /// `wsim(q,t) / mass(q)` with one.
    pub accept_ratio: f64,
    /// Worker threads for corpus search (0 = all available cores).
    pub threads: usize,
    /// Optional trained global context: weights strands by rarity so
    /// that ubiquitous loop/compare strands cannot carry an acceptance.
    pub context: Option<std::sync::Arc<GlobalContext>>,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            game: GameConfig::default(),
            min_sim: 3,
            accept_ratio: 0.45,
            threads: 0,
            context: None,
        }
    }
}

/// Outcome of searching one target executable.
#[derive(Debug, Clone)]
pub struct TargetResult {
    /// Target executable id.
    pub target_id: String,
    /// The matched procedure (index, address, sim) when accepted.
    pub matched: Option<MatchInfo>,
    /// Steps the game needed (Fig. 9's metric).
    pub steps: usize,
    /// How the game ended.
    pub ended: GameEnd,
}

/// An accepted match.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchInfo {
    /// Procedure index in the target executable.
    pub index: usize,
    /// Procedure address.
    pub addr: u32,
    /// Shared strand count.
    pub sim: usize,
}

/// Search a single target executable for `query.procedures[qv]`.
pub fn search_target(
    query: &ExecutableRep,
    qv: usize,
    target: &ExecutableRep,
    config: &SearchConfig,
) -> TargetResult {
    let started = firmup_telemetry::enabled().then(std::time::Instant::now);
    let result: GameResult = play(query, qv, target, &config.game);
    let matched = result.query_match.and_then(|(ti, s)| {
        let qp = &query.procedures[qv];
        let tp = &target.procedures[ti];
        let fraction_ok = match &config.context {
            Some(ctx) => {
                let mass = ctx.mass(qp);
                mass <= f64::EPSILON || ctx.weighted_sim(qp, tp) >= config.accept_ratio * mass
            }
            None => (s as f64) >= config.accept_ratio * qp.strand_count() as f64,
        };
        let accepted = s >= config.min_sim && fraction_ok;
        accepted.then_some(MatchInfo {
            index: ti,
            addr: tp.addr,
            sim: s,
        })
    });
    if let Some(t0) = started {
        firmup_telemetry::observe("search.target_us", t0.elapsed().as_micros() as u64);
        firmup_telemetry::incr("search.targets");
        if matched.is_some() {
            firmup_telemetry::incr("search.accepted");
        }
    }
    TargetResult {
        target_id: target.id.clone(),
        matched,
        steps: result.steps,
        ended: result.ended,
    }
}

/// Search many targets in parallel (std scoped threads with a shared
/// work-stealing index, matching the paper's threaded setup on a
/// 72-thread Xeon).
pub fn search_corpus(
    query: &ExecutableRep,
    qv: usize,
    targets: &[ExecutableRep],
    config: &SearchConfig,
) -> Vec<TargetResult> {
    let _span = firmup_telemetry::span!("search");
    let threads = if config.threads == 0 {
        std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get)
    } else {
        config.threads
    };
    if threads <= 1 || targets.len() <= 1 {
        return targets
            .iter()
            .map(|t| search_target(query, qv, t, config))
            .collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results: Mutex<Vec<Option<TargetResult>>> = Mutex::new(vec![None; targets.len()]);
    let worker_items = firmup_telemetry::histogram("search.worker_items");
    std::thread::scope(|scope| {
        for _ in 0..threads.min(targets.len()) {
            scope.spawn(|| {
                let mut items = 0u64;
                loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= targets.len() {
                        break;
                    }
                    let r = search_target(query, qv, &targets[i], config);
                    results.lock().expect("search results lock")[i] = Some(r);
                    items += 1;
                }
                worker_items.observe(items);
            });
        }
    });
    results
        .into_inner()
        .expect("search results lock")
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

// `TargetResult` needs Clone for the slot vector above.
impl TargetResult {
    /// Whether the search reported a (claimed) occurrence.
    pub fn found(&self) -> bool {
        self.matched.is_some()
    }
}

/// Top-k candidates within one target: repeatedly play the game,
/// excluding previously returned procedures. The paper measures the
/// human-effort tradeoff of top-k result lists in §5.3 (Fig. 9's
/// discussion); FirmUp itself returns one match per game, so k > 1 is
/// obtained by re-playing on the residual executable.
pub fn top_k(
    query: &ExecutableRep,
    qv: usize,
    target: &ExecutableRep,
    k: usize,
    config: &GameConfig,
) -> Vec<MatchInfo> {
    let mut out = Vec::new();
    let mut residual = target.clone();
    let mut removed: Vec<usize> = Vec::new(); // original indices, sorted
    for _ in 0..k {
        let g = play(query, qv, &residual, config);
        let Some((ti, s)) = g.query_match else { break };
        // Map the residual index back to the original executable.
        let mut orig = ti;
        for &r in &removed {
            if r <= orig {
                orig += 1;
            }
        }
        out.push(MatchInfo {
            index: orig,
            addr: residual.procedures[ti].addr,
            sim: s,
        });
        residual.procedures.remove(ti);
        let insert_at = removed.partition_point(|&r| r <= orig);
        removed.insert(insert_at, orig);
        if residual.procedures.is_empty() {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::ProcedureRep;
    use firmup_isa::Arch;

    fn exec(id: &str, procs: &[&[u64]]) -> ExecutableRep {
        ExecutableRep {
            id: id.into(),
            arch: Arch::Mips32,
            procedures: procs
                .iter()
                .enumerate()
                .map(|(i, strands)| {
                    let mut s = strands.to_vec();
                    s.sort_unstable();
                    s.dedup();
                    ProcedureRep {
                        addr: 0x1000 + (i as u32) * 0x100,
                        name: None,
                        strands: s,
                        block_count: 1,
                        size: 16,
                    }
                })
                .collect(),
        }
    }

    #[test]
    fn accepts_strong_matches_rejects_weak() {
        let q = exec("q", &[&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]]);
        let strong = exec("strong", &[&[1, 2, 3, 4, 5, 6, 7, 99]]);
        let weak = exec("weak", &[&[1, 200, 300]]);
        let config = SearchConfig::default();
        assert!(search_target(&q, 0, &strong, &config).found());
        assert!(
            !search_target(&q, 0, &weak, &config).found(),
            "1/10 shared is below ratio"
        );
    }

    #[test]
    fn corpus_search_parallel_matches_serial() {
        let q = exec("q", &[&[1, 2, 3, 4, 5, 6]]);
        let targets: Vec<ExecutableRep> = (0..24)
            .map(|i| {
                if i % 3 == 0 {
                    exec(&format!("t{i}"), &[&[1, 2, 3, 4, 5, 88], &[7, 8]])
                } else {
                    exec(&format!("t{i}"), &[&[100 + i as u64, 200]])
                }
            })
            .collect();
        let serial = SearchConfig {
            threads: 1,
            ..SearchConfig::default()
        };
        let parallel = SearchConfig {
            threads: 4,
            ..SearchConfig::default()
        };
        let a = search_corpus(&q, 0, &targets, &serial);
        let b = search_corpus(&q, 0, &targets, &parallel);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.target_id, y.target_id);
            assert_eq!(x.matched, y.matched);
        }
        assert_eq!(a.iter().filter(|r| r.found()).count(), 8);
    }

    #[test]
    fn top_k_returns_decreasing_distinct_candidates() {
        let q = exec("q", &[&[1, 2, 3, 4, 5, 6]]);
        let t = exec(
            "t",
            &[
                &[1, 2, 3, 4, 5, 9],
                &[1, 2, 3, 7, 8],
                &[1, 2, 10],
                &[50, 51],
            ],
        );
        let hits = crate::search::top_k(&q, 0, &t, 3, &crate::game::GameConfig::default());
        assert_eq!(hits.len(), 3);
        assert_eq!(hits[0].index, 0);
        assert_eq!(hits[1].index, 1);
        assert_eq!(hits[2].index, 2);
        assert!(hits[0].sim >= hits[1].sim && hits[1].sim >= hits[2].sim);
        // Addresses refer to the *original* executable.
        assert_eq!(hits[2].addr, t.procedures[2].addr);
    }

    #[test]
    fn top_k_stops_when_no_more_candidates() {
        let q = exec("q", &[&[1, 2]]);
        let t = exec("t", &[&[1, 2], &[99]]);
        let hits = crate::search::top_k(&q, 0, &t, 5, &crate::game::GameConfig::default());
        assert_eq!(hits.len(), 1, "the 99-only procedure shares nothing");
    }

    #[test]
    fn empty_targets_ok() {
        let q = exec("q", &[&[1]]);
        assert!(search_corpus(&q, 0, &[], &SearchConfig::default()).is_empty());
    }
}
