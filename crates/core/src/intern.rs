//! Global hash-consed strand interning.
//!
//! A corpus index knows every canonical strand hash it contains (the
//! [`GlobalContext`](crate::sim::GlobalContext) df table and the
//! posting lists share one key set). [`StrandInterner`] freezes that
//! set — sorted, deduplicated — and names each hash by its rank: a
//! dense `u32` [`StrandId`]. Because ids are assigned in hash order,
//! *id order is hash order*: every sorted-merge intersection and every
//! ascending-order weighted sum over ids visits pairs in exactly the
//! same sequence as over the original `u64` hashes, so similarity
//! counts and `f64` accumulations are bit-identical — only narrower
//! and faster (VulMatch's signature-set spirit, PAPERS.md).
//!
//! Interners are *runtime* identities: each carries a process-unique
//! `token`, and two id sequences are only ever compared when their
//! tokens match. A rep interned against yesterday's snapshot can never
//! be silently compared by id against today's (serve hot-reload swaps
//! the corpus under long-lived query caches) — mismatched tokens fall
//! back to the always-correct hash path. The persisted `intern` FUIX
//! record stores only the hash list; tokens are never written.

use std::sync::atomic::{AtomicU64, Ordering};

/// Dense id of one canonical strand hash within a [`StrandInterner`]:
/// its rank in the sorted hash set.
pub type StrandId = u32;

/// A frozen, sorted strand-hash set with rank lookup both ways.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrandInterner {
    /// Sorted, deduplicated canonical strand hashes; the id of
    /// `hashes[i]` is `i`.
    hashes: Vec<u64>,
    /// Process-unique identity for id-comparability checks.
    token: u64,
}

fn next_token() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

impl StrandInterner {
    /// Intern an arbitrary hash collection (sorted + deduplicated
    /// internally). Any insertion order produces the same id
    /// assignment — determinism pinned by the interner property tests.
    pub fn from_hashes(hashes: impl IntoIterator<Item = u64>) -> StrandInterner {
        let mut hashes: Vec<u64> = hashes.into_iter().collect();
        hashes.sort_unstable();
        hashes.dedup();
        StrandInterner {
            hashes,
            token: next_token(),
        }
    }

    /// Adopt an already sorted, strictly increasing hash list (e.g. a
    /// decoded `intern` record — the decoder enforces monotonicity at
    /// the trust boundary).
    pub fn from_sorted(hashes: Vec<u64>) -> StrandInterner {
        debug_assert!(hashes.windows(2).all(|w| w[0] < w[1]), "not sorted/unique");
        StrandInterner {
            hashes,
            token: next_token(),
        }
    }

    /// The id of `hash`, if interned.
    pub fn id_of(&self, hash: u64) -> Option<StrandId> {
        self.hashes.binary_search(&hash).ok().map(|i| i as StrandId)
    }

    /// The hash named by `id`, if in range (the `id → strand` direction
    /// of the round-trip property).
    pub fn hash_of(&self, id: StrandId) -> Option<u64> {
        self.hashes.get(id as usize).copied()
    }

    /// Number of interned strands.
    pub fn len(&self) -> usize {
        self.hashes.len()
    }

    /// Whether the interner is empty.
    pub fn is_empty(&self) -> bool {
        self.hashes.is_empty()
    }

    /// The sorted hash list (what the `intern` FUIX record persists).
    pub fn hashes(&self) -> &[u64] {
        &self.hashes
    }

    /// Process-unique identity of this interner instance.
    pub fn token(&self) -> u64 {
        self.token
    }
}

/// A procedure's strand set translated to interner ids: ascending (id
/// order ≡ hash order), carrying the issuing interner's token. `ids`
/// holds only the strands the interner knows; `complete` records
/// whether that was all of them (query procedures may contain strands
/// the corpus has never seen — those can't intersect anything in the
/// corpus, so id-merges stay exact regardless).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InternedStrands {
    /// Token of the interner that issued `ids`.
    pub token: u64,
    /// Ascending interned ids of the known strands.
    pub ids: Vec<StrandId>,
    /// Whether every strand of the procedure was known to the interner.
    pub complete: bool,
}

impl InternedStrands {
    /// Intern a sorted strand-hash slice.
    pub fn of(strands: &[u64], interner: &StrandInterner) -> InternedStrands {
        let ids: Vec<StrandId> = strands.iter().filter_map(|&h| interner.id_of(h)).collect();
        InternedStrands {
            token: interner.token(),
            complete: ids.len() == strands.len(),
            ids,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_sorted_ranks() {
        let i = StrandInterner::from_hashes([30, 10, 20, 10]);
        assert_eq!(i.len(), 3);
        assert_eq!(i.id_of(10), Some(0));
        assert_eq!(i.id_of(20), Some(1));
        assert_eq!(i.id_of(30), Some(2));
        assert_eq!(i.id_of(25), None);
        assert_eq!(i.hash_of(2), Some(30));
        assert_eq!(i.hash_of(3), None);
    }

    #[test]
    fn tokens_are_unique_per_instance() {
        let a = StrandInterner::from_hashes([1, 2]);
        let b = StrandInterner::from_hashes([1, 2]);
        assert_ne!(a.token(), b.token(), "same content, distinct identity");
    }

    #[test]
    fn interned_strands_skip_unknown_and_flag_incomplete() {
        let i = StrandInterner::from_hashes([10, 20, 30]);
        let all = InternedStrands::of(&[10, 30], &i);
        assert!(all.complete);
        assert_eq!(all.ids, vec![0, 2]);
        let some = InternedStrands::of(&[10, 25], &i);
        assert!(!some.complete);
        assert_eq!(some.ids, vec![0]);
    }
}
