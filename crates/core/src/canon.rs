//! Strand canonicalization — §3.2.1 of the paper.
//!
//! Brings semantically equivalent strands from different compilers and
//! architectures to the same syntactic form:
//!
//! * **Register folding** — external reads become arguments; the root
//!   value becomes the return value; intermediate register defs are
//!   substituted away (plus store-to-load forwarding inside the strand).
//! * **Compiler optimization** — the paper runs LLVM `opt`; we implement
//!   the same transformation list natively: constant folding and
//!   propagation, instruction combining, common-subexpression-aware
//!   structural sharing, algebraic simplification, and dead code
//!   elimination (implicit in substitution). On top of those we add the
//!   *flag-pattern rewrites* that dissolve per-architecture condition
//!   code idioms (ARM/x86 `SF≠OF` becomes a plain signed `<`, MIPS
//!   `sltiu t,1` becomes `== 0`, …) — the "further refined semantics"
//!   the paper says it added to dissolve syntactic residue (§1.1).
//! * **Offset elimination** — constants pointing into code or static
//!   data sections are replaced by symbolic offsets; stack/struct
//!   offsets are kept.
//! * **Name normalization** — variables and offsets are renamed by
//!   order of appearance.
//!
//! The output is a stable string plus its 64-bit hash; procedures are
//! compared as sets of those hashes (§3.3).

use std::collections::HashMap;
use std::fmt;
use std::ops::Range;

use firmup_ir::hash::fnv1a_64;
use firmup_ir::ssa::{SExpr, SsaKind, SsaStmt, VarKind};
use firmup_ir::{BinOp, RegId, UnOp, Var, Width};
use firmup_obj::Elf;

use crate::strand::Strand;

/// Per-executable canonicalization context: which address ranges count
/// as "binary layout" for offset elimination, and which registers
/// address stack frames (for stack-slot folding).
#[derive(Debug, Clone, Default)]
pub struct AddrSpace {
    ranges: Vec<Range<u32>>,
    frame_regs: Vec<RegId>,
}

impl AddrSpace {
    /// Build from an executable's sections (text + data + rodata); the
    /// frame registers follow from the ELF machine type.
    pub fn from_elf(elf: &Elf) -> AddrSpace {
        let frame_regs = firmup_isa::Arch::from_elf_machine(elf.machine)
            .map(firmup_isa::frame_registers)
            .unwrap_or_default();
        AddrSpace {
            ranges: elf
                .sections
                .iter()
                .filter(|s| !s.data.is_empty())
                .map(|s| s.addr..s.end())
                .collect(),
            frame_regs,
        }
    }

    /// Explicit ranges (for tests).
    pub fn from_ranges(ranges: Vec<Range<u32>>) -> AddrSpace {
        AddrSpace {
            ranges,
            frame_regs: vec![],
        }
    }

    /// Explicit ranges plus frame registers.
    pub fn with_frame_regs(mut self, regs: Vec<RegId>) -> AddrSpace {
        self.frame_regs = regs;
        self
    }

    /// Whether a constant points into the binary's layout.
    pub fn is_offset(&self, c: u32) -> bool {
        self.ranges.iter().any(|r| r.contains(&c))
    }
}

/// Canonicalization switches (all on by default; individual passes can
/// be disabled for the ablation benchmarks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CanonConfig {
    /// Run the optimizer (folding, combining, flag-pattern rewrites).
    pub optimize: bool,
    /// Replace code/data-section constants with symbolic offsets.
    pub offset_elimination: bool,
    /// Rename variables/offsets by order of appearance.
    pub normalize_names: bool,
    /// Treat frame-register-relative memory as named slots: loads become
    /// plain variables and spill stores fold into their value — the
    /// extension of the paper's register folding that dissolves `-O0`
    /// stack traffic (§1.1's "further refined the semantics represented
    /// by a strand to dissolve such residues").
    pub fold_stack_slots: bool,
}

impl Default for CanonConfig {
    fn default() -> Self {
        CanonConfig {
            optimize: true,
            offset_elimination: true,
            normalize_names: true,
            fold_stack_slots: true,
        }
    }
}

/// A canonical strand: its stable serialization and hash.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CanonicalStrand {
    /// Stable textual form.
    pub text: String,
    /// FNV-1a 64 hash of `text`.
    pub hash: u64,
}

/// Canonical expression tree.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CExpr {
    /// Literal constant (survived offset elimination).
    Const(u32),
    /// Strand input (register or memory location read before written).
    Var(Var),
    /// Eliminated binary-layout offset (original value kept until
    /// normalization).
    Offset(u32),
    /// Memory load whose defining store is outside the strand.
    Load {
        /// Address expression.
        addr: Box<CExpr>,
        /// Access width.
        width: Width,
    },
    /// Binary operation.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<CExpr>,
        /// Right operand.
        rhs: Box<CExpr>,
    },
    /// Unary operation.
    Un {
        /// Operator.
        op: UnOp,
        /// Operand.
        arg: Box<CExpr>,
    },
    /// Value select.
    Ite {
        /// Condition.
        cond: Box<CExpr>,
        /// Value when non-zero.
        then_e: Box<CExpr>,
        /// Value when zero.
        else_e: Box<CExpr>,
    },
}

impl CExpr {
    fn bin(op: BinOp, lhs: CExpr, rhs: CExpr) -> CExpr {
        CExpr::Bin {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Whether this expression always evaluates to 0 or 1.
    fn is_bool(&self) -> bool {
        match self {
            CExpr::Const(c) => *c <= 1,
            CExpr::Bin { op, lhs, rhs } => {
                op.is_comparison()
                    || (matches!(op, BinOp::And | BinOp::Or) && lhs.is_bool() && rhs.is_bool())
            }
            CExpr::Ite { then_e, else_e, .. } => then_e.is_bool() && else_e.is_bool(),
            _ => false,
        }
    }

    /// Number of nodes.
    pub fn size(&self) -> usize {
        match self {
            CExpr::Const(_) | CExpr::Var(_) | CExpr::Offset(_) => 1,
            CExpr::Load { addr, .. } => 1 + addr.size(),
            CExpr::Bin { lhs, rhs, .. } => 1 + lhs.size() + rhs.size(),
            CExpr::Un { arg, .. } => 1 + arg.size(),
            CExpr::Ite {
                cond,
                then_e,
                else_e,
            } => 1 + cond.size() + then_e.size() + else_e.size(),
        }
    }
}

/// A canonical statement: only outward-facing effects remain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CStmt {
    /// Memory store.
    Store {
        /// Address.
        addr: CExpr,
        /// Stored value.
        value: CExpr,
        /// Width.
        width: Width,
    },
    /// Conditional branch decision (target already offset-eliminated).
    Br {
        /// Branch condition.
        cond: CExpr,
    },
    /// Indirect jump/call target computation.
    JumpTo {
        /// Target expression.
        target: CExpr,
    },
    /// The strand's folded return value.
    Ret(CExpr),
}

/// Canonicalize one strand.
pub fn canonicalize(strand: &Strand, space: &AddrSpace, config: &CanonConfig) -> CanonicalStrand {
    firmup_telemetry::incr("canon.strands");
    let mut stmts = substitute(strand, space, config);
    canonicalize_stmts(&mut stmts, space, config);
    let text = serialize(&stmts, config.normalize_names);
    let hash = fnv1a_64(text.as_bytes());
    CanonicalStrand { text, hash }
}

/// Reusable scratch for the hash-only canonicalization hot path
/// ([`canonical_hash_picks`]): every intermediate container the
/// canonicalizer needs, retained (capacity and all) across strands so
/// the per-strand cost is cleared maps, not fresh allocations. One
/// scratch per lift-and-canonicalize unit, reset implicitly per call.
#[derive(Debug, Default)]
pub struct CanonScratch {
    env: HashMap<Var, CExpr>,
    mem_env: HashMap<Var, (CExpr, Width)>,
    stmts: Vec<CStmt>,
    text: String,
    namer_vars: HashMap<Var, usize>,
    namer_offsets: HashMap<u32, usize>,
    /// Strands hashed through this scratch since the last
    /// [`take_count`](CanonScratch::take_count) — flushed to the
    /// `canon.strands` counter in one registry touch by the caller.
    count: u64,
}

impl CanonScratch {
    /// Strands hashed since the last call; resets the tally. Flush the
    /// returned count with `firmup_telemetry::add("canon.strands", n)`.
    pub fn take_count(&mut self) -> u64 {
        std::mem::take(&mut self.count)
    }
}

/// Canonicalize the strand described by `picks` (statement indices into
/// `block`, from [`decompose_into`](crate::strand::decompose_into)) and
/// return only its FNV-1a hash. Semantically identical to
/// [`canonicalize`] on the materialized [`Strand`] — same substitution,
/// same passes, same serialization bytes — but reads statements
/// straight out of the block and builds every temporary in `scratch`,
/// so the steady-state indexing loop never touches the allocator for
/// strand plumbing.
pub fn canonical_hash_picks(
    block: &firmup_ir::ssa::SsaBlock,
    picks: &[u32],
    space: &AddrSpace,
    config: &CanonConfig,
    scratch: &mut CanonScratch,
) -> u64 {
    scratch.count += 1;
    scratch.env.clear();
    scratch.mem_env.clear();
    scratch.stmts.clear();
    substitute_core(
        picks.iter().map(|&i| &block.stmts[i as usize]),
        picks.len(),
        &block.vars,
        space,
        config,
        &mut scratch.env,
        &mut scratch.mem_env,
        &mut scratch.stmts,
    );
    canonicalize_stmts(&mut scratch.stmts, space, config);
    scratch.text.clear();
    scratch.namer_vars.clear();
    scratch.namer_offsets.clear();
    serialize_into(
        &mut scratch.text,
        &scratch.stmts,
        config.normalize_names,
        &mut scratch.namer_vars,
        &mut scratch.namer_offsets,
    );
    fnv1a_64(scratch.text.as_bytes())
}

/// The post-substitution canonicalization passes, in place: optimizer
/// fixpoint, offset elimination (plus the ordering round it unlocks),
/// and canonical branch polarity.
fn canonicalize_stmts(stmts: &mut [CStmt], space: &AddrSpace, config: &CanonConfig) {
    if config.optimize {
        for s in stmts.iter_mut() {
            map_stmt(s, &mut |e| simplify(e));
        }
    }
    if config.offset_elimination {
        for s in stmts.iter_mut() {
            map_stmt(s, &mut |e| eliminate_offsets(e, space));
        }
        if config.optimize {
            // Offsets may unlock one more round of ordering rules.
            for s in stmts.iter_mut() {
                map_stmt(s, &mut |e| simplify(e));
            }
        }
    }
    if config.optimize {
        // Canonical branch polarity: a branch on ¬c with swapped targets
        // is the same branch as one on c, and targets were already
        // offset-eliminated — so pick the lexicographically smaller of
        // the two forms. Dissolves compiler branch-inversion layout
        // heuristics and the guard/bottom-test split of rotated loops.
        for s in stmts.iter_mut() {
            if let CStmt::Br { cond } = s {
                if let Some(neg) = negate_bool(cond) {
                    if order_key(&neg) < order_key(cond) {
                        *cond = neg;
                    }
                }
            }
        }
    }
}

fn map_stmt(s: &mut CStmt, f: &mut impl FnMut(CExpr) -> CExpr) {
    match s {
        CStmt::Store { addr, value, .. } => {
            *addr = f(std::mem::replace(addr, CExpr::Const(0)));
            *value = f(std::mem::replace(value, CExpr::Const(0)));
        }
        CStmt::Br { cond } => *cond = f(std::mem::replace(cond, CExpr::Const(0))),
        CStmt::JumpTo { target } => *target = f(std::mem::replace(target, CExpr::Const(0))),
        CStmt::Ret(e) => *e = f(std::mem::replace(e, CExpr::Const(0))),
    }
}

/// Register folding + forward substitution: intermediate defs disappear
/// into their consumers; loads forward from stores inside the strand;
/// with [`CanonConfig::fold_stack_slots`], frame-relative memory behaves
/// like registers (slot loads become variables, spill stores fold away).
fn substitute(strand: &Strand, space: &AddrSpace, config: &CanonConfig) -> Vec<CStmt> {
    let mut env = HashMap::new();
    let mut mem_env = HashMap::new();
    let mut out = Vec::new();
    substitute_core(
        strand.stmts.iter(),
        strand.stmts.len(),
        &strand.vars,
        space,
        config,
        &mut env,
        &mut mem_env,
        &mut out,
    );
    out
}

/// The substitution pass over any ordered statement sequence — shared
/// by [`substitute`] (owned [`Strand`]) and [`canonical_hash_picks`]
/// (borrowed picks). Caller supplies the (cleared) environment maps and
/// output vector so the hot path can reuse them across strands.
#[allow(clippy::too_many_arguments)]
fn substitute_core<'s, I>(
    stmts: I,
    n: usize,
    vars: &[firmup_ir::ssa::VarInfo],
    space: &AddrSpace,
    config: &CanonConfig,
    env: &mut HashMap<Var, CExpr>,
    mem_env: &mut HashMap<Var, (CExpr, Width)>,
    out: &mut Vec<CStmt>,
) where
    I: Iterator<Item = &'s SsaStmt> + Clone,
{
    let mut ctx = Subst {
        env,
        mem_env,
        vars,
        space,
        fold_stack: config.fold_stack_slots,
    };
    for (i, s) in stmts.clone().enumerate() {
        let is_root = i == n - 1;
        match &s.kind {
            SsaKind::Assign(e) => {
                let c = ctx.conv(e);
                if is_root {
                    out.push(CStmt::Ret(c));
                } else {
                    ctx.env.insert(s.def, c);
                }
            }
            SsaKind::Store { addr, value, width } => {
                let a = ctx.conv(addr);
                let v = ctx.conv(value);
                ctx.mem_env.insert(s.def, (v.clone(), *width));
                if ctx.fold_stack && ctx.is_stack_addr(&a) {
                    // Spill store: the slot behaves like a register. Only
                    // the strand root surfaces its value.
                    if is_root {
                        out.push(CStmt::Ret(v));
                    }
                } else {
                    out.push(CStmt::Store {
                        addr: a,
                        value: v,
                        width: *width,
                    });
                }
            }
            SsaKind::Exit { cond, .. } => {
                let cond = ctx.conv(cond);
                out.push(CStmt::Br { cond });
            }
            SsaKind::JumpTarget(e) => {
                let target = ctx.conv(e);
                out.push(CStmt::JumpTo { target });
            }
        }
    }
    if out.is_empty() {
        // Every statement folded away (e.g. a pure spill strand); keep
        // the root's value so the strand still has a canonical form.
        let root = stmts.clone().last().expect("strands are never empty");
        if let SsaKind::Store { value, .. } = &root.kind {
            let mut env2 = HashMap::new();
            let mut mem_env2 = HashMap::new();
            let mut ctx2 = Subst {
                env: &mut env2,
                mem_env: &mut mem_env2,
                vars,
                space,
                fold_stack: false,
            };
            out.push(CStmt::Ret(ctx2.conv(value)));
        }
    }
    debug_assert!(!out.is_empty(), "strand roots are always outward-facing");
}

struct Subst<'a> {
    env: &'a mut HashMap<Var, CExpr>,
    mem_env: &'a mut HashMap<Var, (CExpr, Width)>,
    vars: &'a [firmup_ir::ssa::VarInfo],
    space: &'a AddrSpace,
    fold_stack: bool,
}

impl<'a> Subst<'a> {
    /// Whether a converted address expression is frame-relative:
    /// `frame_reg (+ const)*`.
    fn is_stack_addr(&self, e: &CExpr) -> bool {
        match e {
            CExpr::Var(v) => match self.vars.get(v.0 as usize).map(|i| &i.kind) {
                Some(VarKind::Reg(r, _)) => self.space.frame_regs.contains(r),
                _ => false,
            },
            CExpr::Bin {
                op: BinOp::Add | BinOp::Sub,
                lhs,
                rhs,
            } => matches!(**rhs, CExpr::Const(_)) && self.is_stack_addr(lhs),
            _ => false,
        }
    }

    fn conv(&mut self, e: &SExpr) -> CExpr {
        match e {
            SExpr::Const(c) => CExpr::Const(*c),
            SExpr::Var(v) => self.env.get(v).cloned().unwrap_or(CExpr::Var(*v)),
            SExpr::Load { mem, addr, width } => {
                // Store-to-load forwarding within the strand.
                if let Some((value, w)) = self.mem_env.get(mem) {
                    if w == width {
                        return value.clone();
                    }
                }
                let a = self.conv(addr);
                if self.fold_stack && self.is_stack_addr(&a) {
                    // A named stack slot read: behaves like a register
                    // input (the SSA location variable identifies it).
                    return CExpr::Var(*mem);
                }
                CExpr::Load {
                    addr: Box::new(a),
                    width: *width,
                }
            }
            SExpr::Bin { op, lhs, rhs } => {
                let l = self.conv(lhs);
                let r = self.conv(rhs);
                CExpr::bin(*op, l, r)
            }
            SExpr::Un { op, arg } => {
                let a = self.conv(arg);
                CExpr::Un {
                    op: *op,
                    arg: Box::new(a),
                }
            }
            SExpr::Ite {
                cond,
                then_e,
                else_e,
            } => {
                let c = self.conv(cond);
                let t = self.conv(then_e);
                let f = self.conv(else_e);
                CExpr::Ite {
                    cond: Box::new(c),
                    then_e: Box::new(t),
                    else_e: Box::new(f),
                }
            }
        }
    }
}

/// Bottom-up simplification to a fixpoint.
pub fn simplify(e: CExpr) -> CExpr {
    let e = match e {
        CExpr::Load { addr, width } => CExpr::Load {
            addr: Box::new(simplify(*addr)),
            width,
        },
        CExpr::Bin { op, lhs, rhs } => CExpr::bin(op, simplify(*lhs), simplify(*rhs)),
        CExpr::Un { op, arg } => CExpr::Un {
            op,
            arg: Box::new(simplify(*arg)),
        },
        CExpr::Ite {
            cond,
            then_e,
            else_e,
        } => CExpr::Ite {
            cond: Box::new(simplify(*cond)),
            then_e: Box::new(simplify(*then_e)),
            else_e: Box::new(simplify(*else_e)),
        },
        leaf => leaf,
    };
    let mut cur = e;
    for _ in 0..8 {
        match rewrite(cur) {
            Ok(next) => cur = next,
            Err(stable) => return stable,
        }
    }
    cur
}

/// One rewrite step: `Ok(new)` when something fired, `Err(unchanged)`
/// otherwise.
#[allow(clippy::too_many_lines)]
fn rewrite(e: CExpr) -> Result<CExpr, CExpr> {
    use BinOp::*;
    match e {
        // ---- constant folding ----
        CExpr::Bin { op, lhs, rhs } => {
            if let (CExpr::Const(a), CExpr::Const(b)) = (&*lhs, &*rhs) {
                return Ok(CExpr::Const(op.eval(*a, *b)));
            }
            let lhs = *lhs;
            let rhs = *rhs;
            // Algebraic identities.
            match (op, &lhs, &rhs) {
                (Add | Sub | Or | Xor | Shl | Shr | Sar, x, CExpr::Const(0)) => {
                    return Ok(x.clone())
                }
                (Add | Or | Xor, CExpr::Const(0), x) => return Ok(x.clone()),
                (Mul, x, CExpr::Const(1)) | (Mul, CExpr::Const(1), x) => return Ok(x.clone()),
                (Mul | And, _, CExpr::Const(0)) | (Mul | And, CExpr::Const(0), _) => {
                    return Ok(CExpr::Const(0))
                }
                (And, x, CExpr::Const(u32::MAX)) | (And, CExpr::Const(u32::MAX), x) => {
                    return Ok(x.clone())
                }
                (Sub | Xor, a, b) if a == b && !matches!(a, CExpr::Load { .. }) => {
                    return Ok(CExpr::Const(0))
                }
                (And | Or, a, b) if a == b => return Ok(a.clone()),
                // Subtraction of a constant becomes addition of its
                // negation (dissolves `addiu -4` vs `sub 4`).
                (Sub, x, CExpr::Const(c)) if *c != 0 => {
                    return Ok(CExpr::bin(Add, x.clone(), CExpr::Const(c.wrapping_neg())))
                }
                // x + (y + c) → (x + y) + c  (reassociate constants out).
                (
                    Add,
                    x,
                    CExpr::Bin {
                        op: Add,
                        lhs: y,
                        rhs: c,
                    },
                ) if matches!(**c, CExpr::Const(_)) => {
                    return Ok(CExpr::bin(
                        Add,
                        CExpr::bin(Add, x.clone(), (**y).clone()),
                        (**c).clone(),
                    ));
                }
                // (x + c1) + c2 → x + (c1+c2).
                (
                    Add,
                    CExpr::Bin {
                        op: Add,
                        lhs: x,
                        rhs: c1,
                    },
                    CExpr::Const(c2),
                ) => {
                    if let CExpr::Const(c1v) = **c1 {
                        return Ok(CExpr::bin(
                            Add,
                            (**x).clone(),
                            CExpr::Const(c1v.wrapping_add(*c2)),
                        ));
                    }
                }
                // ---- comparison normalization ----
                // cmp(x-y, 0) / cmp(x^y, 0) for eq/ne.
                (
                    CmpEq | CmpNe,
                    CExpr::Bin {
                        op: Sub | Xor,
                        lhs: a,
                        rhs: b,
                    },
                    CExpr::Const(0),
                ) => {
                    return Ok(CExpr::bin(op, (**a).clone(), (**b).clone()));
                }
                // not(bool) / bool != 0.
                (CmpEq, x, CExpr::Const(0)) if x.is_bool() => {
                    if let Some(n) = negate_bool(x) {
                        return Ok(n);
                    }
                }
                (CmpNe, x, CExpr::Const(0)) if x.is_bool() => return Ok(x.clone()),
                // MIPS idioms: sltiu x,1 == (x == 0); sltu 0,x == (x != 0).
                (CmpLtU, x, CExpr::Const(1)) => {
                    return Ok(CExpr::bin(CmpEq, x.clone(), CExpr::Const(0)))
                }
                (CmpLtU, CExpr::Const(0), x) => {
                    return Ok(CExpr::bin(CmpNe, x.clone(), CExpr::Const(0)))
                }
                // Signed flag patterns (ARM/x86): SF≠OF ⇔ a<b, SF=OF ⇔ a≥b.
                (CmpNe | CmpEq, _, _) => {
                    if let Some((a, b)) = match_sf_of(&lhs, &rhs) {
                        return Ok(if op == CmpNe {
                            CExpr::bin(CmpLtS, a, b)
                        } else {
                            CExpr::bin(CmpLeS, b, a)
                        });
                    }
                }
                // a<=b from (a==b)|(a<b); a<b from (a!=b)&(b>=a)…
                (Or, x, y) => {
                    if let Some(r) = or_le_pattern(x, y) {
                        return Ok(r);
                    }
                }
                (And, x, y) => {
                    if let Some(r) = and_lt_pattern(x, y) {
                        return Ok(r);
                    }
                }
                _ => {}
            }
            // Canonical operand order for commutative operators:
            // constants/offsets to the right, otherwise lexicographic.
            if op.commutative() && order_key(&rhs) < order_key(&lhs) {
                return Ok(CExpr::bin(op, rhs, lhs));
            }
            Err(CExpr::bin(op, lhs, rhs))
        }
        CExpr::Un { op, arg } => {
            if let CExpr::Const(c) = *arg {
                return Ok(CExpr::Const(op.eval(c)));
            }
            match (op, &*arg) {
                (
                    UnOp::Not,
                    CExpr::Un {
                        op: UnOp::Not,
                        arg: inner,
                    },
                )
                | (
                    UnOp::Neg,
                    CExpr::Un {
                        op: UnOp::Neg,
                        arg: inner,
                    },
                ) => return Ok((**inner).clone()),
                // Loads are already zero-extended to their width.
                (
                    UnOp::Zext8,
                    CExpr::Load {
                        width: Width::W8, ..
                    },
                )
                | (
                    UnOp::Zext16,
                    CExpr::Load {
                        width: Width::W16, ..
                    },
                ) => return Ok((*arg).clone()),
                // Extending a bool is a no-op.
                (UnOp::Zext8 | UnOp::Zext16, x) if x.is_bool() => return Ok(x.clone()),
                _ => {}
            }
            Err(CExpr::Un { op, arg })
        }
        CExpr::Ite {
            cond,
            then_e,
            else_e,
        } => {
            if let CExpr::Const(c) = *cond {
                return Ok(if c != 0 { *then_e } else { *else_e });
            }
            if then_e == else_e {
                return Ok(*then_e);
            }
            // select c, 1, 0 → c; select c, 0, 1 → !c.
            if cond.is_bool() {
                if let (CExpr::Const(1), CExpr::Const(0)) = (&*then_e, &*else_e) {
                    return Ok(*cond);
                }
                if let (CExpr::Const(0), CExpr::Const(1)) = (&*then_e, &*else_e) {
                    if let Some(n) = negate_bool(&cond) {
                        return Ok(n);
                    }
                }
            }
            Err(CExpr::Ite {
                cond,
                then_e,
                else_e,
            })
        }
        leaf => Err(leaf),
    }
}

/// Negate a known-boolean expression, when a clean form exists.
fn negate_bool(e: &CExpr) -> Option<CExpr> {
    use BinOp::*;
    match e {
        CExpr::Bin { op, lhs, rhs } => {
            let (l, r) = ((**lhs).clone(), (**rhs).clone());
            Some(match op {
                CmpEq => CExpr::bin(CmpNe, l, r),
                CmpNe => CExpr::bin(CmpEq, l, r),
                CmpLtS => CExpr::bin(CmpLeS, r, l),
                CmpLeS => CExpr::bin(CmpLtS, r, l),
                CmpLtU => CExpr::bin(CmpLeU, r, l),
                CmpLeU => CExpr::bin(CmpLtU, r, l),
                _ => return None,
            })
        }
        _ => None,
    }
}

/// Detect the SF/OF pair of a signed subtraction compare. Either operand
/// order is accepted (commutative sorting may have swapped them).
fn match_sf_of(x: &CExpr, y: &CExpr) -> Option<(CExpr, CExpr)> {
    try_sf_of(x, y).or_else(|| try_sf_of(y, x))
}

fn try_sf_of(sf: &CExpr, of: &CExpr) -> Option<(CExpr, CExpr)> {
    // SF = (a - b) <s 0.
    let (a, b) = match sf {
        CExpr::Bin {
            op: BinOp::CmpLtS,
            lhs,
            rhs,
        } => match (&**lhs, &**rhs) {
            (
                CExpr::Bin {
                    op: BinOp::Sub,
                    lhs: a,
                    rhs: b,
                },
                CExpr::Const(0),
            ) => ((**a).clone(), (**b).clone()),
            _ => return None,
        },
        _ => return None,
    };
    // OF for a-b: sign(a^b) & sign(a^(a-b)); reconstruct and compare
    // modulo the same simplifier.
    let diff = CExpr::bin(BinOp::Sub, a.clone(), b.clone());
    let expected = simplify(CExpr::bin(
        BinOp::And,
        sign_bit(CExpr::bin(BinOp::Xor, a.clone(), b.clone())),
        sign_bit(CExpr::bin(BinOp::Xor, a.clone(), diff)),
    ));
    if *of == expected {
        Some((a, b))
    } else {
        None
    }
}

fn sign_bit(e: CExpr) -> CExpr {
    CExpr::bin(BinOp::Shr, e, CExpr::Const(31))
}

/// `(a==b) | (a<b)` → `a<=b` (signed and unsigned), any operand order.
fn or_le_pattern(x: &CExpr, y: &CExpr) -> Option<CExpr> {
    for (eq, lt) in [(x, y), (y, x)] {
        if let (
            CExpr::Bin {
                op: BinOp::CmpEq,
                lhs: e1,
                rhs: e2,
            },
            CExpr::Bin {
                op,
                lhs: l1,
                rhs: l2,
            },
        ) = (eq, lt)
        {
            let le = match op {
                BinOp::CmpLtS => BinOp::CmpLeS,
                BinOp::CmpLtU => BinOp::CmpLeU,
                _ => continue,
            };
            let same = (e1 == l1 && e2 == l2) || (e1 == l2 && e2 == l1);
            if same {
                return Some(CExpr::bin(le, (**l1).clone(), (**l2).clone()));
            }
        }
    }
    None
}

/// `(a!=b) & (b<=a)` → `b<a` (signed and unsigned), any operand order.
fn and_lt_pattern(x: &CExpr, y: &CExpr) -> Option<CExpr> {
    for (ne, le) in [(x, y), (y, x)] {
        if let (
            CExpr::Bin {
                op: BinOp::CmpNe,
                lhs: e1,
                rhs: e2,
            },
            CExpr::Bin {
                op,
                lhs: l1,
                rhs: l2,
            },
        ) = (ne, le)
        {
            let lt = match op {
                BinOp::CmpLeS => BinOp::CmpLtS,
                BinOp::CmpLeU => BinOp::CmpLtU,
                _ => continue,
            };
            let same = (e1 == l1 && e2 == l2) || (e1 == l2 && e2 == l1);
            if same {
                return Some(CExpr::bin(lt, (**l1).clone(), (**l2).clone()));
            }
        }
    }
    None
}

/// Deterministic operand ordering key: variables < loads < compound <
/// offsets < constants, then by structure.
fn order_key(e: &CExpr) -> (u8, String) {
    let class = match e {
        CExpr::Var(_) => 0,
        CExpr::Load { .. } => 1,
        CExpr::Un { .. } | CExpr::Bin { .. } | CExpr::Ite { .. } => 2,
        CExpr::Offset(_) => 3,
        CExpr::Const(_) => 4,
    };
    (class, format!("{e:?}"))
}

/// Replace constants pointing into the binary layout with symbolic
/// offsets. Stack-pointer-relative and small constants survive —
/// "offsets which pertain to stack and struct manipulation… are more
/// relevant to the semantics of the procedure".
fn eliminate_offsets(e: CExpr, space: &AddrSpace) -> CExpr {
    match e {
        CExpr::Const(c) if space.is_offset(c) => CExpr::Offset(c),
        CExpr::Load { addr, width } => CExpr::Load {
            addr: Box::new(eliminate_offsets(*addr, space)),
            width,
        },
        CExpr::Bin { op, lhs, rhs } => CExpr::bin(
            op,
            eliminate_offsets(*lhs, space),
            eliminate_offsets(*rhs, space),
        ),
        CExpr::Un { op, arg } => CExpr::Un {
            op,
            arg: Box::new(eliminate_offsets(*arg, space)),
        },
        CExpr::Ite {
            cond,
            then_e,
            else_e,
        } => CExpr::Ite {
            cond: Box::new(eliminate_offsets(*cond, space)),
            then_e: Box::new(eliminate_offsets(*then_e, space)),
            else_e: Box::new(eliminate_offsets(*else_e, space)),
        },
        leaf => leaf,
    }
}

struct Namer<'a> {
    normalize: bool,
    vars: &'a mut HashMap<Var, usize>,
    offsets: &'a mut HashMap<u32, usize>,
}

impl Namer<'_> {
    fn var(&mut self, v: Var, out: &mut String) {
        use fmt::Write as _;
        if self.normalize {
            let n = self.vars.len();
            let id = *self.vars.entry(v).or_insert(n);
            let _ = write!(out, "v{id}");
        } else {
            let _ = write!(out, "raw{}", v.0);
        }
    }

    fn offset(&mut self, o: u32, out: &mut String) {
        use fmt::Write as _;
        if self.normalize {
            let n = self.offsets.len();
            let id = *self.offsets.entry(o).or_insert(n);
            let _ = write!(out, "offset{id}");
        } else {
            let _ = write!(out, "{o:#x}");
        }
    }
}

fn serialize(stmts: &[CStmt], normalize: bool) -> String {
    let mut out = String::new();
    let mut vars = HashMap::new();
    let mut offsets = HashMap::new();
    serialize_into(&mut out, stmts, normalize, &mut vars, &mut offsets);
    out
}

/// Serialize into a caller-owned buffer with caller-owned (cleared)
/// namer maps — byte-for-byte the same output as [`serialize`], minus
/// its per-strand allocations. The hot-path entry used by
/// [`canonical_hash_picks`].
fn serialize_into(
    out: &mut String,
    stmts: &[CStmt],
    normalize: bool,
    vars: &mut HashMap<Var, usize>,
    offsets: &mut HashMap<u32, usize>,
) {
    use fmt::Write as _;
    let mut namer = Namer {
        normalize,
        vars,
        offsets,
    };
    for s in stmts {
        match s {
            CStmt::Store { addr, value, width } => {
                let _ = write!(out, "store {width} ");
                write_expr(value, &mut namer, out);
                out.push_str(", ");
                write_expr(addr, &mut namer, out);
                out.push('\n');
            }
            CStmt::Br { cond } => {
                out.push_str("br ");
                write_expr(cond, &mut namer, out);
                out.push('\n');
            }
            CStmt::JumpTo { target } => {
                out.push_str("jump ");
                write_expr(target, &mut namer, out);
                out.push('\n');
            }
            CStmt::Ret(e) => {
                out.push_str("ret ");
                write_expr(e, &mut namer, out);
                out.push('\n');
            }
        }
    }
}

fn write_expr(e: &CExpr, namer: &mut Namer<'_>, out: &mut String) {
    use fmt::Write as _;
    match e {
        CExpr::Const(c) => {
            if *c < 10 {
                let _ = write!(out, "{c}");
            } else {
                let _ = write!(out, "{c:#x}");
            }
        }
        CExpr::Var(v) => namer.var(*v, out),
        CExpr::Offset(o) => namer.offset(*o, out),
        CExpr::Load { addr, width } => {
            let _ = write!(out, "(load {width} ");
            write_expr(addr, namer, out);
            out.push(')');
        }
        CExpr::Bin { op, lhs, rhs } => {
            let _ = write!(out, "({} ", op.mnemonic());
            write_expr(lhs, namer, out);
            out.push(' ');
            write_expr(rhs, namer, out);
            out.push(')');
        }
        CExpr::Un { op, arg } => {
            let _ = write!(out, "({} ", op.mnemonic());
            write_expr(arg, namer, out);
            out.push(')');
        }
        CExpr::Ite {
            cond,
            then_e,
            else_e,
        } => {
            out.push_str("(select ");
            write_expr(cond, namer, out);
            out.push(' ');
            write_expr(then_e, namer, out);
            out.push(' ');
            write_expr(else_e, namer, out);
            out.push(')');
        }
    }
}

impl fmt::Display for CanonicalStrand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strand::decompose;
    use firmup_ir::ssa::ssa_block;
    use firmup_ir::{Block, Expr, Jump, RegId, Stmt, Temp};

    fn canon_block(stmts: Vec<Stmt>, jump: Jump) -> Vec<CanonicalStrand> {
        let b = ssa_block(&Block {
            addr: 0x1000,
            len: 4 * stmts.len() as u32,
            stmts,
            jump,
            asm: vec![],
        });
        let space = AddrSpace::from_ranges(vec![0x40_0000..0x50_0000, 0x1000_0000..0x1001_0000]);
        decompose(&b)
            .iter()
            .map(|s| canonicalize(s, &space, &CanonConfig::default()))
            .collect()
    }

    #[test]
    fn fig3_branch_strand_canonical_form() {
        // The paper's Fig. 3: `move s5,v0; li v0,0x1F; bne s5,v0,…`
        // canonicalizes to a compare of the normalized register against
        // the folded constant.
        let strands = canon_block(
            vec![
                Stmt::Put(RegId(21), Expr::Get(RegId(2))), // move s5, v0
                Stmt::Put(RegId(2), Expr::Const(0x1f)),    // li v0, 0x1F
                Stmt::Exit {
                    cond: Expr::bin(
                        firmup_ir::BinOp::CmpNe,
                        Expr::Get(RegId(21)),
                        Expr::Get(RegId(2)),
                    ),
                    target: 0x40_e744,
                },
            ],
            Jump::Fall(0x1010),
        );
        let branch = strands
            .iter()
            .find(|s| s.text.starts_with("br"))
            .expect("branch strand");
        // Branch polarity is canonicalized (eq < ne lexicographically):
        // `bne` and an inverted `beq` produce the same strand.
        assert_eq!(branch.text, "br (icmp eq v0 0x1f)\n");
    }

    #[test]
    fn operand_order_is_canonical() {
        let a = canon_block(
            vec![Stmt::Put(
                RegId(2),
                Expr::bin(
                    firmup_ir::BinOp::Add,
                    Expr::Get(RegId(4)),
                    Expr::Get(RegId(5)),
                ),
            )],
            Jump::Ret,
        );
        let b = canon_block(
            vec![Stmt::Put(
                RegId(2),
                Expr::bin(
                    firmup_ir::BinOp::Add,
                    Expr::Get(RegId(5)),
                    Expr::Get(RegId(4)),
                ),
            )],
            Jump::Ret,
        );
        assert_eq!(a[0].hash, b[0].hash, "commutative operands must sort");
    }

    #[test]
    fn register_names_do_not_matter() {
        // Same computation through different registers hashes identically.
        let a = canon_block(
            vec![
                Stmt::SetTmp(
                    Temp(0),
                    Expr::bin(firmup_ir::BinOp::Mul, Expr::Get(RegId(8)), Expr::Const(3)),
                ),
                Stmt::Put(RegId(9), Expr::Tmp(Temp(0))),
            ],
            Jump::Ret,
        );
        let b = canon_block(
            vec![
                Stmt::SetTmp(
                    Temp(0),
                    Expr::bin(firmup_ir::BinOp::Mul, Expr::Get(RegId(20)), Expr::Const(3)),
                ),
                Stmt::Put(RegId(7), Expr::Tmp(Temp(0))),
            ],
            Jump::Ret,
        );
        assert_eq!(a[0].hash, b[0].hash);
    }

    #[test]
    fn sub_const_becomes_add_neg() {
        let a = canon_block(
            vec![Stmt::Put(
                RegId(2),
                Expr::bin(firmup_ir::BinOp::Sub, Expr::Get(RegId(4)), Expr::Const(4)),
            )],
            Jump::Ret,
        );
        let b = canon_block(
            vec![Stmt::Put(
                RegId(2),
                Expr::bin(
                    firmup_ir::BinOp::Add,
                    Expr::Get(RegId(4)),
                    Expr::Const(-4i32 as u32),
                ),
            )],
            Jump::Ret,
        );
        assert_eq!(a[0].hash, b[0].hash);
    }

    #[test]
    fn mips_bool_idioms_normalize() {
        // sltiu d, x, 1 ≡ x == 0; xor+sltu ≡ x != y.
        let a = canon_block(
            vec![Stmt::Put(
                RegId(2),
                Expr::bin(
                    firmup_ir::BinOp::CmpLtU,
                    Expr::Get(RegId(4)),
                    Expr::Const(1),
                ),
            )],
            Jump::Ret,
        );
        assert_eq!(a[0].text, "ret (icmp eq v0 0)\n");
        let b = canon_block(
            vec![
                Stmt::SetTmp(
                    Temp(0),
                    Expr::bin(
                        firmup_ir::BinOp::Xor,
                        Expr::Get(RegId(4)),
                        Expr::Get(RegId(5)),
                    ),
                ),
                Stmt::Put(
                    RegId(2),
                    Expr::bin(firmup_ir::BinOp::CmpLtU, Expr::Const(0), Expr::Tmp(Temp(0))),
                ),
            ],
            Jump::Ret,
        );
        assert_eq!(b[0].text, "ret (icmp ne v0 v1)\n");
    }

    #[test]
    fn offsets_are_eliminated_but_stack_offsets_survive() {
        let strands = canon_block(
            vec![
                // Data-section address: eliminated.
                Stmt::Put(RegId(2), Expr::Const(0x1000_0040)),
                // Stack offset: preserved.
                Stmt::Put(
                    RegId(3),
                    Expr::load(
                        Expr::bin(
                            firmup_ir::BinOp::Add,
                            Expr::Get(RegId(29)),
                            Expr::Const(0x28),
                        ),
                        Width::W32,
                    ),
                ),
            ],
            Jump::Ret,
        );
        let texts: Vec<&str> = strands.iter().map(|s| s.text.as_str()).collect();
        assert!(
            texts.contains(&"ret (load i32 (add v0 0x28))\n"),
            "{texts:?}"
        );
        assert!(texts.contains(&"ret offset0\n"), "{texts:?}");
    }

    #[test]
    fn store_to_load_forwarding() {
        // store [sp+8] = r1; r2 = load [sp+8] + 1 → ret uses r1 directly.
        let addr = Expr::bin(firmup_ir::BinOp::Add, Expr::Get(RegId(29)), Expr::Const(8));
        let strands = canon_block(
            vec![
                Stmt::Store {
                    addr: addr.clone(),
                    value: Expr::Get(RegId(1)),
                    width: Width::W32,
                },
                Stmt::Put(
                    RegId(2),
                    Expr::bin(
                        firmup_ir::BinOp::Add,
                        Expr::load(addr, Width::W32),
                        Expr::Const(1),
                    ),
                ),
            ],
            Jump::Ret,
        );
        let ret = strands.iter().find(|s| s.text.contains("ret")).unwrap();
        assert!(
            ret.text.contains("ret (add v1 1)") || ret.text.contains("ret (add v0 1)"),
            "forwarded: {}",
            ret.text
        );
        assert!(
            !ret.text.contains("load"),
            "load was forwarded away: {}",
            ret.text
        );
    }

    #[test]
    fn ite_one_zero_collapses_to_condition() {
        // ARM: mov d,#0; cmp; movlt d,#1 → select(lt, 1, 0) → lt.
        let cond = Expr::bin(
            firmup_ir::BinOp::CmpLtS,
            Expr::Get(RegId(4)),
            Expr::Get(RegId(5)),
        );
        let strands = canon_block(
            vec![
                Stmt::Put(RegId(2), Expr::Const(0)),
                Stmt::Put(
                    RegId(2),
                    Expr::ite(cond, Expr::Const(1), Expr::Get(RegId(2))),
                ),
            ],
            Jump::Ret,
        );
        assert_eq!(strands[0].text, "ret (icmp slt v0 v1)\n");
    }

    #[test]
    fn canonicalization_is_idempotent_and_deterministic() {
        let mk = || {
            canon_block(
                vec![
                    Stmt::SetTmp(
                        Temp(0),
                        Expr::bin(
                            firmup_ir::BinOp::Add,
                            Expr::bin(firmup_ir::BinOp::Mul, Expr::Get(RegId(5)), Expr::Const(4)),
                            Expr::Get(RegId(6)),
                        ),
                    ),
                    Stmt::Put(RegId(2), Expr::Tmp(Temp(0))),
                ],
                Jump::Ret,
            )
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn config_toggles_change_output() {
        let b = ssa_block(&Block {
            addr: 0,
            len: 4,
            stmts: vec![Stmt::Put(RegId(2), Expr::Const(0x40_1000))],
            jump: Jump::Ret,
            asm: vec![],
        });
        let strand = &decompose(&b)[0];
        #[allow(clippy::single_range_in_vec_init)]
        let space = AddrSpace::from_ranges(vec![0x40_0000..0x50_0000]);
        let on = canonicalize(strand, &space, &CanonConfig::default());
        let off = canonicalize(
            strand,
            &space,
            &CanonConfig {
                offset_elimination: false,
                ..CanonConfig::default()
            },
        );
        assert_ne!(on.text, off.text);
        assert!(on.text.contains("offset0"));
        assert!(off.text.contains("0x401000"));
    }

    #[test]
    fn sf_of_pattern_rewrites_to_signed_lt() {
        // Hand-build the ARM/x86 flag computation for `a < b` and check
        // the composite pattern dissolves.
        let a = CExpr::Var(Var(0));
        let b = CExpr::Var(Var(1));
        let diff = CExpr::bin(BinOp::Sub, a.clone(), b.clone());
        let sf = CExpr::bin(BinOp::CmpLtS, diff.clone(), CExpr::Const(0));
        let of = CExpr::bin(
            BinOp::And,
            sign_bit(CExpr::bin(BinOp::Xor, a.clone(), b.clone())),
            sign_bit(CExpr::bin(BinOp::Xor, a.clone(), diff)),
        );
        let lt = simplify(CExpr::bin(BinOp::CmpNe, sf.clone(), of.clone()));
        assert_eq!(
            lt,
            CExpr::bin(BinOp::CmpLtS, a.clone(), b.clone()),
            "SF≠OF ⇒ a<b"
        );
        let ge = simplify(CExpr::bin(BinOp::CmpEq, sf, of));
        assert_eq!(ge, CExpr::bin(BinOp::CmpLeS, b, a), "SF=OF ⇒ a≥b");
    }

    #[test]
    fn le_and_gt_compositions() {
        let a = CExpr::Var(Var(0));
        let b = CExpr::Var(Var(1));
        let le = simplify(CExpr::bin(
            BinOp::Or,
            CExpr::bin(BinOp::CmpEq, a.clone(), b.clone()),
            CExpr::bin(BinOp::CmpLtS, a.clone(), b.clone()),
        ));
        assert_eq!(le, CExpr::bin(BinOp::CmpLeS, a.clone(), b.clone()));
        let lt = simplify(CExpr::bin(
            BinOp::And,
            CExpr::bin(BinOp::CmpNe, a.clone(), b.clone()),
            CExpr::bin(BinOp::CmpLeS, b.clone(), a.clone()),
        ));
        assert_eq!(lt, CExpr::bin(BinOp::CmpLtS, b, a));
    }
}
