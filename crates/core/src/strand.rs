//! Procedure decomposition into strands — Algorithm 1 of the paper.
//!
//! A *strand* is a data-flow slice of a basic block: the set of
//! instructions needed to compute one outward-facing value (a register
//! written in the block, a store, a conditional exit, or an indirect jump
//! target). Blocks are decomposed until every instruction is covered;
//! instructions may participate in several strands.

use crate::arena::StrandArena;
use firmup_ir::ssa::{SsaBlock, SsaStmt, VarInfo};
use firmup_ir::Var;

/// A data-flow slice of one basic block, in execution order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Strand {
    /// The sliced statements (a subsequence of the block's statements).
    pub stmts: Vec<SsaStmt>,
    /// Variable metadata of the enclosing block (shared namespace).
    pub vars: Vec<VarInfo>,
}

impl Strand {
    /// Variables read by the strand but not defined inside it — these
    /// become the "arguments" under the paper's register folding.
    pub fn inputs(&self) -> Vec<Var> {
        let defs: Vec<Var> = self.stmts.iter().map(|s| s.def).collect();
        let mut seen = std::collections::BTreeSet::new();
        let mut out = Vec::new();
        for s in &self.stmts {
            for u in s.uses() {
                if !defs.contains(&u) && seen.insert(u) {
                    out.push(u);
                }
            }
        }
        out
    }

    /// The root statement (the outward-facing computation the strand was
    /// sliced for).
    pub fn root(&self) -> &SsaStmt {
        self.stmts.last().expect("strands are never empty")
    }
}

/// Algorithm 1: decompose an SSA basic block into strands.
///
/// Faithful to the paper's pseudocode: repeatedly take the last
/// uncovered statement as a slice root and walk backwards collecting
/// every statement that defines a variable the slice reads so far.
/// Covered statements are removed from the candidate-root set but can
/// still appear inside later slices.
pub fn decompose(block: &SsaBlock) -> Vec<Strand> {
    let mut arena = StrandArena::new();
    decompose_into(&mut arena, block);
    (0..arena.len())
        .map(|i| {
            let view = arena.strand(i).expect("index in range");
            Strand {
                stmts: view
                    .picks
                    .iter()
                    .map(|&p| block.stmts[p as usize].clone())
                    .collect(),
                vars: block.vars.clone(),
            }
        })
        .collect()
}

/// Algorithm 1 into a reusable [`StrandArena`]: identical decomposition
/// to [`decompose`], but each strand is recorded as statement *indices*
/// in the arena instead of cloned statements and a cloned variable
/// table — the allocation-free hot path used by
/// [`build_rep`](crate::sim::build_rep). Returns the number of strands
/// appended. The arena is *not* reset here; the caller owns the unit
/// boundary (see the module docs of [`crate::arena`]).
pub fn decompose_into(arena: &mut StrandArena, block: &SsaBlock) -> usize {
    let n = block.stmts.len();
    let before = arena.len();
    // The root set and the strand's live-variable set are bitmaps from
    // the arena's reusable scratch — no per-block allocation once warm.
    let (mut indexes, mut svars) = arena.take_scratch();
    indexes.clear();
    indexes.resize(n, true); // uncovered roots
    let mark = |svars: &mut Vec<bool>, v: Var| {
        let i = v.0 as usize;
        if i >= svars.len() {
            svars.resize(i + 1, false);
        }
        svars[i] = true;
    };
    let mut remaining = n;
    while remaining > 0 {
        // top ← Max(indexes)
        let top = (0..n).rev().find(|&i| indexes[i]).expect("remaining > 0");
        indexes[top] = false;
        remaining -= 1;
        arena.begin_strand();
        arena.push_pick(top as u32);
        svars.clear();
        block.stmts[top].for_each_use(&mut |v| mark(&mut svars, v));
        for i in (0..top).rev() {
            // WSet(bb[i]) ∩ svars ≠ ∅  (WSet is the singleton {def}).
            if svars.get(block.stmts[i].def.0 as usize) == Some(&true) {
                arena.push_pick(i as u32);
                block.stmts[i].for_each_use(&mut |v| mark(&mut svars, v));
                if indexes[i] {
                    indexes[i] = false;
                    remaining -= 1;
                }
            }
        }
        arena.reverse_open_strand();
    }
    arena.give_scratch(indexes, svars);
    arena.len() - before
}

#[cfg(test)]
mod tests {
    use super::*;
    use firmup_ir::ssa::ssa_block;
    use firmup_ir::{BinOp, Block, Expr, Jump, RegId, Stmt, Temp, Width};

    fn block(stmts: Vec<Stmt>, jump: Jump) -> SsaBlock {
        ssa_block(&Block {
            addr: 0x1000,
            len: 4 * stmts.len() as u32,
            stmts,
            jump,
            asm: vec![],
        })
    }

    #[test]
    fn single_chain_is_one_strand() {
        // t0 = r1 + 4; r2 = t0  → one strand of two statements.
        let b = block(
            vec![
                Stmt::SetTmp(
                    Temp(0),
                    Expr::bin(BinOp::Add, Expr::Get(RegId(1)), Expr::Const(4)),
                ),
                Stmt::Put(RegId(2), Expr::Tmp(Temp(0))),
            ],
            Jump::Ret,
        );
        let s = decompose(&b);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].stmts.len(), 2);
    }

    #[test]
    fn independent_computations_split() {
        // r2 = r1 + 1; r3 = r4 * 2 → two strands of one statement each.
        let b = block(
            vec![
                Stmt::Put(
                    RegId(2),
                    Expr::bin(BinOp::Add, Expr::Get(RegId(1)), Expr::Const(1)),
                ),
                Stmt::Put(
                    RegId(3),
                    Expr::bin(BinOp::Mul, Expr::Get(RegId(4)), Expr::Const(2)),
                ),
            ],
            Jump::Ret,
        );
        let s = decompose(&b);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].stmts.len(), 1, "r3 strand");
        assert_eq!(s[1].stmts.len(), 1, "r2 strand");
    }

    #[test]
    fn shared_instruction_appears_in_both_strands() {
        // t0 = r1 + 1; r2 = t0; r3 = t0 * 2 → the t0 def is shared.
        let b = block(
            vec![
                Stmt::SetTmp(
                    Temp(0),
                    Expr::bin(BinOp::Add, Expr::Get(RegId(1)), Expr::Const(1)),
                ),
                Stmt::Put(RegId(2), Expr::Tmp(Temp(0))),
                Stmt::Put(
                    RegId(3),
                    Expr::bin(BinOp::Mul, Expr::Tmp(Temp(0)), Expr::Const(2)),
                ),
            ],
            Jump::Ret,
        );
        let s = decompose(&b);
        assert_eq!(s.len(), 2);
        // First strand (rooted at the last stmt) includes the t0 def.
        assert_eq!(s[0].stmts.len(), 2);
        // Second strand (rooted at r2) also includes the t0 def.
        assert_eq!(s[1].stmts.len(), 2);
    }

    #[test]
    fn every_statement_is_covered() {
        let b = block(
            vec![
                Stmt::Put(RegId(2), Expr::Const(5)),
                Stmt::Put(
                    RegId(3),
                    Expr::bin(BinOp::Add, Expr::Get(RegId(2)), Expr::Const(1)),
                ),
                Stmt::Store {
                    addr: Expr::Get(RegId(29)),
                    value: Expr::Get(RegId(3)),
                    width: Width::W32,
                },
                Stmt::Exit {
                    cond: Expr::bin(BinOp::CmpEq, Expr::Get(RegId(3)), Expr::Const(0)),
                    target: 0x40,
                },
            ],
            Jump::Fall(0x1010),
        );
        let strands = decompose(&b);
        let covered: std::collections::BTreeSet<_> = strands
            .iter()
            .flat_map(|s| s.stmts.iter().map(|st| st.def))
            .collect();
        assert_eq!(covered.len(), b.stmts.len(), "all statements covered");
    }

    #[test]
    fn inputs_are_external_reads() {
        let b = block(
            vec![
                Stmt::SetTmp(
                    Temp(0),
                    Expr::bin(BinOp::Add, Expr::Get(RegId(1)), Expr::Get(RegId(2))),
                ),
                Stmt::Put(RegId(3), Expr::Tmp(Temp(0))),
            ],
            Jump::Ret,
        );
        let s = decompose(&b);
        let inputs = s[0].inputs();
        assert_eq!(inputs.len(), 2, "r1 and r2 flow in from outside");
    }

    #[test]
    fn empty_block_yields_no_strands() {
        let b = block(vec![], Jump::Ret);
        assert!(decompose(&b).is_empty());
    }

    #[test]
    fn store_then_branch_slices_through_memory() {
        // store [sp] = r1 ; exit if load [sp] == 0 — the exit strand must
        // include the store (memory SSA links them).
        let addr = Expr::Get(RegId(29));
        let b = block(
            vec![
                Stmt::Store {
                    addr: addr.clone(),
                    value: Expr::Get(RegId(1)),
                    width: Width::W32,
                },
                Stmt::Exit {
                    cond: Expr::bin(BinOp::CmpEq, Expr::load(addr, Width::W32), Expr::Const(0)),
                    target: 0x40,
                },
            ],
            Jump::Fall(0x1008),
        );
        let s = decompose(&b);
        assert_eq!(s.len(), 1, "one strand containing both");
        assert_eq!(s[0].stmts.len(), 2);
    }
}
