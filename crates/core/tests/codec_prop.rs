//! Property suite pinning the hot-path codecs and interning invariants
//! behind the allocation overhaul:
//!
//! * LEB128 varint round-trips across the u64 range (7-bit group
//!   boundaries, empty and single-element lists);
//! * the varint-delta trust boundary — a zero or overflowing delta
//!   spliced into an otherwise valid `intern` / `postings2` record
//!   (container CRCs intact) must be rejected by both the eager and the
//!   lazy index loader, never absorbed;
//! * galloping-merge ≡ naive-merge on arbitrary sorted sets, including
//!   the skewed shapes that trigger the galloping path;
//! * interner determinism — any insertion order produces the same id
//!   assignment, and `id → hash → id` round-trips.

use firmup_core::intern::StrandInterner;
use firmup_core::merge::{for_each_common, gallop_ge, intersect_count};
use firmup_core::persist::CorpusIndex;
use firmup_core::sim::{ExecutableRep, ProcedureRep};
use firmup_firmware::index::{push_varint, read_container, read_varint, write_container_v2};
use firmup_isa::Arch;
use proptest::collection::vec;
use proptest::prelude::*;

// ---- varint round-trips ---------------------------------------------------

fn round_trip(v: u64) -> u64 {
    let mut buf = Vec::new();
    push_varint(&mut buf, v);
    assert!(buf.len() <= 10, "varint for {v} took {} bytes", buf.len());
    let mut pos = 0;
    let back = read_varint(&buf, &mut pos, "test varint").expect("decodes");
    assert_eq!(
        pos,
        buf.len(),
        "decode must consume exactly what encode wrote"
    );
    back
}

#[test]
fn varint_round_trips_at_every_7bit_boundary() {
    let mut edges = vec![0u64, 1, u64::MAX, u64::MAX - 1];
    for k in 1..=9u32 {
        let b = 1u64 << (7 * k);
        edges.extend([b - 1, b, b + 1]);
    }
    for v in edges {
        assert_eq!(round_trip(v), v, "boundary value {v:#x}");
    }
}

#[test]
fn varint_lists_round_trip_including_empty_and_single() {
    for list in [vec![], vec![42u64], vec![0, 1, 127, 128, u64::MAX]] {
        let mut buf = Vec::new();
        push_varint(&mut buf, list.len() as u64);
        for &v in &list {
            push_varint(&mut buf, v);
        }
        let mut pos = 0;
        let n = read_varint(&buf, &mut pos, "list count").unwrap() as usize;
        let back: Vec<u64> = (0..n)
            .map(|_| read_varint(&buf, &mut pos, "list value").unwrap())
            .collect();
        assert_eq!(back, list);
        assert_eq!(pos, buf.len());
    }
}

#[test]
fn truncated_varint_is_a_structured_error_not_a_panic() {
    for v in [128u64, 1 << 14, 1 << 30, u64::MAX] {
        let mut buf = Vec::new();
        push_varint(&mut buf, v);
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert!(
                read_varint(&buf[..cut], &mut pos, "cut varint").is_err(),
                "{v}: {cut}-byte prefix of a {}-byte varint decoded",
                buf.len()
            );
        }
    }
}

// ---- the varint-delta trust boundary --------------------------------------

/// A tiny but real corpus index whose container the splice tests edit.
fn base_index_bytes() -> Vec<u8> {
    let rep = ExecutableRep {
        id: "codec-prop".into(),
        arch: Arch::Mips32,
        procedures: vec![ProcedureRep {
            addr: 0x1000,
            name: Some("f".into()),
            strands: vec![1, 4, 9],
            block_count: 1,
            size: 16,
            interned: None,
        }],
    };
    CorpusIndex::build(vec![rep]).to_bytes()
}

/// Replace `name`'s payload and rebuild the container, so every table
/// offset and CRC-32 verifies — only the typed codec sees the change.
fn with_record(base: &[u8], name: &str, payload: Vec<u8>) -> Vec<u8> {
    let mut records = read_container(base).expect("pristine container");
    records
        .iter_mut()
        .find(|r| r.name == name)
        .unwrap_or_else(|| panic!("no `{name}` record in a v2 container"))
        .payload = payload;
    write_container_v2(&records)
}

/// Both read paths must reject the blob with a structured error.
fn assert_both_paths_reject(blob: &[u8], what: &str) {
    assert!(
        CorpusIndex::from_bytes(blob).is_err(),
        "{what}: eager loader accepted a malformed record"
    );
    let lazy = CorpusIndex::from_bytes_lazy(blob.to_vec()).and_then(|ix| {
        ix.ensure_all()?;
        Ok(ix)
    });
    assert!(
        lazy.is_err(),
        "{what}: lazy loader accepted a malformed record"
    );
}

/// Delta-encode a strictly increasing list the way the writers do,
/// optionally forcing the delta at `poison` to zero.
fn encode_delta_list(out: &mut Vec<u8>, vals: &[u64], poison: Option<usize>) {
    let mut prev = 0u64;
    for (i, &v) in vals.iter().enumerate() {
        let delta = if i == 0 { v } else { v - prev };
        push_varint(out, if poison == Some(i) { 0 } else { delta });
        prev = v;
    }
}

/// Strictly increasing non-empty u64 list (positive gaps, no overflow).
fn sorted_hashes() -> impl Strategy<Value = Vec<u64>> {
    vec((1u64..1 << 40, 1u64..1 << 20), 1..=24).prop_map(|gaps| {
        let mut acc = 0u64;
        gaps.iter()
            .map(|&(first_scale, gap)| {
                acc += gap + first_scale % 7;
                acc
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn intern_zero_delta_is_rejected_on_both_paths(
        hashes in sorted_hashes(),
        pick in any::<proptest::sample::Index>(),
    ) {
        let base = base_index_bytes();
        // A faithful encoding splices in cleanly...
        let mut good = Vec::new();
        push_varint(&mut good, hashes.len() as u64);
        encode_delta_list(&mut good, &hashes, None);
        let ix = CorpusIndex::from_bytes(&with_record(&base, "intern", good))
            .expect("well-formed intern record");
        prop_assert_eq!(ix.interner.hashes(), &hashes[..]);
        // ...while the same list with one zeroed delta must be thrown
        // out by both loaders. Position 0 is the absolute first element
        // (legal), so only poison true delta positions.
        if hashes.len() > 1 {
            let poison = 1 + pick.index(hashes.len() - 1);
            let mut bad = Vec::new();
            push_varint(&mut bad, hashes.len() as u64);
            encode_delta_list(&mut bad, &hashes, Some(poison));
            assert_both_paths_reject(
                &with_record(&base, "intern", bad),
                &format!("intern zero delta at {poison}"),
            );
        }
    }

    #[test]
    fn intern_overflowing_delta_is_rejected(first in 1u64..u64::MAX) {
        let base = base_index_bytes();
        let mut bad = Vec::new();
        push_varint(&mut bad, 2);
        push_varint(&mut bad, first);
        // first + (u64::MAX - first + 1) wraps to 0: always overflows.
        push_varint(&mut bad, u64::MAX - first + 1);
        assert_both_paths_reject(&with_record(&base, "intern", bad), "intern delta overflow");
    }

    #[test]
    fn postings2_zero_delta_is_rejected_on_both_paths(
        keys in sorted_hashes(),
        sites in sorted_hashes(),
        poison_sites in any::<bool>(),
        pick in any::<proptest::sample::Index>(),
    ) {
        let base = base_index_bytes();
        let encode = |poison_key: Option<usize>, poison_site: Option<usize>| {
            let mut out = Vec::new();
            push_varint(&mut out, keys.len() as u64);
            let mut prev_key = 0u64;
            for (i, &key) in keys.iter().enumerate() {
                let delta = if i == 0 { key } else { key - prev_key };
                push_varint(&mut out, if poison_key == Some(i) { 0 } else { delta });
                prev_key = key;
                push_varint(&mut out, sites.len() as u64);
                encode_delta_list(&mut out, &sites, if i == 0 { poison_site } else { None });
            }
            out
        };
        let good = with_record(&base, "postings2", encode(None, None));
        prop_assert!(
            CorpusIndex::from_bytes(&good).is_ok(),
            "well-formed postings2 record rejected"
        );
        if poison_sites && sites.len() > 1 {
            let at = 1 + pick.index(sites.len() - 1);
            assert_both_paths_reject(
                &with_record(&base, "postings2", encode(None, Some(at))),
                &format!("postings2 zero site delta at {at}"),
            );
        } else if keys.len() > 1 {
            let at = 1 + pick.index(keys.len() - 1);
            assert_both_paths_reject(
                &with_record(&base, "postings2", encode(Some(at), None)),
                &format!("postings2 zero key delta at {at}"),
            );
        }
    }
}

// ---- galloping merge ≡ naive merge ----------------------------------------

fn sorted_dedup(mut v: Vec<u64>) -> Vec<u64> {
    v.sort_unstable();
    v.dedup();
    v
}

fn naive_common(a: &[u64], b: &[u64]) -> Vec<u64> {
    a.iter()
        .filter(|x| b.binary_search(x).is_ok())
        .copied()
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn gallop_ge_is_partition_point(raw in vec(0u64..1000, 0..=64), target in 0u64..1100) {
        let s = sorted_dedup(raw);
        prop_assert_eq!(gallop_ge(&s, &target), s.partition_point(|&v| v < target));
    }

    #[test]
    fn galloping_merge_matches_naive_on_arbitrary_sets(
        a in vec(0u64..512, 0..=48),
        b in vec(0u64..512, 0..=48),
    ) {
        let (a, b) = (sorted_dedup(a), sorted_dedup(b));
        let want = naive_common(&a, &b);
        let mut got = Vec::new();
        for_each_common(&a, &b, |v| got.push(v));
        prop_assert_eq!(&got, &want, "visit order/content diverged from naive merge");
        let mut swapped = Vec::new();
        for_each_common(&b, &a, |v| swapped.push(v));
        prop_assert_eq!(&swapped, &want, "argument order changed the result");
        prop_assert_eq!(intersect_count(&a, &b), want.len());
    }

    #[test]
    fn galloping_merge_matches_naive_on_skewed_sets(
        small in vec(0u64..4096, 0..=6),
        large in vec(0u64..4096, 200..=400),
    ) {
        // |small| · 8 < |large| forces the galloping path.
        let (small, large) = (sorted_dedup(small), sorted_dedup(large));
        let want = naive_common(&small, &large);
        let mut got = Vec::new();
        for_each_common(&small, &large, |v| got.push(v));
        prop_assert_eq!(got, want);
    }
}

// ---- interner determinism -------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn interner_is_insertion_order_independent(
        raw in vec(any::<u64>(), 0..=48),
        rot in any::<proptest::sample::Index>(),
        rev in any::<bool>(),
    ) {
        let sorted = StrandInterner::from_hashes(raw.iter().copied());
        // Reorder: rotate by an arbitrary amount, optionally reverse.
        let mut reordered = raw.clone();
        if !reordered.is_empty() {
            let mid = rot.index(reordered.len());
            reordered.rotate_left(mid);
        }
        if rev {
            reordered.reverse();
        }
        let other = StrandInterner::from_hashes(reordered);
        prop_assert_eq!(sorted.hashes(), other.hashes());
        for &h in sorted.hashes() {
            prop_assert_eq!(sorted.id_of(h), other.id_of(h));
        }
    }

    #[test]
    fn interner_ids_round_trip_and_follow_hash_order(raw in vec(any::<u64>(), 0..=48)) {
        let interner = StrandInterner::from_hashes(raw.iter().copied());
        // Ids are dense ranks: id → hash → id round-trips, and the id
        // order is exactly the hash order (what makes the id fast path
        // bit-identical to the hash path).
        for (rank, &h) in interner.hashes().iter().enumerate() {
            let id = interner.id_of(h).expect("every interned hash resolves");
            prop_assert_eq!(id as usize, rank);
            prop_assert_eq!(interner.hash_of(id), Some(h));
        }
        for w in interner.hashes().windows(2) {
            prop_assert!(w[0] < w[1], "interner hashes must be strictly increasing");
        }
        // A hash that was never interned resolves to nothing.
        if !interner.hashes().contains(&0xdead_beef_dead_beef) {
            prop_assert!(interner.id_of(0xdead_beef_dead_beef).is_none());
        }
    }
}
