//! Regression pin: scan-path registry traffic is O(1) in corpus size.
//!
//! The per-target timing path used to call into the global telemetry
//! registry (name hash + mutex) once per target and once per game;
//! [`firmup_core::search::ScanStats`] now accumulates locally and
//! flushes a constant number of metrics once per scan. This test lives
//! in its own integration binary on purpose: `registry_lookups()` is a
//! process-global counter, and sharing a process with other tests would
//! make the delta racy.

use firmup_core::search::{scan_units, ScanBudget, ScanUnit, SearchConfig};
use firmup_core::sim::{ExecutableRep, ProcedureRep};
use firmup_isa::Arch;

fn rep(id: &str, salt: u64) -> ExecutableRep {
    ExecutableRep {
        id: id.into(),
        arch: Arch::Mips32,
        procedures: vec![ProcedureRep {
            addr: 0x1000,
            name: None,
            strands: vec![1, 4, 9 + salt, 16, 25 + salt],
            block_count: 2,
            size: 32,
            interned: None,
        }],
    }
}

/// Registry lookups spent by one single-threaded scan over `n_targets`.
fn lookups_for(n_targets: usize) -> u64 {
    let query = rep("query", 0);
    let corpus: Vec<ExecutableRep> = (0..n_targets)
        .map(|i| rep(&format!("t{i}"), (i % 4) as u64))
        .collect();
    let jobs = [(&query, 0usize)];
    let units: Vec<ScanUnit> = (0..corpus.len())
        .map(|i| ScanUnit {
            job: 0,
            targets: vec![i],
        })
        .collect();
    let config = SearchConfig {
        threads: 1,
        ..SearchConfig::default()
    };
    let before = firmup_telemetry::registry_lookups();
    let out = scan_units(
        &jobs,
        &units,
        &corpus,
        &config,
        &ScanBudget::default(),
        &(|| false),
    );
    assert_eq!(out.len(), units.len());
    firmup_telemetry::registry_lookups() - before
}

#[test]
fn registry_lookups_stay_flat_as_the_corpus_grows() {
    firmup_telemetry::enable();
    // Warm-up: first-ever flush creates the metric entries; creation and
    // lookup cost the same counter bump, but warming removes any doubt
    // that the two measured runs see identical registry state.
    let _ = lookups_for(4);
    let small = lookups_for(8);
    let large = lookups_for(64);
    assert!(small > 0, "an enabled scan must flush some metrics");
    assert_eq!(
        small, large,
        "registry traffic grew with corpus size (8 targets: {small} lookups, \
         64 targets: {large}) — a per-target registry call crept back into the hot path"
    );
}
