//! Regression test for *per-request* span parentage: a serving process
//! runs many scans concurrently, each under its own
//! [`TraceCtx::root_keyed`] root (keyed by request id). The trace
//! drained from such a process must reconstruct into one disjoint,
//! non-interleaved span tree per request — same shape for every
//! request, no span attributed to the wrong request, no orphans — even
//! when the two scans' units execute simultaneously on work-stealing
//! executors.
//!
//! Like `trace_tree.rs`, this drains the process-global trace collector
//! with `take_trace()`, so it lives alone in its own test binary: a
//! sibling `#[test]` emitting spans concurrently would race the drain.

use firmup_core::search::{scan_units, ScanBudget, ScanUnit, SearchConfig};
use firmup_core::sim::{ExecutableRep, ProcedureRep};
use firmup_isa::Arch;
use firmup_telemetry::{set_span_trace, take_trace, TraceCtx};

fn exec(id: String, procs: Vec<Vec<u64>>) -> ExecutableRep {
    ExecutableRep {
        id,
        arch: Arch::Mips32,
        procedures: procs
            .into_iter()
            .enumerate()
            .map(|(i, mut strands)| {
                strands.sort_unstable();
                strands.dedup();
                ProcedureRep {
                    addr: 0x1000 + (i as u32) * 0x40,
                    name: None,
                    strands,
                    block_count: 1,
                    size: 16,
                    interned: None,
                }
            })
            .collect(),
    }
}

fn corpus() -> Vec<ExecutableRep> {
    (0..10)
        .map(|i| {
            let base = (i as u64) % 4;
            exec(
                format!("t{i}"),
                vec![
                    vec![base, base + 1, base + 2, 30],
                    vec![base + 3, 31, 32],
                    vec![5, 6, base],
                ],
            )
        })
        .collect()
}

/// One "request": a scan under a request-keyed trace root, the way
/// `firmup serve` runs it. Returns the request's trace id.
fn request_scan(request_id: u64, targets: &[ExecutableRep]) -> u64 {
    let root = TraceCtx::root_keyed("request", request_id);
    let trace_id = root.trace_id();
    let _root = root.enter();
    let units: Vec<ScanUnit> = (0..targets.len())
        .map(|t| ScanUnit {
            job: 0,
            targets: vec![t],
        })
        .collect();
    let config = SearchConfig {
        threads: 2,
        ..SearchConfig::default()
    };
    let _ = scan_units(
        &[(&targets[0], 0)],
        &units,
        targets,
        &config,
        &ScanBudget::unlimited(),
        &|| false,
    );
    trace_id
}

#[test]
fn concurrent_requests_trace_into_disjoint_identical_trees() {
    set_span_trace(true);
    let targets = corpus();
    drop(take_trace()); // discard spans from before this test

    // Two requests in flight at once, each on its own thread with its
    // own keyed root — exactly the serving topology.
    let (id_a, id_b) = std::thread::scope(|s| {
        let a = s.spawn(|| request_scan(1, &targets));
        let b = s.spawn(|| request_scan(2, &targets));
        (a.join().expect("request 1"), b.join().expect("request 2"))
    });
    let trace = take_trace();
    set_span_trace(false);

    assert_ne!(
        id_a, id_b,
        "distinct request keys must derive distinct trace ids"
    );

    // Non-interleaved: every span belongs to exactly one request's
    // trace, and everything below the root has a parent — no span is
    // orphaned by crossing onto a stolen worker mid-request.
    for s in &trace.spans {
        assert!(
            s.trace_id == id_a || s.trace_id == id_b,
            "span {} belongs to neither request",
            s.path
        );
        if s.name != "request" {
            assert_ne!(s.parent_id, 0, "span {} orphaned (parent 0)", s.path);
        }
    }

    // Each request reconstructs into one rooted tree of the same shape:
    // identical sorted path multisets, one unit span per scan unit.
    let paths = |id: u64| {
        let mut v: Vec<&str> = trace
            .spans
            .iter()
            .filter(|s| s.trace_id == id)
            .map(|s| s.path.as_str())
            .collect();
        v.sort_unstable();
        v
    };
    let (paths_a, paths_b) = (paths(id_a), paths(id_b));
    assert_eq!(
        paths_a, paths_b,
        "the two requests' span trees diverged in shape"
    );
    assert_eq!(
        paths_a.iter().filter(|p| p.ends_with("/unit")).count(),
        targets.len(),
        "one unit span per scan unit per request"
    );
    assert_eq!(
        trace.tree_for(id_a).roots.len(),
        1,
        "request 1 has one root"
    );
    assert_eq!(
        trace.tree_for(id_b).roots.len(),
        1,
        "request 2 has one root"
    );
}
