//! Property tests for the scan determinism invariant: for arbitrary
//! small corpora, `search_corpus` / `search_corpus_robust` findings are
//! identical across runs and across every thread count 1..=4 — the
//! work-stealing executor merges by unit slot, never by arrival order.

use firmup_core::search::{
    merge_outcomes, scan_units, search_corpus, search_corpus_robust, ScanBudget, ScanUnit,
    SearchConfig, TargetOutcome,
};
use firmup_core::sim::{ExecutableRep, ProcedureRep};
use firmup_isa::Arch;
use proptest::prelude::*;

fn exec(id: String, procs: Vec<Vec<u64>>) -> ExecutableRep {
    ExecutableRep {
        id,
        arch: Arch::Mips32,
        procedures: procs
            .into_iter()
            .enumerate()
            .map(|(i, mut strands)| {
                strands.sort_unstable();
                strands.dedup();
                ProcedureRep {
                    addr: 0x1000 + (i as u32) * 0x40,
                    name: None,
                    strands,
                    block_count: 1,
                    size: 16,
                    interned: None,
                }
            })
            .collect(),
    }
}

/// Random corpora: 2..12 executables of up to 5 procedures over a small
/// strand universe, so overlaps (and equal-score ties) are common.
fn rand_corpus() -> impl Strategy<Value = Vec<ExecutableRep>> {
    proptest::collection::vec(
        proptest::collection::vec(proptest::collection::vec(0u64..30, 1..8), 1..5),
        2..12,
    )
    .prop_map(|execs| {
        execs
            .into_iter()
            .enumerate()
            .map(|(i, procs)| exec(format!("t{i}"), procs))
            .collect()
    })
}

fn fingerprint(results: &[firmup_core::search::TargetResult]) -> Vec<String> {
    results
        .iter()
        .map(|r| format!("{}|{:?}|{}|{:?}", r.target_id, r.matched, r.steps, r.ended))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `search_corpus` findings are identical across runs and across
    /// thread counts 1..=4.
    #[test]
    fn corpus_search_is_thread_count_invariant(corpus in rand_corpus(), qpick in 0usize..12) {
        let q = &corpus[qpick % corpus.len()];
        if q.procedures[0].strands.is_empty() {
            return Ok(());
        }
        let reference = {
            let config = SearchConfig { threads: 1, ..SearchConfig::default() };
            fingerprint(&search_corpus(q, 0, &corpus, &config))
        };
        for threads in 1..=4usize {
            let config = SearchConfig { threads, ..SearchConfig::default() };
            // Across thread counts AND across repeated runs.
            for run in 0..2 {
                let got = fingerprint(&search_corpus(q, 0, &corpus, &config));
                prop_assert_eq!(
                    &got, &reference,
                    "threads={} run={} diverged", threads, run
                );
            }
        }
    }

    /// The robust scan (unit-sharded, work-stealing) reports the same
    /// outcomes for every thread count when unbudgeted.
    #[test]
    fn robust_scan_is_thread_count_invariant(corpus in rand_corpus()) {
        let q = &corpus[0];
        let describe = |o: &TargetOutcome| {
            format!("{}|{:?}", o.target_id(), o.result().map(|r| (&r.matched, r.steps)))
        };
        let reference: Vec<String> = search_corpus_robust(
            q, 0, &corpus,
            &SearchConfig { threads: 1, ..SearchConfig::default() },
            &ScanBudget::unlimited(),
        ).outcomes.iter().map(&describe).collect();
        for threads in 2..=4usize {
            let got: Vec<String> = search_corpus_robust(
                q, 0, &corpus,
                &SearchConfig { threads, ..SearchConfig::default() },
                &ScanBudget::unlimited(),
            ).outcomes.iter().map(&describe).collect();
            prop_assert_eq!(&got, &reference, "threads={} diverged", threads);
        }
    }

    /// Unit decomposition is transparent: any shard split of the same
    /// candidate list, merged with `merge_outcomes`, yields one fixed
    /// sequence — equal-score ties break on stable target ids, never on
    /// batch arrival.
    #[test]
    fn unit_split_does_not_change_merged_outcomes(
        corpus in rand_corpus(),
        split_seed in 1usize..5,
    ) {
        let q = &corpus[0];
        let config = SearchConfig { threads: 3, ..SearchConfig::default() };
        let jobs = [(q, 0usize)];
        let whole = vec![ScanUnit { job: 0, targets: (0..corpus.len()).collect() }];
        let sharded: Vec<ScanUnit> = (0..corpus.len())
            .collect::<Vec<_>>()
            .chunks(split_seed)
            .map(|c| ScanUnit { job: 0, targets: c.to_vec() })
            .collect();
        let describe = |outs: Vec<TargetOutcome>| -> Vec<String> {
            outs.iter()
                .map(|o| format!("{}|{:?}", o.target_id(), o.result().map(|r| &r.matched)))
                .collect()
        };
        let a = describe(merge_outcomes(scan_units(
            &jobs, &whole, &corpus, &config, &ScanBudget::unlimited(), &|| false,
        )));
        let b = describe(merge_outcomes(scan_units(
            &jobs, &sharded, &corpus, &config, &ScanBudget::unlimited(), &|| false,
        )));
        prop_assert_eq!(a, b, "shard split {} changed merged outcomes", split_seed);
    }
}
