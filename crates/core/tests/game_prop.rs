//! Property tests for the back-and-forth game (Algorithm 2).

use firmup_core::game::{play, procedure_centric, GameConfig, GameEnd};
use firmup_core::sim::{sim, ExecutableRep, ProcedureRep};
use firmup_isa::Arch;
use proptest::prelude::*;

fn exec(id: &str, procs: Vec<Vec<u64>>) -> ExecutableRep {
    ExecutableRep {
        id: id.into(),
        arch: Arch::Mips32,
        procedures: procs
            .into_iter()
            .enumerate()
            .map(|(i, mut strands)| {
                strands.sort_unstable();
                strands.dedup();
                ProcedureRep {
                    addr: 0x1000 + (i as u32) * 0x40,
                    name: None,
                    strands,
                    block_count: 1,
                    size: 16,
                    interned: None,
                }
            })
            .collect(),
    }
}

/// Random executables: up to 8 procedures of up to 10 strands drawn from
/// a small universe (to force collisions and rival activity).
fn rand_exec(id: &'static str) -> impl Strategy<Value = ExecutableRep> {
    proptest::collection::vec(proptest::collection::vec(0u64..24, 1..10), 1..8)
        .prop_map(move |procs| exec(id, procs))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The partial matching is injective on both sides and, when the
    /// game reports success, contains the query procedure.
    #[test]
    fn matching_invariants(q in rand_exec("q"), t in rand_exec("t"), qv_seed in 0usize..8) {
        let qv = qv_seed % q.procedures.len();
        let g = play(&q, qv, &t, &GameConfig::default());
        let mut qs: Vec<usize> = g.matches.iter().map(|&(a, _, _)| a).collect();
        let mut ts: Vec<usize> = g.matches.iter().map(|&(_, b, _)| b).collect();
        let n = g.matches.len();
        qs.sort_unstable();
        qs.dedup();
        ts.sort_unstable();
        ts.dedup();
        prop_assert_eq!(qs.len(), n, "query side not injective");
        prop_assert_eq!(ts.len(), n, "target side not injective");
        match g.ended {
            GameEnd::QueryMatched => {
                prop_assert!(g.query_match.is_some());
                prop_assert!(g.matches.iter().any(|&(a, _, _)| a == qv));
            }
            _ => prop_assert!(g.query_match.is_none()),
        }
        // Every recorded pair has positive similarity.
        for &(a, b, s) in &g.matches {
            prop_assert_eq!(sim(&q.procedures[a], &t.procedures[b]), s);
            prop_assert!(s >= 1);
        }
    }

    /// Determinism: the same inputs produce the same game.
    #[test]
    fn game_is_deterministic(q in rand_exec("q"), t in rand_exec("t")) {
        let a = play(&q, 0, &t, &GameConfig::default());
        let b = play(&q, 0, &t, &GameConfig::default());
        prop_assert_eq!(a.query_match, b.query_match);
        prop_assert_eq!(a.matches, b.matches);
        prop_assert_eq!(a.steps, b.steps);
    }

    /// The game's accepted match never scores below the procedure-centric
    /// pick *for the same pair set it had access to*: if both succeed and
    /// agree on the pick, the scores agree.
    #[test]
    fn game_score_consistent_with_sim(q in rand_exec("q"), t in rand_exec("t")) {
        let g = play(&q, 0, &t, &GameConfig::default());
        if let (Some((gt, gs)), Some((pt, ps))) =
            (g.query_match, procedure_centric(&q, 0, &t, 1))
        {
            if gt == pt {
                prop_assert_eq!(gs, ps);
            } else {
                // The game deviated from the local maximum; the rival
                // must have had a reason (its pick was claimed by a
                // strictly better or equal partner).
                prop_assert!(gs <= ps, "game exceeded the local maximum?");
            }
        }
    }

    /// Self-matching: playing an executable against itself matches the
    /// query procedure to itself whenever it has any strands.
    #[test]
    fn self_game_is_identity(q in rand_exec("q"), qv_seed in 0usize..8) {
        let qv = qv_seed % q.procedures.len();
        if q.procedures[qv].strands.is_empty() {
            return Ok(());
        }
        let g = play(&q, qv, &q, &GameConfig::default());
        // Note: equal-Sim duplicates may legitimately swap, but the
        // score must equal full self-similarity.
        if let Some((_, s)) = g.query_match {
            prop_assert_eq!(s, q.procedures[qv].strand_count());
        } else {
            prop_assert!(false, "self-game failed: {:?}", g.ended);
        }
    }
}
