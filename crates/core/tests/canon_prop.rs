//! Property tests for the canonicalizer's rewrite engine: `simplify`
//! must preserve the concrete value of every expression, for all inputs.

use firmup_core::canon::{simplify, CExpr};
use firmup_ir::{BinOp, UnOp, Var};
use proptest::prelude::*;

/// Evaluate a (Load/Offset-free) canonical expression.
fn eval(e: &CExpr, env: &[u32; 4]) -> u32 {
    match e {
        CExpr::Const(c) => *c,
        CExpr::Var(v) => env[(v.0 as usize) % 4],
        CExpr::Bin { op, lhs, rhs } => op.eval(eval(lhs, env), eval(rhs, env)),
        CExpr::Un { op, arg } => op.eval(eval(arg, env)),
        CExpr::Ite {
            cond,
            then_e,
            else_e,
        } => {
            if eval(cond, env) != 0 {
                eval(then_e, env)
            } else {
                eval(else_e, env)
            }
        }
        CExpr::Offset(_) | CExpr::Load { .. } => unreachable!("not generated"),
    }
}

fn binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::And),
        Just(BinOp::Or),
        Just(BinOp::Xor),
        Just(BinOp::Shl),
        Just(BinOp::Shr),
        Just(BinOp::Sar),
        Just(BinOp::CmpEq),
        Just(BinOp::CmpNe),
        Just(BinOp::CmpLtS),
        Just(BinOp::CmpLtU),
        Just(BinOp::CmpLeS),
        Just(BinOp::CmpLeU),
    ]
}

fn unop() -> impl Strategy<Value = UnOp> {
    prop_oneof![
        Just(UnOp::Not),
        Just(UnOp::Neg),
        Just(UnOp::Sext8),
        Just(UnOp::Sext16),
        Just(UnOp::Zext8),
        Just(UnOp::Zext16),
    ]
}

fn cexpr() -> impl Strategy<Value = CExpr> {
    let leaf = prop_oneof![
        any::<u32>().prop_map(CExpr::Const),
        (0u32..4).prop_map(|v| CExpr::Var(Var(v))),
        // Bias toward the small constants the rewrite rules touch.
        prop_oneof![Just(0u32), Just(1), Just(31), Just(u32::MAX)].prop_map(CExpr::Const),
    ];
    leaf.prop_recursive(4, 48, 3, |inner| {
        prop_oneof![
            (binop(), inner.clone(), inner.clone()).prop_map(|(op, a, b)| CExpr::Bin {
                op,
                lhs: Box::new(a),
                rhs: Box::new(b),
            }),
            (unop(), inner.clone()).prop_map(|(op, a)| CExpr::Un {
                op,
                arg: Box::new(a),
            }),
            (inner.clone(), inner.clone(), inner).prop_map(|(c, t, f)| CExpr::Ite {
                cond: Box::new(c),
                then_e: Box::new(t),
                else_e: Box::new(f),
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The rewrite engine never changes an expression's value.
    #[test]
    fn simplify_preserves_evaluation(e in cexpr(), env in any::<[u32; 4]>()) {
        let before = eval(&e, &env);
        let simplified = simplify(e);
        let after = eval(&simplified, &env);
        prop_assert_eq!(before, after, "simplify changed semantics: {:?}", simplified);
    }

    /// Simplification reaches a fixpoint: applying it twice is the same
    /// as applying it once.
    #[test]
    fn simplify_is_idempotent(e in cexpr()) {
        let once = simplify(e);
        let twice = simplify(once.clone());
        prop_assert_eq!(once, twice);
    }

    /// Simplification never grows the tree.
    #[test]
    fn simplify_never_grows(e in cexpr()) {
        let before = e.size();
        let after = simplify(e).size();
        prop_assert!(after <= before, "grew from {before} to {after}");
    }
}
