//! Regression tests for cross-thread span parentage: the span tree
//! reconstructed from a traced scan must be byte-identical for every
//! `--threads N`, even when units execute on stolen workers. Before
//! spans carried an explicit [`firmup_telemetry::TraceCtx`], a unit
//! running on a worker thread lost its parent (the thread-local span
//! stack was empty there) and surfaced as an orphaned root.
//!
//! These tests drain the process-global trace collector with
//! `take_trace()`, so they live alone in this binary — a sibling `#[test]`
//! that also drained (or emitted spans concurrently under the same trace
//! id) would race. Everything runs inside the single test below.

use firmup_core::search::{scan_units, ScanBudget, ScanUnit, SearchConfig};
use firmup_core::sim::{ExecutableRep, ProcedureRep};
use firmup_isa::Arch;
use firmup_telemetry::{set_span_trace, take_trace, Trace, TraceCtx};

fn exec(id: String, procs: Vec<Vec<u64>>) -> ExecutableRep {
    ExecutableRep {
        id,
        arch: Arch::Mips32,
        procedures: procs
            .into_iter()
            .enumerate()
            .map(|(i, mut strands)| {
                strands.sort_unstable();
                strands.dedup();
                ProcedureRep {
                    addr: 0x1000 + (i as u32) * 0x40,
                    name: None,
                    strands,
                    block_count: 1,
                    size: 16,
                    interned: None,
                }
            })
            .collect(),
    }
}

/// A small corpus with overlapping strand sets so every target plays a
/// non-trivial game (each game emits a `game` span under its unit).
fn corpus() -> Vec<ExecutableRep> {
    (0..12)
        .map(|i| {
            let base = (i as u64) % 5;
            exec(
                format!("t{i}"),
                vec![
                    vec![base, base + 1, base + 2, 20],
                    vec![base + 3, 21, 22],
                    vec![7, 8, base],
                ],
            )
        })
        .collect()
}

/// Run one traced scan with a fixed unit decomposition (one unit per
/// target — NOT thread-derived, so the tree comparison isolates
/// scheduling from sharding) and return the drained trace plus the root
/// trace id.
fn traced_scan(threads: usize, targets: &[ExecutableRep]) -> (Trace, u64) {
    let root = TraceCtx::root("tt-scan");
    let trace_id = root.trace_id();
    {
        let _root = root.enter();
        let units: Vec<ScanUnit> = (0..targets.len())
            .map(|t| ScanUnit {
                job: 0,
                targets: vec![t],
            })
            .collect();
        let config = SearchConfig {
            threads,
            ..SearchConfig::default()
        };
        let _ = scan_units(
            &[(&targets[0], 0)],
            &units,
            targets,
            &config,
            &ScanBudget::unlimited(),
            &|| false,
        );
    }
    (take_trace(), trace_id)
}

#[test]
fn span_tree_is_identical_across_thread_counts() {
    set_span_trace(true);
    let targets = corpus();
    drop(take_trace()); // discard spans from before this test

    let (serial, id1) = traced_scan(1, &targets);
    let reference = serial.tree_for(id1).render_stable();
    // The serial tree has the full expected shape: one root, one search
    // span, one unit per target, one game per played target.
    assert_eq!(serial.tree_for(id1).roots.len(), 1, "exactly one root");
    assert!(reference.starts_with("tt-scan#"), "root leads the render");
    let units = serial.spans.iter().filter(|s| s.name == "unit").count();
    assert_eq!(units, targets.len(), "one unit span per scan unit");
    assert!(
        serial
            .spans
            .iter()
            .any(|s| s.path == "tt-scan/search/unit/game"),
        "game spans nest under their unit"
    );

    for threads in 2..=4usize {
        let (t, id) = traced_scan(threads, &targets);
        assert_eq!(id, id1, "same root name must derive the same trace id");
        // Parentage survives work stealing: every span recorded on a
        // worker thread still belongs to the scan's trace and links a
        // parent — no orphaned roots.
        for s in &t.spans {
            assert_eq!(s.trace_id, id1, "span {} left the trace", s.path);
            if s.name != "tt-scan" {
                assert_ne!(s.parent_id, 0, "span {} orphaned (parent 0)", s.path);
            }
        }
        let got = t.tree_for(id).render_stable();
        assert_eq!(
            got, reference,
            "span tree diverged between threads=1 and threads={threads}"
        );
    }
    set_span_trace(false);
}
