//! Differential guard for the Table 2 / §5.3 ordering: on the
//! planted-CVE corpus, FirmUp must recover at least as many correct
//! matches as each baseline — BinDiff (Fig. 6) and GitZ top-1 (Fig. 8).
//! `shapes.rs` checks the false-*rate* margins; this test pins the raw
//! correct-match ordering so a regression cannot hide behind a shifting
//! denominator.

use firmup_bench::experiments::{fig6, fig8, Counts};
use firmup_bench::setup::Workbench;
use firmup_firmware::corpus::CorpusConfig;

#[test]
fn firmup_recovers_at_least_as_many_planted_cves_as_both_baselines() {
    let wb = Workbench::build_with(CorpusConfig {
        devices: 8,
        max_firmware_versions: 2,
        ..CorpusConfig::default()
    });

    let f6 = fig6(&wb);
    let mut firmup = Counts::default();
    let mut bindiff = Counts::default();
    for r in &f6 {
        firmup.p += r.firmup.p;
        firmup.fp += r.firmup.fp;
        firmup.fn_ += r.firmup.fn_;
        bindiff.p += r.bindiff.p;
        bindiff.fp += r.bindiff.fp;
        bindiff.fn_ += r.bindiff.fn_;
    }
    assert!(firmup.total() > 0, "the labeled set must be non-empty");
    assert_eq!(
        firmup.total(),
        bindiff.total(),
        "both tools must judge the same labeled targets"
    );
    assert!(
        firmup.p >= bindiff.p,
        "BinDiff must not recover more planted procedures than FirmUp \
         ({} vs {})",
        bindiff.p,
        firmup.p
    );

    let f8 = fig8(&wb);
    let (mut fu_p, mut fu_f, mut g_p, mut g_f) = (0usize, 0usize, 0usize, 0usize);
    for r in &f8 {
        fu_p += r.firmup_p;
        fu_f += r.firmup_f;
        g_p += r.gitz_p;
        g_f += r.gitz_f;
    }
    assert!(fu_p + fu_f > 0, "the Fig. 8 labeled set must be non-empty");
    assert_eq!(
        fu_p + fu_f,
        g_p + g_f,
        "both tools must judge the same labeled targets"
    );
    assert!(
        fu_p >= g_p,
        "GitZ must not recover more planted procedures than FirmUp ({g_p} vs {fu_p})"
    );
}
