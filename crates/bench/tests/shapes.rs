//! Guardrail tests for the paper's headline result *shapes* on a small
//! corpus. If a change to the pipeline breaks "FirmUp beats the
//! baselines" or "the game contributes", these fail.

use firmup_bench::experiments::{fig6, fig8, fig9, table1, table2, Counts};
use firmup_bench::setup::Workbench;
use firmup_firmware::corpus::CorpusConfig;

fn small_workbench() -> Workbench {
    Workbench::build_with(CorpusConfig {
        devices: 12,
        max_firmware_versions: 2,
        ..CorpusConfig::default()
    })
}

#[test]
fn headline_shapes_hold() {
    let wb = small_workbench();

    // --- Table 2 shape: findings exist for most CVE lines; latest
    // firmware is affected somewhere. ---
    let rows = table2(&wb);
    assert_eq!(rows.len(), 7, "seven Table 2 lines");
    let with_findings = rows.iter().filter(|r| r.confirmed > 0).count();
    assert!(
        with_findings >= 4,
        "most CVE lines must produce confirmed findings: {with_findings}/7"
    );
    assert!(
        rows.iter().any(|r| r.latest > 0),
        "some devices' latest firmware must be affected"
    );
    assert!(
        rows.iter().any(|r| !r.vendors.is_empty()),
        "findings must name vendors"
    );

    // --- Fig. 6 shape: FirmUp's false rate beats BinDiff's by a wide
    // margin. ---
    let f6 = fig6(&wb);
    let total = |rows: &[firmup_bench::experiments::Fig6Row],
                 f: fn(&firmup_bench::experiments::Fig6Row) -> Counts| {
        rows.iter().fold(Counts::default(), |mut acc, r| {
            let c = f(r);
            acc.p += c.p;
            acc.fp += c.fp;
            acc.fn_ += c.fn_;
            acc
        })
    };
    let fu = total(&f6, |r| r.firmup);
    let bd = total(&f6, |r| r.bindiff);
    assert!(fu.total() > 0);
    assert!(
        fu.false_rate() + 0.15 < bd.false_rate(),
        "FirmUp ({:.2}) must clearly beat BinDiff ({:.2})",
        fu.false_rate(),
        bd.false_rate()
    );
    assert!(
        fu.false_rate() < 0.25,
        "FirmUp false rate too high: {:.2}",
        fu.false_rate()
    );

    // --- Fig. 8 shape: FirmUp at least matches GitZ, and beats it
    // somewhere (the executable-context advantage). ---
    let f8 = fig8(&wb);
    let (mut fu_p, mut fu_f, mut g_p, mut g_f) = (0, 0, 0, 0);
    for r in &f8 {
        fu_p += r.firmup_p;
        fu_f += r.firmup_f;
        g_p += r.gitz_p;
        g_f += r.gitz_f;
        assert!(
            r.firmup_p >= r.gitz_p,
            "{}: GitZ must not beat FirmUp on correct matches",
            r.query
        );
    }
    assert!(fu_p > 0 && g_p > 0);
    let fu_rate = fu_f as f64 / (fu_p + fu_f) as f64;
    let g_rate = g_f as f64 / (g_p + g_f) as f64;
    assert!(
        fu_rate <= g_rate,
        "FirmUp ({fu_rate:.2}) must not trail GitZ ({g_rate:.2})"
    );

    // --- Fig. 9 shape: one-step matches dominate; a multi-step tail
    // exists; the game never hurts precision. ---
    let f9 = fig9(&wb);
    assert!(f9.buckets[0] > 0, "one-step matches must exist");
    let tail: usize = f9.buckets[1..].iter().sum::<usize>() + f9.beyond;
    assert!(tail > 0, "the rival must be exercised somewhere");
    assert!(
        f9.buckets[0] > tail,
        "one-step matches must dominate ({} vs {tail})",
        f9.buckets[0]
    );
    assert!(
        f9.game_precision >= f9.pc_precision,
        "the game must not reduce precision ({:.3} vs {:.3})",
        f9.game_precision,
        f9.pc_precision
    );
}

#[test]
fn table1_trace_shows_rival_correction() {
    let rendered = table1();
    assert!(
        rendered.contains("rival"),
        "a rival move must appear:\n{rendered}"
    );
    assert!(
        rendered.contains("player"),
        "a player move must appear:\n{rendered}"
    );
    assert!(
        rendered.contains("game over") && rendered.contains("vsf_filename_passes_filter"),
        "the game must conclude with the query matched:\n{rendered}"
    );
}

#[test]
fn fig3_strands_collapse_the_syntactic_gap() {
    let rendered = firmup_bench::experiments::fig3();
    // Both builds appear, with assembly, lifted IR and strands.
    assert!(rendered.contains("gcc-like -O2"));
    assert!(rendered.contains("vendor -Os"));
    assert!(rendered.contains("--- lifted ---"));
    assert!(rendered.contains("--- canonical strands ---"));
    // The two builds share at least one canonical strand line verbatim.
    let sections: Vec<&str> = rendered.split("=== ").collect();
    let strands = |s: &str| -> std::collections::BTreeSet<String> {
        s.split("--- canonical strands ---")
            .nth(1)
            .unwrap_or("")
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && *l != "--")
            .map(String::from)
            .collect()
    };
    let a = strands(sections[1]);
    let b = strands(sections[2]);
    assert!(
        a.intersection(&b).count() >= 2,
        "builds must share canonical strands: {a:?} vs {b:?}"
    );
}
