//! Shared experiment setup: corpus generation, unpacking, indexing.

use std::collections::BTreeSet;

use firmup_baselines::StructuralRep;
use firmup_core::canon::CanonConfig;
use firmup_core::lift::lift_executable;
use firmup_core::sim::{index_elf, ExecutableRep, GlobalContext};
use firmup_firmware::corpus::{build_query, generate, Corpus, CorpusConfig};
use firmup_firmware::image::unpack;
use firmup_isa::Arch;

/// One indexed target executable with its provenance.
pub struct IndexedTarget {
    /// Image index in the corpus.
    pub image: usize,
    /// Part index within the image.
    pub part: usize,
    /// Similarity representation (strands).
    pub rep: ExecutableRep,
    /// Structural representation (for the BinDiff baseline).
    pub structure: StructuralRep,
}

/// Everything the experiments need.
pub struct Workbench {
    /// The generated corpus (with ground truth).
    pub corpus: Corpus,
    /// Indexed target executables.
    pub targets: Vec<IndexedTarget>,
    /// Global significance context trained on all targets.
    pub context: std::sync::Arc<GlobalContext>,
}

/// An indexed query: the CVE package built per architecture.
pub struct Query {
    /// Package name.
    pub package: String,
    /// Vulnerable procedure name.
    pub procedure: String,
    /// Per-architecture (rep, qv index, structure).
    pub per_arch: Vec<(Arch, ExecutableRep, usize, StructuralRep)>,
}

impl Workbench {
    /// Generate and index a corpus. `scale` multiplies the default
    /// device count.
    pub fn build(scale: usize) -> Workbench {
        let config = CorpusConfig {
            devices: 18 * scale.max(1),
            max_firmware_versions: 2,
            ..CorpusConfig::default()
        };
        Self::build_with(config)
    }

    /// Generate and index a corpus from an explicit configuration.
    pub fn build_with(config: CorpusConfig) -> Workbench {
        let corpus = generate(&config);
        let canon = CanonConfig::default();
        let mut targets = Vec::new();
        for (ii, img) in corpus.images.iter().enumerate() {
            let unpacked = unpack(&img.blob).expect("corpus images unpack");
            for (pi, part) in unpacked.parts.iter().enumerate() {
                let elf = firmup_obj::Elf::parse(&part.data).expect("corpus parts parse");
                let id = format!("img{ii}:{}", part.name);
                let rep = index_elf(&elf, &id, &canon).expect("corpus parts lift");
                let lifted = lift_executable(&elf).expect("lift for structure");
                let structure = StructuralRep::build(&lifted, &id);
                targets.push(IndexedTarget {
                    image: ii,
                    part: pi,
                    rep,
                    structure,
                });
            }
        }
        let context = std::sync::Arc::new(GlobalContext::build(targets.iter().map(|t| &t.rep)));
        Workbench {
            corpus,
            targets,
            context,
        }
    }

    /// Build a query for a CVE package across all four architectures.
    pub fn query(&self, package: &str, procedure: &str) -> Query {
        let canon = CanonConfig::default();
        let per_arch = Arch::all()
            .into_iter()
            .map(|arch| {
                let (elf, _version) = build_query(package, arch);
                let rep = index_elf(&elf, &format!("query:{package}:{arch}"), &canon)
                    .expect("query lifts");
                let qv = rep
                    .find_named(procedure)
                    .unwrap_or_else(|| panic!("{package}/{procedure} missing on {arch}"));
                let lifted = lift_executable(&elf).expect("query lift");
                let structure = StructuralRep::build(&lifted, "query");
                (arch, rep, qv, structure)
            })
            .collect();
        Query {
            package: package.to_string(),
            procedure: procedure.to_string(),
            per_arch,
        }
    }

    /// Ground truth: the address of `procedure` in a target (pre-strip
    /// symbol table), if the target's executable contains it.
    pub fn truth_addr(&self, t: &IndexedTarget, procedure: &str) -> Option<u32> {
        self.corpus.images[t.image].truth[t.part].addr_of(procedure)
    }

    /// Whether the target's build of `procedure` is *vulnerable* (right
    /// package version).
    pub fn truth_vulnerable(&self, t: &IndexedTarget, procedure: &str) -> bool {
        self.corpus.images[t.image].truth[t.part]
            .vulnerable
            .iter()
            .any(|(n, _)| n == procedure)
    }

    /// Vendors affected by findings in the given image set.
    pub fn vendors_of(&self, image_indices: &BTreeSet<usize>) -> Vec<String> {
        let mut v: BTreeSet<String> = image_indices
            .iter()
            .map(|&i| self.corpus.images[i].meta.vendor.clone())
            .collect();
        std::mem::take(&mut v).into_iter().collect()
    }

    /// Targets whose executable contains `procedure` (the labeled subset
    /// used by the controlled experiments of §5.3).
    pub fn labeled_targets(&self, procedure: &str) -> Vec<&IndexedTarget> {
        self.targets
            .iter()
            .filter(|t| self.truth_addr(t, procedure).is_some())
            .collect()
    }
}
