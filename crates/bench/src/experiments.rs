//! The paper's evaluation, regenerated: one function per table/figure.

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::time::Instant;

use firmup_baselines::{bindiff, gitz};
use firmup_core::game::{play, GameConfig};
use firmup_core::search::{search_target, SearchConfig};
use firmup_isa::Arch;

use crate::setup::{Query, Workbench};

/// The five queries of the Fig. 6 comparison (the paper's first labeled
/// group).
pub const FIG6_QUERIES: [(&str, &str); 5] = [
    ("libcurl", "tailmatch"),
    ("dbus", "printf_string_upper_bound"),
    ("libcurl", "alloc_addbyter"),
    ("vsftpd", "vsf_filename_passes_filter"),
    ("wget", "ftp_retrieve_glob"),
];

/// The nine queries of the Fig. 8 comparison (both labeled groups).
pub const FIG8_QUERIES: [(&str, &str); 9] = [
    ("libcurl", "tailmatch"),
    ("dbus", "printf_string_upper_bound"),
    ("libcurl", "alloc_addbyter"),
    ("vsftpd", "vsf_filename_passes_filter"),
    ("wget", "ftp_retrieve_glob"),
    ("net-snmp", "snmp_pdu_parse"),
    ("bftpd", "bftpdutmp_log"),
    ("libexif", "exif_entry_get_value"),
    ("libcurl", "curl_easy_unescape"),
];

fn arch_query(
    q: &Query,
    arch: Arch,
) -> Option<(
    &firmup_core::ExecutableRep,
    usize,
    &firmup_baselines::StructuralRep,
)> {
    q.per_arch
        .iter()
        .find(|(a, ..)| *a == arch)
        .map(|(_, rep, qv, st)| (rep, *qv, st))
}

// ===================================================================
// Table 2 — CVE hunt over the wild corpus
// ===================================================================

/// One Table 2 row.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// CVE id.
    pub cve: String,
    /// Package.
    pub package: String,
    /// Vulnerable procedure.
    pub procedure: String,
    /// Correct findings of vulnerable instances.
    pub confirmed: usize,
    /// Accepted matches that are not vulnerable instances (wrong
    /// procedure, absent procedure, or patched version — the paper's
    /// version-discrepancy FPs).
    pub fps: usize,
    /// Vendors among the confirmed findings.
    pub vendors: Vec<String>,
    /// Devices whose *latest* firmware carries a confirmed finding.
    pub latest: usize,
    /// Wall-clock seconds for the whole experiment line.
    pub secs: f64,
}

/// Run the Table 2 experiment: hunt each CVE across the stripped corpus.
pub fn table2(wb: &Workbench) -> Vec<Table2Row> {
    let mut rows = Vec::new();
    for cve in firmup_firmware::packages::all_cves().into_iter().take(7) {
        let t0 = Instant::now();
        let query = wb.query(cve.package, cve.procedure);
        let config = SearchConfig {
            context: Some(wb.context.clone()),
            threads: 1,
            ..SearchConfig::default()
        };
        let mut confirmed = 0usize;
        let mut fps = 0usize;
        let mut images: BTreeSet<usize> = BTreeSet::new();
        let mut latest_devices: BTreeSet<usize> = BTreeSet::new();
        for t in &wb.targets {
            let Some((rep, qv, _)) = arch_query(&query, t.rep.arch) else {
                continue;
            };
            let r = search_target(rep, qv, &t.rep, &config);
            let Some(m) = r.matched else { continue };
            let truth = wb.truth_addr(t, cve.procedure);
            let vulnerable = wb.truth_vulnerable(t, cve.procedure);
            if truth == Some(m.addr) && vulnerable {
                confirmed += 1;
                images.insert(t.image);
                let img = &wb.corpus.images[t.image];
                if img.is_latest {
                    latest_devices.insert(img.device);
                }
            } else {
                fps += 1;
            }
        }
        rows.push(Table2Row {
            cve: cve.cve.to_string(),
            package: cve.package.to_string(),
            procedure: cve.procedure.to_string(),
            confirmed,
            fps,
            vendors: wb.vendors_of(&images),
            latest: latest_devices.len(),
            secs: t0.elapsed().as_secs_f64(),
        });
    }
    rows
}

/// Render Table 2.
pub fn render_table2(rows: &[Table2Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 2: confirmed vulnerable procedures found in stripped firmware images"
    );
    let _ = writeln!(
        out,
        "{:<3} {:<14} {:<9} {:<28} {:>9} {:>4}  {:<24} {:>6} {:>8}",
        "#",
        "CVE",
        "Package",
        "Procedure",
        "Confirmed",
        "FPs",
        "Affected Vendors",
        "Latest",
        "Time"
    );
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            out,
            "{:<3} {:<14} {:<9} {:<28} {:>9} {:>4}  {:<24} {:>6} {:>7.2}s",
            i + 1,
            r.cve,
            r.package,
            r.procedure,
            r.confirmed,
            r.fps,
            r.vendors.join(","),
            r.latest,
            r.secs
        );
    }
    out
}

// ===================================================================
// Fig. 6 — FirmUp vs BinDiff on labeled targets
// ===================================================================

/// P / FP / FN counts for one tool on one query line.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counts {
    /// Correct matches.
    pub p: usize,
    /// Wrong matches.
    pub fp: usize,
    /// Missing matches.
    pub fn_: usize,
}

impl Counts {
    /// Total decisions.
    pub fn total(&self) -> usize {
        self.p + self.fp + self.fn_
    }

    /// Fraction of false results.
    pub fn false_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            (self.fp + self.fn_) as f64 / self.total() as f64
        }
    }
}

/// One Fig. 6 line.
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// Query procedure.
    pub query: String,
    /// FirmUp counts.
    pub firmup: Counts,
    /// BinDiff counts.
    pub bindiff: Counts,
}

/// Run the Fig. 6 labeled comparison. Targets are executables known (by
/// ground truth) to contain the query procedure; both tools run on
/// stripped inputs (we *can* configure our BinDiff to ignore names —
/// the paper could not, which is why it reduced the experiment to the
/// first labeled group).
pub fn fig6(wb: &Workbench) -> Vec<Fig6Row> {
    FIG6_QUERIES
        .iter()
        .map(|(pkg, proc_name)| {
            let query = wb.query(pkg, proc_name);
            let mut firmup = Counts::default();
            let mut bd = Counts::default();
            for t in wb.labeled_targets(proc_name) {
                let Some((rep, qv, qstruct)) = arch_query(&query, t.rep.arch) else {
                    continue;
                };
                let truth = wb.truth_addr(t, proc_name).expect("labeled");
                // FirmUp: raw game (no acceptance gate — the target is
                // known to contain the procedure; the question is which
                // one it is).
                let g = play(rep, qv, &t.rep, &GameConfig::default());
                match g.query_match {
                    Some((ti, _)) if t.rep.procedures[ti].addr == truth => firmup.p += 1,
                    Some(_) => firmup.fp += 1,
                    None => firmup.fn_ += 1,
                }
                // BinDiff on name-stripped structures.
                let mut qs = qstruct.clone();
                for p in &mut qs.procedures {
                    p.name = None;
                }
                let mut ts = t.structure.clone();
                for p in &mut ts.procedures {
                    p.name = None;
                }
                let qvi = qstruct.find_named(proc_name).expect("query has symbols");
                let d = bindiff::diff(&qs, &ts);
                match d.target_of(qvi) {
                    Some(ti) if ts.procedures[ti].addr == truth => bd.p += 1,
                    Some(_) => bd.fp += 1,
                    None => bd.fn_ += 1,
                }
            }
            Fig6Row {
                query: (*proc_name).to_string(),
                firmup,
                bindiff: bd,
            }
        })
        .collect()
}

/// Render Fig. 6 as a text bar table.
pub fn render_fig6(rows: &[Fig6Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 6: labeled experiment, FirmUp vs BinDiff (P / FP / FN)"
    );
    let _ = writeln!(
        out,
        "{:<28} {:>14}   {:>14}",
        "query", "FirmUp P/FP/FN", "BinDiff P/FP/FN"
    );
    let mut fu = Counts::default();
    let mut bd = Counts::default();
    for r in rows {
        let _ = writeln!(
            out,
            "{:<28} {:>4}/{:>3}/{:>3}      {:>4}/{:>3}/{:>3}",
            r.query,
            r.firmup.p,
            r.firmup.fp,
            r.firmup.fn_,
            r.bindiff.p,
            r.bindiff.fp,
            r.bindiff.fn_
        );
        fu.p += r.firmup.p;
        fu.fp += r.firmup.fp;
        fu.fn_ += r.firmup.fn_;
        bd.p += r.bindiff.p;
        bd.fp += r.bindiff.fp;
        bd.fn_ += r.bindiff.fn_;
    }
    let _ = writeln!(
        out,
        "overall false results: FirmUp {:.1}% vs BinDiff {:.1}% (paper: 6% vs 69.3%)",
        fu.false_rate() * 100.0,
        bd.false_rate() * 100.0
    );
    out
}

// ===================================================================
// Fig. 8 — FirmUp vs GitZ (top-1) on labeled targets
// ===================================================================

/// One Fig. 8 line (the paper folds FN into FP here).
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// Query procedure.
    pub query: String,
    /// FirmUp: correct matches.
    pub firmup_p: usize,
    /// FirmUp: false (wrong or missing).
    pub firmup_f: usize,
    /// GitZ top-1: correct.
    pub gitz_p: usize,
    /// GitZ top-1: false.
    pub gitz_f: usize,
}

/// Run the Fig. 8 labeled comparison.
pub fn fig8(wb: &Workbench) -> Vec<Fig8Row> {
    FIG8_QUERIES
        .iter()
        .map(|(pkg, proc_name)| {
            let query = wb.query(pkg, proc_name);
            let mut row = Fig8Row {
                query: (*proc_name).to_string(),
                firmup_p: 0,
                firmup_f: 0,
                gitz_p: 0,
                gitz_f: 0,
            };
            for t in wb.labeled_targets(proc_name) {
                let Some((rep, qv, _)) = arch_query(&query, t.rep.arch) else {
                    continue;
                };
                let truth = wb.truth_addr(t, proc_name).expect("labeled");
                let g = play(rep, qv, &t.rep, &GameConfig::default());
                match g.query_match {
                    Some((ti, _)) if t.rep.procedures[ti].addr == truth => row.firmup_p += 1,
                    _ => row.firmup_f += 1,
                }
                match gitz::top1(&rep.procedures[qv], &t.rep, &wb.context) {
                    Some(m) if m.addr == truth => row.gitz_p += 1,
                    _ => row.gitz_f += 1,
                }
            }
            row
        })
        .collect()
}

/// Render Fig. 8.
pub fn render_fig8(rows: &[Fig8Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 8: labeled experiment, FirmUp vs GitZ top-1 (P / F)"
    );
    let _ = writeln!(
        out,
        "{:<28} {:>12}   {:>12}",
        "query", "FirmUp P/F", "GitZ P/F"
    );
    let (mut fp_, mut ff, mut gp, mut gf) = (0, 0, 0, 0);
    for r in rows {
        let _ = writeln!(
            out,
            "{:<28} {:>6}/{:>4}    {:>6}/{:>4}",
            r.query, r.firmup_p, r.firmup_f, r.gitz_p, r.gitz_f
        );
        fp_ += r.firmup_p;
        ff += r.firmup_f;
        gp += r.gitz_p;
        gf += r.gitz_f;
    }
    let denom = |p: usize, f: usize| {
        if p + f == 0 {
            0.0
        } else {
            f as f64 / (p + f) as f64
        }
    };
    let _ = writeln!(
        out,
        "overall false rate: FirmUp {:.1}% vs GitZ {:.1}% (paper: 9.88% vs 34%)",
        denom(fp_, ff) * 100.0,
        denom(gp, gf) * 100.0
    );
    out
}

// ===================================================================
// Fig. 9 — game steps histogram + game ablation
// ===================================================================

/// Fig. 9 data: correct matches bucketed by game steps, plus the
/// with/without-game precision ablation the paper quotes (90.11% vs
/// 67.3%).
#[derive(Debug, Clone, Default)]
pub struct Fig9 {
    /// Buckets: 1, 2, 3-4, 5-8, 9-16, 17-32 steps.
    pub buckets: [usize; 6],
    /// Correct matches needing more than 32 steps.
    pub beyond: usize,
    /// Precision with the full game.
    pub game_precision: f64,
    /// Precision with procedure-centric (no-game) matching.
    pub pc_precision: f64,
}

/// Run the Fig. 9 measurement over all Fig. 8 queries.
pub fn fig9(wb: &Workbench) -> Fig9 {
    let mut out = Fig9::default();
    let mut game_ok = 0usize;
    let mut pc_ok = 0usize;
    let mut total = 0usize;
    for (pkg, proc_name) in FIG8_QUERIES {
        let query = wb.query(pkg, proc_name);
        for t in wb.labeled_targets(proc_name) {
            let Some((rep, qv, _)) = arch_query(&query, t.rep.arch) else {
                continue;
            };
            let truth = wb.truth_addr(t, proc_name).expect("labeled");
            total += 1;
            let g = play(rep, qv, &t.rep, &GameConfig::default());
            if let Some((ti, _)) = g.query_match {
                if t.rep.procedures[ti].addr == truth {
                    game_ok += 1;
                    let b = match g.steps {
                        0 | 1 => 0,
                        2 => 1,
                        3..=4 => 2,
                        5..=8 => 3,
                        9..=16 => 4,
                        17..=32 => 5,
                        _ => {
                            out.beyond += 1;
                            continue;
                        }
                    };
                    out.buckets[b] += 1;
                }
            }
            // Procedure-centric ablation: the best pairwise pick with no
            // game (GitZ-style weighted top-1 — the stronger strawman).
            if let Some(m) = gitz::top1(&rep.procedures[qv], &t.rep, &wb.context) {
                if m.addr == truth {
                    pc_ok += 1;
                }
            }
        }
    }
    if total > 0 {
        out.game_precision = game_ok as f64 / total as f64;
        out.pc_precision = pc_ok as f64 / total as f64;
    }
    out
}

/// Render Fig. 9.
pub fn render_fig9(f: &Fig9) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Fig. 9: correct matches by game steps needed");
    let labels = ["1", "2", "3-4", "5-8", "9-16", "17-32"];
    for (label, n) in labels.iter().zip(f.buckets.iter()) {
        let _ = writeln!(out, "{label:>6} steps: {n:>5} {}", "#".repeat((*n).min(60)));
    }
    if f.beyond > 0 {
        let _ = writeln!(out, "   >32 steps: {:>5}", f.beyond);
    }
    let _ = writeln!(
        out,
        "precision with game {:.2}% vs procedure-centric {:.2}% (paper: 90.11% vs 67.3%)",
        f.game_precision * 100.0,
        f.pc_precision * 100.0
    );
    out
}

// ===================================================================
// Table 1 — a game course
// ===================================================================

/// Render a game course for the wget query against a customized,
/// stripped vendor build (the Table 1 / Fig. 2 walk-through).
pub fn table1() -> String {
    use firmup_compiler::{compile_source, CompilerOptions, ToolchainProfile};
    use firmup_core::canon::CanonConfig;
    use firmup_core::sim::index_elf;
    use firmup_firmware::packages::source_for;

    let canon = CanonConfig::default();
    // Query: vsftpd 2.3.5, default build, full features.
    let qsrc = source_for("vsftpd", "2.3.5", &[], 0, 0);
    let qelf = compile_source(&qsrc, Arch::Mips32, &CompilerOptions::default()).expect("query");
    let query = index_elf(&qelf, "vsftpd-query", &canon).expect("query lifts");
    // Target: the vendor disabled a feature group (the paper's §2.2
    // --disable-opie story) under a different toolchain and stripped it;
    // a lookalike procedure contests the first pick, forcing rival moves.
    let tsrc = source_for("vsftpd", "2.3.2", &["ssl"], 5, 4);
    let mut telf = compile_source(
        &tsrc,
        Arch::Mips32,
        &CompilerOptions {
            profile: ToolchainProfile::vendor_size(),
            layout: Default::default(),
        },
    )
    .expect("target");
    let names: Vec<(String, u32)> = telf
        .func_symbols()
        .iter()
        .map(|s| (s.name.clone(), s.value))
        .collect();
    telf.strip(false);
    let target = index_elf(&telf, "netgear-fw", &canon).expect("target lifts");

    let qv = query
        .find_named("vsf_filename_passes_filter")
        .expect("query symbol");
    let g = play(&query, qv, &target, &GameConfig::default());
    let resolve = |addr: u32| {
        names
            .iter()
            .find(|(_, a)| *a == addr)
            .map_or_else(|| format!("sub_{addr:x}"), |(n, _)| format!("{n}()"))
    };
    let mut out = String::new();
    let _ = writeln!(out, "Table 1: game course for vsf_filename_passes_filter()");
    let _ = writeln!(out, "{:<7} {:<60} {:<6}", "Actor", "Step", "Sim");
    for (i, s) in g.trace.iter().enumerate() {
        let (m_name, fwd_name) = match s.m.side {
            firmup_core::game::Side::Query => (
                query.procedures[s.m.index].display_name() + "()",
                resolve(target.procedures[s.forward].addr),
            ),
            firmup_core::game::Side::Target => (
                resolve(target.procedures[s.m.index].addr),
                query.procedures[s.forward].display_name() + "()",
            ),
        };
        let actor = if s.accepted { "player" } else { "rival" };
        let verb = if s.accepted { "matches" } else { "counters" };
        let _ = writeln!(
            out,
            "{:<7} {:<60} {:<6}",
            actor,
            format!("step {}: {verb} {m_name} with {fwd_name}", i + 1),
            s.sim_forward
        );
    }
    match g.query_match {
        Some((ti, s)) => {
            let _ = writeln!(
                out,
                "game over after {} step(s): vsf_filename_passes_filter() ↔ {} (Sim={s})",
                g.steps,
                resolve(target.procedures[ti].addr)
            );
        }
        None => {
            let _ = writeln!(out, "game failed: {:?}", g.ended);
        }
    }
    out
}

// ===================================================================
// Fig. 3 — lifting and canonicalization of one strand
// ===================================================================

/// Render the Fig. 1/Fig. 3 walk-through: the first block of
/// `ftp_retrieve_glob` on two builds, its lifted statements and its
/// canonical strands.
pub fn fig3() -> String {
    use firmup_compiler::{compile_source, CompilerOptions, ToolchainProfile};
    use firmup_core::canon::{canonicalize, AddrSpace, CanonConfig};
    use firmup_core::lift::lift_executable;
    use firmup_core::strand::decompose;
    use firmup_firmware::packages::source_for;

    let mut out = String::new();
    let src = source_for("wget", "1.15", &[], 0, 0);
    for (label, profile) in [
        ("gcc-like -O2 (query)", ToolchainProfile::gcc_like()),
        (
            "vendor -Os (NETGEAR-style target)",
            ToolchainProfile::vendor_size(),
        ),
    ] {
        let elf = compile_source(
            &src,
            Arch::Mips32,
            &CompilerOptions {
                profile,
                layout: Default::default(),
            },
        )
        .expect("compiles");
        let lifted = lift_executable(&elf).expect("lifts");
        let p = lifted
            .program
            .procedure_named("ftp_retrieve_glob")
            .expect("present");
        let block = p.entry_block();
        let _ = writeln!(out, "=== {label}: first BB of ftp_retrieve_glob() ===");
        for a in &block.asm {
            let _ = writeln!(out, "    {a}");
        }
        let _ = writeln!(out, "--- lifted ---");
        for s in &block.stmts {
            let _ = writeln!(out, "    {s}");
        }
        let _ = writeln!(out, "--- canonical strands ---");
        let ssa = firmup_ir::ssa::ssa_block(block);
        let space = AddrSpace::from_elf(&elf);
        for s in decompose(&ssa) {
            let c = canonicalize(&s, &space, &CanonConfig::default());
            for line in c.text.lines() {
                let _ = writeln!(out, "    {line}");
            }
            let _ = writeln!(out, "    --");
        }
        let _ = writeln!(out);
    }
    out
}

// ===================================================================
// Fig. 5 / Fig. 7 — graph variance and the BinDiff failure mode
// ===================================================================

/// Render call-graph variance (Fig. 5) and a CFG-shape false-match
/// example (Fig. 7) from the workbench corpus.
pub fn fig7(wb: &Workbench) -> String {
    let mut out = String::new();
    let proc_name = "vsf_filename_passes_filter";
    let query = wb.query("vsftpd", proc_name);
    let mut shown = 0;
    for t in wb.labeled_targets(proc_name) {
        let Some((rep, qv, qstruct)) = arch_query(&query, t.rep.arch) else {
            continue;
        };
        let truth = wb.truth_addr(t, proc_name).expect("labeled");
        let qvi = qstruct.find_named(proc_name).expect("query symbols");
        let qf = &qstruct.procedures[qvi];
        // Fig. 5: call-graph neighborhood sizes.
        let _ = writeln!(
            out,
            "Fig. 5 ({}): query callees/callers = {}/{}; matching target proc exists at {truth:#x}",
            t.rep.id,
            qf.callees.len(),
            qf.callers.len()
        );
        // Fig. 7: what BinDiff picks vs what FirmUp picks.
        let mut qs = qstruct.clone();
        for p in &mut qs.procedures {
            p.name = None;
        }
        let mut ts = t.structure.clone();
        for p in &mut ts.procedures {
            p.name = None;
        }
        let d = bindiff::diff(&qs, &ts);
        let g = play(rep, qv, &t.rep, &GameConfig::default());
        let bd_pick = d.target_of(qvi).map(|ti| ts.procedures[ti].addr);
        let fu_pick = g.query_match.map(|(ti, _)| t.rep.procedures[ti].addr);
        let _ =
            writeln!(
            out,
            "Fig. 7: qv CFG = {} blocks / {} edges; BinDiff picked {} ({}), FirmUp picked {} ({})",
            qf.blocks,
            qf.edges,
            bd_pick.map_or("none".into(), |a| format!("{a:#x}")),
            if bd_pick == Some(truth) { "correct" } else { "WRONG" },
            fu_pick.map_or("none".into(), |a| format!("{a:#x}")),
            if fu_pick == Some(truth) { "correct" } else { "WRONG" },
        );
        shown += 1;
        if shown >= 6 {
            break;
        }
    }
    out
}

// ===================================================================
// Ablation — which canonicalization passes carry the matching
// ===================================================================

/// One ablation line: a canonicalization variant and the labeled
/// matching precision it achieves.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Variant name.
    pub variant: String,
    /// Correct / total over the Fig. 6 labeled pairs.
    pub correct: usize,
    /// Total labeled pairs.
    pub total: usize,
}

/// Measure matching precision with individual §3.2.1 passes disabled —
/// the design-choice ablation DESIGN.md calls out. Targets are
/// re-indexed from the corpus images under each variant.
pub fn ablation(wb: &Workbench) -> Vec<AblationRow> {
    use firmup_core::canon::CanonConfig;
    let variants: Vec<(&str, CanonConfig)> = vec![
        ("full canonicalization", CanonConfig::default()),
        (
            "no optimizer",
            CanonConfig {
                optimize: false,
                ..CanonConfig::default()
            },
        ),
        (
            "no offset elimination",
            CanonConfig {
                offset_elimination: false,
                ..CanonConfig::default()
            },
        ),
        (
            "no name normalization",
            CanonConfig {
                normalize_names: false,
                ..CanonConfig::default()
            },
        ),
        (
            "no stack-slot folding",
            CanonConfig {
                fold_stack_slots: false,
                ..CanonConfig::default()
            },
        ),
    ];
    let mut rows = Vec::new();
    for (name, config) in variants {
        // Re-index every target executable under this variant.
        let mut targets: Vec<(usize, usize, firmup_core::ExecutableRep)> = Vec::new();
        for (ii, img) in wb.corpus.images.iter().enumerate() {
            let unpacked = firmup_firmware::image::unpack(&img.blob).expect("unpacks");
            for (pi, part) in unpacked.parts.iter().enumerate() {
                let elf = firmup_obj::Elf::parse(&part.data).expect("parses");
                let rep = firmup_core::sim::index_elf(&elf, &format!("{ii}:{pi}"), &config)
                    .expect("lifts");
                targets.push((ii, pi, rep));
            }
        }
        let mut correct = 0usize;
        let mut total = 0usize;
        for (pkg, proc_name) in FIG6_QUERIES {
            // Queries must use the same canonicalization variant.
            let mut query = wb.query(pkg, proc_name);
            for (arch, rep, _, _) in &mut query.per_arch {
                let (qelf, _) = firmup_firmware::corpus::build_query(pkg, *arch);
                *rep = firmup_core::sim::index_elf(&qelf, "q", &config).expect("lifts");
            }
            for (ii, pi, t) in &targets {
                let Some((rep, _, _)) = arch_query(&query, t.arch) else {
                    continue;
                };
                let Some(qv) = rep.find_named(proc_name) else {
                    continue;
                };
                let Some(truth) = wb.corpus.images[*ii].truth[*pi].addr_of(proc_name) else {
                    continue;
                };
                total += 1;
                let g = play(rep, qv, t, &GameConfig::default());
                if let Some((ti, _)) = g.query_match {
                    if t.procedures[ti].addr == truth {
                        correct += 1;
                    }
                }
            }
        }
        rows.push(AblationRow {
            variant: name.to_string(),
            correct,
            total,
        });
    }
    rows
}

/// Render the ablation table.
pub fn render_ablation(rows: &[AblationRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Ablation: labeled matching precision per canonicalization variant"
    );
    for r in rows {
        let pct = if r.total == 0 {
            0.0
        } else {
            100.0 * r.correct as f64 / r.total as f64
        };
        let _ = writeln!(
            out,
            "{:<26} {:>4}/{:<4} ({pct:.1}%)",
            r.variant, r.correct, r.total
        );
    }
    out
}

// ===================================================================
// Index benchmark — cold vs warm corpus preparation
// ===================================================================

/// Result of the cold-vs-warm persisted-index experiment (see
/// EXPERIMENTS.md, "Persisted index: cold vs warm scan startup").
#[derive(Debug, Clone)]
pub struct IndexBench {
    /// Corpus scale multiplier used.
    pub scale: usize,
    /// Executables in the corpus.
    pub executables: usize,
    /// Procedures across the corpus.
    pub procedures: usize,
    /// Size of the persisted `corpus.fui` file in bytes.
    pub index_bytes: u64,
    /// Cold preparation: unpack → parse → lift → canonicalize → build.
    pub cold_ms: f64,
    /// Warm preparation: load + decode the persisted index (best of 3).
    pub warm_ms: f64,
    /// `cold_ms / warm_ms`.
    pub speedup: f64,
    /// Whether a search against the reloaded corpus reproduced the
    /// cold corpus's results exactly.
    pub results_equal: bool,
}

/// Measure cold-vs-warm corpus preparation: the cold path runs the full
/// unpack → parse → lift → canonicalize → build pipeline over a seeded
/// corpus; the warm path loads the same corpus from a persisted FUIX
/// index. Both are then searched with the same query to verify the
/// cache changes *when* the work happens, never *what* is found.
pub fn bench_index(scale: usize) -> IndexBench {
    use firmup_core::canon::CanonConfig;
    use firmup_core::persist::CorpusIndex;
    use firmup_core::search::search_corpus;
    use firmup_core::sim::index_elf;
    use firmup_firmware::corpus::{generate, CorpusConfig};
    use firmup_firmware::image::unpack;

    let corpus = generate(&CorpusConfig {
        devices: 6 * scale.max(1),
        max_firmware_versions: 2,
        ..CorpusConfig::default()
    });
    let canon = CanonConfig::default();
    let cold_run = || {
        let mut reps = Vec::new();
        for img in &corpus.images {
            let unpacked = unpack(&img.blob).expect("corpus images unpack");
            for part in &unpacked.parts {
                let elf = firmup_obj::Elf::parse(&part.data).expect("corpus parts parse");
                reps.push(index_elf(&elf, &part.name, &canon).expect("corpus parts lift"));
            }
        }
        CorpusIndex::build(reps)
    };

    let t0 = Instant::now();
    let cold_index = cold_run();
    let cold_ms = t0.elapsed().as_secs_f64() * 1e3;

    let dir = std::env::temp_dir().join(format!("firmup-bench-index-{}", std::process::id()));
    cold_index.save(&dir).expect("save index");
    let index_bytes = std::fs::metadata(firmup_firmware::index::index_path(&dir))
        .map(|m| m.len())
        .unwrap_or(0);
    let mut warm_ms = f64::INFINITY;
    let mut warm_index = None;
    for _ in 0..3 {
        let t = Instant::now();
        let loaded = CorpusIndex::load(&dir).expect("load index");
        warm_ms = warm_ms.min(t.elapsed().as_secs_f64() * 1e3);
        warm_index = Some(loaded);
    }
    let warm_index = warm_index.expect("at least one warm load");
    let _ = std::fs::remove_dir_all(&dir);

    // Equivalence check: same query, cold corpus vs reloaded corpus.
    warm_index.ensure_all().expect("decode warm index");
    let results_equal =
        match (0..cold_index.len()).find(|&i| !cold_index.get(i).procedures.is_empty()) {
            Some(qi) => {
                let cold_cfg = SearchConfig {
                    context: Some(cold_index.context.clone()),
                    threads: 1,
                    ..SearchConfig::default()
                };
                let warm_cfg = SearchConfig {
                    context: Some(warm_index.context.clone()),
                    threads: 1,
                    ..SearchConfig::default()
                };
                let a = search_corpus(cold_index.get(qi), 0, &cold_index.rep_view(), &cold_cfg);
                let b = search_corpus(warm_index.get(qi), 0, &warm_index.rep_view(), &warm_cfg);
                a == b
            }
            None => {
                (0..cold_index.len()).all(|i| cold_index.get(i) == warm_index.get(i))
                    && cold_index.len() == warm_index.len()
            }
        };

    IndexBench {
        scale,
        executables: cold_index.len(),
        procedures: (0..cold_index.len())
            .map(|i| cold_index.get(i).procedures.len())
            .sum(),
        index_bytes,
        cold_ms,
        warm_ms,
        speedup: if warm_ms > 0.0 {
            cold_ms / warm_ms
        } else {
            0.0
        },
        results_equal,
    }
}

// ===================================================================
// Scan benchmark — work-stealing executor scaling, cold vs warm
// ===================================================================

/// One cell of the scan-scaling sweep: a (mode, thread-count, top-k)
/// triple.
#[derive(Debug, Clone)]
pub struct ScanBenchCell {
    /// `"cold"` (index built in memory), `"warm"` (v2 file opened
    /// lazily), or `"warm_v1"` (v1 file loaded eagerly).
    pub mode: &'static str,
    /// Worker thread count for the work-stealing executor.
    pub threads: usize,
    /// `--top-k` prefilter trim per job (0 = every same-arch target).
    pub top_k: usize,
    /// Wall-clock time of the full CVE sweep in milliseconds (for
    /// `top_k > 0` cells this includes the lazy candidate decode).
    pub wall_ms: f64,
    /// Target games played per second.
    pub targets_per_sec: f64,
    /// Serial (same-mode, same-top-k, threads = 1) wall time divided by
    /// this cell's.
    pub speedup: f64,
    /// Number of findings produced.
    pub findings: usize,
    /// Whether the findings fingerprint is byte-identical to the
    /// same-top-k cold serial reference — the determinism invariant
    /// (every thread count, cold ≡ warm ≡ warm_v1), measured.
    pub results_equal: bool,
    /// Executable payloads decoded during this cell (lazy modes only;
    /// 0 for eager stores or already-cached slots).
    pub reps_decoded: u64,
    /// Median per-target game latency (µs, from `search.target_us`).
    pub p50_target_us: f64,
    /// 95th-percentile per-target game latency (µs).
    pub p95_target_us: f64,
}

/// Result of the scan-scaling experiment (see EXPERIMENTS.md,
/// "Scaling: the work-stealing scan executor").
#[derive(Debug, Clone)]
pub struct ScanBench {
    /// The corpus preset the sweep ran at: `"quick"` (4 devices — the
    /// historical smoke shape), or a `gen-corpus` scale preset name
    /// (`"smoke"`, `"small"`, `"medium"`).
    pub preset: String,
    /// Devices in the generated corpus.
    pub devices: usize,
    /// Executables in the corpus.
    pub executables: usize,
    /// Procedures in the corpus (the paper-adjacent size axis).
    pub procedures: usize,
    /// Target games per full (top_k = 0) sweep (jobs × candidates).
    pub plays: usize,
    /// `available_parallelism()` of the host — speedups above 1 are
    /// physically impossible when this is 1, so gates on speedup only
    /// apply when this is ≥ the thread count under test.
    pub host_cpus: usize,
    /// Peak strand-arena bytes summed over every corpus lift (the
    /// `index.arena_bytes` telemetry counter, measured across the
    /// rep-building phase): what the bump allocator holds at its high-
    /// water mark instead of per-strand heap traffic.
    pub alloc_bytes: u64,
    /// Resident bytes of the corpus postings table backing arrays
    /// ([`firmup_core::sim::StrandPostings::resident_bytes`]) — the
    /// in-memory footprint the varint-delta `postings2` record decodes
    /// into.
    pub postings_bytes: u64,
    /// The sweep: for each mode, threads ascending at top_k = 0, then
    /// the top-k sensitivity series at the widest thread count.
    pub cells: Vec<ScanBenchCell>,
}

/// The per-cell delta of one log2 histogram between two snapshots.
/// `min`/`max` are bucket-precision estimates (quantile clamps only).
fn histogram_delta(
    before: &firmup_telemetry::Snapshot,
    after: &firmup_telemetry::Snapshot,
    name: &str,
) -> firmup_telemetry::HistogramSnapshot {
    fn find<'a>(
        s: &'a firmup_telemetry::Snapshot,
        name: &str,
    ) -> Option<&'a firmup_telemetry::HistogramSnapshot> {
        s.histograms.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }
    let empty = firmup_telemetry::HistogramSnapshot {
        count: 0,
        sum: 0,
        min: 0,
        max: 0,
        buckets: Vec::new(),
    };
    let Some(a) = find(after, name) else {
        return empty;
    };
    let b = find(before, name);
    let mut buckets: Vec<(u64, u64)> = Vec::new();
    for &(lo, n) in &a.buckets {
        let prev = b
            .and_then(|h| h.buckets.iter().find(|&&(l, _)| l == lo))
            .map_or(0, |&(_, c)| c);
        if n > prev {
            buckets.push((lo, n - prev));
        }
    }
    if buckets.is_empty() {
        return empty;
    }
    let min = buckets[0].0;
    let last_lo = buckets[buckets.len() - 1].0;
    let max = if last_lo == 0 { 0 } else { 2 * last_lo - 1 };
    firmup_telemetry::HistogramSnapshot {
        count: a.count - b.map_or(0, |h| h.count),
        sum: a.sum - b.map_or(0, |h| h.sum),
        min,
        max,
        buckets,
    }
}

/// Resolve a scan-bench preset name to its corpus configuration.
/// `"quick"` is the historical 4-device smoke shape; the rest are the
/// `gen-corpus --scale` presets.
fn scan_bench_config(preset: &str) -> Option<firmup_firmware::corpus::CorpusConfig> {
    use firmup_firmware::corpus::{CorpusConfig, ScalePreset};
    if preset == "quick" {
        return Some(CorpusConfig {
            devices: 4,
            max_firmware_versions: 2,
            ..CorpusConfig::default()
        });
    }
    ScalePreset::parse(preset).map(|p| p.config())
}

/// Measure how the sharded, work-stealing scan executor scales: the full
/// built-in CVE hunt (every query × every same-arch target, exactly the
/// `firmup scan` decomposition) swept over threads ∈ {1, 2, 4, 8}
/// (`quick`: {1, 2, 4}) × three index modes — cold (built in memory),
/// warm (v2 file, lazy load), and warm_v1 (v1 file, eager load) — plus
/// a `--top-k` sensitivity series on the lazy index, where per-scan
/// decode cost tracks the candidate set. Every cell's merged findings
/// are fingerprinted against the same-top-k cold serial reference —
/// `results_equal` is the determinism invariant (every thread count,
/// cold ≡ warm ≡ warm_v1), measured rather than assumed.
///
/// # Panics
///
/// On an unknown preset name, or on corpus/index construction failures
/// (internal bugs the package tests rule out).
pub fn bench_scan(preset: &str) -> ScanBench {
    use firmup_core::canon::CanonConfig;
    use firmup_core::executor::resolve_threads;
    use firmup_core::persist::CorpusIndex;
    use firmup_core::search::{
        merge_outcomes, prefilter_candidates, scan_units, ScanBudget, ScanUnit,
    };
    use firmup_core::sim::{index_elf, ExecutableRep};
    use firmup_firmware::corpus::{generate, try_build_query};
    use firmup_firmware::image::unpack;
    use firmup_firmware::packages::all_cves;

    firmup_telemetry::enable();
    let config =
        scan_bench_config(preset).unwrap_or_else(|| panic!("unknown scan-bench preset `{preset}`"));
    let devices = config.devices;
    let corpus = generate(&config);
    let canon = CanonConfig::default();
    let arena_before = firmup_telemetry::counter("index.arena_bytes").get();
    let mut reps = Vec::new();
    for (ii, img) in corpus.images.iter().enumerate() {
        let unpacked = unpack(&img.blob).expect("corpus images unpack");
        for part in &unpacked.parts {
            let elf = firmup_obj::Elf::parse(&part.data).expect("corpus parts parse");
            let id = format!("img{ii}:{}", part.name);
            reps.push(index_elf(&elf, &id, &canon).expect("corpus parts lift"));
        }
    }
    let alloc_bytes = firmup_telemetry::counter("index.arena_bytes").get() - arena_before;
    let cold = CorpusIndex::build(reps);
    let postings_bytes = cold.postings.resident_bytes() as u64;
    let dir = std::env::temp_dir().join(format!("firmup-bench-scan-{}", std::process::id()));
    cold.save(&dir).expect("save index");
    let warm = CorpusIndex::open(&dir).expect("open index");
    assert!(warm.is_lazy(), "v2 save must open lazily");
    cold.save_v1(&dir).expect("save v1 index");
    let warm_v1 = CorpusIndex::open(&dir).expect("open v1 index");
    assert!(!warm_v1.is_lazy(), "v1 file must load eagerly");
    // Keep the v2 file around: top-k cells below reopen it fresh so the
    // decode counter starts from an empty cache.
    cold.save(&dir).expect("save index");

    // Jobs exactly as `firmup scan` builds them: one per (CVE, arch
    // group), query compiled once per (package, arch).
    let mut arch_groups: Vec<(Arch, Vec<usize>)> = Vec::new();
    for i in 0..cold.len() {
        let arch = cold.exe_arch(i);
        match arch_groups.iter_mut().find(|(a, _)| *a == arch) {
            Some((_, members)) => members.push(i),
            None => arch_groups.push((arch, vec![i])),
        }
    }
    let mut query_store: Vec<ExecutableRep> = Vec::new();
    let mut cache: std::collections::HashMap<(String, Arch), Option<usize>> =
        std::collections::HashMap::new();
    // (query-store index, query procedure, CVE id, arch, candidates)
    let mut jobs: Vec<(usize, usize, &'static str, Arch, Vec<usize>)> = Vec::new();
    for cve in all_cves() {
        for (arch, members) in &arch_groups {
            let slot = *cache
                .entry((cve.package.to_string(), *arch))
                .or_insert_with(|| {
                    try_build_query(cve.package, *arch)
                        .ok()
                        .and_then(|(elf, _)| index_elf(&elf, "query", &canon).ok())
                        .map(|rep| {
                            query_store.push(rep);
                            query_store.len() - 1
                        })
                });
            let Some(qi) = slot else { continue };
            let Some(qv) = query_store[qi].find_named(cve.procedure) else {
                continue;
            };
            jobs.push((qi, qv, cve.cve, *arch, members.clone()));
        }
    }
    let plays: usize = jobs.iter().map(|(.., members)| members.len()).sum();

    // One sweep: trim each job's candidates to top-k (0 = all), decode
    // the union (lazy indexes pay here — included in the wall), then
    // decompose along shard boundaries, run every unit, and fingerprint
    // the merged findings (content + stable ids only).
    let run_sweep = |index: &CorpusIndex, threads: usize, top_k: usize| -> (f64, Vec<String>) {
        let t0 = Instant::now();
        let job_candidates: Vec<Vec<usize>> = jobs
            .iter()
            .map(|(qi, qv, _, arch, members)| {
                if top_k == 0 {
                    return members.clone();
                }
                prefilter_candidates(
                    &query_store[*qi].procedures[*qv],
                    &index.postings,
                    Some(&index.context),
                    0,
                )
                .into_iter()
                .map(|(i, _)| i)
                .filter(|&i| index.exe_arch(i) == *arch)
                .take(top_k)
                .collect()
            })
            .collect();
        let mut wanted: Vec<usize> = job_candidates.iter().flatten().copied().collect();
        wanted.sort_unstable();
        wanted.dedup();
        index.ensure_decoded(wanted).expect("decode candidates");
        let shards = index.shard_ranges(resolve_threads(threads) * 4);
        let mut units: Vec<ScanUnit> = Vec::new();
        for (j, members) in job_candidates.iter().enumerate() {
            for shard in &shards {
                let targets: Vec<usize> = members
                    .iter()
                    .copied()
                    .filter(|i| shard.contains(i))
                    .collect();
                if !targets.is_empty() {
                    units.push(ScanUnit { job: j, targets });
                }
            }
        }
        let job_queries: Vec<(&ExecutableRep, usize)> = jobs
            .iter()
            .map(|&(qi, qv, ..)| (&query_store[qi], qv))
            .collect();
        let config = SearchConfig {
            context: Some(index.context.clone()),
            threads,
            ..SearchConfig::default()
        };
        let view = index.rep_view();
        let per_unit = scan_units(
            &job_queries,
            &units,
            &view,
            &config,
            &ScanBudget::unlimited(),
            &|| false,
        );
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let mut per_job: Vec<Vec<Vec<firmup_core::search::TargetOutcome>>> =
            jobs.iter().map(|_| Vec::new()).collect();
        for (unit, outs) in units.iter().zip(per_unit) {
            per_job[unit.job].push(outs);
        }
        let mut fingerprint: Vec<String> = Vec::new();
        for (job, outs) in jobs.iter().zip(per_job) {
            let cve = job.2;
            for o in merge_outcomes(outs) {
                if let Some(r) = o.result() {
                    if let Some(m) = &r.matched {
                        fingerprint.push(format!(
                            "{cve}|{}|{:#x}|{}|{}",
                            o.target_id(),
                            m.addr,
                            m.sim,
                            r.steps
                        ));
                    }
                }
            }
        }
        (wall_ms, fingerprint)
    };

    let quick = preset == "quick";
    let sweep: &[usize] = if quick { &[1, 2, 4] } else { &[1, 2, 4, 8] };
    let reps_counter = |snap: &firmup_telemetry::Snapshot| -> u64 {
        snap.counters
            .iter()
            .find(|(n, _)| n == "index.reps_decoded")
            .map_or(0, |&(_, v)| v)
    };
    let mut cells = Vec::new();
    // Per-top-k references: every (mode, threads) cell must reproduce
    // the cold serial fingerprint for its own top-k.
    let mut references: std::collections::HashMap<usize, Vec<String>> =
        std::collections::HashMap::new();
    let mut measure = |index: &CorpusIndex,
                       mode: &'static str,
                       threads: usize,
                       top_k: usize,
                       serial_wall: f64|
     -> f64 {
        let before = firmup_telemetry::snapshot();
        // Best of three: sub-100ms sweeps are jitter-prone, and the
        // repeats double as a run-to-run determinism check.
        let (mut wall_ms, fp) = run_sweep(index, threads, top_k);
        let mut stable = true;
        for _ in 0..2 {
            let (w, fp_rep) = run_sweep(index, threads, top_k);
            wall_ms = wall_ms.min(w);
            stable &= fp_rep == fp;
        }
        let after = firmup_telemetry::snapshot();
        let h = histogram_delta(&before, &after, "search.target_us");
        let serial_wall = if serial_wall > 0.0 {
            serial_wall
        } else {
            wall_ms
        };
        let reference = references.entry(top_k).or_insert_with(|| fp.clone());
        let cell_plays = if top_k == 0 {
            plays
        } else {
            // A query can't play more candidates than its architecture
            // offers, so cap per job rather than assuming a full top-k.
            jobs.iter()
                .map(|(.., cands)| cands.len().min(top_k))
                .sum::<usize>()
        };
        cells.push(ScanBenchCell {
            mode,
            threads,
            top_k,
            wall_ms,
            targets_per_sec: if wall_ms > 0.0 {
                cell_plays as f64 / (wall_ms / 1e3)
            } else {
                0.0
            },
            speedup: if wall_ms > 0.0 {
                serial_wall / wall_ms
            } else {
                0.0
            },
            findings: fp.len(),
            results_equal: stable && fp == *reference,
            reps_decoded: reps_counter(&after).saturating_sub(reps_counter(&before)),
            p50_target_us: h.quantile(0.5),
            p95_target_us: h.quantile(0.95),
        });
        wall_ms
    };
    for (mode, index) in [("cold", &cold), ("warm", &warm), ("warm_v1", &warm_v1)] {
        let mut serial_wall = 0.0f64;
        for &threads in sweep {
            let wall = measure(index, mode, threads, 0, serial_wall);
            if threads == 1 {
                serial_wall = wall;
            }
        }
    }
    // Top-k sensitivity at the widest thread count, each k on a freshly
    // opened lazy index so `reps_decoded` reflects a cold decode cache.
    let widest = *sweep.last().unwrap_or(&1);
    for &k in &[8usize, 32, 128] {
        let fresh = CorpusIndex::open(&dir).expect("reopen index");
        measure(&fresh, "warm", widest, k, 0.0);
    }
    let _ = std::fs::remove_dir_all(&dir);
    ScanBench {
        preset: preset.to_string(),
        devices,
        executables: cold.len(),
        procedures: (0..cold.len()).map(|i| cold.get(i).procedures.len()).sum(),
        plays,
        host_cpus: std::thread::available_parallelism().map_or(1, usize::from),
        alloc_bytes,
        postings_bytes,
        cells,
    }
}

/// Render the scan benchmark as the `results/bench_scan.json` payload.
pub fn render_scan_bench(b: &ScanBench) -> String {
    use firmup_telemetry::json::Json;
    let r3 = |x: f64| (x * 1e3).round() / 1e3;
    let cells: Vec<Json> = b
        .cells
        .iter()
        .map(|c| {
            Json::Obj(vec![
                ("mode".into(), Json::Str(c.mode.to_string())),
                ("threads".into(), Json::Num(c.threads as f64)),
                ("top_k".into(), Json::Num(c.top_k as f64)),
                ("wall_ms".into(), Json::Num(r3(c.wall_ms))),
                ("targets_per_sec".into(), Json::Num(r3(c.targets_per_sec))),
                ("speedup".into(), Json::Num(r3(c.speedup))),
                ("findings".into(), Json::Num(c.findings as f64)),
                ("results_equal".into(), Json::Bool(c.results_equal)),
                ("reps_decoded".into(), Json::Num(c.reps_decoded as f64)),
                ("p50_target_us".into(), Json::Num(r3(c.p50_target_us))),
                ("p95_target_us".into(), Json::Num(r3(c.p95_target_us))),
            ])
        })
        .collect();
    let doc = Json::Obj(vec![
        ("preset".into(), Json::Str(b.preset.clone())),
        ("devices".into(), Json::Num(b.devices as f64)),
        ("executables".into(), Json::Num(b.executables as f64)),
        ("procedures".into(), Json::Num(b.procedures as f64)),
        ("plays".into(), Json::Num(b.plays as f64)),
        ("host_cpus".into(), Json::Num(b.host_cpus as f64)),
        ("alloc_bytes".into(), Json::Num(b.alloc_bytes as f64)),
        ("postings_bytes".into(), Json::Num(b.postings_bytes as f64)),
        ("cells".into(), Json::Arr(cells)),
    ]);
    let mut out = doc.render();
    out.push('\n');
    out
}

/// The standalone acceptance gate on a fresh [`ScanBench`], independent
/// of any baseline: every cell must report `results_equal` (the
/// determinism invariant across thread counts, cold ≡ warm ≡ warm_v1),
/// and — only when the host has ≥ 4 cores, where parallel speedup is
/// physically measurable — the best 4-thread `top_k = 0` cell must
/// clear 1.5× over its serial counterpart.
///
/// # Errors
///
/// A human-readable description of the first violated gate.
pub fn check_scan_bench(b: &ScanBench) -> Result<(), String> {
    for c in &b.cells {
        if !c.results_equal {
            return Err(format!(
                "determinism violation: mode={} threads={} top_k={} diverged from the reference findings",
                c.mode, c.threads, c.top_k
            ));
        }
    }
    if b.host_cpus >= 4 {
        let best = b
            .cells
            .iter()
            .filter(|c| c.threads == 4 && c.top_k == 0)
            .map(|c| c.speedup)
            .fold(0.0f64, f64::max);
        if best <= 1.5 {
            return Err(format!(
                "scaling failure: best 4-thread speedup {best:.2}× ≤ 1.5× on a {}-cpu host",
                b.host_cpus
            ));
        }
    }
    Ok(())
}

/// Compare a fresh `bench_scan.json` against a checked-in baseline.
///
/// Hard failures (the `Err` string): unparseable documents, a sweep
/// shape mismatch (different `preset`/`devices`, or a baseline cell
/// with no matching (mode, threads, top_k) cell), any cell with
/// `results_equal: false`, a findings-count change, or a speedup below
/// `baseline × (1 - tol)`. Speedups *above* `baseline × (1 + tol)` —
/// e.g. a 1-core baseline replayed on a many-core runner — only produce
/// warnings (the `Ok` list), and the below-baseline check is skipped
/// entirely (with a warning) when the current host has fewer cores than
/// the baseline's, which is what lets the same baseline gate hosts of
/// different widths.
pub fn compare_scan_bench(current: &str, baseline: &str, tol: f64) -> Result<Vec<String>, String> {
    use firmup_telemetry::json::Json;
    let cur = Json::parse(current).map_err(|e| format!("current bench_scan.json: {e}"))?;
    let base = Json::parse(baseline).map_err(|e| format!("baseline bench_scan.json: {e}"))?;
    for key in ["preset", "devices"] {
        let (a, b) = (cur.get(key), base.get(key));
        if a.map(Json::render) != b.map(Json::render) {
            return Err(format!(
                "sweep shape mismatch on `{key}`: current {:?} vs baseline {:?}",
                a.map(Json::render),
                b.map(Json::render)
            ));
        }
    }
    let cells = |doc: &Json| -> Result<Vec<Json>, String> {
        Ok(doc
            .get("cells")
            .and_then(Json::as_arr)
            .ok_or("missing `cells` array")?
            .to_vec())
    };
    let cur_cells = cells(&cur)?;
    let mut warnings = Vec::new();
    let cpus = |doc: &Json| doc.get("host_cpus").and_then(Json::as_u64);
    let narrower_host = match (cpus(&cur), cpus(&base)) {
        (Some(c), Some(b)) => c < b,
        _ => false,
    };
    if narrower_host {
        warnings.push(format!(
            "current host has {} cpu(s) vs baseline's {}; speedup regressions not enforced",
            cpus(&cur).unwrap_or(0),
            cpus(&base).unwrap_or(0)
        ));
    }
    for bc in cells(&base)? {
        let (mode, threads, top_k) = (
            bc.get("mode").and_then(Json::as_str).unwrap_or(""),
            bc.get("threads").and_then(Json::as_u64).unwrap_or(0),
            bc.get("top_k").and_then(Json::as_u64).unwrap_or(0),
        );
        let cc = cur_cells
            .iter()
            .find(|c| {
                c.get("mode").and_then(Json::as_str) == Some(mode)
                    && c.get("threads").and_then(Json::as_u64) == Some(threads)
                    && c.get("top_k").and_then(Json::as_u64).unwrap_or(0) == top_k
            })
            .ok_or_else(|| {
                format!("no current cell for mode={mode} threads={threads} top_k={top_k}")
            })?;
        if !matches!(cc.get("results_equal"), Some(Json::Bool(true))) {
            return Err(format!(
                "determinism violation: mode={mode} threads={threads} top_k={top_k} \
                 has results_equal != true"
            ));
        }
        let num = |c: &Json, k: &str| c.get(k).and_then(Json::as_f64);
        let (cf, bf) = (num(cc, "findings"), num(&bc, "findings"));
        if cf != bf {
            return Err(format!(
                "findings changed for mode={mode} threads={threads} top_k={top_k}: \
                 {cf:?} vs baseline {bf:?}"
            ));
        }
        if let (Some(cs), Some(bs)) = (num(cc, "speedup"), num(&bc, "speedup")) {
            if cs < bs * (1.0 - tol) && !narrower_host {
                return Err(format!(
                    "speedup regression for mode={mode} threads={threads} top_k={top_k}: \
                     {cs:.2} < {bs:.2} × (1 - {tol:.2})"
                ));
            }
            if cs > bs * (1.0 + tol) {
                warnings.push(format!(
                    "speedup improved for mode={mode} threads={threads} top_k={top_k}: \
                     {cs:.2} > {bs:.2} × (1 + {tol:.2}) — consider reblessing the baseline"
                ));
            }
        }
    }
    Ok(warnings)
}

// ===================================================================
// Trace-overhead benchmark — what instrumentation costs the hot path
// ===================================================================

/// One cell of the trace-overhead sweep: a telemetry mode and the
/// best-of-3 wall time of the same scan workload under it.
#[derive(Debug, Clone)]
pub struct TraceOverheadCell {
    /// `"off"` (recording disabled), `"metrics"` (span-stats registry
    /// only), or `"full"` (metrics + span-trace collection).
    pub mode: &'static str,
    /// Best-of-3 wall time in milliseconds.
    pub wall_ms: f64,
    /// Spans collected per run (non-zero only in `full` mode).
    pub spans: usize,
}

/// Result of `experiments trace-overhead`: the cost of observability on
/// a representative scan, as a fraction of the untraced wall time.
#[derive(Debug, Clone)]
pub struct TraceOverhead {
    /// Corpus scale multiplier.
    pub scale: usize,
    /// Devices in the generated corpus.
    pub devices: usize,
    /// Executables scanned.
    pub executables: usize,
    /// Target games per run (arch queries × targets).
    pub plays: usize,
    /// The three mode cells, in off → metrics → full order.
    pub cells: Vec<TraceOverheadCell>,
    /// `metrics` wall over `off` wall, minus 1.
    pub overhead_metrics: f64,
    /// `full` wall over `off` wall, minus 1 — gated at < 10%.
    pub overhead_full: f64,
}

/// Budget the CI gate holds `overhead_full` under.
pub const TRACE_OVERHEAD_BUDGET: f64 = 0.10;

/// Measure what telemetry costs a hot scan: one CVE query (all four
/// architectures) played against every corpus target, identical across
/// three telemetry modes — recording off, metrics only, and full span
/// tracing. Each mode is best-of-3 after a shared warm-up run, so the
/// comparison isolates instrumentation from cache state. Restores the
/// enabled-metrics/no-span-trace state the experiments CLI runs under.
pub fn bench_trace_overhead(scale: usize) -> TraceOverhead {
    use firmup_core::search::{search_corpus_robust, ScanBudget};
    use firmup_core::sim::ExecutableRep;

    let wb = Workbench::build(scale);
    let reps: Vec<&ExecutableRep> = wb.targets.iter().map(|t| &t.rep).collect();
    // Three queries × four architectures each: enough games that the
    // wall time dwarfs scheduler jitter, so a <10% budget is testable.
    let queries: Vec<Query> = FIG6_QUERIES[..3]
        .iter()
        .map(|(pkg, proc)| wb.query(pkg, proc))
        .collect();
    let config = SearchConfig {
        context: Some(std::sync::Arc::clone(&wb.context)),
        threads: 4,
        ..SearchConfig::default()
    };
    let run = || {
        let mut findings = 0usize;
        for query in &queries {
            for (_, rep, qv, _) in &query.per_arch {
                let report =
                    search_corpus_robust(rep, *qv, &reps, &config, &ScanBudget::unlimited());
                findings += report
                    .outcomes
                    .iter()
                    .filter(|o| o.result().is_some_and(|r| r.found()))
                    .count();
            }
        }
        findings
    };

    // Warm up caches once, outside any measurement.
    firmup_telemetry::disable();
    firmup_telemetry::set_span_trace(false);
    let _ = run();

    // Best-of-3 with the modes interleaved round-robin, so slow drift
    // (frequency scaling, page-cache warming) hits every mode equally
    // instead of biasing whichever mode measures first.
    let modes: [(&'static str, bool, bool); 3] = [
        ("off", false, false),
        ("metrics", true, false),
        ("full", true, true),
    ];
    let mut cells: Vec<TraceOverheadCell> = modes
        .iter()
        .map(|&(mode, ..)| TraceOverheadCell {
            mode,
            wall_ms: f64::INFINITY,
            spans: 0,
        })
        .collect();
    for _ in 0..3 {
        for (cell, &(_, metrics, span_trace)) in cells.iter_mut().zip(&modes) {
            if metrics {
                firmup_telemetry::enable();
            } else {
                firmup_telemetry::disable();
            }
            firmup_telemetry::set_span_trace(span_trace);
            drop(firmup_telemetry::take_trace());
            let t0 = Instant::now();
            let _ = run();
            cell.wall_ms = cell.wall_ms.min(t0.elapsed().as_secs_f64() * 1e3);
            cell.spans = firmup_telemetry::take_trace().spans.len();
        }
    }
    firmup_telemetry::enable();
    firmup_telemetry::set_span_trace(false);

    let wall = |mode: &str| {
        cells
            .iter()
            .find(|c| c.mode == mode)
            .map_or(0.0, |c| c.wall_ms)
    };
    let overhead = |mode: &str| {
        if wall("off") > 0.0 {
            wall(mode) / wall("off") - 1.0
        } else {
            0.0
        }
    };
    TraceOverhead {
        scale,
        devices: wb.corpus.images.len(),
        executables: reps.len(),
        plays: queries.iter().map(|q| q.per_arch.len()).sum::<usize>() * reps.len(),
        overhead_metrics: overhead("metrics"),
        overhead_full: overhead("full"),
        cells,
    }
}

/// Render the trace-overhead result as the
/// `results/bench_trace_overhead.json` payload.
pub fn render_trace_overhead(b: &TraceOverhead) -> String {
    use firmup_telemetry::json::Json;
    let r3 = |x: f64| (x * 1e3).round() / 1e3;
    let cells: Vec<Json> = b
        .cells
        .iter()
        .map(|c| {
            Json::Obj(vec![
                ("mode".into(), Json::Str(c.mode.to_string())),
                ("wall_ms".into(), Json::Num(r3(c.wall_ms))),
                ("spans".into(), Json::Num(c.spans as f64)),
            ])
        })
        .collect();
    let doc = Json::Obj(vec![
        ("scale".into(), Json::Num(b.scale as f64)),
        ("devices".into(), Json::Num(b.devices as f64)),
        ("executables".into(), Json::Num(b.executables as f64)),
        ("plays".into(), Json::Num(b.plays as f64)),
        ("cells".into(), Json::Arr(cells)),
        ("overhead_metrics".into(), Json::Num(r3(b.overhead_metrics))),
        ("overhead_full".into(), Json::Num(r3(b.overhead_full))),
        ("budget".into(), Json::Num(TRACE_OVERHEAD_BUDGET)),
    ]);
    let mut out = doc.render();
    out.push('\n');
    out
}

/// Render the index benchmark as the `results/bench_index.json` payload.
pub fn render_index_bench(b: &IndexBench) -> String {
    format!(
        "{{\n  \"scale\": {},\n  \"executables\": {},\n  \"procedures\": {},\n  \
         \"index_bytes\": {},\n  \"cold_ms\": {:.3},\n  \"warm_ms\": {:.3},\n  \
         \"speedup\": {:.2},\n  \"results_equal\": {}\n}}\n",
        b.scale,
        b.executables,
        b.procedures,
        b.index_bytes,
        b.cold_ms,
        b.warm_ms,
        b.speedup,
        b.results_equal
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(preset: &str, cells: &[(&str, u64, f64, u64, bool)]) -> String {
        doc_on_host(preset, 4, cells)
    }

    fn doc_on_host(preset: &str, host_cpus: u64, cells: &[(&str, u64, f64, u64, bool)]) -> String {
        use firmup_telemetry::json::Json;
        let cells: Vec<Json> = cells
            .iter()
            .map(|&(mode, threads, speedup, findings, eq)| {
                Json::Obj(vec![
                    ("mode".into(), Json::Str(mode.to_string())),
                    ("threads".into(), Json::Num(threads as f64)),
                    ("top_k".into(), Json::Num(0.0)),
                    ("speedup".into(), Json::Num(speedup)),
                    ("findings".into(), Json::Num(findings as f64)),
                    ("results_equal".into(), Json::Bool(eq)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("preset".into(), Json::Str(preset.to_string())),
            ("devices".into(), Json::Num(4.0)),
            ("host_cpus".into(), Json::Num(host_cpus as f64)),
            ("cells".into(), Json::Arr(cells)),
        ])
        .render()
    }

    #[test]
    fn comparator_accepts_within_tolerance() {
        let base = doc(
            "quick",
            &[("cold", 1, 1.0, 9, true), ("cold", 4, 2.0, 9, true)],
        );
        let cur = doc(
            "quick",
            &[("cold", 1, 1.0, 9, true), ("cold", 4, 1.7, 9, true)],
        );
        let warnings = compare_scan_bench(&cur, &base, 0.20).expect("within tolerance");
        assert!(warnings.is_empty(), "{warnings:?}");
    }

    #[test]
    fn comparator_fails_on_speedup_regression_and_warns_on_improvement() {
        let base = doc("quick", &[("cold", 4, 2.0, 9, true)]);
        let slow = doc("quick", &[("cold", 4, 1.5, 9, true)]);
        let err = compare_scan_bench(&slow, &base, 0.20).unwrap_err();
        assert!(err.contains("speedup regression"), "{err}");
        let fast = doc("quick", &[("cold", 4, 3.1, 9, true)]);
        let warnings = compare_scan_bench(&fast, &base, 0.20).expect("improvement passes");
        assert_eq!(warnings.len(), 1, "{warnings:?}");
        assert!(warnings[0].contains("improved"), "{warnings:?}");
    }

    #[test]
    fn comparator_skips_speedup_gate_on_narrower_hosts() {
        // A 4-core baseline replayed on a 1-core host can't reproduce the
        // parallel speedup; the comparator must warn instead of failing,
        // while still enforcing determinism.
        let base = doc_on_host("quick", 4, &[("cold", 4, 2.0, 9, true)]);
        let slow = doc_on_host("quick", 1, &[("cold", 4, 1.0, 9, true)]);
        let warnings = compare_scan_bench(&slow, &base, 0.20).expect("narrow host passes");
        assert!(
            warnings.iter().any(|w| w.contains("not enforced")),
            "{warnings:?}"
        );
        let nondet = doc_on_host("quick", 1, &[("cold", 4, 1.0, 9, false)]);
        assert!(compare_scan_bench(&nondet, &base, 0.20)
            .unwrap_err()
            .contains("determinism"));
    }

    #[test]
    fn comparator_hard_fails_on_determinism_findings_and_shape() {
        let base = doc("quick", &[("cold", 1, 1.0, 9, true)]);
        let nondet = doc("quick", &[("cold", 1, 1.0, 9, false)]);
        assert!(compare_scan_bench(&nondet, &base, 0.20)
            .unwrap_err()
            .contains("determinism"));
        let drifted = doc("quick", &[("cold", 1, 1.0, 7, true)]);
        assert!(compare_scan_bench(&drifted, &base, 0.20)
            .unwrap_err()
            .contains("findings changed"));
        let missing = doc("quick", &[("warm", 1, 1.0, 9, true)]);
        assert!(compare_scan_bench(&missing, &base, 0.20)
            .unwrap_err()
            .contains("no current cell"));
        let full = doc("medium", &[("cold", 1, 1.0, 9, true)]);
        assert!(compare_scan_bench(&full, &base, 0.20)
            .unwrap_err()
            .contains("sweep shape mismatch"));
        assert!(compare_scan_bench("nonsense", &base, 0.20).is_err());
    }

    #[test]
    fn histogram_delta_subtracts_prior_observations() {
        firmup_telemetry::enable();
        let name = "bench.test.delta_histogram";
        firmup_telemetry::observe(name, 10);
        let before = firmup_telemetry::snapshot();
        firmup_telemetry::observe(name, 100);
        firmup_telemetry::observe(name, 100);
        let after = firmup_telemetry::snapshot();
        let d = histogram_delta(&before, &after, name);
        assert_eq!(d.count, 2);
        assert_eq!(d.sum, 200);
        let p50 = d.quantile(0.5);
        assert!((64.0..128.0).contains(&p50), "p50 = {p50}");
        let none = histogram_delta(&after, &after, name);
        assert_eq!(none.count, 0);
        assert_eq!(none.quantile(0.5), 0.0);
    }
}
