//! Experiment harness regenerating every table and figure of the
//! paper's evaluation, plus Criterion micro-benchmarks.
//!
//! Run `cargo run -p firmup-bench --release --bin experiments -- all`
//! to regenerate the full evaluation; see DESIGN.md's experiment index.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod setup;
