//! CLI for regenerating the paper's tables and figures.
//!
//! Usage: `experiments [table1|fig3|table2|fig6|fig7|fig8|fig9|ablation|index|scan-bench|trace-overhead|all]
//! [--scale N] [--quick]`
//!
//! Every run profiles itself through `firmup-telemetry` and writes the
//! machine-readable snapshot to `results/bench_metrics.json` — per-stage
//! span timings (`lift`, `canonicalize`, `index`, `game`, `search`), the
//! `game.steps` histogram (Fig. 9's metric), and pipeline counters —
//! seeding the perf trajectory future optimisation PRs measure against.

use std::path::Path;

use firmup_bench::experiments as ex;
use firmup_bench::setup::Workbench;
use firmup_firmware::durable::write_atomic;

// Results land via temp+fsync+rename so a crashed or ^C'd run never
// leaves a half-written table behind for a later `all` to mix in.
fn save(name: &str, content: &str) {
    println!("{content}");
    let _ = std::fs::create_dir_all("results");
    let path = format!("results/{name}.txt");
    match write_atomic(Path::new(&path), content.as_bytes()) {
        Ok(()) => eprintln!("[saved {path}]"),
        Err(e) => eprintln!("[failed to save {path}: {e}]"),
    }
}

fn save_json(name: &str, content: &str) {
    println!("{content}");
    let _ = std::fs::create_dir_all("results");
    let path = format!("results/{name}.json");
    match write_atomic(Path::new(&path), content.as_bytes()) {
        Ok(()) => eprintln!("[saved {path}]"),
        Err(e) => eprintln!("[failed to save {path}: {e}]"),
    }
}

fn save_metrics() {
    let _ = std::fs::create_dir_all("results");
    let path = "results/bench_metrics.json";
    let json = firmup_telemetry::render_json().render();
    match write_atomic(Path::new(path), json.as_bytes()) {
        Ok(()) => eprintln!("[saved {path}]"),
        Err(e) => eprintln!("[failed to save {path}: {e}]"),
    }
}

fn main() {
    firmup_telemetry::enable();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("all");
    let scale = args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(1);

    // The corpus-free experiments.
    if matches!(which, "table1" | "all") {
        save("table1", &ex::table1());
    }
    if matches!(which, "fig3" | "all") {
        save("fig3", &ex::fig3());
    }
    // The index benchmark builds its own corpus (it measures corpus
    // preparation itself, so the shared Workbench would be cheating).
    if matches!(which, "index" | "all") {
        eprintln!("[benchmarking cold vs warm index at scale {scale}…]");
        save_json(
            "bench_index",
            &ex::render_index_bench(&ex::bench_index(scale)),
        );
    }
    // The scan-scaling benchmark also builds its own corpus (it measures
    // the scan decomposition end to end); with a checked-in baseline it
    // doubles as a regression gate: exit 1 on a speedup/determinism
    // regression, warn on improvement.
    if matches!(which, "scan-bench") {
        // --quick is the historical 4-device sweep; --preset selects a
        // gen-corpus scale preset (smoke/small/medium).
        let preset = if args.iter().any(|a| a == "--quick") {
            "quick".to_string()
        } else {
            args.iter()
                .position(|a| a == "--preset")
                .and_then(|i| args.get(i + 1))
                .cloned()
                .unwrap_or_else(|| "medium".to_string())
        };
        eprintln!("[benchmarking scan scaling ({preset} preset)…]");
        let bench = ex::bench_scan(&preset);
        let rendered = ex::render_scan_bench(&bench);
        save_json("bench_scan", &rendered);
        // Determinism is non-negotiable on every host; the parallel
        // speedup criterion only applies where the hardware can show it.
        if let Err(e) = ex::check_scan_bench(&bench) {
            eprintln!("[bench failure: {e}]");
            save_metrics();
            std::process::exit(1);
        }
        // The checked-in baseline is a --quick sweep; only a --quick run
        // is an apples-to-apples regression gate.
        if preset == "quick" {
            match std::fs::read_to_string("results/bench_baseline.json") {
                Ok(baseline) => match ex::compare_scan_bench(&rendered, &baseline, 0.20) {
                    Ok(warnings) => {
                        for w in warnings {
                            eprintln!("[bench warning: {w}]");
                        }
                        eprintln!("[scan bench within ±20% of results/bench_baseline.json]");
                    }
                    Err(e) => {
                        eprintln!("[bench regression: {e}]");
                        save_metrics();
                        std::process::exit(1);
                    }
                },
                Err(_) => {
                    eprintln!("[no results/bench_baseline.json; skipping regression comparison]");
                }
            }
        }
        save_metrics();
        return;
    }
    // The trace-overhead gate: instrumentation must cost the hot scan
    // less than the budget, measured rather than assumed.
    if matches!(which, "trace-overhead") {
        eprintln!("[benchmarking tracing overhead at scale {scale}…]");
        let b = ex::bench_trace_overhead(scale);
        save_json("bench_trace_overhead", &ex::render_trace_overhead(&b));
        save_metrics();
        if b.overhead_full >= ex::TRACE_OVERHEAD_BUDGET {
            eprintln!(
                "[tracing overhead regression: full tracing costs {:+.1}% ≥ {:.0}% budget]",
                b.overhead_full * 100.0,
                ex::TRACE_OVERHEAD_BUDGET * 100.0
            );
            std::process::exit(1);
        }
        eprintln!(
            "[full tracing overhead {:+.1}%, metrics-only {:+.1}% — within the {:.0}% budget]",
            b.overhead_full * 100.0,
            b.overhead_metrics * 100.0,
            ex::TRACE_OVERHEAD_BUDGET * 100.0
        );
        return;
    }
    if matches!(which, "table1" | "fig3" | "index") {
        save_metrics();
        return;
    }

    eprintln!("[generating corpus at scale {scale}…]");
    let t0 = std::time::Instant::now();
    let wb = Workbench::build(scale);
    eprintln!(
        "[corpus ready: {} images, {} executables, {} procedures, indexed in {:?}]",
        wb.corpus.images.len(),
        wb.corpus.executable_count(),
        wb.corpus.procedure_count(),
        t0.elapsed()
    );

    match which {
        "table2" => save("table2", &ex::render_table2(&ex::table2(&wb))),
        "fig6" => save("fig6", &ex::render_fig6(&ex::fig6(&wb))),
        "fig7" => save("fig7", &ex::fig7(&wb)),
        "fig8" => save("fig8", &ex::render_fig8(&ex::fig8(&wb))),
        "fig9" => save("fig9", &ex::render_fig9(&ex::fig9(&wb))),
        "ablation" => save("ablation", &ex::render_ablation(&ex::ablation(&wb))),
        "all" => {
            save("table2", &ex::render_table2(&ex::table2(&wb)));
            save("fig6", &ex::render_fig6(&ex::fig6(&wb)));
            save("fig7", &ex::fig7(&wb));
            save("fig8", &ex::render_fig8(&ex::fig8(&wb)));
            save("fig9", &ex::render_fig9(&ex::fig9(&wb)));
            save("ablation", &ex::render_ablation(&ex::ablation(&wb)));
        }
        other => {
            eprintln!("unknown experiment `{other}`; use table1|fig3|table2|fig6|fig7|fig8|fig9|ablation|index|scan-bench|trace-overhead|all");
            std::process::exit(2);
        }
    }
    save_metrics();
}
