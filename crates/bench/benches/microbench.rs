//! Criterion micro-benchmarks for every pipeline stage.
//!
//! The paper reports wall-clock per Table 2 experiment line on a
//! 36-core Xeon; these benches expose where that time goes in this
//! reproduction: lifting, strand decomposition, canonicalization,
//! pairwise `Sim`, the game, and whole-target search.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use firmup_compiler::{compile_source, CompilerOptions, ToolchainProfile};
use firmup_core::canon::{canonicalize, AddrSpace, CanonConfig};
use firmup_core::game::{play, GameConfig};
use firmup_core::lift::lift_executable;
use firmup_core::search::{search_corpus, search_target, SearchConfig};
use firmup_core::sim::{index_elf, sim, ExecutableRep};
use firmup_core::strand::decompose;
use firmup_firmware::packages::source_for;
use firmup_isa::Arch;

fn wget_elf(arch: Arch) -> firmup_obj::Elf {
    let src = source_for("wget", "1.15", &[], 1, 4);
    compile_source(&src, arch, &CompilerOptions::default()).expect("compiles")
}

fn target_rep(arch: Arch) -> ExecutableRep {
    let src = source_for("wget", "1.15", &["opie"], 5, 4);
    let mut elf = compile_source(
        &src,
        arch,
        &CompilerOptions {
            profile: ToolchainProfile::vendor_size(),
            ..Default::default()
        },
    )
    .expect("compiles");
    elf.strip(false);
    index_elf(&elf, "target", &CanonConfig::default()).expect("indexes")
}

fn bench_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("compile");
    let src = source_for("wget", "1.15", &[], 1, 4);
    for arch in Arch::all() {
        g.bench_with_input(BenchmarkId::from_parameter(arch), &arch, |b, &arch| {
            b.iter(|| compile_source(&src, arch, &CompilerOptions::default()).expect("compiles"));
        });
    }
    g.finish();
}

fn bench_lift(c: &mut Criterion) {
    let mut g = c.benchmark_group("lift_executable");
    for arch in Arch::all() {
        let elf = wget_elf(arch);
        g.bench_with_input(BenchmarkId::from_parameter(arch), &elf, |b, elf| {
            b.iter(|| lift_executable(elf).expect("lifts"));
        });
    }
    g.finish();
}

fn bench_strands(c: &mut Criterion) {
    let elf = wget_elf(Arch::Mips32);
    let lifted = lift_executable(&elf).expect("lifts");
    let blocks: Vec<firmup_ir::ssa::SsaBlock> = lifted
        .program
        .procedures
        .iter()
        .flat_map(|p| p.blocks.iter().map(firmup_ir::ssa::ssa_block))
        .collect();
    c.bench_function("decompose_all_blocks", |b| {
        b.iter(|| blocks.iter().map(|blk| decompose(blk).len()).sum::<usize>());
    });

    let space = AddrSpace::from_elf(&elf);
    let config = CanonConfig::default();
    let strands: Vec<firmup_core::Strand> = blocks.iter().flat_map(decompose).collect();
    c.bench_function("canonicalize_all_strands", |b| {
        b.iter(|| {
            strands
                .iter()
                .map(|s| canonicalize(s, &space, &config).hash)
                .fold(0u64, u64::wrapping_add)
        });
    });
}

fn bench_index(c: &mut Criterion) {
    let elf = wget_elf(Arch::Mips32);
    c.bench_function("index_elf_end_to_end", |b| {
        b.iter(|| index_elf(&elf, "bench", &CanonConfig::default()).expect("indexes"));
    });
}

fn bench_sim_and_game(c: &mut Criterion) {
    let qelf = wget_elf(Arch::Mips32);
    let query = index_elf(&qelf, "query", &CanonConfig::default()).expect("indexes");
    let target = target_rep(Arch::Mips32);
    let qv = query.find_named("ftp_retrieve_glob").expect("symbol");

    let qp = &query.procedures[qv];
    let biggest = target
        .procedures
        .iter()
        .max_by_key(|p| p.strand_count())
        .expect("non-empty");
    c.bench_function("sim_pairwise", |b| {
        b.iter(|| sim(qp, biggest));
    });

    c.bench_function("game_single_target", |b| {
        b.iter(|| play(&query, qv, &target, &GameConfig::default()));
    });

    c.bench_function("search_target_accepted", |b| {
        b.iter(|| search_target(&query, qv, &target, &SearchConfig::default()));
    });
}

/// The acceptance gate for the telemetry layer: with recording disabled,
/// `search_corpus` must run within 2% of a build that never touches the
/// telemetry entry points (the disabled fast path is one relaxed atomic
/// load per hook).
fn bench_search_telemetry_overhead(c: &mut Criterion) {
    let qelf = wget_elf(Arch::Mips32);
    let query = index_elf(&qelf, "query", &CanonConfig::default()).expect("indexes");
    let qv = query.find_named("ftp_retrieve_glob").expect("symbol");
    let targets: Vec<ExecutableRep> = Arch::all().iter().map(|&a| target_rep(a)).collect();
    let config = SearchConfig {
        threads: 1,
        ..SearchConfig::default()
    };

    firmup_telemetry::disable();
    c.bench_function("search_corpus_telemetry_off", |b| {
        b.iter(|| search_corpus(&query, qv, &targets, &config));
    });

    firmup_telemetry::enable();
    c.bench_function("search_corpus_telemetry_on", |b| {
        b.iter(|| search_corpus(&query, qv, &targets, &config));
    });
    firmup_telemetry::disable();
}

fn bench_container(c: &mut Criterion) {
    let elf = wget_elf(Arch::Arm32);
    let bytes = elf.write();
    c.bench_function("elf_parse", |b| {
        b.iter(|| firmup_obj::Elf::parse(&bytes).expect("parses"));
    });
    let meta = firmup_firmware::image::ImageMeta {
        vendor: "NETGEAR".into(),
        device: "R7000".into(),
        version: "1.0".into(),
    };
    let parts = vec![firmup_firmware::image::Part {
        name: "bin/wget".into(),
        data: bytes,
    }];
    let blob = firmup_firmware::image::pack(&meta, &parts);
    c.bench_function("image_unpack", |b| {
        b.iter(|| firmup_firmware::image::unpack(&blob).expect("unpacks"));
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_compile, bench_lift, bench_strands, bench_index, bench_sim_and_game, bench_container, bench_search_telemetry_overhead
);
criterion_main!(benches);
