//! Property tests: ELF32 write/parse round-trips and parser robustness.

use firmup_obj::{Elf, Section, SectionKind, Symbol, SymbolKind};
use proptest::prelude::*;

fn section_name() -> impl Strategy<Value = String> {
    prop_oneof![
        Just(".text".to_string()),
        Just(".data".to_string()),
        Just(".rodata".to_string()),
        "[a-z.]{1,12}",
    ]
}

fn sections() -> impl Strategy<Value = Vec<Section>> {
    proptest::collection::vec(
        (
            section_name(),
            0x1000u32..0x8000_0000,
            proptest::collection::vec(any::<u8>(), 0..256),
            any::<bool>(),
            any::<bool>(),
        )
            .prop_map(|(name, addr, data, exec, write)| Section {
                name,
                addr,
                data,
                kind: SectionKind::Progbits,
                exec,
                write,
            }),
        0..5,
    )
}

fn symbols() -> impl Strategy<Value = Vec<Symbol>> {
    proptest::collection::vec(
        (
            "[a-z_][a-z0-9_]{0,20}",
            any::<u32>(),
            any::<u32>(),
            any::<bool>(),
            any::<bool>(),
        )
            .prop_map(|(name, value, size, func, global)| Symbol {
                name,
                value,
                size,
                kind: if func {
                    SymbolKind::Func
                } else {
                    SymbolKind::Object
                },
                global,
            }),
        0..12,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary well-formed executables survive a write/parse cycle
    /// byte-for-byte (sections, symbols, header fields).
    #[test]
    fn write_parse_roundtrip(
        machine in prop_oneof![Just(3u16), Just(8), Just(20), Just(40)],
        entry in any::<u32>(),
        sections in sections(),
        symbols in symbols(),
    ) {
        let elf = Elf {
            machine,
            entry,
            sections,
            symbols,
            warnings: vec![],
        };
        let bytes = elf.write();
        let back = Elf::parse(&bytes).expect("own output parses");
        prop_assert_eq!(back.machine, elf.machine);
        prop_assert_eq!(back.entry, elf.entry);
        prop_assert_eq!(back.sections, elf.sections);
        prop_assert_eq!(back.symbols, elf.symbols);
    }

    /// The parser never panics on arbitrary bytes.
    #[test]
    fn parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Elf::parse(&bytes);
    }

    /// The parser never panics on *mutated* valid ELFs (the firmware
    /// corruption scenario) and, when it succeeds, never returns
    /// out-of-file section data.
    #[test]
    fn mutated_elf_never_panics(
        flips in proptest::collection::vec((any::<proptest::sample::Index>(), any::<u8>()), 1..8)
    ) {
        let mut b = firmup_obj::write::ElfBuilder::new(8, 0x40_0000);
        b.text(0x40_0000, vec![0x90; 64])
            .data(0x1000_0000, vec![7; 32])
            .func("main", 0x40_0000, 64, false);
        let mut bytes = b.build().write();
        let n = bytes.len();
        for (idx, val) in flips {
            bytes[idx.index(n)] ^= val;
        }
        if let Ok(elf) = Elf::parse(&bytes) {
            for s in &elf.sections {
                prop_assert!(s.data.len() <= n);
            }
        }
    }

    /// Carving finds exactly the planted magics.
    #[test]
    fn carve_offsets_exact(
        pads in proptest::collection::vec(proptest::collection::vec(1u8..0x7f, 0..64), 1..5)
    ) {
        // Build pad₀ MAGIC pad₁ MAGIC … (pads contain no 0x7f so no
        // accidental magics).
        let mut blob = Vec::new();
        let mut expected = Vec::new();
        for (i, pad) in pads.iter().enumerate() {
            blob.extend_from_slice(pad);
            if i + 1 < pads.len() {
                expected.push(blob.len());
                blob.extend_from_slice(&firmup_obj::ELF_MAGIC);
            }
        }
        prop_assert_eq!(Elf::carve_offsets(&blob), expected);
    }
}
