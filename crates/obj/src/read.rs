//! Tolerant ELF32 parsing.

use crate::{Elf, ElfError, Section, SectionKind, Symbol, SymbolKind, ELF_MAGIC};

const SHT_PROGBITS: u32 = 1;
const SHT_SYMTAB: u32 = 2;
const SHT_STRTAB: u32 = 3;
const SHT_NOBITS: u32 = 8;

const SHF_WRITE: u32 = 1;
const SHF_ALLOC: u32 = 2;
const SHF_EXECINSTR: u32 = 4;

fn u16_at(b: &[u8], off: usize, ctx: &'static str) -> Result<u16, ElfError> {
    b.get(off..off + 2)
        .map(|s| u16::from_le_bytes([s[0], s[1]]))
        .ok_or(ElfError::Truncated { context: ctx })
}

fn u32_at(b: &[u8], off: usize, ctx: &'static str) -> Result<u32, ElfError> {
    b.get(off..off + 4)
        .map(|s| u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
        .ok_or(ElfError::Truncated { context: ctx })
}

fn cstr_at(table: &[u8], off: usize) -> String {
    let rest = match table.get(off..) {
        Some(r) => r,
        None => return String::new(),
    };
    let end = rest.iter().position(|&c| c == 0).unwrap_or(rest.len());
    String::from_utf8_lossy(&rest[..end]).into_owned()
}

struct RawShdr {
    name_off: u32,
    sh_type: u32,
    flags: u32,
    addr: u32,
    offset: u32,
    size: u32,
    link: u32,
}

impl Elf {
    /// Parse ELF32 bytes, tolerating the header damage commonly seen in
    /// firmware (§3.1 of the paper): a wrong `EI_CLASS`, a wrong
    /// `EI_DATA`/version byte, or an entry point outside any section are
    /// recorded in [`Elf::warnings`] rather than rejected.
    ///
    /// # Errors
    ///
    /// Hard failures only: missing magic, file shorter than its declared
    /// structures, or an unusable section header table.
    pub fn parse(bytes: &[u8]) -> Result<Elf, ElfError> {
        if bytes.len() < 4 || bytes[0..4] != ELF_MAGIC {
            return Err(ElfError::BadMagic);
        }
        let mut warnings = Vec::new();
        if bytes.len() < 52 {
            return Err(ElfError::Truncated {
                context: "ELF header",
            });
        }
        if bytes[4] != 1 {
            // The common firmware bug: ELFCLASS64 (or garbage) on 32-bit
            // content. Parse as 32-bit anyway.
            warnings.push(format!(
                "wrong EI_CLASS {} (expected ELFCLASS32); parsing as 32-bit",
                bytes[4]
            ));
        }
        if bytes[5] != 1 {
            warnings.push(format!("wrong EI_DATA {} (expected LSB)", bytes[5]));
        }
        if bytes[6] != 1 {
            warnings.push(format!("wrong EI_VERSION {}", bytes[6]));
        }
        let machine = u16_at(bytes, 18, "e_machine")?;
        let entry = u32_at(bytes, 24, "e_entry")?;
        let shoff = u32_at(bytes, 32, "e_shoff")? as usize;
        let shentsize = u16_at(bytes, 46, "e_shentsize")? as usize;
        let shnum = u16_at(bytes, 48, "e_shnum")? as usize;
        let shstrndx = u16_at(bytes, 50, "e_shstrndx")? as usize;
        if shentsize < 40 {
            return Err(ElfError::Malformed {
                reason: format!("e_shentsize {shentsize} too small"),
            });
        }
        if shnum == 0 {
            return Err(ElfError::Malformed {
                reason: "no section headers".into(),
            });
        }
        if shoff + shnum * shentsize > bytes.len() {
            return Err(ElfError::Truncated {
                context: "section header table",
            });
        }

        let shdr = |i: usize| -> Result<RawShdr, ElfError> {
            let base = shoff + i * shentsize;
            Ok(RawShdr {
                name_off: u32_at(bytes, base, "sh_name")?,
                sh_type: u32_at(bytes, base + 4, "sh_type")?,
                flags: u32_at(bytes, base + 8, "sh_flags")?,
                addr: u32_at(bytes, base + 12, "sh_addr")?,
                offset: u32_at(bytes, base + 16, "sh_offset")?,
                size: u32_at(bytes, base + 20, "sh_size")?,
                link: u32_at(bytes, base + 24, "sh_link")?,
            })
        };

        // Section-name string table.
        let shstr_data: Vec<u8> = if shstrndx < shnum {
            let h = shdr(shstrndx)?;
            let lo = h.offset as usize;
            let hi = lo + h.size as usize;
            match bytes.get(lo..hi) {
                Some(d) => d.to_vec(),
                None => {
                    warnings.push("section name table out of bounds; names lost".into());
                    Vec::new()
                }
            }
        } else {
            warnings.push(format!("bad e_shstrndx {shstrndx}; section names lost"));
            Vec::new()
        };

        let mut sections = Vec::new();
        let mut symtab: Option<(RawShdr, usize)> = None;
        let mut raw: Vec<RawShdr> = Vec::with_capacity(shnum);
        for i in 0..shnum {
            raw.push(shdr(i)?);
        }
        for (i, h) in raw.iter().enumerate() {
            match h.sh_type {
                SHT_PROGBITS | SHT_NOBITS if h.flags & SHF_ALLOC != 0 => {
                    let lo = h.offset as usize;
                    let hi = lo + h.size as usize;
                    let data = match bytes.get(lo..hi) {
                        Some(d) => d.to_vec(),
                        None => {
                            warnings.push(format!("section {i} contents out of bounds; dropped"));
                            continue;
                        }
                    };
                    sections.push(Section {
                        name: cstr_at(&shstr_data, h.name_off as usize),
                        addr: h.addr,
                        data,
                        kind: if h.sh_type == SHT_NOBITS {
                            SectionKind::Nobits
                        } else {
                            SectionKind::Progbits
                        },
                        exec: h.flags & SHF_EXECINSTR != 0,
                        write: h.flags & SHF_WRITE != 0,
                    });
                }
                SHT_SYMTAB => symtab = Some((shdr(i)?, i)),
                _ => {}
            }
        }

        // Symbols.
        let mut symbols = Vec::new();
        if let Some((h, _)) = symtab {
            let strtab: Vec<u8> = if (h.link as usize) < shnum {
                let sh = shdr(h.link as usize)?;
                if sh.sh_type == SHT_STRTAB {
                    // usize arithmetic: `sh.offset + sh.size` as u32 can
                    // overflow on attacker-controlled headers.
                    bytes
                        .get(sh.offset as usize..sh.offset as usize + sh.size as usize)
                        .map(<[u8]>::to_vec)
                        .unwrap_or_default()
                } else {
                    warnings.push("symtab links to a non-strtab section".into());
                    Vec::new()
                }
            } else {
                warnings.push("symtab string table index out of range".into());
                Vec::new()
            };
            let lo = h.offset as usize;
            let hi = lo + h.size as usize;
            if let Some(data) = bytes.get(lo..hi) {
                for chunk in data.chunks_exact(16).skip(1) {
                    let name_off = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
                    let value = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
                    let size = u32::from_le_bytes([chunk[8], chunk[9], chunk[10], chunk[11]]);
                    let info = chunk[12];
                    let kind = match info & 0xf {
                        2 => SymbolKind::Func,
                        _ => SymbolKind::Object,
                    };
                    symbols.push(Symbol {
                        name: cstr_at(&strtab, name_off as usize),
                        value,
                        size,
                        kind,
                        global: info >> 4 == 1,
                    });
                }
            } else {
                warnings.push("symbol table contents out of bounds; symbols lost".into());
            }
        }

        let elf = Elf {
            machine,
            entry,
            sections,
            symbols,
            warnings,
        };
        if elf.entry != 0 && elf.section_at(elf.entry).is_none() {
            let mut elf = elf;
            elf.warnings.push(format!(
                "entry point {:#x} is outside all sections",
                elf.entry
            ));
            return Ok(elf);
        }
        Ok(elf)
    }

    /// Scan a blob for embedded ELF images (the binwalk-style carving
    /// used by the firmware unpacker when the part table is damaged).
    /// Returns the byte offsets of every occurrence of the ELF magic.
    pub fn carve_offsets(blob: &[u8]) -> Vec<usize> {
        if blob.len() < 4 {
            return Vec::new();
        }
        (0..=blob.len() - 4)
            .filter(|&i| blob[i..i + 4] == ELF_MAGIC)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::write::ElfBuilder;

    #[test]
    fn carve_finds_embedded_images() {
        let e = ElfBuilder::new(3, 0x1000).build();
        let img = e.write();
        let mut blob = vec![0u8; 17];
        blob.extend_from_slice(&img);
        blob.extend(vec![0xffu8; 9]);
        blob.extend_from_slice(&img);
        let offs = Elf::carve_offsets(&blob);
        assert_eq!(offs, vec![17, 17 + img.len() + 9]);
    }

    #[test]
    fn carve_handles_tiny_blobs() {
        assert!(Elf::carve_offsets(&[]).is_empty());
        assert!(Elf::carve_offsets(&[0x7f, b'E']).is_empty());
    }

    #[test]
    fn entry_outside_sections_warns() {
        let mut b = ElfBuilder::new(3, 0xdead_0000);
        b.text(0x1000, vec![0x90]);
        let parsed = Elf::parse(&b.build().write()).unwrap();
        assert!(parsed.warnings.iter().any(|w| w.contains("entry point")));
    }

    #[test]
    fn garbage_after_magic_does_not_panic() {
        let mut bytes = ELF_MAGIC.to_vec();
        bytes.extend(vec![0xabu8; 60]);
        // Must return an error or a warned Elf, never panic.
        let _ = Elf::parse(&bytes);
    }

    fn sample_elf() -> Vec<u8> {
        let mut b = ElfBuilder::new(8, 0x1000);
        b.text(0x1000, vec![0x90u8; 32]);
        b.data(0x2000, vec![1, 2, 3, 4]);
        b.func("f", 0x1000, 16, true);
        b.func("g", 0x1010, 16, false);
        b.build().write()
    }

    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    #[test]
    fn truncation_at_every_length_never_panics() {
        let img = sample_elf();
        for n in 0..img.len() {
            // Every prefix must yield Ok or Err — never a panic. Short
            // prefixes must be hard errors, not empty successes.
            let r = Elf::parse(&img[..n]);
            if n < 52 {
                assert!(r.is_err(), "a {n}-byte prefix cannot be a valid ELF");
            }
        }
    }

    #[test]
    fn seeded_bitflip_fuzz_never_panics() {
        let img = sample_elf();
        let mut state = 0x4646_4952_4d55_5021u64; // pinned seed
        for _ in 0..500 {
            let mut bytes = img.clone();
            let flips = 1 + (splitmix(&mut state) % 8) as usize;
            for _ in 0..flips {
                let pos = (splitmix(&mut state) as usize) % bytes.len();
                let bit = (splitmix(&mut state) % 8) as u32;
                bytes[pos] ^= 1u8 << bit;
            }
            let _ = Elf::parse(&bytes);
        }
    }

    #[test]
    fn overflowing_string_table_bounds_never_panic() {
        // Smash every SHT_STRTAB header so that `offset + size`
        // overflows u32 — the symtab string-table slice arithmetic must
        // use usize math and degrade (lost names), not panic.
        let mut img = sample_elf();
        let shoff = u32::from_le_bytes(img[32..36].try_into().unwrap()) as usize;
        let shentsize = u16::from_le_bytes(img[46..48].try_into().unwrap()) as usize;
        let shnum = u16::from_le_bytes(img[48..50].try_into().unwrap()) as usize;
        let mut smashed = 0;
        for i in 0..shnum {
            let base = shoff + i * shentsize;
            let sh_type = u32::from_le_bytes(img[base + 4..base + 8].try_into().unwrap());
            if sh_type == SHT_STRTAB {
                img[base + 16..base + 20].copy_from_slice(&0xffff_ff00u32.to_le_bytes());
                img[base + 20..base + 24].copy_from_slice(&0x0000_0200u32.to_le_bytes());
                smashed += 1;
            }
        }
        assert!(smashed > 0, "sample ELF must contain a string table");
        let parsed = Elf::parse(&img).expect("structure is otherwise intact");
        assert!(
            parsed.symbols.iter().all(|s| s.name.is_empty()),
            "names must be lost, not invented"
        );
    }

    #[test]
    fn mangled_section_table_fields_degrade_cleanly() {
        let img = sample_elf();
        // Oversized e_shnum: the declared table overruns the file.
        let mut big = img.clone();
        big[48..50].copy_from_slice(&u16::MAX.to_le_bytes());
        assert!(matches!(Elf::parse(&big), Err(ElfError::Truncated { .. })));
        // Zeroed e_shentsize: malformed.
        let mut zero = img.clone();
        zero[46..48].copy_from_slice(&0u16.to_le_bytes());
        assert!(matches!(Elf::parse(&zero), Err(ElfError::Malformed { .. })));
        // e_shoff pointing past the end: truncated table.
        let mut far = img.clone();
        far[32..36].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(Elf::parse(&far), Err(ElfError::Truncated { .. })));
    }
}
