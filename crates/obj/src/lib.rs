//! Minimal ELF32 container format: writer, tolerant reader, stripping.
//!
//! Firmware executables are ELF files, frequently stripped, and — as the
//! paper reports in §3.1 — frequently *damaged*: "many of the executables
//! either had a corrupt Executable and Linkable Format (ELF) header, or
//! were distributed with the wrong `ELFCLASS`". This crate reproduces
//! both sides of that reality:
//!
//! * [`Elf::write`] produces byte-exact ELF32 images (used by the
//!   compiler back end), and
//! * [`Elf::parse`] reads them back **tolerantly**: recoverable header
//!   damage (wrong `EI_CLASS`, wrong version, bogus entry point) is
//!   reported through [`Elf::warnings`] instead of failing the parse,
//!   mirroring how FirmUp's pipeline keeps going on wild binaries.
//!
//! [`Elf::strip`] removes the symbol and string tables, which is how the
//! ground-truth corpus is turned into the stripped search targets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod read;
pub mod write;

use std::fmt;

/// ELF section types we model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SectionKind {
    /// `SHT_PROGBITS`: code or data.
    Progbits,
    /// `SHT_NOBITS`: zero-initialized (we keep data anyway for
    /// simplicity; written size still comes from `data`).
    Nobits,
}

/// A loadable section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    /// Section name (e.g. `.text`).
    pub name: String,
    /// Virtual address.
    pub addr: u32,
    /// Raw contents.
    pub data: Vec<u8>,
    /// Section type.
    pub kind: SectionKind,
    /// `SHF_EXECINSTR`.
    pub exec: bool,
    /// `SHF_WRITE`.
    pub write: bool,
}

impl Section {
    /// End address (exclusive), saturating: a malformed section whose
    /// base address plus size overflows the 32-bit space clamps to
    /// `u32::MAX` instead of panicking in debug builds.
    pub fn end(&self) -> u32 {
        self.addr.saturating_add(self.data.len() as u32)
    }

    /// Whether `addr` falls inside this section.
    pub fn contains(&self, addr: u32) -> bool {
        addr >= self.addr && addr < self.end()
    }
}

/// Kind of a symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SymbolKind {
    /// `STT_FUNC`.
    Func,
    /// `STT_OBJECT`.
    Object,
}

/// A symbol-table entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Symbol {
    /// Symbol name.
    pub name: String,
    /// Address.
    pub value: u32,
    /// Size in bytes.
    pub size: u32,
    /// Function or object.
    pub kind: SymbolKind,
    /// Whether the symbol is exported (`STB_GLOBAL`). Exported symbols
    /// survive even partial stripping in real firmware, which is what
    /// makes the paper's "exported procedures" ground-truth group
    /// possible.
    pub global: bool,
}

/// An ELF32 executable image.
#[derive(Debug, Clone, Default)]
pub struct Elf {
    /// `e_machine`.
    pub machine: u16,
    /// `e_entry`.
    pub entry: u32,
    /// Loadable sections in file order.
    pub sections: Vec<Section>,
    /// Symbols (empty after stripping).
    pub symbols: Vec<Symbol>,
    /// Soft problems found while parsing (wrong `EI_CLASS` etc.).
    pub warnings: Vec<String>,
}

impl Elf {
    /// New empty executable for the given machine.
    pub fn new(machine: u16, entry: u32) -> Elf {
        Elf {
            machine,
            entry,
            ..Elf::default()
        }
    }

    /// Find a section by name.
    pub fn section(&self, name: &str) -> Option<&Section> {
        self.sections.iter().find(|s| s.name == name)
    }

    /// The `.text` section, if present.
    pub fn text(&self) -> Option<&Section> {
        self.section(".text")
    }

    /// The section containing `addr`, if any.
    pub fn section_at(&self, addr: u32) -> Option<&Section> {
        self.sections.iter().find(|s| s.contains(addr))
    }

    /// All function symbols, sorted by address.
    pub fn func_symbols(&self) -> Vec<&Symbol> {
        let mut v: Vec<&Symbol> = self
            .symbols
            .iter()
            .filter(|s| s.kind == SymbolKind::Func)
            .collect();
        v.sort_by_key(|s| s.value);
        v
    }

    /// Whether the file carries no symbols.
    pub fn is_stripped(&self) -> bool {
        self.symbols.is_empty()
    }

    /// Remove all symbol information (like `strip(1)`), keeping only
    /// symbols marked `global` when `keep_exported` is set — this models
    /// libraries whose exported procedures remain nameable even in
    /// otherwise-stripped firmware (§5.3 of the paper).
    pub fn strip(&mut self, keep_exported: bool) {
        if keep_exported {
            self.symbols.retain(|s| s.global);
        } else {
            self.symbols.clear();
        }
    }
}

/// Hard parse failure (soft problems go to [`Elf::warnings`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ElfError {
    /// Missing `\x7fELF` magic.
    BadMagic,
    /// The file is too short for the structure it declares.
    Truncated {
        /// What we were reading when the file ran out.
        context: &'static str,
    },
    /// A structurally invalid value that cannot be recovered from.
    Malformed {
        /// Description of the problem.
        reason: String,
    },
}

impl fmt::Display for ElfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElfError::BadMagic => write!(f, "not an ELF file (bad magic)"),
            ElfError::Truncated { context } => write!(f, "truncated ELF while reading {context}"),
            ElfError::Malformed { reason } => write!(f, "malformed ELF: {reason}"),
        }
    }
}

impl std::error::Error for ElfError {}

/// The `\x7fELF` magic.
pub const ELF_MAGIC: [u8; 4] = [0x7f, b'E', b'L', b'F'];

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Elf {
        let mut e = Elf::new(8, 0x40_0000);
        e.sections.push(Section {
            name: ".text".into(),
            addr: 0x40_0000,
            data: vec![0x01, 0x02, 0x03, 0x04],
            kind: SectionKind::Progbits,
            exec: true,
            write: false,
        });
        e.sections.push(Section {
            name: ".data".into(),
            addr: 0x1000_0000,
            data: vec![0xaa; 16],
            kind: SectionKind::Progbits,
            exec: false,
            write: true,
        });
        e.symbols.push(Symbol {
            name: "main".into(),
            value: 0x40_0000,
            size: 4,
            kind: SymbolKind::Func,
            global: false,
        });
        e.symbols.push(Symbol {
            name: "exported_helper".into(),
            value: 0x40_0002,
            size: 2,
            kind: SymbolKind::Func,
            global: true,
        });
        e
    }

    #[test]
    fn section_lookup() {
        let e = sample();
        assert!(e.text().is_some());
        assert_eq!(e.section_at(0x40_0002).unwrap().name, ".text");
        assert_eq!(e.section_at(0x1000_0004).unwrap().name, ".data");
        assert!(e.section_at(0x2000_0000).is_none());
    }

    #[test]
    fn func_symbols_sorted() {
        let mut e = sample();
        e.symbols.reverse();
        let syms = e.func_symbols();
        assert_eq!(syms[0].name, "main");
        assert_eq!(syms[1].name, "exported_helper");
    }

    #[test]
    fn strip_behaviour() {
        let mut e = sample();
        assert!(!e.is_stripped());
        let mut partial = e.clone();
        partial.strip(true);
        assert_eq!(partial.symbols.len(), 1);
        assert_eq!(partial.symbols[0].name, "exported_helper");
        e.strip(false);
        assert!(e.is_stripped());
    }

    #[test]
    fn write_then_parse_roundtrip() {
        let e = sample();
        let bytes = e.write();
        let back = Elf::parse(&bytes).expect("parse");
        assert_eq!(back.machine, e.machine);
        assert_eq!(back.entry, e.entry);
        assert_eq!(back.sections.len(), 2);
        assert_eq!(back.section(".text").unwrap().data, vec![1, 2, 3, 4]);
        assert!(back.section(".text").unwrap().exec);
        assert!(back.section(".data").unwrap().write);
        assert_eq!(back.symbols.len(), 2);
        let main = back.symbols.iter().find(|s| s.name == "main").unwrap();
        assert_eq!(main.value, 0x40_0000);
        assert_eq!(main.kind, SymbolKind::Func);
        assert!(!main.global);
        assert!(back.warnings.is_empty());
    }

    #[test]
    fn stripped_roundtrip_has_no_symbols() {
        let mut e = sample();
        e.strip(false);
        let back = Elf::parse(&e.write()).unwrap();
        assert!(back.is_stripped());
        assert_eq!(back.sections.len(), 2, "sections survive stripping");
    }

    #[test]
    fn bad_magic_is_hard_error() {
        let e = sample();
        let mut bytes = e.write();
        bytes[0] = 0x00;
        assert!(matches!(Elf::parse(&bytes), Err(ElfError::BadMagic)));
    }

    #[test]
    fn wrong_elfclass_is_soft_warning() {
        // The §3.1 caveat: MIPS64-style headers (ELFCLASS64) on 32-bit
        // content are common in the wild; the parser must recover.
        let e = sample();
        let mut bytes = e.write();
        bytes[4] = 2; // ELFCLASS64
        let back = Elf::parse(&bytes).expect("tolerant parse");
        assert!(!back.warnings.is_empty());
        assert!(back.warnings[0].contains("ELFCLASS"));
        assert_eq!(back.sections.len(), 2);
    }

    #[test]
    fn truncated_file_is_hard_error() {
        let e = sample();
        let bytes = e.write();
        assert!(matches!(
            Elf::parse(&bytes[..30]),
            Err(ElfError::Truncated { .. })
        ));
        // Cut inside the section header table.
        assert!(Elf::parse(&bytes[..bytes.len() - 10]).is_err());
    }
}
