//! ELF32 serialization.

use crate::{Elf, Section, SectionKind, Symbol, SymbolKind, ELF_MAGIC};

const EHDR_SIZE: u32 = 52;
const SHDR_SIZE: u32 = 40;
const SYM_SIZE: u32 = 16;

const SHT_NULL: u32 = 0;
const SHT_PROGBITS: u32 = 1;
const SHT_SYMTAB: u32 = 2;
const SHT_STRTAB: u32 = 3;
const SHT_NOBITS: u32 = 8;

const SHF_WRITE: u32 = 1;
const SHF_ALLOC: u32 = 2;
const SHF_EXECINSTR: u32 = 4;

/// A growing string table with offset tracking.
struct StrTab {
    data: Vec<u8>,
}

impl StrTab {
    fn new() -> StrTab {
        StrTab { data: vec![0] }
    }

    fn add(&mut self, s: &str) -> u32 {
        let off = self.data.len() as u32;
        self.data.extend_from_slice(s.as_bytes());
        self.data.push(0);
        off
    }
}

struct Shdr {
    name_off: u32,
    sh_type: u32,
    flags: u32,
    addr: u32,
    offset: u32,
    size: u32,
    link: u32,
    info: u32,
    entsize: u32,
}

fn push_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

impl Elf {
    /// Serialize to ELF32 bytes (little-endian, `ET_EXEC`).
    pub fn write(&self) -> Vec<u8> {
        let mut shstr = StrTab::new();
        let mut strtab = StrTab::new();
        let mut shdrs: Vec<Shdr> = Vec::new();
        let mut body: Vec<u8> = Vec::new(); // section contents, after ehdr

        // Index 0: SHT_NULL.
        shdrs.push(Shdr {
            name_off: 0,
            sh_type: SHT_NULL,
            flags: 0,
            addr: 0,
            offset: 0,
            size: 0,
            link: 0,
            info: 0,
            entsize: 0,
        });

        for s in &self.sections {
            let name_off = shstr.add(&s.name);
            let offset = EHDR_SIZE + body.len() as u32;
            body.extend_from_slice(&s.data);
            let mut flags = SHF_ALLOC;
            if s.exec {
                flags |= SHF_EXECINSTR;
            }
            if s.write {
                flags |= SHF_WRITE;
            }
            shdrs.push(Shdr {
                name_off,
                sh_type: match s.kind {
                    SectionKind::Progbits => SHT_PROGBITS,
                    SectionKind::Nobits => SHT_NOBITS,
                },
                flags,
                addr: s.addr,
                offset,
                size: s.data.len() as u32,
                link: 0,
                info: 0,
                entsize: 0,
            });
        }

        // Symbol table (only when symbols exist).
        if !self.symbols.is_empty() {
            let mut symdata: Vec<u8> = vec![0; SYM_SIZE as usize]; // null symbol
            for sym in &self.symbols {
                let name_off = strtab.add(&sym.name);
                push_u32(&mut symdata, name_off);
                push_u32(&mut symdata, sym.value);
                push_u32(&mut symdata, sym.size);
                let bind: u8 = if sym.global { 1 } else { 0 };
                let typ: u8 = match sym.kind {
                    SymbolKind::Func => 2,
                    SymbolKind::Object => 1,
                };
                symdata.push((bind << 4) | typ);
                symdata.push(0); // st_other
                push_u16(&mut symdata, 1); // st_shndx: .text (first real section)
            }
            let symtab_name = shstr.add(".symtab");
            let strtab_name = shstr.add(".strtab");
            let sym_off = EHDR_SIZE + body.len() as u32;
            let sym_size = symdata.len() as u32;
            body.extend_from_slice(&symdata);
            let str_off = EHDR_SIZE + body.len() as u32;
            body.extend_from_slice(&strtab.data);
            let strtab_index = shdrs.len() as u32 + 1;
            shdrs.push(Shdr {
                name_off: symtab_name,
                sh_type: SHT_SYMTAB,
                flags: 0,
                addr: 0,
                offset: sym_off,
                size: sym_size,
                link: strtab_index,
                info: 1, // first global symbol index (approximate)
                entsize: SYM_SIZE,
            });
            shdrs.push(Shdr {
                name_off: strtab_name,
                sh_type: SHT_STRTAB,
                flags: 0,
                addr: 0,
                offset: str_off,
                size: strtab.data.len() as u32,
                link: 0,
                info: 0,
                entsize: 0,
            });
        }

        // Section-header string table.
        let shstr_name = shstr.add(".shstrtab");
        let shstr_off = EHDR_SIZE + body.len() as u32;
        body.extend_from_slice(&shstr.data);
        shdrs.push(Shdr {
            name_off: shstr_name,
            sh_type: SHT_STRTAB,
            flags: 0,
            addr: 0,
            offset: shstr_off,
            size: shstr.data.len() as u32,
            link: 0,
            info: 0,
            entsize: 0,
        });
        let shstrndx = (shdrs.len() - 1) as u16;
        let shoff = EHDR_SIZE + body.len() as u32;

        // Assemble.
        let mut out = Vec::with_capacity((shoff + SHDR_SIZE * shdrs.len() as u32) as usize);
        out.extend_from_slice(&ELF_MAGIC);
        out.push(1); // EI_CLASS = ELFCLASS32
        out.push(1); // EI_DATA = ELFDATA2LSB
        out.push(1); // EI_VERSION
        out.extend_from_slice(&[0; 9]); // padding to 16
        push_u16(&mut out, 2); // e_type = ET_EXEC
        push_u16(&mut out, self.machine);
        push_u32(&mut out, 1); // e_version
        push_u32(&mut out, self.entry);
        push_u32(&mut out, 0); // e_phoff
        push_u32(&mut out, shoff);
        push_u32(&mut out, 0); // e_flags
        push_u16(&mut out, EHDR_SIZE as u16);
        push_u16(&mut out, 0); // e_phentsize
        push_u16(&mut out, 0); // e_phnum
        push_u16(&mut out, SHDR_SIZE as u16);
        push_u16(&mut out, shdrs.len() as u16);
        push_u16(&mut out, shstrndx);
        debug_assert_eq!(out.len() as u32, EHDR_SIZE);
        out.extend_from_slice(&body);
        for h in &shdrs {
            push_u32(&mut out, h.name_off);
            push_u32(&mut out, h.sh_type);
            push_u32(&mut out, h.flags);
            push_u32(&mut out, h.addr);
            push_u32(&mut out, h.offset);
            push_u32(&mut out, h.size);
            push_u32(&mut out, h.link);
            push_u32(&mut out, h.info);
            push_u32(&mut out, 4); // addralign
            push_u32(&mut out, h.entsize);
        }
        out
    }
}

/// A convenience builder mirroring common layouts.
#[derive(Debug, Clone)]
pub struct ElfBuilder {
    elf: Elf,
}

impl ElfBuilder {
    /// Start a new executable.
    pub fn new(machine: u16, entry: u32) -> ElfBuilder {
        ElfBuilder {
            elf: Elf::new(machine, entry),
        }
    }

    /// Add the `.text` section.
    pub fn text(&mut self, addr: u32, data: Vec<u8>) -> &mut Self {
        self.elf.sections.push(Section {
            name: ".text".into(),
            addr,
            data,
            kind: SectionKind::Progbits,
            exec: true,
            write: false,
        });
        self
    }

    /// Add the `.data` section.
    pub fn data(&mut self, addr: u32, data: Vec<u8>) -> &mut Self {
        self.elf.sections.push(Section {
            name: ".data".into(),
            addr,
            data,
            kind: SectionKind::Progbits,
            exec: false,
            write: true,
        });
        self
    }

    /// Add the `.rodata` section.
    pub fn rodata(&mut self, addr: u32, data: Vec<u8>) -> &mut Self {
        self.elf.sections.push(Section {
            name: ".rodata".into(),
            addr,
            data,
            kind: SectionKind::Progbits,
            exec: false,
            write: false,
        });
        self
    }

    /// Add a function symbol.
    pub fn func(&mut self, name: &str, value: u32, size: u32, global: bool) -> &mut Self {
        self.elf.symbols.push(Symbol {
            name: name.to_string(),
            value,
            size,
            kind: SymbolKind::Func,
            global,
        });
        self
    }

    /// Finish, returning the executable.
    pub fn build(&self) -> Elf {
        self.elf.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_parseable_elf() {
        let mut b = ElfBuilder::new(3, 0x0804_8000);
        b.text(0x0804_8000, vec![0x90, 0xc3])
            .rodata(0x0804_9000, b"hello\0".to_vec())
            .func("main", 0x0804_8000, 2, false);
        let e = b.build();
        let back = Elf::parse(&e.write()).unwrap();
        assert_eq!(back.machine, 3);
        assert_eq!(back.section(".rodata").unwrap().data, b"hello\0");
        assert_eq!(back.func_symbols()[0].name, "main");
    }

    #[test]
    fn header_fields_are_exact() {
        let e = ElfBuilder::new(8, 0x40_0000).build();
        let bytes = e.write();
        assert_eq!(&bytes[0..4], &ELF_MAGIC);
        assert_eq!(bytes[4], 1, "ELFCLASS32");
        assert_eq!(bytes[5], 1, "ELFDATA2LSB");
        assert_eq!(u16::from_le_bytes([bytes[16], bytes[17]]), 2, "ET_EXEC");
        assert_eq!(u16::from_le_bytes([bytes[18], bytes[19]]), 8, "EM_MIPS");
        assert_eq!(
            u32::from_le_bytes([bytes[24], bytes[25], bytes[26], bytes[27]]),
            0x40_0000
        );
    }
}
