//! Baseline behavior pinned on a 3-executable micro-corpus: a symboled
//! query build, a stripped vendor-profile twin of the same source, and a
//! stripped decoy from unrelated source. These rankings feed the Fig. 6
//! / Fig. 8 comparisons — if either baseline's ordering drifts, the
//! paper-shape experiments change meaning silently.

use firmup_baselines::{bindiff, gitz};
use firmup_compiler::{compile_source, CompilerOptions, ToolchainProfile};
use firmup_core::canon::CanonConfig;
use firmup_core::lift::lift_executable;
use firmup_core::sim::{index_elf, ExecutableRep, GlobalContext};
use firmup_isa::Arch;

/// The "known" source: `checksum` is the CVE-analog query procedure.
const SRC_KNOWN: &str = r#"
    fn checksum(n: int) -> int {
        var s = 7;
        var i = 0;
        while (i < n) {
            s = s + s + i;
            if (s > 997) { s = s - 991; }
            i = i + 1;
        }
        return s;
    }
    fn helper(x: int) -> int { return x + 3; }
    fn dispatch(a: int, b: int) -> int {
        if (a < b) { return checksum(a); }
        if (a == b) { return helper(a); }
        return checksum(b) + 1;
    }
    fn main(a: int) -> int { return dispatch(a, 9); }
"#;

/// Unrelated decoy source sharing only trivial shapes with the above.
const SRC_DECOY: &str = r#"
    fn accumulate(n: int) -> int {
        var s = 0;
        var i = 0;
        while (i < n) { s = s + i; i = i + 1; }
        return s;
    }
    fn main(a: int) -> int { return accumulate(a + 4); }
"#;

fn compile(src: &str, profile: ToolchainProfile, strip: bool) -> firmup_obj::Elf {
    let mut elf = compile_source(
        src,
        Arch::Mips32,
        &CompilerOptions {
            profile,
            layout: Default::default(),
        },
    )
    .expect("micro-corpus source compiles");
    if strip {
        elf.strip(false);
    }
    elf
}

/// The micro-corpus: (query rep + index of `checksum`, stripped twin
/// rep, stripped decoy rep, ground-truth `checksum` address in the twin).
fn micro_corpus() -> (ExecutableRep, usize, ExecutableRep, ExecutableRep, u32) {
    let canon = CanonConfig::default();
    let query = index_elf(
        &compile(SRC_KNOWN, ToolchainProfile::gcc_like(), false),
        "query",
        &canon,
    )
    .expect("query indexes");
    let qv = query.find_named("checksum").expect("query keeps symbols");
    // Learn the twin's ground-truth address from its symboled build;
    // stripping removes names, not addresses.
    let twin_named = index_elf(
        &compile(SRC_KNOWN, ToolchainProfile::vendor_size(), false),
        "twin-named",
        &canon,
    )
    .expect("twin indexes");
    let truth = twin_named.procedures[twin_named.find_named("checksum").expect("named twin")].addr;
    let twin = index_elf(
        &compile(SRC_KNOWN, ToolchainProfile::vendor_size(), true),
        "twin",
        &canon,
    )
    .expect("stripped twin indexes");
    let decoy = index_elf(
        &compile(SRC_DECOY, ToolchainProfile::gcc_like(), true),
        "decoy",
        &canon,
    )
    .expect("decoy indexes");
    (query, qv, twin, decoy, truth)
}

#[test]
fn gitz_ranking_pins_twin_over_decoy() {
    let (query, qv, twin, decoy, truth) = micro_corpus();
    let ctx = GlobalContext::build([&twin, &decoy]);
    let ranked = gitz::rank(&query.procedures[qv], &[&twin, &decoy], &ctx, 0);
    assert!(!ranked.is_empty(), "the twin must share strands");
    // Top-1 is the true procedure in the twin executable.
    assert_eq!(ranked[0].exe, 0, "twin outranks decoy");
    assert_eq!(ranked[0].addr, truth, "top-1 is the planted procedure");
    // The ranking is ordered: scores never increase, and score ties
    // break on shared-strand count (both stable, never arrival order).
    for pair in ranked.windows(2) {
        assert!(
            pair[0].score > pair[1].score
                || (pair[0].score == pair[1].score && pair[0].shared >= pair[1].shared),
            "ranking out of order: {pair:?}"
        );
    }
    // k-truncation returns exactly the head of the full ranking.
    assert_eq!(
        gitz::rank(&query.procedures[qv], &[&twin, &decoy], &ctx, 2),
        ranked[..2.min(ranked.len())]
    );
    // top1 within the twin agrees with the global ranking's head.
    let best = gitz::top1(&query.procedures[qv], &twin, &ctx).expect("twin has a top-1");
    assert_eq!(best.addr, truth);
}

#[test]
fn bindiff_matches_the_twin_and_stays_injective_on_the_decoy() {
    let canon_query = compile(SRC_KNOWN, ToolchainProfile::gcc_like(), false);
    let twin_named = compile(SRC_KNOWN, ToolchainProfile::vendor_size(), false);
    let decoy = compile(SRC_DECOY, ToolchainProfile::gcc_like(), true);
    let q = bindiff::StructuralRep::build(&lift_executable(&canon_query).unwrap(), "query");
    let t_named = bindiff::StructuralRep::build(&lift_executable(&twin_named).unwrap(), "twin");
    let d = bindiff::StructuralRep::build(&lift_executable(&decoy).unwrap(), "decoy");
    let truth = t_named.procedures[t_named.find_named("checksum").unwrap()].addr;

    // Names present: the name pass must pin every shared procedure.
    let named = bindiff::diff(&q, &t_named);
    let qi = q.find_named("checksum").unwrap();
    let ti = named.target_of(qi).expect("checksum matches by name");
    assert_eq!(t_named.procedures[ti].addr, truth);

    // Stripped: structure alone still recovers the planted procedure in
    // the same-source twin (the loop + guard CFG shape is unique here).
    let strip = |r: &bindiff::StructuralRep| {
        let mut r = r.clone();
        for p in &mut r.procedures {
            p.name = None;
        }
        r
    };
    let stripped = bindiff::diff(&strip(&q), &strip(&t_named));
    let ti = stripped
        .target_of(qi)
        .expect("checksum matches structurally");
    assert_eq!(
        t_named.procedures[ti].addr, truth,
        "stripped twin diff must recover the planted procedure"
    );

    // Against the decoy, BinDiff still over-matches (its documented
    // failure mode) but the matching stays injective.
    let on_decoy = bindiff::diff(&strip(&q), &d);
    let targets: std::collections::HashSet<usize> =
        on_decoy.matches.iter().map(|&(_, t)| t).collect();
    assert_eq!(
        targets.len(),
        on_decoy.matches.len(),
        "matching must be injective"
    );
}
