//! Comparison baselines for the FirmUp evaluation (§5.3).
//!
//! The paper positions FirmUp against the two ends of the binary-search
//! spectrum:
//!
//! * [`bindiff`] — a whole-binary **graph** matcher in the style of
//!   zynamics BinDiff: CFG shapes, call-graph propagation, symbol names.
//!   No code semantics.
//! * [`gitz`] — a **procedure-centric** semantic matcher in the style of
//!   GitZ (David et al., PLDI 2017): the same canonical-strand
//!   representation FirmUp uses, weighted by a trained global context,
//!   but ranking procedures in isolation with no executable-level
//!   reasoning.
//!
//! Both are implemented from scratch on the same substrates as
//! `firmup-core`, so the Fig. 6 / Fig. 8 comparisons measure the
//! *approach*, not tooling differences.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bindiff;
pub mod gitz;

pub use bindiff::{diff, DiffResult, StructuralRep};
pub use gitz::{rank, top1, RankedMatch};
