//! GitZ-style procedure-centric matcher (David et al., PLDI 2017).
//!
//! The §5.3 comparison baseline: the *same* strand representation as
//! FirmUp, weighted by a trained per-architecture global context, but
//! **procedure-centric** — it "compares procedures while disregarding
//! the origin executable. Moreover, there is no notion of a positive or
//! negative match; instead, GitZ accepts a single query and a set of
//! targets and returns an ordered list of decreasingly similar
//! procedures."

use firmup_core::sim::{sim, ExecutableRep, GlobalContext, ProcedureRep};

/// One ranked candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedMatch {
    /// Index of the target executable in the searched set.
    pub exe: usize,
    /// Procedure index inside that executable.
    pub index: usize,
    /// Procedure address.
    pub addr: u32,
    /// Significance-weighted similarity.
    pub score: f64,
    /// Raw shared strand count (tie breaker).
    pub shared: usize,
}

/// Rank every procedure of every target by weighted similarity to the
/// query procedure, best first. `k = 0` returns the full ranking.
pub fn rank(
    query: &ProcedureRep,
    targets: &[&ExecutableRep],
    context: &GlobalContext,
    k: usize,
) -> Vec<RankedMatch> {
    let mut out: Vec<RankedMatch> = Vec::new();
    for (ei, exe) in targets.iter().enumerate() {
        for (pi, p) in exe.procedures.iter().enumerate() {
            let shared = sim(query, p);
            if shared > 0 {
                out.push(RankedMatch {
                    exe: ei,
                    index: pi,
                    addr: p.addr,
                    score: context.weighted_sim(query, p),
                    shared,
                });
            }
        }
    }
    out.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(b.shared.cmp(&a.shared))
            .then(a.addr.cmp(&b.addr))
            .then(a.exe.cmp(&b.exe))
    });
    if k > 0 {
        out.truncate(k);
    }
    out
}

/// Top-1 within a single target executable (how the paper evaluates
/// GitZ in Fig. 8: "we used each query against all the procedures in
/// each target executable, and considered the first result").
pub fn top1(
    query: &ProcedureRep,
    target: &ExecutableRep,
    context: &GlobalContext,
) -> Option<RankedMatch> {
    rank(query, &[target], context, 1).into_iter().next()
}

#[cfg(test)]
mod tests {
    use super::*;
    use firmup_isa::Arch;

    fn exe(id: &str, procs: &[&[u64]]) -> ExecutableRep {
        ExecutableRep {
            id: id.into(),
            arch: Arch::Mips32,
            procedures: procs
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    let mut v = s.to_vec();
                    v.sort_unstable();
                    ProcedureRep {
                        addr: 0x100 * (i as u32 + 1),
                        name: None,
                        strands: v,
                        block_count: 1,
                        size: 8,
                        interned: None,
                    }
                })
                .collect(),
        }
    }

    #[test]
    fn ranks_by_weighted_score() {
        // Strand 1 is ubiquitous (appears in both targets), 50 is rare.
        let t1 = exe("t1", &[&[1, 50], &[1, 2]]);
        let t2 = exe("t2", &[&[1, 3]]);
        let ctx = GlobalContext::build(&[t1.clone(), t2.clone()]);
        let q = ProcedureRep {
            addr: 0,
            name: None,
            strands: vec![1, 50],
            block_count: 1,
            size: 8,
            interned: None,
        };
        let ranked = rank(&q, &[&t1, &t2], &ctx, 0);
        assert_eq!(ranked[0].exe, 0);
        assert_eq!(ranked[0].index, 0, "the rare strand dominates");
        assert!(ranked[0].score > ranked[1].score);
    }

    #[test]
    fn top1_is_head_of_ranking() {
        let t = exe("t", &[&[5, 6], &[5, 6, 7]]);
        let ctx = GlobalContext::build(std::slice::from_ref(&t));
        let q = ProcedureRep {
            addr: 0,
            name: None,
            strands: vec![5, 6, 7],
            block_count: 1,
            size: 8,
            interned: None,
        };
        let best = top1(&q, &t, &ctx).unwrap();
        assert_eq!(best.index, 1);
    }

    #[test]
    fn k_truncates() {
        let t = exe("t", &[&[1], &[1], &[1]]);
        let ctx = GlobalContext::build(&[]);
        let q = ProcedureRep {
            addr: 0,
            name: None,
            strands: vec![1],
            block_count: 1,
            size: 8,
            interned: None,
        };
        assert_eq!(rank(&q, &[&t], &ctx, 2).len(), 2);
    }
}
