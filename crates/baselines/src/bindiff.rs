//! BinDiff-style whole-binary graph matcher.
//!
//! The "de facto industry standard" baseline of §5.3: matches the
//! procedures of two binaries using **structure** — CFG shapes, call
//! graphs and (when present) symbol names — with no semantic analysis of
//! the code. The paper demonstrates the approach class's failure mode
//! (Fig. 5/7): firmware customization and compiler variance change graph
//! shapes enough that structurally-similar-but-unrelated procedures win.
//!
//! The pipeline mirrors zynamics' documented matching steps at reduced
//! scale: name matching, unique structural signatures, call-graph
//! neighborhood propagation, then greedy similarity on CFG features.

use std::collections::{BTreeMap, HashMap, HashSet};

use firmup_core::lift::LiftedExecutable;
use firmup_ir::hash::Fnv64;

/// Structural features of one procedure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcFeatures {
    /// Entry address.
    pub addr: u32,
    /// Symbol name, when available.
    pub name: Option<String>,
    /// Basic-block count.
    pub blocks: usize,
    /// CFG edge count.
    pub edges: usize,
    /// Direct call-site count.
    pub calls: usize,
    /// Lifted statement count (instruction proxy).
    pub instrs: usize,
    /// Hash of the sorted out-degree sequence (an MD-index-style CFG
    /// fingerprint).
    pub degree_hash: u64,
    /// Callee indices within the same executable.
    pub callees: Vec<usize>,
    /// Caller indices within the same executable.
    pub callers: Vec<usize>,
}

impl ProcFeatures {
    /// Exact structural signature used for unique matching.
    pub fn signature(&self) -> (usize, usize, usize, u64) {
        (self.blocks, self.edges, self.calls, self.degree_hash)
    }
}

/// A whole executable as BinDiff sees it.
#[derive(Debug, Clone)]
pub struct StructuralRep {
    /// Identifier.
    pub id: String,
    /// Per-procedure features, sorted by address.
    pub procedures: Vec<ProcFeatures>,
}

impl StructuralRep {
    /// Extract features from a lifted executable.
    pub fn build(lifted: &LiftedExecutable, id: &str) -> StructuralRep {
        let procs = &lifted.program.procedures;
        let addr_to_idx: BTreeMap<u32, usize> =
            procs.iter().enumerate().map(|(i, p)| (p.addr, i)).collect();
        let mut features: Vec<ProcFeatures> = procs
            .iter()
            .map(|p| {
                let cfg = p.cfg();
                let mut h = Fnv64::new();
                for d in cfg.degree_sequence() {
                    h.update_u32(d as u32);
                }
                let callees: Vec<usize> = p
                    .call_targets()
                    .iter()
                    .filter_map(|t| addr_to_idx.get(t).copied())
                    .collect();
                ProcFeatures {
                    addr: p.addr,
                    name: p.name.clone(),
                    blocks: p.blocks.len(),
                    edges: cfg.edge_count(),
                    calls: p
                        .blocks
                        .iter()
                        .filter(|b| b.jump.call_target().is_some())
                        .count(),
                    instrs: p.stmt_count(),
                    degree_hash: h.finish(),
                    callees,
                    callers: Vec::new(),
                }
            })
            .collect();
        // Invert the call graph.
        let edges: Vec<(usize, usize)> = features
            .iter()
            .enumerate()
            .flat_map(|(i, f)| f.callees.iter().map(move |&c| (i, c)))
            .collect();
        for (caller, callee) in edges {
            features[callee].callers.push(caller);
        }
        StructuralRep {
            id: id.to_string(),
            procedures: features,
        }
    }

    /// Find a procedure index by address.
    pub fn find_addr(&self, addr: u32) -> Option<usize> {
        self.procedures.iter().position(|p| p.addr == addr)
    }

    /// Find a procedure index by name.
    pub fn find_named(&self, name: &str) -> Option<usize> {
        self.procedures
            .iter()
            .position(|p| p.name.as_deref() == Some(name))
    }
}

/// Feature distance between two procedures (lower = more similar).
fn distance(a: &ProcFeatures, b: &ProcFeatures) -> usize {
    let d = a.blocks.abs_diff(b.blocks) * 2
        + a.edges.abs_diff(b.edges)
        + a.calls.abs_diff(b.calls) * 2
        + a.instrs.abs_diff(b.instrs) / 8;
    d + usize::from(a.degree_hash != b.degree_hash) * 2
}

/// The full matching produced by a diff.
#[derive(Debug, Clone, Default)]
pub struct DiffResult {
    /// Matched pairs `(query index, target index)`.
    pub matches: Vec<(usize, usize)>,
}

impl DiffResult {
    /// The target match of a query procedure.
    pub fn target_of(&self, qi: usize) -> Option<usize> {
        self.matches
            .iter()
            .find(|&&(q, _)| q == qi)
            .map(|&(_, t)| t)
    }
}

/// Diff two executables, producing a (near-)full matching.
pub fn diff(query: &StructuralRep, target: &StructuralRep) -> DiffResult {
    let nq = query.procedures.len();
    let nt = target.procedures.len();
    let mut mq: HashMap<usize, usize> = HashMap::new();
    let mut mt: HashSet<usize> = HashSet::new();

    let add = |q: usize, t: usize, mq: &mut HashMap<usize, usize>, mt: &mut HashSet<usize>| {
        if !mq.contains_key(&q) && !mt.contains(&t) {
            mq.insert(q, t);
            mt.insert(t);
        }
    };

    // Step 1: symbol names ("BinDiff … attributes great importance to
    // the procedure name when it exists").
    let tnames: HashMap<&str, usize> = target
        .procedures
        .iter()
        .enumerate()
        .filter_map(|(i, p)| p.name.as_deref().map(|n| (n, i)))
        .collect();
    for (qi, p) in query.procedures.iter().enumerate() {
        if let Some(name) = p.name.as_deref() {
            if let Some(&ti) = tnames.get(name) {
                add(qi, ti, &mut mq, &mut mt);
            }
        }
    }

    // Step 2: unique structural signatures.
    let mut sig_q: HashMap<(usize, usize, usize, u64), Vec<usize>> = HashMap::new();
    let mut sig_t: HashMap<(usize, usize, usize, u64), Vec<usize>> = HashMap::new();
    for (i, p) in query.procedures.iter().enumerate() {
        if !mq.contains_key(&i) {
            sig_q.entry(p.signature()).or_default().push(i);
        }
    }
    for (i, p) in target.procedures.iter().enumerate() {
        if !mt.contains(&i) {
            sig_t.entry(p.signature()).or_default().push(i);
        }
    }
    let mut sigs: Vec<_> = sig_q.keys().copied().collect();
    sigs.sort_unstable();
    for sig in sigs {
        if let (Some(qs), Some(ts)) = (sig_q.get(&sig), sig_t.get(&sig)) {
            if qs.len() == 1 && ts.len() == 1 {
                add(qs[0], ts[0], &mut mq, &mut mt);
            }
        }
    }

    // Step 3: call-graph propagation to a fixpoint — matched pairs vote
    // for matching their unmatched neighbors by minimum distance.
    loop {
        let mut new_pairs: Vec<(usize, usize)> = Vec::new();
        let snapshot: Vec<(usize, usize)> = {
            let mut v: Vec<_> = mq.iter().map(|(&q, &t)| (q, t)).collect();
            v.sort_unstable();
            v
        };
        for (q, t) in snapshot {
            for (q_neigh, t_neigh) in [
                (&query.procedures[q].callees, &target.procedures[t].callees),
                (&query.procedures[q].callers, &target.procedures[t].callers),
            ] {
                let qs: Vec<usize> = q_neigh
                    .iter()
                    .copied()
                    .filter(|i| !mq.contains_key(i))
                    .collect();
                let ts: Vec<usize> = t_neigh
                    .iter()
                    .copied()
                    .filter(|i| !mt.contains(i))
                    .collect();
                for &qi in &qs {
                    let best = ts
                        .iter()
                        .copied()
                        .filter(|ti| !mt.contains(ti))
                        .min_by_key(|&ti| {
                            (distance(&query.procedures[qi], &target.procedures[ti]), ti)
                        });
                    if let Some(ti) = best {
                        new_pairs.push((qi, ti));
                    }
                }
            }
        }
        let mut progressed = false;
        for (q, t) in new_pairs {
            if !mq.contains_key(&q) && !mt.contains(&t) {
                mq.insert(q, t);
                mt.insert(t);
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }

    // Step 4: greedy global matching of the rest by feature distance.
    let mut rest_q: Vec<usize> = (0..nq).filter(|i| !mq.contains_key(i)).collect();
    // Bigger procedures first (their structure is most distinctive).
    rest_q.sort_by_key(|&i| std::cmp::Reverse(query.procedures[i].instrs));
    for qi in rest_q {
        let best = (0..nt)
            .filter(|ti| !mt.contains(ti))
            .min_by_key(|&ti| (distance(&query.procedures[qi], &target.procedures[ti]), ti));
        if let Some(ti) = best {
            // Generous acceptance: BinDiff aims for maximal coverage,
            // which is precisely what produces its false matches.
            let d = distance(&query.procedures[qi], &target.procedures[ti]);
            let size = query.procedures[qi].instrs.max(8);
            if d <= size {
                mq.insert(qi, ti);
                mt.insert(ti);
            }
        }
    }

    let mut matches: Vec<(usize, usize)> = mq.into_iter().collect();
    matches.sort_unstable();
    DiffResult { matches }
}

#[cfg(test)]
mod tests {
    use super::*;
    use firmup_compiler::{compile_source, CompilerOptions, ToolchainProfile};
    use firmup_core::lift::lift_executable;
    use firmup_isa::Arch;

    const SRC: &str = r#"
        fn tiny(x: int) -> int { return x + 1; }
        fn looped(n: int) -> int {
            var s = 0;
            var i = 0;
            while (i < n) { s = s + tiny(i); i = i + 1; }
            return s;
        }
        fn branchy(a: int, b: int) -> int {
            if (a < b) { return looped(a); }
            if (a == b) { return tiny(a); }
            return looped(b) + 1;
        }
        fn main(a: int) -> int { return branchy(a, 7); }
    "#;

    fn build(profile: ToolchainProfile, strip: bool) -> StructuralRep {
        let mut elf = compile_source(
            SRC,
            Arch::Mips32,
            &CompilerOptions {
                profile,
                layout: Default::default(),
            },
        )
        .unwrap();
        if strip {
            elf.strip(false);
        }
        let lifted = lift_executable(&elf).unwrap();
        StructuralRep::build(&lifted, "t")
    }

    #[test]
    fn features_capture_structure() {
        let r = build(ToolchainProfile::gcc_like(), false);
        let looped = &r.procedures[r.find_named("looped").unwrap()];
        let tiny = &r.procedures[r.find_named("tiny").unwrap()];
        assert!(looped.blocks > tiny.blocks);
        assert!(looped.edges > tiny.edges);
        let main = &r.procedures[r.find_named("main").unwrap()];
        assert_eq!(main.calls, 1);
        assert!(!main.callees.is_empty());
        let branchy = r.find_named("branchy").unwrap();
        assert!(r.procedures[branchy]
            .callers
            .contains(&r.find_named("main").unwrap()));
    }

    #[test]
    fn identical_binaries_match_perfectly() {
        let a = build(ToolchainProfile::gcc_like(), true);
        let b = build(ToolchainProfile::gcc_like(), true);
        let d = diff(&a, &b);
        assert_eq!(d.matches.len(), a.procedures.len());
        for (q, t) in &d.matches {
            assert_eq!(a.procedures[*q].addr, b.procedures[*t].addr);
        }
    }

    #[test]
    fn names_dominate_when_present() {
        let a = build(ToolchainProfile::gcc_like(), false);
        let b = build(ToolchainProfile::vendor_size(), false);
        let d = diff(&a, &b);
        let qi = a.find_named("branchy").unwrap();
        let ti = d.target_of(qi).unwrap();
        assert_eq!(b.procedures[ti].name.as_deref(), Some("branchy"));
    }

    #[test]
    fn cross_profile_stripped_diff_produces_a_matching() {
        let a = build(ToolchainProfile::gcc_like(), true);
        let b = build(ToolchainProfile::vendor_size(), true);
        let d = diff(&a, &b);
        // BinDiff matches aggressively; correctness is a different story
        // (that is the point of the Fig. 6 experiment).
        assert!(d.matches.len() >= a.procedures.len() / 2);
        // Matching is injective.
        let ts: HashSet<usize> = d.matches.iter().map(|&(_, t)| t).collect();
        assert_eq!(ts.len(), d.matches.len());
    }
}
